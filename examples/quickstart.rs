//! Quickstart: fingerprint a single simulated router with the 10-packet
//! LFP schedule and inspect every feature the classifier sees.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use lfp::net::network::{DeviceId, DirectOracle};
use lfp::net::Network;
use lfp::prelude::*;
use lfp::stack::catalog;
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::Arc;

fn main() {
    // A single Juniper MX behind one interface — the smallest possible
    // "Internet".
    let profile = Arc::new(catalog::default_variant(Vendor::Juniper));
    println!("target stack : {} {}", profile.vendor, profile.family);

    let device = (0..500)
        .map(|seed| RouterDevice::new(Arc::clone(&profile), seed))
        .find(|d| {
            let e = d.exposure();
            e.icmp && e.tcp && e.udp && e.snmp
        })
        .expect("an exposed device exists");
    let target = Ipv4Addr::new(203, 0, 113, 1);
    let mut interfaces = HashMap::new();
    interfaces.insert(target, DeviceId(0));
    let mut network = Network::new(vec![device], interfaces, Box::new(DirectOracle), 42);
    network.set_base_loss(0.0);

    // The paper's measurement: 3 ICMP + 3 TCP + 3 UDP + 1 SNMPv3.
    let observation = probe_target(&network, target, 0.0, 7);
    println!(
        "responses    : {} ICMP, {} TCP, {} UDP",
        observation.icmp.len(),
        observation.tcp.len(),
        observation.udp.len()
    );
    if let Some(engine) = &observation.snmp_engine {
        println!(
            "SNMPv3 engine: PEN {} → {:?}",
            engine.pen,
            lfp::core::snmp_label::vendor_from_engine(engine)
        );
    }

    // The fifteen features of Table 1, in Table 6's row format.
    let vector = extract(&observation);
    println!("features     : {}", vector.table6_row());

    // Classify against a signature set trained on a small synthetic
    // Internet (ground truth only via SNMPv3, as in the paper).
    println!("\nbuilding a small training Internet…");
    let internet = Internet::generate(Scale::tiny());
    let targets = internet.all_interfaces();
    let scan = scan_dataset(internet.network(), "train", &targets, 8);
    let set = scan
        .signature_db()
        .finalize(Scale::tiny().occurrence_threshold);
    println!(
        "trained      : {} unique / {} non-unique signatures from {} labelled IPs",
        set.unique_count(),
        set.non_unique_count(),
        scan.snmp_count()
    );

    match set.classify(&vector) {
        Classification::Unique { vendor, partial } => println!(
            "verdict      : {vendor} (unique {} signature)",
            if partial { "partial" } else { "full" }
        ),
        Classification::NonUnique(candidates) => {
            println!("verdict      : ambiguous between {candidates:?}")
        }
        other => println!("verdict      : {other:?}"),
    }
}
