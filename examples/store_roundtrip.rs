//! Persist a measured world, cold-start from the store, and fold a new
//! snapshot in as an epoch — the full `lfp-store` life cycle, in
//! process.
//!
//! ```sh
//! cargo run --release --example store_roundtrip
//! ```
//!
//! The same flow over the daemon:
//!
//! ```sh
//! cargo run --release -p lfp-bench --bin store-tool -- deltas --scale query-stress --count 1 --out deltas/
//! cargo run --release -p lfp-bench --bin vendor-queryd -- --store world.lfps                 # builds + saves
//! cargo run --release -p lfp-bench --bin vendor-queryd -- --store world.lfps --ingest deltas # loads + ingests
//! ```

use lfp::core::scan_dataset;
use lfp::prelude::*;
use lfp::store::{SnapshotDelta, Store};
use lfp::topo::datasets::{measure_ripe_snapshot, plan_ripe_snapshots_extended};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    println!("measuring a tiny world…");
    let build_start = Instant::now();
    let world = Arc::new(World::build(Scale::tiny()));
    let rebuild_seconds = build_start.elapsed().as_secs_f64();
    let store = Store::from_world(Arc::clone(&world));
    println!(
        "  built in {rebuild_seconds:.3}s — {} paths at epoch {}",
        store.engine().corpus().len(),
        store.epoch()
    );

    // Persist and cold-start from the bytes (a file works identically;
    // see `Store::save` / `Store::load`).
    let bytes = store.to_bytes();
    println!("store is {} bytes", bytes.len());
    let load_start = Instant::now();
    let reopened = Store::from_bytes(&bytes).expect("fresh store bytes decode");
    let load_seconds = load_start.elapsed().as_secs_f64();
    println!(
        "cold start from store in {load_seconds:.3}s ({:.1}x faster than the rebuild)",
        rebuild_seconds / load_seconds.max(1e-9)
    );

    // Identical answers, bit for bit.
    let question = r#"{"query": "path_diversity", "src_as": 3, "dst_as": 9, "min_hops": 1}"#;
    let query = lfp::query::wire::decode(question).expect("valid query");
    let before = store.engine().execute_uncached(&query);
    let after = reopened.engine().execute_uncached(&query);
    assert_eq!(before, after, "store round trip changed an answer");
    println!("→ {question}");
    println!("← identical from both daemons: {}", before.unwrap());

    // Measure the snapshot a longer campaign would have collected next,
    // and fold it in as epoch 1 — only the new traces classify.
    println!("\nmeasuring one snapshot delta…");
    let internet = &world.internet;
    let plans = plan_ripe_snapshots_extended(internet, internet.scale.snapshots + 1);
    let plan = plans.last().expect("one extra plan");
    let snapshot = measure_ripe_snapshot(internet, &internet.network().fork(), plan);
    let targets: Vec<std::net::Ipv4Addr> = snapshot.router_ips.iter().copied().collect();
    let scan = scan_dataset(&internet.network().fork(), &snapshot.name, &targets, 4);
    let delta = SnapshotDelta::from_measurement(&snapshot, &scan);

    let report = reopened.ingest(delta).expect("delta ingests");
    println!(
        "ingested {} → epoch {} (+{} paths in {:.3}s)",
        report.sources.join(", "),
        report.epoch,
        report.new_paths,
        report.seconds
    );
    let engine = reopened.engine();
    let catalog = engine
        .execute(&lfp::query::Query::Catalog)
        .expect("catalog answers");
    println!("catalog now: {}", catalog.payload);
    assert!(catalog.payload.contains("\"epoch\": 1") || catalog.payload.contains("\"epoch\":1"));
}
