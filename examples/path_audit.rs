//! Path-centric vendor audit (paper §6): which vendors does your traffic
//! traverse, and can a distrusted vendor be avoided?
//!
//! Builds a measured world, picks traceroute paths, prints per-path vendor
//! chains, then runs the §6.3 avoidance analysis against the most
//! vendor-homogeneous transit network it can find.
//!
//! ```sh
//! cargo run --release --example path_audit
//! ```

use lfp::analysis::homogeneity::{homogeneous_ases, per_as_vendor_counts};
use lfp::analysis::paths::{path_metrics, top_vendor_combinations};
use lfp::analysis::routing::{avoidance_study, sample_destinations, sample_sources};
use lfp::analysis::World;
use lfp::prelude::*;

fn main() {
    println!("measuring a small Internet…");
    let world = World::build(Scale::small());
    let (snapshot, scan) = world.latest_ripe();
    let vendor_map = world.lfp_vendor_map(scan);

    // Show a few concrete audited paths.
    println!("\nsample audited paths:");
    let mut shown = 0;
    for trace in &snapshot.traces {
        let hops = trace.router_hops();
        if hops.len() < 4 {
            continue;
        }
        let chain: Vec<String> = hops
            .iter()
            .map(|hop| match vendor_map.get(hop) {
                Some(vendor) => vendor.name().to_string(),
                None => "?".to_string(),
            })
            .collect();
        if chain.iter().filter(|c| *c != "?").count() >= 3 {
            println!("  {} → {}: [{}]", trace.src, trace.dst, chain.join(" → "));
            shown += 1;
            if shown == 6 {
                break;
            }
        }
    }

    // Vendor combinations across all paths (Figure 12).
    let metrics = path_metrics(&snapshot.traces, &vendor_map);
    println!("\ntop vendor combinations on paths:");
    for (combo, share, count) in top_vendor_combinations(&metrics, 8) {
        println!("  {share:5.1}%  {combo}  ({count} paths)");
    }

    // The avoidance case study (§6.3).
    let itdk_lfp = world.lfp_vendor_map(&world.itdk_scan);
    let counts = per_as_vendor_counts(&world.internet, &world.itdk_scan.targets, &itdk_lfp);
    let mut homogeneous = homogeneous_ases(&counts, 8, 0.85);
    homogeneous
        .retain(|(as_id, _, _)| !world.internet.graph().customers[*as_id as usize].is_empty());
    homogeneous
        .sort_by_key(|&(as_id, _, _)| std::cmp::Reverse(counts[&as_id].values().sum::<usize>()));

    println!("\nvendor-homogeneous transit networks:");
    let sources = sample_sources(&world.internet, 20);
    let destinations = sample_destinations(&world.internet, 120);
    for &(as_id, vendor, share) in homogeneous.iter().take(3) {
        let asn = world.internet.graph().nodes[as_id as usize].asn;
        let study = avoidance_study(&world.internet, as_id, &sources, &destinations);
        println!(
            "  AS{asn}: {:.0}% {vendor} — transits {} sampled destinations; {} have a {vendor}-free alternative, {} do not",
            share * 100.0,
            study.affected_destinations,
            study.avoidable,
            study.unavoidable
        );
    }
    if homogeneous.is_empty() {
        println!("  (none found at this scale — increase the scale for the full study)");
    }
}
