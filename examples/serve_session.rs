//! A live event-loop serving session: boot an `lfp-serve` server on an
//! ephemeral port, then speak to it over real TCP the way a bursty
//! client would — one pipelined burst of queries, a `stats` control
//! query, and a graceful `shutdown` that drains the pipeline.
//!
//! ```sh
//! cargo run --release --example serve_session
//! ```
//!
//! The same conversation works verbatim against the daemon:
//!
//! ```sh
//! cargo run --release -p lfp-bench --bin vendor-queryd -- --scale tiny --port 7377 &
//! printf '%s\n' '{"query": "catalog"}' '{"query": "stats"}' | nc 127.0.0.1 7377
//! ```

use lfp::prelude::*;
use lfp::serve::{EngineSource, ServeConfig, Server};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

fn main() -> std::io::Result<()> {
    println!("building a tiny measured world…");
    let engine = Arc::new(QueryEngine::new(Arc::new(World::build(Scale::tiny()))));
    let corpus = engine.corpus();
    let (src, dst) = (corpus.src_as_ids()[0], corpus.dst_as_ids()[0]);

    // The daemon wraps a `Store` here so epochs can swap mid-flight;
    // a fixed engine is enough for a session tour.
    let source_engine = Arc::clone(&engine);
    let source: Arc<dyn EngineSource> = Arc::new(move || Arc::clone(&source_engine));
    let server = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        },
        source,
    )?;
    let addr = server.local_addr();
    println!(
        "event loop listening on {addr} ({} paths, {} workers)\n",
        corpus.len(),
        server.worker_count()
    );
    let loop_thread = std::thread::spawn(move || server.run());

    // One burst: every request written before any response is read —
    // the readiness loop decodes the pipeline incrementally and answers
    // strictly in order.
    let session = [
        "{\"query\": \"catalog\"}".to_string(),
        format!("{{\"query\": \"vendor_mix\", \"as\": {src}}}"),
        format!("{{\"query\": \"path_diversity\", \"src_as\": {src}, \"dst_as\": {dst}}}"),
        "{\"query\": \"transitions\", \"min_hops\": 3}".to_string(),
        "{\"query\": \"stats\"}".to_string(),
        "{\"query\": \"shutdown\"}".to_string(),
    ];
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;

    let mut burst = String::new();
    for line in &session {
        burst.push_str(line);
        burst.push('\n');
    }
    writer.write_all(burst.as_bytes())?;
    println!("→ pipelined {} requests in one write\n", session.len());

    for line in &session {
        let mut reply = String::new();
        reader.read_line(&mut reply)?;
        println!("→ {line}");
        println!("← {}\n", reply.trim_end());
    }

    let report = loop_thread.join().expect("serving loop exits");
    println!(
        "server drained and stopped: {} connection(s), {} queries, {} control, \
         drained_cleanly={}",
        report.accepted, report.queries, report.control, report.drained_cleanly
    );
    Ok(())
}
