//! An example `vendor-queryd` session, in process.
//!
//! Issues the same protocol lines a TCP client would send (see the
//! README's "Query protocol" section), through the same decode →
//! plan → execute → render pipeline, and prints each request/response
//! pair. Every line below works verbatim against a running daemon:
//!
//! ```sh
//! cargo run --release -p lfp-bench --bin vendor-queryd -- --scale tiny --port 7377 &
//! printf '%s\n' '{"query": "catalog"}' | nc 127.0.0.1 7377
//! ```
//!
//! ```sh
//! cargo run --release --example query_session
//! ```

use lfp::prelude::*;
use lfp::query::wire;

fn main() {
    println!("building a tiny measured world…");
    let world = std::sync::Arc::new(World::build(Scale::tiny()));
    let engine = QueryEngine::new(world);
    let corpus = engine.corpus();
    println!(
        "engine ready: {} paths, {} sources\n",
        corpus.len(),
        corpus.sources().len()
    );

    // A representative session: discovery first, then the intelligence
    // questions the paper's §5–§6 answer. The AS ids come from the
    // catalog the way a remote client would get them.
    let src = corpus.src_as_ids()[0];
    let dst = corpus.dst_as_ids()[0];
    let session = vec![
        "{\"query\": \"catalog\"}".to_string(),
        format!("{{\"query\": \"vendor_mix\", \"as\": {src}}}"),
        "{\"query\": \"vendor_mix\", \"region\": \"EU\", \"method\": \"snmp\"}".to_string(),
        format!("{{\"query\": \"path_diversity\", \"src_as\": {src}, \"dst_as\": {dst}}}"),
        "{\"query\": \"transitions\", \"min_hops\": 3}".to_string(),
        "{\"query\": \"longest_runs\", \"slice\": \"intra-us\"}".to_string(),
        // Same question again: answered from the result cache.
        format!("{{\"query\": \"path_diversity\", \"src_as\": {src}, \"dst_as\": {dst}}}"),
        // A malformed request, to show the error envelope.
        "{\"query\": \"vendor_mix\", \"vendor\": \"Cisco\"}".to_string(),
    ];

    for line in &session {
        println!("→ {line}");
        let reply = match wire::decode(line) {
            Ok(query) => match engine.execute(&query) {
                Ok(response) => wire::ok_envelope(&engine.canonical(&query), &response),
                Err(error) => wire::error_envelope(&error),
            },
            Err(error) => wire::error_envelope(&error),
        };
        println!("← {reply}\n");
    }

    let stats = engine.cache_stats();
    println!(
        "cache after the session: {} entries, {} hits, {} misses ({:.0}% hit rate)",
        stats.entries,
        stats.hits,
        stats.misses,
        stats.hit_rate() * 100.0
    );
}
