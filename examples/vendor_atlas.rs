//! A vendor atlas: regional market shares, per-network homogeneity, and
//! the networks where LFP adds the most over SNMPv3 (paper Appendix A).
//!
//! ```sh
//! cargo run --release --example vendor_atlas
//! ```

use lfp::analysis::homogeneity::{per_as_summaries, per_as_vendor_counts};
use lfp::analysis::regional::{per_as_snmp_counts, per_continent, top_networks};
use lfp::analysis::World;
use lfp::prelude::*;

fn main() {
    println!("measuring a small Internet…");
    let world = World::build(Scale::small());
    let scan = &world.itdk_scan;
    let lfp = world.lfp_vendor_map(scan);
    let snmp = world.snmp_vendor_map(scan);

    // Regional vendor market (Figure 21).
    println!("\nrouter vendor share per continent (LFP-identified):");
    let stats = per_continent(&world.internet, &scan.targets, &lfp, &snmp);
    for (continent, stat) in &stats {
        let total = stat.lfp_total();
        let mut vendors: Vec<_> = stat.lfp_by_vendor.iter().collect();
        vendors.sort_by_key(|(_, &count)| std::cmp::Reverse(count));
        let summary: Vec<String> = vendors
            .iter()
            .take(3)
            .map(|(vendor, &count)| {
                format!(
                    "{} {:.0}%",
                    vendor.name(),
                    count as f64 * 100.0 / total.max(1) as f64
                )
            })
            .collect();
        println!(
            "  {:<3} {:>6} routers | {} | LFP adds {:+.0}% over SNMPv3",
            continent.abbrev(),
            total,
            summary.join(", "),
            stat.lfp_uplift_percent()
        );
    }

    // Homogeneity per network (Figure 20 flavour).
    let summaries = per_as_summaries(&world.internet, &scan.targets, &lfp, &snmp);
    let sized: Vec<_> = summaries.values().filter(|s| s.routers >= 5).collect();
    let single = sized
        .iter()
        .filter(|s| s.vendors.len() == 1 && s.identified > 0)
        .count();
    let dual = sized.iter().filter(|s| s.vendors.len() == 2).count();
    println!(
        "\nhomogeneity: of {} networks with ≥5 routers, {} are single-vendor and {} two-vendor",
        sized.len(),
        single,
        dual
    );

    // The networks where LFP matters most (Figure 22).
    let per_as_lfp = per_as_vendor_counts(&world.internet, &scan.targets, &lfp);
    let per_as_snmp = per_as_snmp_counts(&world.internet, &scan.targets, &snmp);
    println!("\ntop networks by identified routers (LFP vs SNMPv3):");
    for network in top_networks(&world.internet, &per_as_lfp, &per_as_snmp, 10) {
        println!(
            "  {:<6} {:>5} LFP vs {:>5} SNMPv3",
            network.label, network.lfp_routers, network.snmp_routers
        );
    }
}
