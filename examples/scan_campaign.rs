//! An Internet-wide measurement campaign in miniature: build a synthetic
//! Internet, collect RIPE-style and ITDK-style datasets, run the LFP scan,
//! and print a Table-3-style measurement overview plus the coverage gain
//! over SNMPv3-only fingerprinting.
//!
//! ```sh
//! cargo run --release --example scan_campaign [tiny|small|paper]
//! ```

use lfp::prelude::*;
use lfp::topo::{build_itdk, build_ripe_snapshots};
use std::time::Instant;

fn main() {
    let scale_name = std::env::args().nth(1).unwrap_or_else(|| "small".into());
    let scale = Scale::by_name(&scale_name).unwrap_or_else(|| {
        eprintln!("unknown scale '{scale_name}', using small");
        Scale::small()
    });

    let started = Instant::now();
    println!("generating Internet (~{} routers)…", scale.approx_routers());
    let internet = Internet::generate(scale);
    println!(
        "  {} ASes, {} routers, {} interfaces [{:.1}s]",
        internet.graph().len(),
        internet.routers().len(),
        internet.network().interface_count(),
        started.elapsed().as_secs_f64()
    );

    println!("collecting datasets (traceroutes + alias resolution)…");
    let snapshots = build_ripe_snapshots(&internet);
    let itdk = build_itdk(&internet);
    for snapshot in &snapshots {
        println!(
            "  {} ({}): {} router IPs in {} ASes",
            snapshot.name,
            snapshot.date,
            snapshot.router_ips.len(),
            snapshot.as_count(&internet)
        );
    }
    println!(
        "  {} ({}): {} responsive IPs, {} alias sets",
        itdk.name,
        itdk.date,
        itdk.router_ips.len(),
        itdk.alias_sets.len()
    );

    println!("scanning with the 10-packet LFP schedule…");
    let shards = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut union_db = SignatureDb::new();
    let mut scans = Vec::new();
    for snapshot in &snapshots {
        let targets: Vec<_> = snapshot.router_ips.iter().copied().collect();
        let scan = scan_dataset(internet.network(), &snapshot.name, &targets, shards);
        union_db.merge(&scan.signature_db());
        scans.push(scan);
    }
    let itdk_targets: Vec<_> = itdk.router_ips.iter().copied().collect();
    let itdk_scan = scan_dataset(internet.network(), "ITDK", &itdk_targets, shards);
    union_db.merge(&itdk_scan.signature_db());
    scans.push(itdk_scan);

    let set = union_db.finalize(scale.occurrence_threshold);
    println!(
        "\nsignatures: {} unique, {} non-unique (occurrence threshold {})",
        set.unique_count(),
        set.non_unique_count(),
        scale.occurrence_threshold
    );

    println!("\nMeasurement overview (cf. paper Table 3):");
    println!(
        "  {:<8} {:>9} {:>8} {:>12} {:>12}",
        "dataset", "resp.IPs", "SNMPv3", "SNMPv3∩LFP", "LFP\\SNMPv3"
    );
    for scan in &scans {
        println!(
            "  {:<8} {:>9} {:>8} {:>12} {:>12}",
            scan.name,
            scan.responsive_count(),
            scan.snmp_count(),
            scan.snmp_and_lfp_count(),
            scan.lfp_only_count()
        );
    }

    // The headline: how much coverage does LFP add over SNMPv3 alone?
    let latest = &scans[scans.len() - 2]; // last RIPE snapshot
    let mut snmp_identified = 0usize;
    let mut combined_identified = 0usize;
    let mut correct = 0usize;
    for ((target, vector), label) in latest
        .targets
        .iter()
        .zip(&latest.vectors)
        .zip(&latest.labels)
    {
        let lfp_vendor = set.classify(vector).unique_vendor();
        if label.is_some() {
            snmp_identified += 1;
        }
        if label.is_some() || lfp_vendor.is_some() {
            combined_identified += 1;
        }
        if let Some(vendor) = lfp_vendor {
            if internet.truth_of(*target).map(|m| m.vendor) == Some(vendor) {
                correct += 1;
            }
        }
    }
    let lfp_unique: usize = latest
        .vectors
        .iter()
        .filter(|v| set.classify(v).unique_vendor().is_some())
        .count();
    println!(
        "\n{}: SNMPv3 identifies {} IPs; SNMPv3+LFP identifies {} ({:+.0}%)",
        latest.name,
        snmp_identified,
        combined_identified,
        (combined_identified as f64 / snmp_identified.max(1) as f64 - 1.0) * 100.0
    );
    println!(
        "LFP unique verdicts: {lfp_unique}, of which {:.1}% match ground truth",
        correct as f64 * 100.0 / lfp_unique.max(1) as f64
    );
    println!("total wall time: {:.1}s", started.elapsed().as_secs_f64());
}
