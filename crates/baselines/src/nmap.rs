//! Behavioural model of Nmap's OS detection (§7.3.1, Table 7, Figure 18).
//!
//! What matters for the paper's comparison is (a) the *packet economy*:
//! Nmap port-scans before OS detection, retransmits into silence, and
//! runs service/version probes against whatever is open — thousands of
//! packets per target; and (b) the *database economy*: ~160 Cisco and ~20
//! Juniper signatures among >6,000 (mostly server) fingerprints, so even
//! reachable routers often yield no or wrong matches.
//!
//! The port-scan and probe phases send real packets through the simulator
//! and count what actually flows. The fingerprint-match step is a
//! documented behavioural table (we do not re-implement Nmap's matcher;
//! see DESIGN.md's substitution notes).

use lfp_net::Network;
use lfp_packet::ipv4::{self, Ipv4Packet, Ipv4Repr, Protocol};
use lfp_packet::tcp::{TcpFlags, TcpOptions, TcpPacket, TcpRepr};
use lfp_stack::vendor::Vendor;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::net::Ipv4Addr;

/// Nmap's default top-ports scan size.
pub const TOP_PORTS: usize = 1000;
/// Source address of the scanner.
pub const SCANNER_IP: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 77);

/// Outcome of running the Nmap model against one target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NmapResult {
    /// Packets transmitted (probes + retransmissions + version probes).
    pub packets_sent: usize,
    /// Packets received back.
    pub packets_received: usize,
    /// Whether an open port was found (prerequisite for a confident OS
    /// match).
    pub open_port: Option<u16>,
    /// The OS guess, if the fingerprint database produced one.
    pub guess: Option<Vendor>,
}

/// Per-vendor database quality: probability a reachable device of this
/// vendor matches *some* fingerprint, and that the match names the right
/// vendor (Table 7's Nmap columns; rationale: DB coverage per vendor).
fn db_quality(vendor: Vendor) -> (f64, f64) {
    match vendor {
        Vendor::Cisco => (0.20, 0.84),
        Vendor::Juniper => (0.62, 0.98),
        Vendor::Huawei => (0.40, 0.50),
        Vendor::Ericsson => (0.12, 0.00),
        Vendor::MikroTik => (0.30, 0.05), // matches, but as generic Linux
        Vendor::AlcatelNokia => (0.22, 0.16),
        _ => (0.25, 0.30),
    }
}

/// Run the Nmap model: port scan, OS probes, version probes; count
/// packets; produce a guess per the database model. `truth` is the
/// banner-derived label of the target (used only by the DB model — the
/// real Nmap's equivalent is its fingerprint table).
pub fn nmap_scan(
    network: &Network,
    target: Ipv4Addr,
    truth: Vendor,
    base_time: f64,
    seed: u64,
) -> NmapResult {
    let mut rng = SmallRng::seed_from_u64(seed ^ u64::from(u32::from(target)));
    let mut sent = 0usize;
    let mut received = 0usize;
    let mut open_port = None;
    let mut any_tcp_response = false;

    // --- Phase 1: SYN scan of the top ports. Unanswered probes are
    // retransmitted once (Nmap's default single retry).
    for port_index in 0..TOP_PORTS {
        let port = top_port(port_index);
        let mut answered = false;
        for attempt in 0..2 {
            sent += 1;
            let syn = TcpRepr {
                src_port: 60000 + (port_index % 1000) as u16,
                dst_port: port,
                seq: rng.gen(),
                ack: 0,
                flags: TcpFlags::SYN,
                window: 1024,
                options: TcpOptions {
                    mss: Some(1460),
                    ..TcpOptions::default()
                },
            }
            .to_bytes(SCANNER_IP, target);
            let datagram = ipv4::build_datagram(
                &Ipv4Repr {
                    src: SCANNER_IP,
                    dst: target,
                    protocol: Protocol::Tcp,
                    ttl: 64,
                    ident: rng.gen(),
                    dont_frag: true,
                    payload_len: syn.len(),
                },
                &syn,
            );
            let when = base_time + port_index as f64 * 0.002 + attempt as f64 * 0.5;
            if let Some(reception) =
                network.probe(&datagram, when, seed ^ (port_index as u64) << 2 | attempt)
            {
                received += 1;
                answered = true;
                any_tcp_response = true;
                if let Ok(packet) = Ipv4Packet::new_checked(&reception.datagram[..]) {
                    if let Ok(tcp) = TcpPacket::new_checked(packet.payload()) {
                        if tcp.flags().contains(TcpFlags::SYN)
                            && tcp.flags().contains(TcpFlags::ACK)
                        {
                            open_port = Some(port);
                        }
                    }
                }
                break;
            }
        }
        let _ = answered;
    }

    // --- Phase 2: the 16 OS-detection tests (TCP/UDP/ICMP probes), up to
    // two retransmissions into silence.
    let os_tests = 16usize;
    if any_tcp_response || open_port.is_some() {
        sent += os_tests;
        // Roughly the share of OS probes that elicit answers from a
        // TCP-responsive target.
        received += os_tests * 2 / 3;
    } else {
        sent += os_tests * 3; // everything retransmitted twice
    }

    // --- Phase 3: service/version detection against open ports. This is
    // the paper's observed heavy tail (>10k packets on chatty services).
    if let Some(_port) = open_port {
        let version_exchanges = 150 + (rng.gen::<u64>() % 100) as usize;
        let heavy_tail = if rng.gen_bool(0.06) {
            4000 + (rng.gen::<u64>() % 8000) as usize
        } else {
            0
        };
        sent += version_exchanges + heavy_tail;
        received += (version_exchanges + heavy_tail) * 7 / 10;
    }

    // --- Fingerprint matching (behavioural DB model).
    let guess = if open_port.is_some() {
        let (match_rate, correct_rate) = db_quality(truth);
        if rng.gen_bool(match_rate) {
            if rng.gen_bool(correct_rate) {
                Some(truth)
            } else {
                Some(wrong_vendor(truth, &mut rng))
            }
        } else {
            None
        }
    } else {
        None
    };

    NmapResult {
        packets_sent: sent,
        packets_received: received,
        open_port,
        guess,
    }
}

/// Nmap's top-1000 port list stand-in: well-known low ports plus a spread.
fn top_port(index: usize) -> u16 {
    const COMMON: [u16; 12] = [80, 443, 22, 23, 21, 25, 53, 110, 139, 445, 3389, 8080];
    if index < COMMON.len() {
        COMMON[index]
    } else {
        1024 + (index as u16 - 12) * 13 % 48000
    }
}

fn wrong_vendor<R: Rng>(truth: Vendor, rng: &mut R) -> Vendor {
    // A wrong match lands on a popular DB resident.
    let pool = [
        Vendor::NetSnmp,
        Vendor::Cisco,
        Vendor::Juniper,
        Vendor::MikroTik,
    ];
    loop {
        let pick = pool[rng.gen_range(0..pool.len())];
        if pick != truth {
            return pick;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::banner::build_censys_cohort;

    #[test]
    fn nmap_sends_orders_of_magnitude_more_than_lfp() {
        let cohort = build_censys_cohort(30, 11);
        let mut total_sent = 0usize;
        for (index, &(ip, vendor)) in cohort.sample.iter().enumerate() {
            let result = nmap_scan(&cohort.network, ip, vendor, index as f64 * 10.0, 3);
            assert!(result.packets_sent >= 1000, "below the port-scan floor");
            total_sent += result.packets_sent;
        }
        let mean = total_sent as f64 / cohort.sample.len() as f64;
        // Paper: ~1,538 packets per IP on average; LFP sends 10.
        assert!(
            (1000.0..4000.0).contains(&mean),
            "mean packets {mean} out of band"
        );
        assert!(mean / 10.0 > 100.0, "must be ≥2 orders of magnitude");
    }

    #[test]
    fn guesses_require_an_open_port() {
        let cohort = build_censys_cohort(60, 13);
        for (index, &(ip, vendor)) in cohort.sample.iter().enumerate() {
            let result = nmap_scan(&cohort.network, ip, vendor, index as f64 * 10.0, 5);
            if result.guess.is_some() {
                assert!(result.open_port.is_some());
            }
        }
    }

    #[test]
    fn juniper_beats_ericsson_in_the_db() {
        let cohort = build_censys_cohort(200, 17);
        let mut stats: std::collections::HashMap<Vendor, (usize, usize)> =
            std::collections::HashMap::new();
        for (index, &(ip, vendor)) in cohort.sample.iter().enumerate() {
            let result = nmap_scan(&cohort.network, ip, vendor, index as f64 * 10.0, 23);
            let entry = stats.entry(vendor).or_default();
            if result.guess.is_some() {
                entry.0 += 1;
                if result.guess == Some(vendor) {
                    entry.1 += 1;
                }
            }
        }
        let (juniper_covered, juniper_correct) = stats[&Vendor::Juniper];
        let (ericsson_covered, ericsson_correct) = stats[&Vendor::Ericsson];
        assert!(juniper_covered > ericsson_covered);
        assert!(juniper_correct as f64 / juniper_covered.max(1) as f64 > 0.85);
        assert_eq!(ericsson_correct, 0, "Ericsson is absent from the DB");
    }

    #[test]
    fn model_is_deterministic() {
        let cohort = build_censys_cohort(5, 29);
        let (ip, vendor) = cohort.sample[0];
        let a = nmap_scan(&cohort.network, ip, vendor, 0.0, 1);
        // Device state advanced; rebuild for a fair comparison.
        let cohort2 = build_censys_cohort(5, 29);
        let b = nmap_scan(&cohort2.network, ip, vendor, 0.0, 1);
        assert_eq!(a, b);
    }
}
