//! Hershel-style single-packet OS fingerprinting (§7.3.2).
//!
//! Hershel sends one SYN and classifies from the SYN-ACK's features
//! (window, TTL, MSS, option layout, RST/RTO behaviour) against a
//! database built from *server* operating systems. Its two failure modes
//! on routers are structural and both reproduced here: no open TCP port →
//! no coverage; no router entries in the DB → Linux-derived boxes match
//! "Linux", everything else matches nothing or a server OS.

use lfp_net::Network;
use lfp_packet::ipv4::{self, Ipv4Packet, Ipv4Repr, Protocol};
use lfp_packet::tcp::{TcpFlags, TcpOptions, TcpPacket, TcpRepr};
use lfp_stack::vendor::Vendor;
use std::net::Ipv4Addr;

/// Scanner source address.
pub const SCANNER_IP: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 78);

/// An OS label from Hershel's (server-centric) database.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HershelOs {
    /// Generic Linux (the match MikroTik and friends land on).
    Linux,
    /// FreeBSD.
    FreeBsd,
    /// Windows Server.
    Windows,
    /// No database entry fits.
    Unknown,
}

/// Result of a Hershel measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HershelResult {
    /// Whether a SYN-ACK was observed at all (coverage).
    pub covered: bool,
    /// The OS classification.
    pub os: HershelOs,
    /// Vendor-level inference (Hershel's DB almost never supports one).
    pub vendor_guess: Option<Vendor>,
}

/// Probe one target: a single SYN to the candidate service port.
pub fn hershel_fingerprint(
    network: &Network,
    target: Ipv4Addr,
    service_port: u16,
    base_time: f64,
    salt: u64,
) -> HershelResult {
    let syn = TcpRepr {
        src_port: 61001,
        dst_port: service_port,
        seq: 0x4845_5253,
        ack: 0,
        flags: TcpFlags::SYN,
        window: 65_535,
        options: TcpOptions {
            mss: Some(1460),
            sack_permitted: true,
            ..TcpOptions::default()
        },
    }
    .to_bytes(SCANNER_IP, target);
    let datagram = ipv4::build_datagram(
        &Ipv4Repr {
            src: SCANNER_IP,
            dst: target,
            protocol: Protocol::Tcp,
            ttl: 64,
            ident: 0x4853,
            dont_frag: true,
            payload_len: syn.len(),
        },
        &syn,
    );
    let Some(reception) = network.probe(&datagram, base_time, salt ^ 0x4845) else {
        return HershelResult {
            covered: false,
            os: HershelOs::Unknown,
            vendor_guess: None,
        };
    };
    let Ok(packet) = Ipv4Packet::new_checked(&reception.datagram[..]) else {
        return HershelResult {
            covered: false,
            os: HershelOs::Unknown,
            vendor_guess: None,
        };
    };
    let Ok(tcp) = TcpPacket::new_checked(packet.payload()) else {
        return HershelResult {
            covered: false,
            os: HershelOs::Unknown,
            vendor_guess: None,
        };
    };
    if !(tcp.flags().contains(TcpFlags::SYN) && tcp.flags().contains(TcpFlags::ACK)) {
        // An RST is a response, but Hershel needs the SYN-ACK feature set.
        return HershelResult {
            covered: false,
            os: HershelOs::Unknown,
            vendor_guess: None,
        };
    }

    let options = TcpOptions::parse(tcp.options()).unwrap_or_default();
    let os = classify_syn_ack(tcp.window(), packet.ttl(), &options);
    HershelResult {
        covered: true,
        os,
        // The DB has no router vendor entries; vendor inference is only
        // possible when an OS implies one — which none of these do.
        vendor_guess: None,
    }
}

/// The database lookup: server-OS heuristics over SYN-ACK features.
pub fn classify_syn_ack(window: u16, observed_ttl: u8, options: &TcpOptions) -> HershelOs {
    let linuxish = options.window_scale.is_some()
        && options.sack_permitted
        && options.timestamps.is_some()
        && observed_ttl <= 64;
    if linuxish {
        return HershelOs::Linux;
    }
    if options.timestamps.is_some() && window >= 16_000 && observed_ttl <= 64 {
        return HershelOs::FreeBsd;
    }
    if window >= 8_000 && observed_ttl > 64 && observed_ttl <= 128 {
        return HershelOs::Windows;
    }
    HershelOs::Unknown
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::banner::build_censys_cohort;
    use std::collections::HashMap;

    #[test]
    fn classification_matches_server_heuristics() {
        let linux_options = TcpOptions {
            mss: Some(1460),
            window_scale: Some(7),
            sack_permitted: true,
            timestamps: Some((1, 0)),
        };
        assert_eq!(
            classify_syn_ack(29_200, 57, &linux_options),
            HershelOs::Linux
        );
        let bare = TcpOptions {
            mss: Some(536),
            ..TcpOptions::default()
        };
        assert_eq!(classify_syn_ack(4_128, 250, &bare), HershelOs::Unknown);
    }

    #[test]
    fn coverage_requires_open_service_and_accuracy_is_nil() {
        let cohort = build_censys_cohort(80, 31);
        let mut covered = 0usize;
        let mut vendor_correct = 0usize;
        let mut os_by_vendor: HashMap<Vendor, Vec<HershelOs>> = HashMap::new();
        for (index, &(ip, vendor)) in cohort.sample.iter().enumerate() {
            // Hershel tries the common management ports.
            let mut best = HershelResult {
                covered: false,
                os: HershelOs::Unknown,
                vendor_guess: None,
            };
            for (pindex, port) in [22u16, 23, 80].into_iter().enumerate() {
                let result = hershel_fingerprint(
                    &cohort.network,
                    ip,
                    port,
                    index as f64 + pindex as f64 * 0.2,
                    41 + pindex as u64,
                );
                if result.covered {
                    best = result;
                    break;
                }
            }
            if best.covered {
                covered += 1;
                os_by_vendor.entry(vendor).or_default().push(best.os);
                if best.vendor_guess == Some(vendor) {
                    vendor_correct += 1;
                }
            }
        }
        let coverage = covered as f64 / cohort.sample.len() as f64;
        assert!(
            (0.25..0.75).contains(&coverage),
            "coverage {coverage} should sit near the paper's ~50%"
        );
        // <1% vendor accuracy (§7.3.2).
        assert!(vendor_correct <= covered / 100 + 1);
        // MikroTik lands on generic Linux.
        let mikrotik = os_by_vendor
            .get(&Vendor::MikroTik)
            .cloned()
            .unwrap_or_default();
        assert!(
            mikrotik
                .iter()
                .filter(|&&os| os == HershelOs::Linux)
                .count()
                * 2
                > mikrotik.len(),
            "MikroTik should mostly classify as Linux: {mikrotik:?}"
        );
    }
}
