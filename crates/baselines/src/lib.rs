//! # lfp-baselines — the fingerprinters LFP is compared against
//!
//! * [`nmap`] — behavioural model of Nmap OS detection: real port-scan
//!   packet economy (Figure 18) plus a documented database-quality table
//!   (Table 7's Nmap columns),
//! * [`hershel`] — single-SYN-ACK fingerprinting against a server-OS
//!   database (coverage ≈ open services, vendor accuracy ≈ 0),
//! * [`ittl`] — Vanaubel-style initial-TTL-tuple classification, including
//!   the Huawei-as-Cisco collision motivating LFP,
//! * [`banner`] — the Censys-like banner-labelled comparison cohort
//!   (§7.3's 500-IPs-per-vendor sample) built as its own network segment.
//!
//! The SNMPv3-only baseline needs no module of its own: it is the label
//! column of any `lfp_core::pipeline::DatasetScan`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod banner;
pub mod hershel;
pub mod ittl;
pub mod nmap;

pub use banner::{build_censys_cohort, vendor_from_banner, CensysCohort};
pub use hershel::{hershel_fingerprint, HershelOs, HershelResult};
pub use ittl::{classify_tuple, tuple_accuracy, tuple_of};
pub use nmap::{nmap_scan, NmapResult};
