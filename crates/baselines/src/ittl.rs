//! TTL-tuple fingerprinting (Vanaubel et al., §2 "TTL-based
//! Fingerprinting").
//!
//! The related-work baseline: classify a router from nothing but the
//! inferred initial TTLs of its ICMP/TCP/UDP responses. The value range is
//! tiny, so distinct vendors collide — most famously Huawei sharing
//! Cisco's `(255, 64, 255)` tuple, which is exactly why LFP adds the IPID
//! and size features. The ablation harness (A2) quantifies that gap.

use lfp_core::features::{FeatureVector, InitialTtl};
use lfp_stack::vendor::Vendor;

/// A (ICMP, TCP, UDP) initial-TTL tuple.
pub type TtlTuple = (InitialTtl, InitialTtl, InitialTtl);

/// Extract the tuple from a (full) feature vector.
pub fn tuple_of(vector: &FeatureVector) -> Option<TtlTuple> {
    Some((vector.icmp_ittl?, vector.tcp_ittl?, vector.udp_ittl?))
}

/// The published tuple → router class table (coarse by construction).
pub fn classify_tuple(tuple: TtlTuple) -> Option<Vendor> {
    use InitialTtl::{T255, T64};
    match tuple {
        // The famous collision: Huawei routers share this tuple but the
        // table attributes it to Cisco (the majority class).
        (T255, T64, T255) => Some(Vendor::Cisco),
        (T64, T64, T255) => Some(Vendor::Juniper),
        (T255, T255, T255) => Some(Vendor::AlcatelNokia),
        (T64, T64, T64) => Some(Vendor::MikroTik),
        _ => None,
    }
}

/// Accuracy of the tuple technique over labelled vectors: the fraction of
/// (classified) samples whose tuple class matches the true vendor.
pub fn tuple_accuracy(labeled: &[(FeatureVector, Vendor)]) -> TupleAccuracy {
    let mut classified = 0usize;
    let mut correct = 0usize;
    let mut huawei_as_cisco = 0usize;
    for (vector, truth) in labeled {
        let Some(tuple) = tuple_of(vector) else {
            continue;
        };
        let Some(guess) = classify_tuple(tuple) else {
            continue;
        };
        classified += 1;
        if guess == *truth {
            correct += 1;
        } else if *truth == Vendor::Huawei && guess == Vendor::Cisco {
            huawei_as_cisco += 1;
        }
    }
    TupleAccuracy {
        classified,
        correct,
        huawei_as_cisco,
    }
}

/// Outcome counters for the tuple technique.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TupleAccuracy {
    /// Samples the table could classify at all.
    pub classified: usize,
    /// Correct vendor attributions.
    pub correct: usize,
    /// Huawei routers misattributed to Cisco (the §2 failure mode).
    pub huawei_as_cisco: usize,
}

impl TupleAccuracy {
    /// Fraction correct among classified.
    pub fn accuracy(&self) -> f64 {
        if self.classified == 0 {
            0.0
        } else {
            self.correct as f64 / self.classified as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfp_core::features::IpidClass;

    fn vector(icmp: InitialTtl, tcp: InitialTtl, udp: InitialTtl) -> FeatureVector {
        FeatureVector {
            icmp_ipid_echo: Some(false),
            icmp_ipid: Some(IpidClass::Incremental),
            tcp_ipid: Some(IpidClass::Incremental),
            udp_ipid: Some(IpidClass::Incremental),
            shared_all: Some(false),
            shared_tcp_icmp: Some(false),
            shared_udp_icmp: Some(false),
            shared_tcp_udp: Some(false),
            udp_ittl: Some(udp),
            icmp_ittl: Some(icmp),
            tcp_ittl: Some(tcp),
            icmp_resp_size: Some(84),
            tcp_resp_size: Some(40),
            udp_resp_size: Some(56),
            tcp_syn_seq_zero: Some(true),
        }
    }

    #[test]
    fn tuples_classify_known_vendors() {
        use InitialTtl::{T255, T64};
        assert_eq!(classify_tuple((T255, T64, T255)), Some(Vendor::Cisco));
        assert_eq!(classify_tuple((T64, T64, T255)), Some(Vendor::Juniper));
        assert_eq!(classify_tuple((T64, T64, T64)), Some(Vendor::MikroTik));
        assert_eq!(
            classify_tuple((InitialTtl::T128, T64, T64)),
            None,
            "tuples outside the table stay unclassified"
        );
    }

    #[test]
    fn huawei_collides_with_cisco() {
        use InitialTtl::{T255, T64};
        let labeled = vec![
            (vector(T255, T64, T255), Vendor::Cisco),
            (vector(T255, T64, T255), Vendor::Cisco),
            (vector(T255, T64, T255), Vendor::Huawei),
            (vector(T64, T64, T255), Vendor::Juniper),
        ];
        let result = tuple_accuracy(&labeled);
        assert_eq!(result.classified, 4);
        assert_eq!(result.correct, 3);
        assert_eq!(result.huawei_as_cisco, 1);
        assert!((result.accuracy() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn partial_vectors_are_skipped() {
        let mut partial = vector(InitialTtl::T64, InitialTtl::T64, InitialTtl::T64);
        partial.tcp_ittl = None;
        assert_eq!(tuple_of(&partial), None);
        let result = tuple_accuracy(&[(partial, Vendor::MikroTik)]);
        assert_eq!(result.classified, 0);
    }
}
