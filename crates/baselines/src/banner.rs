//! Banner-based ground truth: the Censys-like comparison cohort (§7.3).
//!
//! The paper draws 500 addresses per top-6 vendor from Censys — addresses
//! *known to reveal the vendor through service banners*. That population
//! is edge-flavoured: heavier service exposure, different filtering
//! posture, and (for some vendors) firmware mixes that differ from the
//! core-router population. We synthesise an equivalent cohort as a
//! standalone network segment: per-vendor device sets with documented
//! posture overrides, labelled by *parsing their banner strings* (never by
//! reading generator internals).

use lfp_net::network::{DeviceId, DirectOracle};
use lfp_net::Network;
use lfp_stack::catalog::Catalog;
use lfp_stack::device::RouterDevice;
use lfp_stack::profile::{ExposurePolicy, StackProfile};
use lfp_stack::vendor::Vendor;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// The six vendors of the paper's Table 7 comparison.
pub const COMPARISON_VENDORS: [Vendor; 6] = [
    Vendor::Cisco,
    Vendor::Juniper,
    Vendor::Huawei,
    Vendor::Ericsson,
    Vendor::MikroTik,
    Vendor::AlcatelNokia,
];

/// Per-vendor cohort tuning: how the banner-exposing edge population
/// differs from core routers. Values documented in DESIGN.md against the
/// Table 7 shape.
#[derive(Debug, Clone, Copy)]
pub struct CohortTuning {
    /// Probability a cohort device answers LFP probes at all
    /// (all-or-nothing posture; drives the "LFP coverage" column).
    pub lfp_responsive: f64,
    /// Probability the management service is reachable at scan time
    /// (drives Hershel coverage and bounds Nmap).
    pub service_reachable: f64,
    /// Probability the device runs an ambiguous edge firmware whose
    /// vector collides across vendors (drives the "LFP accuracy" column).
    pub edge_firmware_bias: f64,
}

/// Tuning table reproducing the Table 7 population shapes.
pub fn tuning_for(vendor: Vendor) -> CohortTuning {
    match vendor {
        Vendor::Cisco => CohortTuning {
            lfp_responsive: 0.40,
            service_reachable: 0.50,
            edge_firmware_bias: 0.03,
        },
        Vendor::Juniper => CohortTuning {
            lfp_responsive: 0.81,
            service_reachable: 0.50,
            edge_firmware_bias: 0.01,
        },
        Vendor::Huawei => CohortTuning {
            lfp_responsive: 0.49,
            service_reachable: 0.50,
            edge_firmware_bias: 0.42,
        },
        Vendor::Ericsson => CohortTuning {
            lfp_responsive: 0.93,
            service_reachable: 0.45,
            edge_firmware_bias: 0.20,
        },
        Vendor::MikroTik => CohortTuning {
            lfp_responsive: 0.83,
            service_reachable: 0.55,
            edge_firmware_bias: 0.88,
        },
        Vendor::AlcatelNokia => CohortTuning {
            lfp_responsive: 0.38,
            service_reachable: 0.50,
            edge_firmware_bias: 0.50,
        },
        _ => CohortTuning {
            lfp_responsive: 0.6,
            service_reachable: 0.5,
            edge_firmware_bias: 0.2,
        },
    }
}

/// A banner-labelled comparison cohort: its own network segment plus the
/// labelled sample.
pub struct CensysCohort {
    /// The standalone network the tools probe.
    pub network: Network,
    /// (address, banner-derived vendor) pairs — the ground truth sample.
    pub sample: Vec<(Ipv4Addr, Vendor)>,
}

/// Parse a management banner into a vendor (the labelling Censys does).
pub fn vendor_from_banner(banner: &str) -> Option<Vendor> {
    let lower = banner.to_ascii_lowercase();
    let table: [(&str, Vendor); 12] = [
        ("cisco", Vendor::Cisco),
        ("junos", Vendor::Juniper),
        ("huawei", Vendor::Huawei),
        ("rosssh", Vendor::MikroTik),
        ("comware", Vendor::H3C),
        ("timos", Vendor::AlcatelNokia),
        ("seos", Vendor::Ericsson),
        ("romsshell", Vendor::Brocade),
        ("rgos", Vendor::Ruijie),
        ("debian", Vendor::NetSnmp),
        ("zte", Vendor::Zte),
        ("arista", Vendor::Arista),
    ];
    table
        .into_iter()
        .find(|(needle, _)| lower.contains(needle))
        .map(|(_, vendor)| vendor)
}

/// Build the comparison cohort: `per_vendor` devices per Table 7 vendor.
pub fn build_censys_cohort(per_vendor: usize, seed: u64) -> CensysCohort {
    let catalog = Catalog::standard();
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xce2515);
    let mut devices = Vec::new();
    let mut interfaces = HashMap::new();
    let mut sample = Vec::new();
    let mut next_ip = u32::from(Ipv4Addr::new(100, 64, 0, 1));

    for vendor in COMPARISON_VENDORS {
        let tuning = tuning_for(vendor);
        for index in 0..per_vendor {
            let base = if rng.gen_bool(tuning.edge_firmware_bias) {
                edge_firmware(vendor)
            } else {
                (*catalog.sample(vendor, &mut rng)).clone()
            };
            let profile = StackProfile {
                exposure: ExposurePolicy {
                    posture: [
                        1.0 - tuning.lfp_responsive,
                        0.0,
                        0.0,
                        0.0,
                        0.0,
                        0.0,
                        0.0,
                        tuning.lfp_responsive,
                    ],
                    snmp: 0.0, // the comparison runs without SNMP labels
                    open_service: tuning.service_reachable,
                },
                ..base
            };
            let banner_vendor =
                vendor_from_banner(profile.banner).expect("every cohort banner parses");
            debug_assert_eq!(banner_vendor, vendor);

            let device_seed = seed ^ ((vendor.pen() as u64) << 20) ^ index as u64;
            let device = RouterDevice::new(Arc::new(profile), device_seed);
            let ip = Ipv4Addr::from(next_ip);
            next_ip += 7; // spread addresses a little
            interfaces.insert(ip, DeviceId(devices.len() as u32));
            devices.push(device);
            sample.push((ip, banner_vendor));
        }
    }

    let mut network = Network::new(devices, interfaces, Box::new(DirectOracle), seed ^ 0xc0);
    network.set_base_loss(0.005);
    CensysCohort { network, sample }
}

/// The ambiguous edge firmware a vendor's banner-exposing boxes may run:
/// a profile whose feature vector collides with other vendors' (keeping
/// the vendor's banner and engine prefix).
fn edge_firmware(vendor: Vendor) -> StackProfile {
    let catalog = Catalog::standard();
    // Reuse the catalogued colliding variants: Linux-generation vectors
    // for MikroTik, Comware lineage for Huawei, embedded stacks for the
    // rest. These exist in the catalog precisely because they collide.
    let pick = |v: Vendor, family: &str| -> StackProfile {
        catalog
            .variants(v)
            .iter()
            .find(|variant| variant.profile.family == family)
            .map(|variant| (*variant.profile).clone())
            .unwrap_or_else(|| lfp_stack::catalog::default_variant(v))
    };
    let mut profile = match vendor {
        Vendor::MikroTik => pick(Vendor::MikroTik, "RouterOS 6.44"),
        Vendor::Huawei => pick(Vendor::Huawei, "VRP comware-a"),
        Vendor::Cisco => pick(Vendor::Cisco, "IOS 11"),
        Vendor::Ericsson => pick(Vendor::Zte, "ZXROS c"),
        Vendor::AlcatelNokia => pick(Vendor::Teldat, "CIT c"),
        other => pick(other, ""),
    };
    // Keep the true vendor identity (banner, engine id) — only the
    // TCP/IP-stack vector is ambiguous.
    let own = lfp_stack::catalog::default_variant(vendor);
    profile.vendor = vendor;
    profile.banner = own.banner;
    profile.engine_id_prefix = own.engine_id_prefix;
    profile
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn banners_parse_to_vendors() {
        assert_eq!(
            vendor_from_banner("SSH-2.0-Cisco-1.25"),
            Some(Vendor::Cisco)
        );
        assert_eq!(
            vendor_from_banner("SSH-2.0-OpenSSH_7.5 JUNOS"),
            Some(Vendor::Juniper)
        );
        assert_eq!(vendor_from_banner("SSH-2.0-ROSSSH"), Some(Vendor::MikroTik));
        assert_eq!(vendor_from_banner("SSH-2.0-nginx"), None);
    }

    #[test]
    fn cohort_has_labelled_members_per_vendor() {
        let cohort = build_censys_cohort(40, 9);
        assert_eq!(cohort.sample.len(), 40 * COMPARISON_VENDORS.len());
        for vendor in COMPARISON_VENDORS {
            let count = cohort.sample.iter().filter(|&&(_, v)| v == vendor).count();
            assert_eq!(count, 40);
        }
    }

    #[test]
    fn cohort_responsiveness_follows_tuning() {
        let cohort = build_censys_cohort(150, 5);
        let mut responsive: HashMap<Vendor, usize> = HashMap::new();
        for &(ip, vendor) in &cohort.sample {
            let observation =
                lfp_core::probe::probe_target(&cohort.network, ip, 0.0, u64::from(u32::from(ip)));
            if observation.responsive_protocols() > 0 {
                *responsive.entry(vendor).or_default() += 1;
            }
        }
        let frac = |v: Vendor| responsive.get(&v).copied().unwrap_or(0) as f64 / 150.0;
        assert!(frac(Vendor::Ericsson) > frac(Vendor::Cisco) + 0.2);
        assert!(frac(Vendor::MikroTik) > 0.6);
        assert!(frac(Vendor::AlcatelNokia) < 0.6);
    }

    #[test]
    fn cohort_is_deterministic() {
        let a = build_censys_cohort(10, 3);
        let b = build_censys_cohort(10, 3);
        assert_eq!(a.sample, b.sample);
    }
}
