//! # lfp-net — deterministic network simulator
//!
//! The fabric connecting the prober to the simulated router population:
//!
//! * [`network`] — devices behind per-router mutexes, interface addressing,
//!   end-to-end probe delivery and routed TTL-aware forwarding with
//!   time-exceeded generation,
//! * [`traceroute`] — the TTL-limited path-discovery primitive that builds
//!   the RIPE-Atlas-style datasets,
//! * [`scanner`] — a zmap-style sharded parallel scan harness whose output
//!   is bit-reproducible regardless of thread scheduling,
//! * [`link`] — path characters (latency, jitter, loss) and smoltcp-style
//!   fault injection.
//!
//! Design note: this is a *synchronous* discrete-time simulator driven by
//! virtual timestamps rather than an async runtime. Probes are independent
//! request/response exchanges; what must be ordered is each router's view
//! of time (IPID counters advance with it), which the scanner guarantees
//! by sharding targets per device. An async executor would add scheduling
//! nondeterminism and nothing else — the smoltcp guide's synchronous
//! event-driven philosophy fits exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod link;
pub mod network;
pub mod scanner;
pub mod traceroute;

pub use link::{FaultInjector, PathCharacter};
pub use network::{DeviceId, Hop, Network, Reception, RouteOracle, RoutePath, VantageId};
pub use scanner::{scan, ScanConfig, TargetContext};
pub use traceroute::{traceroute, TracerouteOptions, TracerouteResult};
