//! Path characteristics and fault injection.
//!
//! Every (vantage, target) pair in the simulated Internet has a stable
//! latency character — routers do not move — plus per-packet jitter and
//! loss. Fault injection follows the smoltcp example convention: explicit
//! drop/duplicate knobs that tests can crank up to verify the measurement
//! pipeline's robustness (probe loss is what turns full signatures into
//! partial ones, so this is a first-class behaviour, not an edge case).

use rand::Rng;

/// Stable character of a network path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathCharacter {
    /// One-way base latency in seconds.
    pub base_latency: f64,
    /// Uniform jitter bound in seconds (each traversal adds U(0, jitter)).
    pub jitter: f64,
    /// Per-traversal loss probability.
    pub loss: f64,
}

impl PathCharacter {
    /// A LAN-ish path for unit tests.
    pub fn ideal() -> Self {
        PathCharacter {
            base_latency: 0.000_1,
            jitter: 0.0,
            loss: 0.0,
        }
    }

    /// Sample a one-way traversal: `None` means the packet was lost.
    pub fn traverse<R: Rng>(&self, rng: &mut R) -> Option<f64> {
        if self.loss > 0.0 && rng.gen_bool(self.loss.clamp(0.0, 1.0)) {
            return None;
        }
        let jitter = if self.jitter > 0.0 {
            rng.gen::<f64>() * self.jitter
        } else {
            0.0
        };
        Some(self.base_latency + jitter)
    }
}

/// Derive a deterministic per-target path character from a seed and the
/// target address: distance (latency) spreads over a realistic WAN range.
pub fn path_character_for(seed: u64, target: u32, loss: f64) -> PathCharacter {
    let h = splitmix64(seed ^ u64::from(target).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    // 5..=150 ms one-way base latency, 0..=4 ms jitter.
    let base = 0.005 + (h % 1000) as f64 / 1000.0 * 0.145;
    let jitter = 0.000_5 + ((h >> 24) % 100) as f64 / 100.0 * 0.003_5;
    PathCharacter {
        base_latency: base,
        jitter,
        loss,
    }
}

/// SplitMix64: cheap, well-distributed hash for deterministic derivation.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Adverse-condition injection, smoltcp-style.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultInjector {
    /// Additional probability of dropping any packet.
    pub drop_chance: f64,
    /// Probability a response is duplicated.
    pub duplicate_chance: f64,
}

impl FaultInjector {
    /// No injected faults.
    pub fn none() -> Self {
        FaultInjector::default()
    }

    /// Should this packet be dropped?
    pub fn drops<R: Rng>(&self, rng: &mut R) -> bool {
        self.drop_chance > 0.0 && rng.gen_bool(self.drop_chance.clamp(0.0, 1.0))
    }

    /// Should this response be duplicated?
    pub fn duplicates<R: Rng>(&self, rng: &mut R) -> bool {
        self.duplicate_chance > 0.0 && rng.gen_bool(self.duplicate_chance.clamp(0.0, 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn ideal_path_never_loses() {
        let mut rng = SmallRng::seed_from_u64(1);
        let path = PathCharacter::ideal();
        for _ in 0..100 {
            assert!(path.traverse(&mut rng).is_some());
        }
    }

    #[test]
    fn lossy_path_loses_about_right() {
        let mut rng = SmallRng::seed_from_u64(2);
        let path = PathCharacter {
            base_latency: 0.01,
            jitter: 0.0,
            loss: 0.3,
        };
        let lost = (0..10_000)
            .filter(|_| path.traverse(&mut rng).is_none())
            .count();
        assert!((2_700..3_300).contains(&lost), "lost {lost}");
    }

    #[test]
    fn jitter_bounds_are_respected() {
        let mut rng = SmallRng::seed_from_u64(3);
        let path = PathCharacter {
            base_latency: 0.01,
            jitter: 0.002,
            loss: 0.0,
        };
        for _ in 0..1000 {
            let delay = path.traverse(&mut rng).unwrap();
            assert!((0.01..0.012).contains(&delay));
        }
    }

    #[test]
    fn derived_characters_are_deterministic_and_spread() {
        let a = path_character_for(42, 0x0a00_0001, 0.01);
        let b = path_character_for(42, 0x0a00_0001, 0.01);
        assert_eq!(a, b);
        let c = path_character_for(42, 0x0a00_0002, 0.01);
        assert_ne!(a.base_latency, c.base_latency);
        // All latencies within the documented envelope.
        for ip in 0..2000u32 {
            let p = path_character_for(7, ip, 0.0);
            assert!((0.005..=0.151).contains(&p.base_latency));
            assert!((0.000_5..=0.004_1).contains(&p.jitter));
        }
    }

    #[test]
    fn splitmix_is_stable() {
        // Pin a vector so seeds never silently change across refactors.
        assert_eq!(splitmix64(0), 16294208416658607535);
        assert_eq!(splitmix64(1), 10451216379200822465);
    }

    #[test]
    fn fault_injector_none_is_inert() {
        let mut rng = SmallRng::seed_from_u64(4);
        let faults = FaultInjector::none();
        for _ in 0..100 {
            assert!(!faults.drops(&mut rng));
            assert!(!faults.duplicates(&mut rng));
        }
    }
}
