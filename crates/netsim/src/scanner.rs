//! Parallel scanning harness (zmap-style sharded workers).
//!
//! Internet-wide probing is embarrassingly parallel *except* that aliases
//! of the same router share IPID counters, so two workers must never probe
//! the same device concurrently — both for correctness under `Mutex` and
//! for bit-reproducibility of counter values. The scanner therefore shards
//! work by a caller-provided key (the device id, or the target address
//! when the device is unknown): equal keys land in the same shard and are
//! processed in submission order, which makes entire scans deterministic
//! regardless of thread scheduling.

use std::num::NonZeroUsize;

/// Scan configuration.
#[derive(Debug, Clone, Copy)]
pub struct ScanConfig {
    /// Number of worker shards (threads).
    pub shards: NonZeroUsize,
    /// Virtual inter-target pacing in seconds — the scan rate knob. Each
    /// target's probe schedule starts at `index * pacing`.
    pub pacing: f64,
}

impl Default for ScanConfig {
    fn default() -> Self {
        ScanConfig {
            // One shard per available core, like `World::build`; the shard
            // count never changes results (see the determinism contract),
            // only how far the scan spreads.
            shards: std::thread::available_parallelism().unwrap_or(NonZeroUsize::new(4).unwrap()),
            pacing: 0.001,
        }
    }
}

/// Context handed to the per-target worker closure.
#[derive(Debug, Clone, Copy)]
pub struct TargetContext {
    /// Global index of the target in the submitted list.
    pub index: usize,
    /// Virtual time at which this target's probe schedule starts.
    pub start_time: f64,
}

/// Run `worker` over every item, sharded by `shard_key`, and return results
/// in the original submission order.
///
/// Determinism contract: items with equal keys are processed sequentially
/// in submission order on one thread; `worker` receives a stable
/// [`TargetContext`], so any per-target randomness derived from
/// `ctx.index` is reproducible.
pub fn scan<T, R, K, W>(items: &[T], config: ScanConfig, shard_key: K, worker: W) -> Vec<R>
where
    T: Sync,
    R: Send,
    K: Fn(&T) -> u64 + Sync,
    W: Fn(&T, TargetContext) -> R + Sync,
{
    let shards = config.shards.get();
    if shards <= 1 || items.len() < 2 {
        return items
            .iter()
            .enumerate()
            .map(|(index, item)| {
                worker(
                    item,
                    TargetContext {
                        index,
                        start_time: index as f64 * config.pacing,
                    },
                )
            })
            .collect();
    }

    // Pre-partition indices so each shard walks its slice in order.
    let mut partitions: Vec<Vec<usize>> = vec![Vec::new(); shards];
    for (index, item) in items.iter().enumerate() {
        let shard = (shard_key(item) % shards as u64) as usize;
        partitions[shard].push(index);
    }

    let mut results: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    // Shards can exceed distinct keys (e.g. a per-core default against a
    // handful of devices); empty partitions get no thread.
    std::thread::scope(|scope| {
        let handles: Vec<_> = partitions
            .iter()
            .filter(|partition| !partition.is_empty())
            .map(|partition| {
                let worker = &worker;
                scope.spawn(move || {
                    partition
                        .iter()
                        .map(|&index| {
                            let result = worker(
                                &items[index],
                                TargetContext {
                                    index,
                                    start_time: index as f64 * config.pacing,
                                },
                            );
                            (index, result)
                        })
                        .collect::<Vec<(usize, R)>>()
                })
            })
            .collect();
        for handle in handles {
            for (index, result) in handle.join().expect("scan worker panicked") {
                results[index] = Some(result);
            }
        }
    });
    results
        .into_iter()
        .map(|slot| slot.expect("every target produces a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_preserve_submission_order() {
        let items: Vec<u32> = (0..1000).collect();
        let results = scan(
            &items,
            ScanConfig::default(),
            |&item| u64::from(item % 7),
            |&item, ctx| (item, ctx.index),
        );
        for (index, &(item, ctx_index)) in results.iter().enumerate() {
            assert_eq!(item as usize, index);
            assert_eq!(ctx_index, index);
        }
    }

    #[test]
    fn equal_keys_are_processed_in_order() {
        // Record per-key processing order; within a key it must be the
        // submission order even across many threads.
        let items: Vec<(u64, usize)> = (0..500).map(|i| (i as u64 % 5, i)).collect();
        let order: Vec<AtomicUsize> = (0..500).map(|_| AtomicUsize::new(0)).collect();
        let ticket = AtomicUsize::new(0);
        scan(
            &items,
            ScanConfig {
                shards: NonZeroUsize::new(4).unwrap(),
                pacing: 0.0,
            },
            |&(key, _)| key,
            |&(_, index), _| {
                order[index].store(ticket.fetch_add(1, Ordering::SeqCst), Ordering::SeqCst);
            },
        );
        for key in 0..5u64 {
            let tickets: Vec<usize> = items
                .iter()
                .filter(|&&(k, _)| k == key)
                .map(|&(_, index)| order[index].load(Ordering::SeqCst))
                .collect();
            let mut sorted = tickets.clone();
            sorted.sort_unstable();
            assert_eq!(tickets, sorted, "key {key} processed out of order");
        }
    }

    #[test]
    fn fewer_keys_than_shards_still_covers_every_item() {
        // 3 distinct keys against 16 shards: most partitions are empty
        // and must not spawn workers; every item still yields its result
        // in submission order.
        let items: Vec<u32> = (0..60).collect();
        let results = scan(
            &items,
            ScanConfig {
                shards: NonZeroUsize::new(16).unwrap(),
                pacing: 0.0,
            },
            |&item| u64::from(item % 3),
            |&item, ctx| (item, ctx.index),
        );
        assert_eq!(results.len(), items.len());
        for (index, &(item, ctx_index)) in results.iter().enumerate() {
            assert_eq!(item as usize, index);
            assert_eq!(ctx_index, index);
        }
        // Degenerate: a single key against many shards.
        let single_key = scan(
            &items,
            ScanConfig {
                shards: NonZeroUsize::new(16).unwrap(),
                pacing: 0.0,
            },
            |_| 7,
            |&item, _| item,
        );
        assert_eq!(single_key, items);
    }

    #[test]
    fn start_times_follow_pacing() {
        let items: Vec<u32> = (0..10).collect();
        let results = scan(
            &items,
            ScanConfig {
                shards: NonZeroUsize::new(3).unwrap(),
                pacing: 0.5,
            },
            |&item| u64::from(item),
            |_, ctx| ctx.start_time,
        );
        for (index, &start) in results.iter().enumerate() {
            assert!((start - index as f64 * 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn single_shard_matches_parallel() {
        let items: Vec<u32> = (0..200).collect();
        let serial = scan(
            &items,
            ScanConfig {
                shards: NonZeroUsize::new(1).unwrap(),
                pacing: 0.001,
            },
            |&i| u64::from(i),
            |&i, ctx| (i as f64).sqrt() + ctx.start_time,
        );
        let parallel = scan(
            &items,
            ScanConfig {
                shards: NonZeroUsize::new(8).unwrap(),
                pacing: 0.001,
            },
            |&i| u64::from(i),
            |&i, ctx| (i as f64).sqrt() + ctx.start_time,
        );
        assert_eq!(serial, parallel);
    }
}
