//! TTL-limited path discovery (the RIPE-Atlas-style measurement primitive).
//!
//! The topology datasets the paper consumes are built from traceroutes; we
//! rebuild them the same way: UDP probes with increasing TTL, parsing the
//! ICMP time-exceeded answers for intermediate hop interfaces, stopping at
//! the destination's port-unreachable. Unresponsive hops show up as `None`
//! exactly as `*` does in real traceroute output.

use crate::network::{Network, VantageId};
use lfp_packet::icmp::{IcmpPacket, IcmpRepr};
use lfp_packet::ipv4::{self, Ipv4Packet, Ipv4Repr, Protocol};
use lfp_packet::udp::UdpRepr;
use std::net::Ipv4Addr;

/// Classic traceroute destination port base.
const PORT_BASE: u16 = 33434;

/// Result of one traceroute measurement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TracerouteResult {
    /// Source (vantage) address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Responding interface per TTL (index 0 = TTL 1); `None` = timeout.
    pub hops: Vec<Option<Ipv4Addr>>,
    /// Whether the destination itself answered.
    pub reached: bool,
}

impl TracerouteResult {
    /// The responsive intermediate router interfaces (the paper's
    /// router-IP extraction rule, §3.2): drop the *last* responsive hop
    /// when it equals the target. A destination address appearing
    /// mid-path — a routed loop or an interface shared with an earlier
    /// router — is a router observation and is kept.
    pub fn intermediate_hops(&self) -> Vec<Ipv4Addr> {
        let mut hops: Vec<Ipv4Addr> = self.hops.iter().flatten().copied().collect();
        if hops.last() == Some(&self.dst) {
            hops.pop();
        }
        hops
    }

    /// Total responsive hops including the destination.
    pub fn responsive_hops(&self) -> usize {
        self.hops.iter().flatten().count()
    }
}

/// Traceroute configuration.
#[derive(Debug, Clone, Copy)]
pub struct TracerouteOptions {
    /// Largest TTL to try.
    pub max_ttl: u8,
    /// Probe attempts per TTL before declaring a timeout.
    pub attempts: u8,
    /// Stop after this many consecutive silent TTLs (0 = never).
    pub give_up_after: u8,
}

impl Default for TracerouteOptions {
    fn default() -> Self {
        TracerouteOptions {
            max_ttl: 30,
            attempts: 2,
            give_up_after: 4,
        }
    }
}

/// Run one UDP traceroute through the simulated network.
pub fn traceroute(
    network: &Network,
    vantage: VantageId,
    src: Ipv4Addr,
    dst: Ipv4Addr,
    options: TracerouteOptions,
    base_time: f64,
    salt: u64,
) -> TracerouteResult {
    let mut hops = Vec::new();
    let mut reached = false;
    let mut silent_streak = 0u8;

    'ttl: for ttl in 1..=options.max_ttl {
        let mut hop = None;
        for attempt in 0..options.attempts.max(1) {
            let probe_salt = salt
                .wrapping_mul(1_000_003)
                .wrapping_add(u64::from(ttl) * 17 + u64::from(attempt));
            let udp = UdpRepr {
                src_port: 45000 + u16::from(ttl),
                dst_port: PORT_BASE + u16::from(ttl),
                payload: vec![0u8; 12],
            }
            .to_bytes(src, dst);
            let datagram = ipv4::build_datagram(
                &Ipv4Repr {
                    src,
                    dst,
                    protocol: Protocol::Udp,
                    ttl,
                    ident: u16::from(ttl) << 8 | u16::from(attempt),
                    dont_frag: false,
                    payload_len: udp.len(),
                },
                &udp,
            );
            let send_time = base_time + f64::from(ttl) * 0.02 + f64::from(attempt) * 0.5;
            let Some(reception) = network.probe_routed(vantage, &datagram, send_time, probe_salt)
            else {
                continue;
            };
            let Ok(packet) = Ipv4Packet::new_checked(&reception.datagram[..]) else {
                continue;
            };
            let responder = packet.src_addr();
            if responder == dst {
                hop = Some(responder);
                hops.push(hop);
                reached = true;
                break 'ttl;
            }
            // Only accept genuine time-exceeded answers as hops.
            if packet.protocol() == Protocol::Icmp {
                if let Ok(icmp) = IcmpPacket::new_checked(packet.payload()) {
                    if matches!(IcmpRepr::parse(&icmp), Ok(IcmpRepr::TimeExceeded { .. })) {
                        hop = Some(responder);
                        break;
                    }
                }
            }
        }
        match hop {
            Some(_) => silent_streak = 0,
            None => {
                silent_streak += 1;
                if options.give_up_after > 0 && silent_streak >= options.give_up_after {
                    hops.push(None);
                    break;
                }
            }
        }
        hops.push(hop);
    }

    TracerouteResult {
        src,
        dst,
        hops,
        reached,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{DeviceId, Hop, Network, RouteOracle, RoutePath};
    use lfp_stack::catalog;
    use lfp_stack::device::RouterDevice;
    use lfp_stack::vendor::Vendor;
    use std::collections::HashMap;
    use std::sync::Arc;

    const VANTAGE_IP: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 10);

    struct LineOracle {
        chain: Vec<(DeviceId, Ipv4Addr)>,
    }
    impl RouteOracle for LineOracle {
        fn route(&self, _v: VantageId, dst: Ipv4Addr) -> Option<RoutePath> {
            if self.chain.last().map(|&(_, ip)| ip) != Some(dst) {
                return None;
            }
            Some(RoutePath {
                hops: self
                    .chain
                    .iter()
                    .map(|&(device, ingress)| Hop { device, ingress })
                    .collect(),
            })
        }
    }

    /// A 4-hop chain of fully-ICMP-responsive routers ending at a target.
    fn line_network(hops: usize) -> (Network, Ipv4Addr) {
        let mut devices = Vec::new();
        let mut interfaces = HashMap::new();
        let mut chain = Vec::new();
        let vendors = [
            Vendor::Cisco,
            Vendor::Juniper,
            Vendor::Huawei,
            Vendor::MikroTik,
            Vendor::Cisco,
        ];
        for index in 0..hops {
            let profile = Arc::new(catalog::default_variant(vendors[index % vendors.len()]));
            let device = (0..400)
                .map(|s| RouterDevice::new(Arc::clone(&profile), (index as u64) << 32 | s))
                .find(|d| d.exposure().icmp && d.exposure().udp)
                .expect("responsive device");
            let ip = Ipv4Addr::new(10, 1, index as u8, 1);
            interfaces.insert(ip, DeviceId(index as u32));
            chain.push((DeviceId(index as u32), ip));
            devices.push(device);
        }
        let dst = chain.last().unwrap().1;
        let mut network = Network::new(devices, interfaces, Box::new(LineOracle { chain }), 11);
        network.set_base_loss(0.0);
        (network, dst)
    }

    #[test]
    fn traceroute_discovers_every_hop() {
        let (network, dst) = line_network(4);
        let result = traceroute(
            &network,
            VantageId(0),
            VANTAGE_IP,
            dst,
            TracerouteOptions::default(),
            0.0,
            1,
        );
        assert!(result.reached);
        assert_eq!(result.hops.len(), 4);
        for (index, hop) in result.hops.iter().enumerate().take(3) {
            assert_eq!(*hop, Some(Ipv4Addr::new(10, 1, index as u8, 1)));
        }
        assert_eq!(result.hops[3], Some(dst));
        // Intermediate extraction drops the destination.
        assert_eq!(result.intermediate_hops().len(), 3);
    }

    #[test]
    fn intermediate_hops_drop_only_the_trailing_destination() {
        let dst = Ipv4Addr::new(10, 9, 9, 9);
        let a = Ipv4Addr::new(10, 1, 0, 1);
        let b = Ipv4Addr::new(10, 1, 1, 1);
        // The destination address answering mid-path (routed loop or a
        // shared interface) stays in the router population; only the
        // final destination response is dropped.
        let result = TracerouteResult {
            src: VANTAGE_IP,
            dst,
            hops: vec![Some(a), Some(dst), None, Some(b), Some(dst)],
            reached: true,
        };
        assert_eq!(result.intermediate_hops(), vec![a, dst, b]);
        // Without a trailing destination nothing is dropped.
        let unreached = TracerouteResult {
            src: VANTAGE_IP,
            dst,
            hops: vec![Some(a), Some(b), None],
            reached: false,
        };
        assert_eq!(unreached.intermediate_hops(), vec![a, b]);
    }

    #[test]
    fn unreachable_destination_gives_up() {
        let (network, _) = line_network(3);
        let nowhere = Ipv4Addr::new(203, 0, 113, 1);
        let result = traceroute(
            &network,
            VantageId(0),
            VANTAGE_IP,
            nowhere,
            TracerouteOptions {
                max_ttl: 20,
                attempts: 1,
                give_up_after: 4,
            },
            0.0,
            2,
        );
        assert!(!result.reached);
        assert!(result.hops.len() <= 4);
        assert_eq!(result.responsive_hops(), 0);
    }

    #[test]
    fn traceroute_is_deterministic() {
        let (n1, dst) = line_network(4);
        let (n2, _) = line_network(4);
        let opts = TracerouteOptions::default();
        let a = traceroute(&n1, VantageId(0), VANTAGE_IP, dst, opts, 0.0, 3);
        let b = traceroute(&n2, VantageId(0), VANTAGE_IP, dst, opts, 0.0, 3);
        assert_eq!(a, b);
    }
}
