//! The simulated network: devices, interface addressing, delivery.
//!
//! [`Network`] owns every [`RouterDevice`] behind a mutex (IPID counters
//! are per-router and interfaces alias onto them, so concurrent probes of
//! two interfaces of one router must serialise — exactly the property that
//! MIDAR-style alias resolution exploits). Routing is delegated to a
//! [`RouteOracle`] provided by the topology layer; the network itself only
//! knows how to walk a router-level path, decrement TTLs, generate
//! time-exceeded errors and apply path characteristics.

use crate::link::{path_character_for, splitmix64, FaultInjector, PathCharacter};
use lfp_packet::ipv4::Ipv4Packet;
use lfp_stack::device::RouterDevice;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::Arc;
use std::sync::Mutex;

/// Opaque device identifier (index into the network's device table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DeviceId(pub u32);

/// Opaque vantage-point identifier, assigned by the topology layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VantageId(pub u32);

/// One hop of a router-level path: the device and the interface address a
/// TTL-expiry response would be sourced from (the ingress interface, which
/// is what traceroute observes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hop {
    /// Device at this hop.
    pub device: DeviceId,
    /// Ingress interface address.
    pub ingress: Ipv4Addr,
}

/// A router-level forwarding path, vantage → destination.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RoutePath {
    /// Ordered intermediate hops (excludes the vantage host; the final hop
    /// is the destination itself when it is a router interface).
    pub hops: Vec<Hop>,
}

/// Routing knowledge, provided by the topology layer.
pub trait RouteOracle: Send + Sync {
    /// Router-level path from a vantage point toward `dst`, or `None` if
    /// unreachable.
    fn route(&self, vantage: VantageId, dst: Ipv4Addr) -> Option<RoutePath>;
}

/// A trivial oracle for unit tests: every destination is one hop away.
pub struct DirectOracle;

impl RouteOracle for DirectOracle {
    fn route(&self, _vantage: VantageId, _dst: Ipv4Addr) -> Option<RoutePath> {
        Some(RoutePath::default())
    }
}

/// A response observed by the prober.
#[derive(Debug, Clone, PartialEq)]
pub struct Reception {
    /// Virtual receive time at the prober, in seconds.
    pub at: f64,
    /// The raw IPv4 datagram received.
    pub datagram: Vec<u8>,
}

/// The simulated Internet fabric.
pub struct Network {
    devices: Vec<Mutex<RouterDevice>>,
    ip_index: Arc<HashMap<Ipv4Addr, DeviceId>>,
    oracle: Arc<dyn RouteOracle>,
    faults: FaultInjector,
    base_loss: f64,
    /// Infrastructure-ACL model: (permanently dark ‰, churn-band ‰).
    darkness: (u32, u32),
    seed: u64,
}

/// Virtual-time boundary separating the dataset-collection era from the
/// scanning era, for the interface-churn model (seconds).
pub const CHURN_EPOCH: f64 = 500_000.0;

impl Network {
    /// Assemble a network from devices, their interface addresses, and a
    /// routing oracle. `interfaces` maps each address to its device.
    pub fn new(
        devices: Vec<RouterDevice>,
        interfaces: HashMap<Ipv4Addr, DeviceId>,
        oracle: Box<dyn RouteOracle>,
        seed: u64,
    ) -> Self {
        for &id in interfaces.values() {
            assert!(
                (id.0 as usize) < devices.len(),
                "interface maps to unknown device {id:?}"
            );
        }
        Network {
            devices: devices.into_iter().map(Mutex::new).collect(),
            ip_index: Arc::new(interfaces),
            oracle: Arc::from(oracle),
            faults: FaultInjector::none(),
            base_loss: 0.01,
            darkness: (0, 0),
            seed,
        }
    }

    /// Fork an independent copy of this network: same topology, routing
    /// oracle and configuration, but a private clone of every device's
    /// mutable state (IPID counters, RNG streams).
    ///
    /// Forks make measurement campaigns order-independent: two scans run
    /// against separate forks observe identical counter histories whether
    /// they execute sequentially or concurrently, which is what lets
    /// `World::build` fan datasets out across threads while staying
    /// bit-identical to a serial build.
    pub fn fork(&self) -> Network {
        Network {
            devices: self
                .devices
                .iter()
                .map(|device| Mutex::new(device.lock().expect("device mutex poisoned").clone()))
                .collect(),
            ip_index: Arc::clone(&self.ip_index),
            oracle: Arc::clone(&self.oracle),
            faults: self.faults,
            base_loss: self.base_loss,
            darkness: self.darkness,
            seed: self.seed,
        }
    }

    /// Enable the infrastructure-ACL model: `base` per-mille of interfaces
    /// never answer direct probes (they still forward and emit
    /// time-exceeded), and a further `churn` per-mille answered during
    /// dataset collection (virtual time ≥ [`CHURN_EPOCH`]) but no longer
    /// answer at scan time — the policy/address churn real campaigns see
    /// between collection and measurement.
    pub fn set_darkness(&mut self, base_permille: u32, churn_permille: u32) {
        self.darkness = (base_permille, churn_permille);
    }

    /// Is this interface refusing direct probes at virtual time `now`?
    pub fn interface_dark(&self, ip: Ipv4Addr, now: f64) -> bool {
        let (base, churn) = self.darkness;
        if base == 0 && churn == 0 {
            return false;
        }
        let band = (splitmix64(self.seed ^ 0xdac ^ u64::from(u32::from(ip))) % 1000) as u32;
        if band < base {
            return true;
        }
        band < base + churn && now < CHURN_EPOCH
    }

    /// Configure adverse-condition injection (tests, robustness studies).
    pub fn set_faults(&mut self, faults: FaultInjector) {
        self.faults = faults;
    }

    /// Configure the baseline per-traversal loss probability.
    pub fn set_base_loss(&mut self, loss: f64) {
        self.base_loss = loss;
    }

    /// Number of devices.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// Addresses known to the network.
    pub fn interface_count(&self) -> usize {
        self.ip_index.len()
    }

    /// Device owning an interface address.
    pub fn device_of(&self, ip: Ipv4Addr) -> Option<DeviceId> {
        self.ip_index.get(&ip).copied()
    }

    /// Run `f` with exclusive access to a device (used by analyses that
    /// need ground truth, e.g. accuracy scoring — never by the classifier).
    pub fn with_device<T>(&self, id: DeviceId, f: impl FnOnce(&mut RouterDevice) -> T) -> T {
        f(&mut self.devices[id.0 as usize]
            .lock()
            .expect("device mutex poisoned"))
    }

    /// Stable path character between the prober and a target address.
    pub fn path_to(&self, target: Ipv4Addr) -> PathCharacter {
        path_character_for(self.seed, u32::from(target), self.base_loss)
    }

    /// Send one probe datagram toward its destination address and collect
    /// the response, if any. `salt` must differ between probes to decorrelate
    /// loss/jitter draws; virtual `send_time` is in seconds.
    ///
    /// This is the fast path used by Internet-wide scans: the probe TTL is
    /// assumed ample (LFP uses 64), so intermediate forwarding succeeds and
    /// only the end-to-end path character applies.
    pub fn probe(&self, datagram: &[u8], send_time: f64, salt: u64) -> Option<Reception> {
        let packet = Ipv4Packet::new_checked(datagram).ok()?;
        let target = packet.dst_addr();
        let device = self.device_of(target)?;
        if self.interface_dark(target, send_time) {
            return None;
        }
        let path = self.path_to(target);
        let mut rng = self.probe_rng(target, salt);

        if self.faults.drops(&mut rng) {
            return None;
        }
        let forward = path.traverse(&mut rng)?;
        let arrival = send_time + forward;
        let mut response = self.devices[device.0 as usize]
            .lock()
            .expect("device mutex poisoned")
            .handle_datagram(datagram, arrival)?;
        if self.faults.drops(&mut rng) {
            return None;
        }
        let backward = path.traverse(&mut rng)?;
        // The response crosses real routers on the way back: its TTL
        // arrives decremented by the (stable, per-target) hop distance.
        // Fingerprinters must round the observed TTL up to infer the
        // initial TTL — deliver what they would actually see.
        decrement_ttl(&mut response, self.hops_to(target));
        Some(Reception {
            at: arrival + backward,
            datagram: response,
        })
    }

    /// Stable router-hop distance between the prober and a target.
    pub fn hops_to(&self, target: Ipv4Addr) -> u8 {
        (4 + splitmix64(self.seed ^ 0x4095 ^ u64::from(u32::from(target))) % 14) as u8
    }

    /// Send a TTL-limited probe along the routed path from a vantage point
    /// (the traceroute primitive). Returns the response — a time-exceeded
    /// from an intermediate hop or the destination's answer — if any.
    pub fn probe_routed(
        &self,
        vantage: VantageId,
        datagram: &[u8],
        send_time: f64,
        salt: u64,
    ) -> Option<Reception> {
        let packet = Ipv4Packet::new_checked(datagram).ok()?;
        let target = packet.dst_addr();
        let ttl = packet.ttl();
        let route = self.oracle.route(vantage, target)?;
        let mut rng = self.probe_rng(target, salt.wrapping_add(0x7261_6365));

        if self.faults.drops(&mut rng) {
            return None;
        }

        // Per-hop latency: split the end-to-end character across hops.
        let path = self.path_to(target);
        let hop_count = route.hops.len().max(1);
        let per_hop = path.base_latency / hop_count as f64;
        let mut now = send_time;

        for (index, hop) in route.hops.iter().enumerate() {
            now += per_hop;
            if self.base_loss > 0.0 && rand::Rng::gen_bool(&mut rng, self.base_loss) {
                return None; // forwarding loss at this hop
            }
            let remaining_ttl = ttl.saturating_sub(index as u8 + 1);
            let is_last = index + 1 == route.hops.len();
            if remaining_ttl == 0 && !(is_last && hop.ingress == target) {
                // TTL expired in transit: this hop answers (or silently
                // drops, per its exposure posture).
                let mut response = self.devices[hop.device.0 as usize]
                    .lock()
                    .expect("device mutex poisoned")
                    .time_exceeded(datagram, hop.ingress, now)?;
                let back = path.traverse(&mut rng)?;
                decrement_ttl(&mut response, index as u8);
                return Some(Reception {
                    at: now + back,
                    datagram: response,
                });
            }
            if is_last && hop.ingress == target {
                // Destination interface reached.
                if remaining_ttl == 0 && ttl as usize <= index {
                    return None;
                }
                let mut response = self.devices[hop.device.0 as usize]
                    .lock()
                    .expect("device mutex poisoned")
                    .handle_datagram(datagram, now)?;
                let back = path.traverse(&mut rng)?;
                decrement_ttl(&mut response, index as u8);
                return Some(Reception {
                    at: now + back,
                    datagram: response,
                });
            }
        }
        None
    }

    /// The routed path for a vantage/destination pair (used by dataset
    /// builders that need hop lists without sending packets).
    pub fn route(&self, vantage: VantageId, dst: Ipv4Addr) -> Option<RoutePath> {
        self.oracle.route(vantage, dst)
    }

    fn probe_rng(&self, target: Ipv4Addr, salt: u64) -> SmallRng {
        // Hash target and salt independently before combining: callers
        // commonly derive the salt from a target index that correlates
        // with the address itself, and a naive XOR would cancel the two
        // (leaving every target with the same per-round stream).
        let h = splitmix64(
            self.seed
                ^ splitmix64(u64::from(u32::from(target)))
                    .wrapping_add(splitmix64(salt.wrapping_add(0x5bd1_e995))),
        );
        SmallRng::seed_from_u64(h)
    }
}

/// Apply return-path TTL decay to a datagram in place, re-checksumming.
fn decrement_ttl(datagram: &mut [u8], hops: u8) {
    let mut packet = Ipv4Packet::new_unchecked(&mut *datagram);
    let ttl = packet.ttl().saturating_sub(hops).max(1);
    packet.set_ttl(ttl);
    packet.fill_checksum();
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfp_packet::icmp::IcmpRepr;
    use lfp_packet::ipv4::{self, Ipv4Repr, Protocol};
    use lfp_stack::catalog;
    use lfp_stack::vendor::Vendor;
    use std::sync::Arc;

    const PROBER: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);

    fn tiny_network() -> (Network, Ipv4Addr) {
        let profile = Arc::new(catalog::default_variant(Vendor::MikroTik));
        // Search for a seed whose sampled posture answers ICMP.
        let device = (0..500)
            .map(|seed| RouterDevice::new(Arc::clone(&profile), seed))
            .find(|d| d.exposure().icmp)
            .expect("an ICMP-responsive MikroTik exists");
        let ip = Ipv4Addr::new(10, 9, 8, 7);
        let mut interfaces = HashMap::new();
        interfaces.insert(ip, DeviceId(0));
        let mut network = Network::new(vec![device], interfaces, Box::new(DirectOracle), 99);
        network.set_base_loss(0.0);
        (network, ip)
    }

    fn echo_probe(dst: Ipv4Addr, ttl: u8) -> Vec<u8> {
        let icmp = IcmpRepr::EchoRequest {
            ident: 1,
            seq: 1,
            payload: vec![0; 56],
        }
        .to_bytes();
        ipv4::build_datagram(
            &Ipv4Repr {
                src: PROBER,
                dst,
                protocol: Protocol::Icmp,
                ttl,
                ident: 1,
                dont_frag: false,
                payload_len: icmp.len(),
            },
            &icmp,
        )
    }

    #[test]
    fn probe_roundtrip_returns_reply_with_latency() {
        let (network, ip) = tiny_network();
        let reception = network.probe(&echo_probe(ip, 64), 0.0, 0).unwrap();
        assert!(reception.at > 0.0, "latency must be positive");
        let packet = Ipv4Packet::new_checked(&reception.datagram[..]).unwrap();
        assert_eq!(packet.src_addr(), ip);
        assert_eq!(packet.dst_addr(), PROBER);
    }

    #[test]
    fn probe_to_unknown_address_vanishes() {
        let (network, _) = tiny_network();
        let dark = Ipv4Addr::new(203, 0, 113, 99);
        assert!(network.probe(&echo_probe(dark, 64), 0.0, 0).is_none());
    }

    #[test]
    fn forks_are_independent_and_identical() {
        let (network, ip) = tiny_network();
        let fork_a = network.fork();
        let fork_b = network.fork();
        // Advancing one fork's device state must not affect the other.
        for round in 0..5 {
            let _ = fork_a.probe(&echo_probe(ip, 64), round as f64, round);
        }
        let from_b = fork_b.probe(&echo_probe(ip, 64), 100.0, 42);
        let from_fresh = network.fork().probe(&echo_probe(ip, 64), 100.0, 42);
        assert_eq!(from_b, from_fresh);
    }

    #[test]
    fn probing_is_deterministic_given_salt() {
        let (a, ip) = tiny_network();
        let (b, _) = tiny_network();
        let ra = a.probe(&echo_probe(ip, 64), 0.5, 7);
        let rb = b.probe(&echo_probe(ip, 64), 0.5, 7);
        assert_eq!(ra, rb);
    }

    #[test]
    fn full_fault_injection_drops_everything() {
        let (mut network, ip) = tiny_network();
        network.set_faults(FaultInjector {
            drop_chance: 1.0,
            duplicate_chance: 0.0,
        });
        assert!(network.probe(&echo_probe(ip, 64), 0.0, 0).is_none());
    }

    #[test]
    fn routed_probe_with_expired_ttl_yields_time_exceeded() {
        // Two-router chain: hop1 (transit) then hop2 (destination).
        let p1 = Arc::new(catalog::default_variant(Vendor::Juniper));
        let p2 = Arc::new(catalog::default_variant(Vendor::MikroTik));
        let transit = (0..200)
            .map(|s| RouterDevice::new(Arc::clone(&p1), s))
            .find(|d| d.exposure().icmp)
            .unwrap();
        let dest = (0..200)
            .map(|s| RouterDevice::new(Arc::clone(&p2), 1000 + s))
            .find(|d| d.exposure().icmp)
            .unwrap();
        let transit_ip = Ipv4Addr::new(10, 0, 0, 1);
        let dest_ip = Ipv4Addr::new(10, 0, 0, 2);
        let mut interfaces = HashMap::new();
        interfaces.insert(transit_ip, DeviceId(0));
        interfaces.insert(dest_ip, DeviceId(1));

        struct ChainOracle {
            transit_ip: Ipv4Addr,
            dest_ip: Ipv4Addr,
        }
        impl RouteOracle for ChainOracle {
            fn route(&self, _v: VantageId, dst: Ipv4Addr) -> Option<RoutePath> {
                (dst == self.dest_ip).then(|| RoutePath {
                    hops: vec![
                        Hop {
                            device: DeviceId(0),
                            ingress: self.transit_ip,
                        },
                        Hop {
                            device: DeviceId(1),
                            ingress: self.dest_ip,
                        },
                    ],
                })
            }
        }

        let mut network = Network::new(
            vec![transit, dest],
            interfaces,
            Box::new(ChainOracle {
                transit_ip,
                dest_ip,
            }),
            5,
        );
        network.set_base_loss(0.0);

        // TTL 1 expires at the transit hop.
        let response = network
            .probe_routed(VantageId(0), &echo_probe(dest_ip, 1), 0.0, 1)
            .unwrap();
        let packet = Ipv4Packet::new_checked(&response.datagram[..]).unwrap();
        assert_eq!(packet.src_addr(), transit_ip);

        // TTL 2 reaches the destination, which echoes.
        let response = network
            .probe_routed(VantageId(0), &echo_probe(dest_ip, 2), 0.0, 2)
            .unwrap();
        let packet = Ipv4Packet::new_checked(&response.datagram[..]).unwrap();
        assert_eq!(packet.src_addr(), dest_ip);
    }
}
