//! # lfp-stack — vendor TCP/IP stack behaviour models
//!
//! The substrate that stands in for the real Internet's router population:
//! per-vendor models of everything the LFP feature set can observe on the
//! wire, and a stateful [`device::RouterDevice`] that answers raw IPv4
//! datagrams accordingly.
//!
//! * [`vendor`] — vendor identities and their IANA enterprise numbers,
//! * [`ipid`] — IPID allocation (counter layouts, randomness, background
//!   traffic advancing counters),
//! * [`profile`] — the knobs of a stack: initial TTLs, ICMP quoting, RFC 793
//!   RST compliance, echo reflection, exposure posture,
//! * [`catalog`] — ~110 concrete OS-family variants across 16 vendors,
//!   including the engineered cross-vendor collisions that yield non-unique
//!   signatures,
//! * [`device`] — the packet-answering router.
//!
//! The separation mirrors the measurement problem: vendor truth exists only
//! here (and leaks only through SNMPv3 engine IDs); the classifier in
//! `lfp-core` has to rediscover it from responses.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod device;
pub mod ipid;
pub mod profile;
pub mod vendor;

pub use catalog::Catalog;
pub use device::RouterDevice;
pub use profile::StackProfile;
pub use vendor::Vendor;
