//! A stateful simulated router answering raw IPv4 datagrams.
//!
//! [`RouterDevice`] is the object the simulator delivers packets to. It
//! owns per-router state — IPID counters shared across interfaces, the
//! SNMPv3 engine, sampled exposure decisions — and produces byte-exact
//! responses: echo replies, TCP RSTs or SYN-ACKs, ICMP port unreachables
//! with vendor-specific quoting, SNMPv3 discovery reports, and TTL
//! time-exceeded errors for traceroute.
//!
//! Everything the classifier later observes is generated here from the
//! [`StackProfile`] knobs; no vendor label ever crosses the wire except
//! inside a BER-encoded engine ID, exactly as in the real measurement.

use crate::ipid::IpidEngine;
use crate::profile::StackProfile;
use lfp_packet::icmp::{IcmpPacket, IcmpRepr, UnreachableCode};
use lfp_packet::ipv4::{self, Ipv4Packet, Ipv4Repr, Protocol};
use lfp_packet::snmp::{EngineId, SnmpV3Message};
use lfp_packet::tcp::{TcpFlags, TcpOptions, TcpPacket, TcpRepr};
use lfp_packet::udp::{UdpPacket, UdpRepr};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::net::Ipv4Addr;
use std::sync::Arc;

/// The SNMP agent port.
pub const SNMP_PORT: u16 = 161;

/// Per-protocol exposure decisions, sampled once per device (this is what
/// makes responsiveness all-or-nothing per protocol, as in Figures 5/6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exposure {
    /// Echo replies enabled.
    pub icmp: bool,
    /// RSTs to closed ports enabled.
    pub tcp: bool,
    /// Port unreachables enabled.
    pub udp: bool,
    /// SNMPv3 agent reachable.
    pub snmp: bool,
    /// Management service (banner) port, if exposed.
    pub open_port: Option<u16>,
    /// TTL-expiry errors enabled. Deliberately decoupled from `icmp`:
    /// many routers emit time-exceeded (it is how operators debug paths)
    /// while filtering direct probes, which is why traceroute datasets
    /// contain large unresponsive-to-scanning populations.
    pub time_exceeded: bool,
}

/// A simulated router: stack profile plus mutable state.
#[derive(Debug, Clone)]
pub struct RouterDevice {
    profile: Arc<StackProfile>,
    ipid: IpidEngine,
    rng: SmallRng,
    exposure: Exposure,
    engine_id: EngineId,
    engine_boots: u32,
    /// Virtual uptime at simulation time zero, in seconds.
    uptime_base: u32,
    /// Canonical (loopback) interface, if assigned by the topology.
    canonical_ip: Option<Ipv4Addr>,
}

impl RouterDevice {
    /// Instantiate a device with deterministic per-device randomness.
    pub fn new(profile: Arc<StackProfile>, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let ipid = IpidEngine::new(profile.ipid, profile.background_pps, &mut rng);
        let (icmp, tcp, udp) = profile.exposure.sample_posture(&mut rng);
        let exposure = Exposure {
            icmp,
            tcp,
            udp,
            snmp: rng.gen_bool(profile.exposure.snmp),
            open_port: if rng.gen_bool(profile.exposure.open_service) {
                Some(*[22u16, 23, 80].get(rng.gen_range(0..3)).unwrap())
            } else {
                None
            },
            time_exceeded: rng.gen_bool(0.9),
        };
        let engine_id = EngineId::text(
            profile.vendor.pen(),
            &format!("{}-{seed:012x}", profile.engine_id_prefix),
        );
        let engine_boots = rng.gen_range(1..=60);
        let uptime_base = rng.gen_range(3_600..30_000_000);
        RouterDevice {
            profile,
            ipid,
            rng,
            exposure,
            engine_id,
            engine_boots,
            uptime_base,
            canonical_ip: None,
        }
    }

    /// Assign the router's canonical (loopback) address. ICMP errors are
    /// sourced from it when the profile says so; this is what iffinder-style
    /// alias resolution observes.
    pub fn set_canonical_ip(&mut self, ip: Ipv4Addr) {
        self.canonical_ip = Some(ip);
    }

    /// The behavioural profile driving this device.
    pub fn profile(&self) -> &StackProfile {
        &self.profile
    }

    /// Sampled exposure decisions.
    pub fn exposure(&self) -> Exposure {
        self.exposure
    }

    /// The SNMPv3 engine identifier (vendor truth leaks only through this).
    pub fn engine_id(&self) -> &EngineId {
        &self.engine_id
    }

    /// Management banner if a service is exposed.
    pub fn banner(&self) -> Option<&'static str> {
        self.exposure.open_port.map(|_| self.profile.banner)
    }

    /// Handle an IPv4 datagram addressed to one of this router's
    /// interfaces; returns the full response datagram, if any.
    pub fn handle_datagram(&mut self, datagram: &[u8], now: f64) -> Option<Vec<u8>> {
        let packet = Ipv4Packet::new_checked(datagram).ok()?;
        let src = packet.src_addr();
        let dst = packet.dst_addr();
        match packet.protocol() {
            Protocol::Icmp => {
                let request_ipid = packet.ident();
                self.handle_icmp(packet.payload(), src, dst, request_ipid, now)
            }
            Protocol::Tcp => self.handle_tcp(packet.payload(), src, dst, now),
            Protocol::Udp => self.handle_udp(datagram, src, dst, now),
            Protocol::Other(_) => None,
        }
    }

    /// Generate an ICMP time-exceeded for a datagram whose TTL expired
    /// here, sourced from interface `from_ip`. Used by the simulator's
    /// forwarding path; shares the UDP-class IPID counter because both are
    /// control-plane ICMP errors.
    pub fn time_exceeded(
        &mut self,
        original: &[u8],
        from_ip: Ipv4Addr,
        now: f64,
    ) -> Option<Vec<u8>> {
        if !self.exposure.time_exceeded {
            return None;
        }
        let offender = Ipv4Packet::new_checked(original).ok()?;
        let dst = offender.src_addr();
        let quote_len = self.profile.quote.quoted_len(original.len());
        let mut quote = original[..original.len().min(quote_len)].to_vec();
        quote.resize(quote_len, 0);
        let icmp = IcmpRepr::TimeExceeded { quote }.to_bytes();
        Some(self.wrap_ip(from_ip, dst, Protocol::Icmp, Protocol::Udp, &icmp, now))
    }

    fn handle_icmp(
        &mut self,
        payload: &[u8],
        src: Ipv4Addr,
        dst: Ipv4Addr,
        request_ipid: u16,
        now: f64,
    ) -> Option<Vec<u8>> {
        if !self.exposure.icmp {
            return None;
        }
        let request = IcmpPacket::new_checked(payload).ok()?;
        let IcmpRepr::EchoRequest {
            ident,
            seq,
            payload,
        } = IcmpRepr::parse(&request).ok()?
        else {
            return None;
        };
        let reflected = match self.profile.echo_payload_cap {
            Some(cap) => payload[..payload.len().min(cap as usize)].to_vec(),
            None => payload,
        };
        let reply = IcmpRepr::EchoReply {
            ident,
            seq,
            payload: reflected,
        }
        .to_bytes();
        // The "ICMP IPID echo" feature: some stacks copy the request IPID
        // into the reply instead of allocating one.
        let ipid = if self.profile.icmp_echo_reflect_ipid {
            request_ipid
        } else {
            self.ipid.allocate(Protocol::Icmp, now, &mut self.rng)
        };
        Some(self.wrap_ip_with_ipid(
            dst,
            src,
            Protocol::Icmp,
            self.profile.ttl.icmp,
            ipid,
            &reply,
        ))
    }

    fn handle_tcp(
        &mut self,
        payload: &[u8],
        src: Ipv4Addr,
        dst: Ipv4Addr,
        now: f64,
    ) -> Option<Vec<u8>> {
        let segment = TcpPacket::new_checked(payload).ok()?;
        let probe = TcpRepr::parse(&segment).ok()?;
        if probe.flags.contains(TcpFlags::RST) {
            // RFC 793: never respond to a reset.
            return None;
        }
        if Some(probe.dst_port) == self.exposure.open_port {
            return self.answer_open_port(&probe, src, dst, now);
        }
        if !self.exposure.tcp {
            return None;
        }
        // Closed port: RST. Sequence-number selection on the SYN probe is
        // the RFC 793 §3.4 quirk LFP measures: the probe carries a
        // non-zero acknowledgment *field* without the ACK *flag*, and
        // stacks differ in whether they copy that field into the RST's
        // sequence number or use zero.
        let (seq, ack, flags) = if probe.flags.contains(TcpFlags::ACK) {
            // Stray ACK: every stack answers RST with seq from the ack field.
            (probe.ack, 0, TcpFlags::RST)
        } else {
            let seq = if self.profile.rst_seq_from_ack {
                probe.ack
            } else {
                0
            };
            (
                seq,
                probe.seq.wrapping_add(1),
                TcpFlags::RST | TcpFlags::ACK,
            )
        };
        let rst = TcpRepr {
            src_port: probe.dst_port,
            dst_port: probe.src_port,
            seq,
            ack,
            flags,
            window: 0,
            options: TcpOptions::default(),
        }
        .to_bytes(dst, src);
        let ipid = self.ipid.allocate(Protocol::Tcp, now, &mut self.rng);
        Some(self.wrap_ip_with_ipid(dst, src, Protocol::Tcp, self.profile.ttl.tcp, ipid, &rst))
    }

    fn answer_open_port(
        &mut self,
        probe: &TcpRepr,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        now: f64,
    ) -> Option<Vec<u8>> {
        if !probe.flags.contains(TcpFlags::SYN) || probe.flags.contains(TcpFlags::ACK) {
            return None; // only the handshake opener is modelled
        }
        let shape = &self.profile.syn_ack;
        let syn_ack = TcpRepr {
            src_port: probe.dst_port,
            dst_port: probe.src_port,
            seq: self.rng.gen(),
            ack: probe.seq.wrapping_add(1),
            flags: TcpFlags::SYN | TcpFlags::ACK,
            window: shape.window,
            options: TcpOptions {
                mss: Some(shape.mss),
                window_scale: shape.window_scale,
                sack_permitted: shape.sack_permitted,
                timestamps: if shape.timestamps {
                    Some(((now * 1000.0) as u32, 0))
                } else {
                    None
                },
            },
        }
        .to_bytes(dst, src);
        let ipid = self.ipid.allocate(Protocol::Tcp, now, &mut self.rng);
        Some(self.wrap_ip_with_ipid(
            dst,
            src,
            Protocol::Tcp,
            self.profile.ttl.tcp,
            ipid,
            &syn_ack,
        ))
    }

    fn handle_udp(
        &mut self,
        datagram: &[u8],
        src: Ipv4Addr,
        dst: Ipv4Addr,
        now: f64,
    ) -> Option<Vec<u8>> {
        let packet = Ipv4Packet::new_checked(datagram).ok()?;
        let udp = UdpPacket::new_checked(packet.payload()).ok()?;
        if !udp.verify_checksum(src, dst) {
            return None;
        }
        if udp.dst_port() == SNMP_PORT {
            return self.handle_snmp(&udp, src, dst, now);
        }
        if !self.exposure.udp {
            return None;
        }
        // Closed port → ICMP port unreachable quoting the offender.
        let quote_len = self.profile.quote.quoted_len(datagram.len());
        let mut quote = datagram[..datagram.len().min(quote_len)].to_vec();
        quote.resize(quote_len, 0);
        let icmp = IcmpRepr::DstUnreachable {
            code: UnreachableCode::Port,
            quote,
        }
        .to_bytes();
        let ipid = self.ipid.allocate(Protocol::Udp, now, &mut self.rng);
        let source = if self.profile.errors_from_loopback {
            self.canonical_ip.unwrap_or(dst)
        } else {
            dst
        };
        Some(self.wrap_ip_with_ipid(
            source,
            src,
            Protocol::Icmp,
            self.profile.ttl.udp,
            ipid,
            &icmp,
        ))
    }

    fn handle_snmp(
        &mut self,
        udp: &UdpPacket<&[u8]>,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        now: f64,
    ) -> Option<Vec<u8>> {
        if !self.exposure.snmp {
            return None;
        }
        let request = SnmpV3Message::parse(udp.payload()).ok()?;
        if !request.usm.engine_id.is_empty() {
            // Only the unauthenticated discovery step is served; anything
            // further would need credentials.
            return None;
        }
        let engine_time = self.uptime_base.saturating_add(now as u32);
        let report = SnmpV3Message::discovery_report(
            request.msg_id,
            &self.engine_id,
            self.engine_boots,
            engine_time,
            self.rng.gen_range(1..10_000),
        );
        let reply = UdpRepr {
            src_port: SNMP_PORT,
            dst_port: udp.src_port(),
            payload: report.to_bytes().ok()?,
        }
        .to_bytes(dst, src);
        let ipid = self.ipid.allocate(Protocol::Udp, now, &mut self.rng);
        Some(self.wrap_ip_with_ipid(dst, src, Protocol::Udp, self.profile.ttl.udp, ipid, &reply))
    }

    fn wrap_ip(
        &mut self,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        protocol: Protocol,
        ipid_class: Protocol,
        payload: &[u8],
        now: f64,
    ) -> Vec<u8> {
        let ipid = self.ipid.allocate(ipid_class, now, &mut self.rng);
        let ttl = match ipid_class {
            Protocol::Icmp => self.profile.ttl.icmp,
            Protocol::Tcp => self.profile.ttl.tcp,
            _ => self.profile.ttl.udp,
        };
        self.wrap_ip_with_ipid(src, dst, protocol, ttl, ipid, payload)
    }

    fn wrap_ip_with_ipid(
        &self,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        protocol: Protocol,
        ttl: u8,
        ipid: u16,
        payload: &[u8],
    ) -> Vec<u8> {
        let repr = Ipv4Repr {
            src,
            dst,
            protocol,
            ttl,
            ident: ipid,
            dont_frag: ipid == 0, // zero-IPID stacks set DF, per RFC 6864
            payload_len: payload.len(),
        };
        ipv4::build_datagram(&repr, payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use crate::vendor::Vendor;
    use lfp_packet::icmp::IcmpKind;

    fn device_for(vendor: Vendor, seed: u64) -> RouterDevice {
        let profile = catalog::default_variant(vendor);
        RouterDevice::new(Arc::new(profile), seed)
    }

    fn fully_exposed(vendor: Vendor) -> RouterDevice {
        // Search seeds until every protocol is exposed, so response-shape
        // tests are independent of exposure sampling.
        (0..2000)
            .map(|seed| device_for(vendor, seed))
            .find(|d| {
                let e = d.exposure();
                e.icmp && e.tcp && e.udp && e.snmp && e.time_exceeded
            })
            .expect("an exposed device should exist within 2000 seeds")
    }

    const PROBER: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);
    const TARGET: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 77);

    fn echo_probe(ipid: u16) -> Vec<u8> {
        let icmp = IcmpRepr::EchoRequest {
            ident: 7,
            seq: 1,
            payload: vec![0x41; 56],
        }
        .to_bytes();
        ipv4::build_datagram(
            &Ipv4Repr {
                src: PROBER,
                dst: TARGET,
                protocol: Protocol::Icmp,
                ttl: 64,
                ident: ipid,
                dont_frag: false,
                payload_len: icmp.len(),
            },
            &icmp,
        )
    }

    fn udp_probe() -> Vec<u8> {
        let udp = UdpRepr {
            src_port: 50000,
            dst_port: 33533,
            payload: vec![0; 12],
        }
        .to_bytes(PROBER, TARGET);
        ipv4::build_datagram(
            &Ipv4Repr {
                src: PROBER,
                dst: TARGET,
                protocol: Protocol::Udp,
                ttl: 64,
                ident: 2,
                dont_frag: false,
                payload_len: udp.len(),
            },
            &udp,
        )
    }

    fn tcp_syn_probe(ack: u32) -> Vec<u8> {
        let tcp = TcpRepr {
            src_port: 50001,
            dst_port: 33533,
            seq: 1000,
            ack,
            flags: TcpFlags::SYN,
            window: 1024,
            options: TcpOptions::default(),
        }
        .to_bytes(PROBER, TARGET);
        ipv4::build_datagram(
            &Ipv4Repr {
                src: PROBER,
                dst: TARGET,
                protocol: Protocol::Tcp,
                ttl: 64,
                ident: 3,
                dont_frag: false,
                payload_len: tcp.len(),
            },
            &tcp,
        )
    }

    #[test]
    fn echo_reply_mirrors_request() {
        let mut device = fully_exposed(Vendor::Cisco);
        let response = device.handle_datagram(&echo_probe(0x1111), 1.0).unwrap();
        let ip = Ipv4Packet::new_checked(&response[..]).unwrap();
        assert_eq!(ip.src_addr(), TARGET);
        assert_eq!(ip.dst_addr(), PROBER);
        assert_eq!(ip.total_len(), 84); // Table 6's ICMP echo response size
        let icmp = IcmpPacket::new_checked(ip.payload()).unwrap();
        assert_eq!(icmp.kind().unwrap(), IcmpKind::EchoReply);
        assert_eq!(icmp.echo_ident(), 7);
    }

    #[test]
    fn udp_probe_yields_port_unreachable_with_vendor_quote() {
        let mut device = fully_exposed(Vendor::Cisco);
        let response = device.handle_datagram(&udp_probe(), 1.0).unwrap();
        let ip = Ipv4Packet::new_checked(&response[..]).unwrap();
        assert_eq!(
            usize::from(ip.total_len()),
            device.profile().unreachable_response_len(40)
        );
        let icmp = IcmpPacket::new_checked(ip.payload()).unwrap();
        assert_eq!(
            icmp.kind().unwrap(),
            IcmpKind::DstUnreachable(UnreachableCode::Port)
        );
        // The quote must begin with the original IP header.
        assert_eq!(icmp.body()[0], 0x45);
    }

    #[test]
    fn syn_with_ack_elicits_rst_with_policy_seq() {
        let mut cisco = fully_exposed(Vendor::Cisco);
        let response = cisco
            .handle_datagram(&tcp_syn_probe(0xdead_beef), 1.0)
            .unwrap();
        let ip = Ipv4Packet::new_checked(&response[..]).unwrap();
        assert_eq!(ip.total_len(), 40); // 20 IP + 20 TCP, Table 6's TCP size
        let tcp = TcpPacket::new_checked(ip.payload()).unwrap();
        assert!(tcp.flags().contains(TcpFlags::RST));
        // Cisco is RFC-noncompliant here: seq zero despite ACK present.
        assert_eq!(tcp.seq(), 0);

        let mut mikrotik = fully_exposed(Vendor::MikroTik);
        let response = mikrotik
            .handle_datagram(&tcp_syn_probe(0xdead_beef), 1.0)
            .unwrap();
        let ip = Ipv4Packet::new_checked(&response[..]).unwrap();
        let tcp = TcpPacket::new_checked(ip.payload()).unwrap();
        // Linux-derived stacks are compliant: seq copies the probe's ACK.
        assert_eq!(tcp.seq(), 0xdead_beef);
    }

    #[test]
    fn rst_probe_is_never_answered() {
        let mut device = fully_exposed(Vendor::Cisco);
        let tcp = TcpRepr {
            src_port: 50001,
            dst_port: 33533,
            seq: 1,
            ack: 0,
            flags: TcpFlags::RST,
            window: 0,
            options: TcpOptions::default(),
        }
        .to_bytes(PROBER, TARGET);
        let datagram = ipv4::build_datagram(
            &Ipv4Repr {
                src: PROBER,
                dst: TARGET,
                protocol: Protocol::Tcp,
                ttl: 64,
                ident: 9,
                dont_frag: false,
                payload_len: tcp.len(),
            },
            &tcp,
        );
        assert!(device.handle_datagram(&datagram, 1.0).is_none());
    }

    #[test]
    fn snmp_discovery_reports_vendor_pen() {
        let mut device = fully_exposed(Vendor::Juniper);
        let request = SnmpV3Message::discovery_request(99).to_bytes().unwrap();
        let udp = UdpRepr {
            src_port: 45000,
            dst_port: SNMP_PORT,
            payload: request,
        }
        .to_bytes(PROBER, TARGET);
        let datagram = ipv4::build_datagram(
            &Ipv4Repr {
                src: PROBER,
                dst: TARGET,
                protocol: Protocol::Udp,
                ttl: 64,
                ident: 4,
                dont_frag: false,
                payload_len: udp.len(),
            },
            &udp,
        );
        let response = device.handle_datagram(&datagram, 10.0).unwrap();
        let ip = Ipv4Packet::new_checked(&response[..]).unwrap();
        let udp = UdpPacket::new_checked(ip.payload()).unwrap();
        assert_eq!(udp.src_port(), SNMP_PORT);
        let report = SnmpV3Message::parse(udp.payload()).unwrap();
        assert_eq!(report.msg_id, 99);
        let engine = report.authoritative_engine_id().unwrap();
        assert_eq!(engine.pen, Vendor::Juniper.pen());
    }

    #[test]
    fn corrupted_udp_checksum_is_dropped() {
        let mut device = fully_exposed(Vendor::Cisco);
        let mut probe = udp_probe();
        let len = probe.len();
        probe[len - 1] ^= 0xff; // corrupt payload without fixing checksum
                                // IPv4 header checksum still fine, so the IP layer accepts it, but
                                // the UDP layer must reject it.
        let mut ip = Ipv4Packet::new_unchecked(&mut probe[..]);
        ip.fill_checksum();
        assert!(device.handle_datagram(&probe, 1.0).is_none());
    }

    #[test]
    fn time_exceeded_quotes_offender() {
        let mut device = fully_exposed(Vendor::Juniper);
        let offender = udp_probe();
        let hop_ip = Ipv4Addr::new(10, 0, 0, 1);
        let response = device.time_exceeded(&offender, hop_ip, 5.0).unwrap();
        let ip = Ipv4Packet::new_checked(&response[..]).unwrap();
        assert_eq!(ip.src_addr(), hop_ip);
        assert_eq!(ip.dst_addr(), PROBER);
        let icmp = IcmpPacket::new_checked(ip.payload()).unwrap();
        assert_eq!(icmp.kind().unwrap(), IcmpKind::TimeExceeded);
    }

    #[test]
    fn devices_are_deterministic_per_seed() {
        let mut a = device_for(Vendor::Huawei, 42);
        let mut b = device_for(Vendor::Huawei, 42);
        let ra = a.handle_datagram(&echo_probe(5), 1.0);
        let rb = b.handle_datagram(&echo_probe(5), 1.0);
        assert_eq!(ra, rb);
        assert_eq!(a.engine_id(), b.engine_id());
    }
}
