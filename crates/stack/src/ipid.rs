//! IPID generation models.
//!
//! RFC 4413 classifies IPID behaviour into sequential-jump, random, and
//! per-stream sequential; routers additionally exhibit constant and zero
//! IPIDs (paper Table 1). Two aspects matter for fingerprinting:
//!
//! 1. *which class* a response stream falls into, and
//! 2. *which streams share a counter* — e.g. Linux-derived stacks use one
//!    counter for every ICMP error and echo reply, while classic IOS keeps
//!    them apart. Counter sharing across interfaces is also what MIDAR-style
//!    alias resolution exploits, so the engine lives per-router, not per-IP.
//!
//! Counters advance with background traffic between our probes (a router is
//! never idle); we model that as a Poisson process whose rate is part of
//! the stack profile. This is what gives the max-step distribution of
//! Figure 2 its knee instead of a degenerate step of exactly one.

use lfp_packet::ipv4::Protocol;
use rand::Rng;

/// How one response class allocates IPID values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IpidMode {
    /// Values come from shared counter number `group` (advances with
    /// background traffic; wraps at 2^16).
    Counter {
        /// Counter group index; classes with the same index share state.
        group: u8,
    },
    /// Uniformly random 16-bit values.
    Random,
    /// A constant, non-zero, device-specific value.
    Static,
    /// Always zero (common for stacks that set DF and skip IPID).
    Zero,
    /// A counter that only advances every second allocation, yielding the
    /// "exactly two responses share a value" class of Table 1.
    DuplicatePair {
        /// Counter group index (kept separate from `Counter` groups).
        group: u8,
    },
}

/// IPID allocation plan for the three probe-response classes, keyed by the
/// *probe* protocol (the response to a UDP probe is an ICMP error, but the
/// feature set names it the "UDP IPID counter").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IpidPlan {
    /// Class used for ICMP echo replies.
    pub icmp: IpidMode,
    /// Class used for TCP RSTs.
    pub tcp: IpidMode,
    /// Class used for ICMP errors answering UDP probes.
    pub udp: IpidMode,
}

impl IpidPlan {
    /// One incremental counter per protocol (classic IOS-style layout).
    pub fn per_protocol() -> Self {
        IpidPlan {
            icmp: IpidMode::Counter { group: 0 },
            tcp: IpidMode::Counter { group: 1 },
            udp: IpidMode::Counter { group: 2 },
        }
    }

    /// One counter shared by everything (Linux-derived stacks).
    pub fn shared_all() -> Self {
        IpidPlan {
            icmp: IpidMode::Counter { group: 0 },
            tcp: IpidMode::Counter { group: 0 },
            udp: IpidMode::Counter { group: 0 },
        }
    }

    /// TCP and UDP share; ICMP separate.
    pub fn shared_tcp_udp() -> Self {
        IpidPlan {
            icmp: IpidMode::Counter { group: 0 },
            tcp: IpidMode::Counter { group: 1 },
            udp: IpidMode::Counter { group: 1 },
        }
    }

    /// ICMP shares with UDP errors (both ICMP-generated); TCP separate.
    pub fn shared_icmp_udp() -> Self {
        IpidPlan {
            icmp: IpidMode::Counter { group: 0 },
            tcp: IpidMode::Counter { group: 1 },
            udp: IpidMode::Counter { group: 0 },
        }
    }

    /// Random everywhere (JunOS-style).
    pub fn random_all() -> Self {
        IpidPlan {
            icmp: IpidMode::Random,
            tcp: IpidMode::Random,
            udp: IpidMode::Random,
        }
    }

    /// The mode for a probe protocol.
    pub fn mode(&self, protocol: Protocol) -> IpidMode {
        match protocol {
            Protocol::Icmp => self.icmp,
            Protocol::Tcp => self.tcp,
            Protocol::Udp => self.udp,
            Protocol::Other(_) => self.icmp,
        }
    }
}

const COUNTER_GROUPS: usize = 4;

#[derive(Debug, Clone, Copy)]
struct CounterState {
    value: u16,
    last_advance: f64,
    /// For `DuplicatePair`: parity of allocations since the last advance.
    pending_dup: bool,
}

/// Per-router IPID allocator: owns the shared counters, the device's
/// static value, and a deterministic RNG stream.
#[derive(Debug, Clone)]
pub struct IpidEngine {
    plan: IpidPlan,
    counters: [CounterState; COUNTER_GROUPS],
    static_value: u16,
    /// Background packets per second driving counter advancement.
    background_pps: f64,
}

impl IpidEngine {
    /// Create an engine with device-specific initial counter values.
    ///
    /// Counters within one device are *correlated*: they all start from
    /// the same boot and advance with similar traffic volumes, so a
    /// device's per-protocol counters sit within a couple of thousand of
    /// each other even when not literally shared. This is the empirical
    /// basis of the paper's Figure 3 (≈90% of consecutive cross-protocol
    /// IPID differences within ±1300) and of the 1,300 threshold itself.
    /// Different devices remain uncorrelated.
    pub fn new<R: Rng>(plan: IpidPlan, background_pps: f64, rng: &mut R) -> Self {
        let mut counters = [CounterState {
            value: 0,
            last_advance: 0.0,
            pending_dup: false,
        }; COUNTER_GROUPS];
        let device_base: u16 = rng.gen();
        for counter in &mut counters {
            counter.value = device_base.wrapping_add(rng.gen_range(0..1200));
        }
        // Per-device traffic volume: two routers with the same OS still
        // see different loads, so their counters drift apart over time —
        // which is precisely what lets MIDAR-style confirmation reject
        // same-velocity non-aliases over a long enough window.
        let background_pps = background_pps * (0.7 + 0.6 * rng.gen::<f64>());
        let static_value = loop {
            let v: u16 = rng.gen();
            if v != 0 {
                break v;
            }
        };
        IpidEngine {
            plan,
            counters,
            static_value,
            background_pps,
        }
    }

    /// The plan this engine allocates by.
    pub fn plan(&self) -> IpidPlan {
        self.plan
    }

    /// Allocate the IPID for a response to a probe of `protocol` sent at
    /// virtual time `now` (seconds).
    pub fn allocate<R: Rng>(&mut self, protocol: Protocol, now: f64, rng: &mut R) -> u16 {
        match self.plan.mode(protocol) {
            IpidMode::Counter { group } => self.advance(group as usize, now, 1, rng),
            IpidMode::Random => rng.gen(),
            IpidMode::Static => self.static_value,
            IpidMode::Zero => 0,
            IpidMode::DuplicatePair { group } => {
                let slot = group as usize % COUNTER_GROUPS;
                if self.counters[slot].pending_dup {
                    self.counters[slot].pending_dup = false;
                    self.counters[slot].value
                } else {
                    let value = self.advance(slot, now, 1, rng);
                    self.counters[slot].pending_dup = true;
                    value
                }
            }
        }
    }

    fn advance<R: Rng>(&mut self, group: usize, now: f64, own: u16, rng: &mut R) -> u16 {
        let slot = group % COUNTER_GROUPS;
        let counter = &mut self.counters[slot];
        let dt = (now - counter.last_advance).max(0.0);
        counter.last_advance = now;
        // Background traffic drives every counter of a device with the
        // *same* realised volume (they count the same box's packets), so
        // the advance is deterministic in `dt` plus bounded per-counter
        // noise. Unbounded independent noise would decorrelate a device's
        // counters over long virtual gaps and destroy the empirical basis
        // of the 1,300-step threshold (paper Figure 3: ≈90% of
        // consecutive cross-counter differences stay within ±1300).
        let expected = self.background_pps * dt;
        let deterministic = expected.floor() as u64;
        let noise = poisson(rng, expected.min(32.0));
        counter.value = counter
            .value
            .wrapping_add((deterministic + noise) as u16)
            .wrapping_add(own);
        counter.value
    }
}

/// Sample a Poisson variate. Knuth's product method for small means; a
/// clamped normal approximation above, which is ample for counter noise.
pub fn poisson<R: Rng>(rng: &mut R, mean: f64) -> u64 {
    if mean <= 0.0 {
        return 0;
    }
    if mean < 30.0 {
        let limit = (-mean).exp();
        let mut product = rng.gen::<f64>();
        let mut count = 0u64;
        while product > limit {
            product *= rng.gen::<f64>();
            count += 1;
        }
        count
    } else {
        // Box–Muller normal approximation N(mean, mean).
        let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (mean + z * mean.sqrt()).round().max(0.0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(0x1fb)
    }

    #[test]
    fn shared_counter_is_globally_monotonic() {
        let mut rng = rng();
        let mut engine = IpidEngine::new(IpidPlan::shared_all(), 10.0, &mut rng);
        let mut previous = None;
        let mut time = 0.0;
        for protocol in [
            Protocol::Icmp,
            Protocol::Tcp,
            Protocol::Udp,
            Protocol::Icmp,
            Protocol::Tcp,
            Protocol::Udp,
        ] {
            time += 0.05;
            let id = engine.allocate(protocol, time, &mut rng);
            if let Some(prev) = previous {
                let step = id.wrapping_sub(prev);
                assert!((1..1000).contains(&step), "step {step} out of band");
            }
            previous = Some(id);
        }
    }

    #[test]
    fn per_protocol_counters_do_not_interfere() {
        let mut rng = rng();
        let mut engine = IpidEngine::new(IpidPlan::per_protocol(), 0.0, &mut rng);
        let icmp1 = engine.allocate(Protocol::Icmp, 0.1, &mut rng);
        let tcp1 = engine.allocate(Protocol::Tcp, 0.2, &mut rng);
        let icmp2 = engine.allocate(Protocol::Icmp, 0.3, &mut rng);
        // With zero background traffic, each counter steps by exactly one
        // per own packet, regardless of other protocols' activity.
        assert_eq!(icmp2.wrapping_sub(icmp1), 1);
        let tcp2 = engine.allocate(Protocol::Tcp, 0.4, &mut rng);
        assert_eq!(tcp2.wrapping_sub(tcp1), 1);
    }

    #[test]
    fn static_mode_repeats_nonzero_value() {
        let mut rng = rng();
        let plan = IpidPlan {
            icmp: IpidMode::Static,
            tcp: IpidMode::Static,
            udp: IpidMode::Static,
        };
        let mut engine = IpidEngine::new(plan, 100.0, &mut rng);
        let first = engine.allocate(Protocol::Icmp, 1.0, &mut rng);
        assert_ne!(first, 0);
        for i in 0..5 {
            assert_eq!(
                engine.allocate(Protocol::Tcp, 2.0 + i as f64, &mut rng),
                first
            );
        }
    }

    #[test]
    fn zero_mode_is_zero() {
        let mut rng = rng();
        let plan = IpidPlan {
            icmp: IpidMode::Zero,
            tcp: IpidMode::Zero,
            udp: IpidMode::Zero,
        };
        let mut engine = IpidEngine::new(plan, 100.0, &mut rng);
        assert_eq!(engine.allocate(Protocol::Udp, 5.0, &mut rng), 0);
    }

    #[test]
    fn duplicate_pair_produces_exactly_two_equal() {
        let mut rng = rng();
        let plan = IpidPlan {
            icmp: IpidMode::DuplicatePair { group: 3 },
            tcp: IpidMode::DuplicatePair { group: 3 },
            udp: IpidMode::DuplicatePair { group: 3 },
        };
        let mut engine = IpidEngine::new(plan, 0.0, &mut rng);
        let a = engine.allocate(Protocol::Icmp, 0.1, &mut rng);
        let b = engine.allocate(Protocol::Icmp, 0.2, &mut rng);
        let c = engine.allocate(Protocol::Icmp, 0.3, &mut rng);
        assert_eq!(a, b);
        assert_ne!(b, c);
    }

    #[test]
    fn random_mode_spreads_over_range() {
        let mut rng = rng();
        let mut engine = IpidEngine::new(IpidPlan::random_all(), 0.0, &mut rng);
        let values: Vec<u16> = (0..64)
            .map(|i| engine.allocate(Protocol::Icmp, i as f64, &mut rng))
            .collect();
        let max_step = values
            .windows(2)
            .map(|w| w[1].wrapping_sub(w[0]))
            .max()
            .unwrap();
        // With 64 uniform draws the max forward step exceeds any plausible
        // sequential threshold with overwhelming probability.
        assert!(max_step > 1300, "max step {max_step} suspiciously small");
    }

    #[test]
    fn background_traffic_advances_counters_with_time() {
        let mut rng = rng();
        let mut engine = IpidEngine::new(IpidPlan::shared_all(), 200.0, &mut rng);
        let first = engine.allocate(Protocol::Icmp, 0.0, &mut rng);
        // One second at 200 pps: expect a jump of roughly 200.
        let second = engine.allocate(Protocol::Icmp, 1.0, &mut rng);
        let step = second.wrapping_sub(first);
        assert!((100..400).contains(&step), "step {step} not near 200");
    }

    #[test]
    fn poisson_mean_is_respected() {
        let mut rng = rng();
        for mean in [0.5, 5.0, 80.0] {
            let n = 3000;
            let total: u64 = (0..n).map(|_| poisson(&mut rng, mean)).sum();
            let empirical = total as f64 / n as f64;
            assert!(
                (empirical - mean).abs() < mean.max(1.0) * 0.15,
                "mean {mean}: got {empirical}"
            );
        }
    }

    #[test]
    fn poisson_zero_mean_is_zero() {
        let mut rng = rng();
        assert_eq!(poisson(&mut rng, 0.0), 0);
        assert_eq!(poisson(&mut rng, -3.0), 0);
    }
}
