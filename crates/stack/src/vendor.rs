//! Router vendor identities and their IANA Private Enterprise Numbers.
//!
//! The PEN is what an SNMPv3 engine ID leaks (RFC 3411); the mapping here
//! is the same public registry the paper's labelling step uses. Vendors
//! beyond the paper's named set are grouped under "Other" in analyses but
//! remain distinct here so classification mistakes can be scored honestly.

use core::fmt;

/// Router vendors observed in the study (paper §4.4 names the major ones;
/// the rest populate the "Other" bucket of Table 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Vendor {
    /// Cisco Systems (IOS, IOS-XE, IOS-XR, NX-OS).
    Cisco,
    /// Juniper Networks (JunOS).
    Juniper,
    /// Huawei (VRP).
    Huawei,
    /// MikroTik (RouterOS, Linux-based).
    MikroTik,
    /// H3C (Comware, UNIX-based).
    H3C,
    /// Alcatel-Lucent / Nokia (TiMOS / SR OS).
    AlcatelNokia,
    /// Ericsson (IPOS / SEOS).
    Ericsson,
    /// Brocade / Foundry (NetIron).
    Brocade,
    /// Ruijie Networks (RGOS).
    Ruijie,
    /// net-snmp on generic Linux (software routers, white boxes).
    NetSnmp,
    /// ZTE (ZXROS).
    Zte,
    /// Extreme Networks (EXOS).
    Extreme,
    /// Arista (EOS).
    Arista,
    /// Fortinet (FortiOS routers).
    Fortinet,
    /// D-Link service routers.
    DLink,
    /// Teldat routers.
    Teldat,
}

impl Vendor {
    /// Every vendor, in canonical display order (major vendors first,
    /// matching the paper's table ordering).
    pub const ALL: [Vendor; 16] = [
        Vendor::Cisco,
        Vendor::Juniper,
        Vendor::Huawei,
        Vendor::MikroTik,
        Vendor::H3C,
        Vendor::AlcatelNokia,
        Vendor::Ericsson,
        Vendor::Brocade,
        Vendor::Ruijie,
        Vendor::NetSnmp,
        Vendor::Zte,
        Vendor::Extreme,
        Vendor::Arista,
        Vendor::Fortinet,
        Vendor::DLink,
        Vendor::Teldat,
    ];

    /// The vendor's IANA Private Enterprise Number, as leaked by SNMPv3
    /// engine IDs.
    pub fn pen(self) -> u32 {
        match self {
            Vendor::Cisco => 9,
            Vendor::Juniper => 2636,
            Vendor::Huawei => 2011,
            Vendor::MikroTik => 14988,
            Vendor::H3C => 25506,
            Vendor::AlcatelNokia => 6527, // TiMOS
            Vendor::Ericsson => 193,
            Vendor::Brocade => 1991, // Foundry
            Vendor::Ruijie => 4881,
            Vendor::NetSnmp => 8072,
            Vendor::Zte => 3902,
            Vendor::Extreme => 1916,
            Vendor::Arista => 30065,
            Vendor::Fortinet => 12356,
            Vendor::DLink => 171,
            Vendor::Teldat => 2007,
        }
    }

    /// Reverse lookup from a PEN (the labelling step).
    pub fn from_pen(pen: u32) -> Option<Vendor> {
        Vendor::ALL.into_iter().find(|v| v.pen() == pen)
    }

    /// Whether this vendor belongs to the paper's named set (Table 5);
    /// everything else is aggregated as "Other" in reports.
    pub fn is_major(self) -> bool {
        !matches!(
            self,
            Vendor::Zte
                | Vendor::Extreme
                | Vendor::Arista
                | Vendor::Fortinet
                | Vendor::DLink
                | Vendor::Teldat
        )
    }

    /// Short stable name used in tables and CSV output.
    pub fn name(self) -> &'static str {
        match self {
            Vendor::Cisco => "Cisco",
            Vendor::Juniper => "Juniper",
            Vendor::Huawei => "Huawei",
            Vendor::MikroTik => "MikroTik",
            Vendor::H3C => "H3C",
            Vendor::AlcatelNokia => "Alcatel/Nokia",
            Vendor::Ericsson => "Ericsson",
            Vendor::Brocade => "Brocade",
            Vendor::Ruijie => "Ruijie",
            Vendor::NetSnmp => "net-snmp",
            Vendor::Zte => "ZTE",
            Vendor::Extreme => "Extreme",
            Vendor::Arista => "Arista",
            Vendor::Fortinet => "Fortinet",
            Vendor::DLink => "D-Link",
            Vendor::Teldat => "Teldat",
        }
    }
}

impl fmt::Display for Vendor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn pens_are_unique() {
        let pens: HashSet<u32> = Vendor::ALL.iter().map(|v| v.pen()).collect();
        assert_eq!(pens.len(), Vendor::ALL.len());
    }

    #[test]
    fn from_pen_is_inverse() {
        for vendor in Vendor::ALL {
            assert_eq!(Vendor::from_pen(vendor.pen()), Some(vendor));
        }
        assert_eq!(Vendor::from_pen(424242), None);
    }

    #[test]
    fn paper_set_has_ten_members() {
        let major = Vendor::ALL.iter().filter(|v| v.is_major()).count();
        assert_eq!(major, 10);
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(Vendor::AlcatelNokia.to_string(), "Alcatel/Nokia");
        assert_eq!(Vendor::NetSnmp.to_string(), "net-snmp");
    }
}
