//! The catalog of concrete router stack variants.
//!
//! Each vendor ships many OS families and release trains whose TCP/IP
//! behaviour differs in fingerprint-relevant ways; that is why the paper
//! observes *multiple* signatures per vendor (25 for Cisco, 15 for
//! Juniper, ... — Table 5) and why some signatures are shared *across*
//! vendors (non-unique signatures, §3.5). This module encodes both:
//!
//! * per-vendor variant lists with deployment shares, and
//! * engineered cross-vendor collisions with a documented cause:
//!   - MikroTik RouterOS, net-snmp boxes and one H3C management plane are
//!     all Linux-derived and expose identical feature vectors;
//!   - Huawei VRP and H3C Comware share lineage (§4.4's "UNIX-based
//!     solutions" caveat);
//!   - a legacy Cisco IOS 11 train matches Brocade NetIron;
//!   - assorted "Other" vendors reuse generic embedded stacks.
//!
//! The two anchor profiles (`Cisco IOS 15` / `JunOS 18`) reproduce Table 6
//! exactly: identical vectors except for the ICMP initial TTL (255 vs 64),
//! which is what makes the paper's evasion case study work.
//!
//! Nothing in this file is consumed by the classifier — the catalog is the
//! *ground truth generator*; LFP rediscovers its structure from packets.

use crate::ipid::{IpidMode, IpidPlan};
use crate::profile::{ExposurePolicy, QuotePolicy, StackProfile, SynAckProfile, TtlPlan};
use crate::vendor::Vendor;
use rand::Rng;
use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};

/// A stack variant plus its deployment share within the vendor.
#[derive(Debug, Clone)]
pub struct Variant {
    /// The behavioural profile.
    pub profile: Arc<StackProfile>,
    /// Relative deployment share within the vendor (need not be normalised).
    pub share: f64,
}

/// The full vendor → variants catalog.
#[derive(Debug)]
pub struct Catalog {
    variants: BTreeMap<Vendor, Vec<Variant>>,
}

impl Catalog {
    /// The standard catalog used throughout the reproduction.
    pub fn standard() -> &'static Catalog {
        static CATALOG: OnceLock<Catalog> = OnceLock::new();
        CATALOG.get_or_init(build_standard)
    }

    /// Variants of a vendor (never empty).
    pub fn variants(&self, vendor: Vendor) -> &[Variant] {
        self.variants
            .get(&vendor)
            .map(Vec::as_slice)
            .unwrap_or_default()
    }

    /// All vendors present in the catalog.
    pub fn vendors(&self) -> impl Iterator<Item = Vendor> + '_ {
        self.variants.keys().copied()
    }

    /// Total number of variants across all vendors.
    pub fn len(&self) -> usize {
        self.variants.values().map(Vec::len).sum()
    }

    /// True if the catalog has no variants (never for the standard one).
    pub fn is_empty(&self) -> bool {
        self.variants.is_empty()
    }

    /// Sample a variant of `vendor` proportional to deployment share.
    pub fn sample<R: Rng>(&self, vendor: Vendor, rng: &mut R) -> Arc<StackProfile> {
        let variants = self.variants(vendor);
        assert!(!variants.is_empty(), "no variants for {vendor}");
        let total: f64 = variants.iter().map(|v| v.share).sum();
        let mut draw = rng.gen::<f64>() * total;
        for variant in variants {
            if draw < variant.share {
                return Arc::clone(&variant.profile);
            }
            draw -= variant.share;
        }
        Arc::clone(&variants[variants.len() - 1].profile)
    }
}

/// The highest-share (anchor) variant of a vendor; used in focused tests.
pub fn default_variant(vendor: Vendor) -> StackProfile {
    let catalog = Catalog::standard();
    let variants = catalog.variants(vendor);
    let anchor = variants
        .iter()
        .max_by(|a, b| a.share.total_cmp(&b.share))
        .expect("catalog has variants for every vendor");
    (*anchor.profile).clone()
}

// ---------------------------------------------------------------------------
// Builder helpers
// ---------------------------------------------------------------------------

const fn plan(icmp: IpidMode, tcp: IpidMode, udp: IpidMode) -> IpidPlan {
    IpidPlan { icmp, tcp, udp }
}

const CTR0: IpidMode = IpidMode::Counter { group: 0 };
const CTR1: IpidMode = IpidMode::Counter { group: 1 };
const CTR2: IpidMode = IpidMode::Counter { group: 2 };
const RAND: IpidMode = IpidMode::Random;
const STATIC: IpidMode = IpidMode::Static;
const ZERO: IpidMode = IpidMode::Zero;
const DUP: IpidMode = IpidMode::DuplicatePair { group: 3 };

/// Compact variant spec expanded into a [`StackProfile`].
struct Spec {
    family: &'static str,
    share: f64,
    ipid: IpidPlan,
    reflect: bool,
    /// (icmp, tcp, udp) initial TTLs.
    ttl: (u8, u8, u8),
    quote: QuotePolicy,
    rst_from_ack: bool,
    cap: Option<u16>,
}

struct VendorDefaults {
    vendor: Vendor,
    exposure: ExposurePolicy,
    syn_ack: SynAckProfile,
    banner: &'static str,
    engine_id_prefix: &'static str,
    background_pps: f64,
    errors_from_loopback: bool,
}

fn expand(defaults: &VendorDefaults, specs: Vec<Spec>) -> Vec<Variant> {
    specs
        .into_iter()
        .map(|spec| Variant {
            share: spec.share,
            profile: Arc::new(StackProfile {
                vendor: defaults.vendor,
                family: spec.family,
                ipid: spec.ipid,
                icmp_echo_reflect_ipid: spec.reflect,
                ttl: TtlPlan::new(spec.ttl.0, spec.ttl.1, spec.ttl.2),
                quote: spec.quote,
                rst_seq_from_ack: spec.rst_from_ack,
                errors_from_loopback: defaults.errors_from_loopback,
                echo_payload_cap: spec.cap,
                background_pps: defaults.background_pps,
                exposure: defaults.exposure,
                syn_ack: defaults.syn_ack,
                banner: defaults.banner,
                engine_id_prefix: defaults.engine_id_prefix,
            }),
        })
        .collect()
}

macro_rules! spec {
    ($family:expr, $share:expr, $ipid:expr, $reflect:expr, $ttl:expr, $quote:expr, $rst:expr) => {
        Spec {
            family: $family,
            share: $share,
            ipid: $ipid,
            reflect: $reflect,
            ttl: $ttl,
            quote: $quote,
            rst_from_ack: $rst,
            cap: None,
        }
    };
    ($family:expr, $share:expr, $ipid:expr, $reflect:expr, $ttl:expr, $quote:expr, $rst:expr, $cap:expr) => {
        Spec {
            family: $family,
            share: $share,
            ipid: $ipid,
            reflect: $reflect,
            ttl: $ttl,
            quote: $quote,
            rst_from_ack: $rst,
            cap: $cap,
        }
    };
}

use QuotePolicy::{FullPacket, FullWithExtension, Rfc792Min, UpTo};

// ---------------------------------------------------------------------------
// Shared (colliding) vectors — the cause of non-unique signatures.
// ---------------------------------------------------------------------------

/// Linux ≤4.17 era: one IPID counter for everything, full quotes,
/// RFC-compliant RSTs. Emitted by MikroTik RouterOS 6 *and* net-snmp boxes.
fn linux_a(family: &'static str, share: f64) -> Spec {
    spec!(
        family,
        share,
        plan(CTR0, CTR0, CTR0),
        false,
        (64, 64, 64),
        FullPacket,
        true
    )
}

/// Linux with `icmp_errors_use_inbound_ifaddr` + minimal quoting configs.
fn linux_b(family: &'static str, share: f64) -> Spec {
    spec!(
        family,
        share,
        plan(CTR0, CTR0, CTR0),
        false,
        (64, 64, 64),
        Rfc792Min,
        true
    )
}

/// Linux ≥4.18 era: zero IPID (DF set) on echo replies, shared counter on
/// error paths.
fn linux_c(family: &'static str, share: f64) -> Spec {
    spec!(
        family,
        share,
        plan(ZERO, CTR0, CTR0),
        false,
        (64, 64, 64),
        FullPacket,
        true
    )
}

/// Linux 5.x with per-socket TCP IPID randomisation.
fn linux_d(family: &'static str, share: f64) -> Spec {
    spec!(
        family,
        share,
        plan(ZERO, RAND, CTR0),
        false,
        (64, 64, 64),
        FullPacket,
        true
    )
}

/// Comware/VRP shared lineage vectors (Huawei ↔ H3C collisions).
fn comware_a(family: &'static str, share: f64) -> Spec {
    spec!(
        family,
        share,
        plan(CTR0, CTR1, CTR2),
        true,
        (255, 64, 255),
        FullPacket,
        false
    )
}

fn comware_b(family: &'static str, share: f64) -> Spec {
    spec!(
        family,
        share,
        plan(CTR0, CTR1, CTR2),
        true,
        (255, 255, 255),
        FullPacket,
        false
    )
}

fn comware_c(family: &'static str, share: f64) -> Spec {
    spec!(
        family,
        share,
        plan(CTR0, CTR1, CTR0),
        true,
        (255, 64, 255),
        Rfc792Min,
        false
    )
}

fn comware_d(family: &'static str, share: f64) -> Spec {
    spec!(
        family,
        share,
        plan(CTR0, CTR0, CTR0),
        true,
        (255, 64, 255),
        FullPacket,
        true
    )
}

/// Legacy vector shared by Cisco IOS 11 and Brocade NetIron.
fn legacy_ios_netiron(family: &'static str, share: f64) -> Spec {
    spec!(
        family,
        share,
        plan(CTR0, CTR1, CTR2),
        false,
        (64, 64, 64),
        Rfc792Min,
        false
    )
}

/// Generic embedded stacks reused across small vendors.
fn embedded_a(family: &'static str, share: f64) -> Spec {
    spec!(
        family,
        share,
        plan(CTR0, CTR1, CTR2),
        false,
        (64, 64, 255),
        Rfc792Min,
        false
    )
}

fn embedded_b(family: &'static str, share: f64) -> Spec {
    spec!(
        family,
        share,
        plan(STATIC, CTR0, CTR0),
        false,
        (64, 64, 64),
        Rfc792Min,
        false
    )
}

fn embedded_c(family: &'static str, share: f64) -> Spec {
    spec!(
        family,
        share,
        plan(CTR0, CTR0, CTR0),
        false,
        (255, 255, 255),
        Rfc792Min,
        true
    )
}

// ---------------------------------------------------------------------------
// Per-vendor variant lists
// ---------------------------------------------------------------------------

fn cisco() -> Vec<Variant> {
    let defaults = VendorDefaults {
        vendor: Vendor::Cisco,
        // Core-router posture: most answer ICMP; a solid majority also
        // answer TCP/UDP to closed ports; SNMPv3 widely reachable (this is
        // what makes Cisco over-represented in the labelled set).
        exposure: ExposurePolicy {
            posture: [0.03, 0.28, 0.01, 0.01, 0.06, 0.07, 0.02, 0.52],
            snmp: 0.42,
            open_service: 0.05,
        },
        syn_ack: SynAckProfile::minimal(4128, 536),
        banner: "SSH-2.0-Cisco-1.25",
        engine_id_prefix: "ios",
        background_pps: 120.0,
        errors_from_loopback: true,
    };
    let specs = vec![
        // --- IOS trains (7 common) ---
        // The Table 6 anchor: random IPIDs, (255, 64, 255) TTLs, minimal
        // quote, non-compliant RST.
        spec!(
            "IOS 15",
            0.30,
            plan(CTR0, CTR0, CTR0),
            false,
            (255, 64, 255),
            Rfc792Min,
            false
        ),
        spec!(
            "IOS 12.4",
            0.11,
            plan(RAND, RAND, RAND),
            false,
            (255, 64, 255),
            Rfc792Min,
            false
        ),
        spec!(
            "IOS-XE 16",
            0.10,
            plan(CTR0, CTR0, CTR0),
            false,
            (255, 255, 255),
            Rfc792Min,
            false
        ),
        spec!(
            "IOS-XE 17",
            0.06,
            plan(CTR0, CTR1, CTR2),
            false,
            (255, 255, 255),
            UpTo(32),
            false
        ),
        spec!(
            "IOS 15 SP",
            0.04,
            plan(CTR0, CTR1, CTR0),
            false,
            (255, 64, 255),
            Rfc792Min,
            false
        ),
        spec!(
            "IOS 12.2",
            0.03,
            plan(CTR0, CTR1, CTR2),
            false,
            (255, 64, 255),
            UpTo(32),
            false
        ),
        spec!(
            "IOS 15 lowmem",
            0.025,
            plan(RAND, RAND, RAND),
            false,
            (255, 64, 255),
            Rfc792Min,
            false,
            Some(36)
        ),
        // --- IOS-XR (3) ---
        spec!(
            "IOS-XR 7",
            0.07,
            plan(CTR0, CTR1, CTR2),
            false,
            (255, 255, 255),
            FullPacket,
            false
        ),
        spec!(
            "IOS-XR 6",
            0.05,
            plan(CTR0, CTR1, CTR2),
            false,
            (255, 255, 255),
            FullWithExtension(8),
            false
        ),
        spec!(
            "IOS-XR 5",
            0.02,
            plan(RAND, RAND, RAND),
            false,
            (255, 255, 255),
            FullPacket,
            false
        ),
        // --- NX-OS (3) ---
        spec!(
            "NX-OS 9",
            0.04,
            plan(CTR0, CTR0, CTR0),
            true,
            (255, 64, 255),
            FullPacket,
            true
        ),
        spec!(
            "NX-OS 7",
            0.02,
            plan(CTR0, CTR0, CTR0),
            true,
            (64, 64, 64),
            FullPacket,
            true
        ),
        spec!(
            "NX-OS 6",
            0.01,
            plan(CTR0, CTR1, CTR2),
            true,
            (64, 64, 64),
            FullPacket,
            true
        ),
        // --- Rare trains (12) — the long tail Figure 7 filters away at
        // high occurrence thresholds. ---
        spec!(
            "IOS 12.0S",
            0.008,
            plan(STATIC, CTR0, CTR1),
            false,
            (255, 64, 255),
            Rfc792Min,
            false
        ),
        spec!(
            "IOS 15 MPLS",
            0.008,
            plan(RAND, RAND, RAND),
            false,
            (255, 64, 255),
            FullWithExtension(8),
            false
        ),
        spec!(
            "IOS-XE SDWAN",
            0.007,
            plan(RAND, RAND, RAND),
            false,
            (255, 255, 255),
            UpTo(32),
            false
        ),
        spec!(
            "CatOS hybrid",
            0.006,
            plan(DUP, CTR0, CTR1),
            false,
            (255, 64, 255),
            Rfc792Min,
            false
        ),
        spec!(
            "IOS 15 VoIP",
            0.006,
            plan(CTR0, CTR1, CTR2),
            false,
            (255, 64, 255),
            Rfc792Min,
            false,
            Some(36)
        ),
        spec!(
            "IOS-XR NCS",
            0.005,
            plan(CTR0, CTR1, CTR2),
            false,
            (255, 255, 255),
            UpTo(36),
            false
        ),
        spec!(
            "NX-OS ACI",
            0.005,
            plan(CTR0, CTR0, CTR0),
            true,
            (255, 64, 255),
            Rfc792Min,
            true
        ),
        spec!(
            "IOS 12 SB",
            0.004,
            plan(ZERO, CTR0, CTR1),
            false,
            (255, 64, 255),
            Rfc792Min,
            false
        ),
        spec!(
            "IOS-XE WLC",
            0.004,
            plan(RAND, RAND, RAND),
            false,
            (255, 255, 64),
            Rfc792Min,
            false
        ),
        spec!(
            "IOS 15 SEC",
            0.004,
            plan(RAND, RAND, RAND),
            false,
            (255, 64, 255),
            UpTo(36),
            false
        ),
        spec!(
            "IOS legacy GSR",
            0.003,
            plan(CTR0, CTR1, CTR2),
            false,
            (255, 64, 64),
            Rfc792Min,
            false
        ),
        spec!(
            "IOS 15 cap44",
            0.003,
            plan(RAND, RAND, RAND),
            false,
            (255, 64, 255),
            Rfc792Min,
            false,
            Some(44)
        ),
        // --- Colliding legacy train (the single Cisco non-unique sig). ---
        legacy_ios_netiron("IOS 11", 0.02),
    ];
    expand(&defaults, specs)
}

fn juniper() -> Vec<Variant> {
    let defaults = VendorDefaults {
        vendor: Vendor::Juniper,
        exposure: ExposurePolicy {
            posture: [0.03, 0.22, 0.01, 0.01, 0.06, 0.07, 0.02, 0.58],
            snmp: 0.28,
            open_service: 0.04,
        },
        syn_ack: SynAckProfile {
            window: 16384,
            mss: 1460,
            window_scale: Some(0),
            sack_permitted: true,
            timestamps: true,
            rto_schedule: &[3.0, 6.0, 12.0, 24.0],
        },
        banner: "SSH-2.0-OpenSSH_7.5 JUNOS",
        engine_id_prefix: "junos",
        background_pps: 150.0,
        errors_from_loopback: true,
    };
    let specs = vec![
        // Table 6 anchor: differs from "IOS 15" *only* in the ICMP iTTL.
        spec!(
            "JunOS 18",
            0.34,
            plan(CTR0, CTR0, CTR0),
            false,
            (64, 64, 255),
            Rfc792Min,
            false
        ),
        spec!(
            "JunOS 15",
            0.12,
            plan(CTR0, CTR0, CTR0),
            false,
            (64, 64, 255),
            FullPacket,
            false
        ),
        spec!(
            "JunOS 20",
            0.10,
            plan(CTR0, CTR0, CTR0),
            false,
            (64, 64, 255),
            Rfc792Min,
            true
        ),
        spec!(
            "JunOS MX",
            0.09,
            plan(CTR0, CTR0, CTR0),
            false,
            (64, 64, 64),
            Rfc792Min,
            false
        ),
        spec!(
            "JunOS EX",
            0.07,
            plan(RAND, CTR0, CTR0),
            false,
            (64, 64, 255),
            Rfc792Min,
            false
        ),
        spec!(
            "JunOS SRX",
            0.06,
            plan(RAND, RAND, RAND),
            false,
            (64, 64, 255),
            Rfc792Min,
            false
        ),
        spec!(
            "JunOS QFX",
            0.05,
            plan(RAND, RAND, RAND),
            false,
            (64, 64, 64),
            FullPacket,
            false
        ),
        spec!(
            "JunOS 12",
            0.04,
            plan(RAND, RAND, RAND),
            false,
            (64, 64, 255),
            UpTo(32),
            false
        ),
        spec!(
            "JunOS PTX",
            0.03,
            plan(RAND, RAND, RAND),
            false,
            (64, 64, 255),
            FullWithExtension(8),
            false
        ),
        spec!(
            "JunOS 21 evo",
            0.025,
            plan(ZERO, RAND, RAND),
            false,
            (64, 64, 255),
            Rfc792Min,
            false
        ),
        spec!(
            "JunOS ACX",
            0.02,
            plan(RAND, RAND, CTR0),
            false,
            (64, 64, 255),
            Rfc792Min,
            false
        ),
        spec!(
            "JunOS 10",
            0.015,
            plan(RAND, RAND, RAND),
            false,
            (64, 64, 255),
            Rfc792Min,
            false,
            Some(36)
        ),
        spec!(
            "JunOS T-series",
            0.01,
            plan(RAND, RAND, RAND),
            false,
            (64, 64, 64),
            UpTo(32),
            false
        ),
        spec!(
            "JunOS vMX",
            0.008,
            plan(RAND, RAND, RAND),
            false,
            (64, 64, 64),
            Rfc792Min,
            true
        ),
        spec!(
            "JunOS 9",
            0.006,
            plan(DUP, RAND, RAND),
            false,
            (64, 64, 255),
            Rfc792Min,
            false
        ),
    ];
    expand(&defaults, specs)
}

fn huawei() -> Vec<Variant> {
    let defaults = VendorDefaults {
        vendor: Vendor::Huawei,
        exposure: ExposurePolicy {
            posture: [0.04, 0.26, 0.01, 0.01, 0.06, 0.08, 0.02, 0.52],
            snmp: 0.30,
            open_service: 0.05,
        },
        syn_ack: SynAckProfile::minimal(8192, 1460),
        banner: "SSH-2.0-HUAWEI-1.5",
        engine_id_prefix: "vrp",
        background_pps: 140.0,
        errors_from_loopback: false,
    };
    let specs = vec![
        // VRP's iTTL tuple equals Cisco's (255, 64, 255) — this is why the
        // iTTL-only baseline (§2) confuses Huawei with Cisco — but the
        // incremental+reflecting IPID behaviour separates them for LFP.
        spec!(
            "VRP 8",
            0.34,
            plan(CTR0, CTR0, CTR0),
            true,
            (255, 64, 255),
            Rfc792Min,
            false
        ),
        spec!(
            "VRP 5",
            0.16,
            plan(CTR0, CTR0, CTR0),
            true,
            (255, 64, 64),
            Rfc792Min,
            false
        ),
        spec!(
            "VRP 8 NE",
            0.10,
            plan(CTR0, CTR1, CTR2),
            true,
            (255, 255, 255),
            Rfc792Min,
            false
        ),
        spec!(
            "VRP 8 CE",
            0.07,
            plan(CTR0, CTR1, CTR2),
            true,
            (255, 64, 255),
            Rfc792Min,
            false
        ),
        spec!(
            "VRP 5 AR",
            0.05,
            plan(CTR0, CTR1, CTR2),
            true,
            (255, 64, 255),
            UpTo(32),
            false
        ),
        spec!(
            "VRP 8 cap",
            0.03,
            plan(CTR0, CTR1, CTR2),
            true,
            (255, 64, 255),
            Rfc792Min,
            false,
            Some(36)
        ),
        spec!(
            "VRP 8 MPLS",
            0.02,
            plan(CTR0, CTR1, CTR2),
            true,
            (255, 64, 255),
            FullWithExtension(8),
            false
        ),
        spec!(
            "VRP legacy",
            0.01,
            plan(STATIC, CTR0, CTR1),
            true,
            (255, 64, 255),
            Rfc792Min,
            false
        ),
        // Comware-lineage collisions with H3C (4 non-unique sigs).
        comware_a("VRP comware-a", 0.05),
        comware_b("VRP comware-b", 0.04),
        comware_c("VRP comware-c", 0.02),
        comware_d("VRP comware-d", 0.02),
    ];
    expand(&defaults, specs)
}

fn mikrotik() -> Vec<Variant> {
    let defaults = VendorDefaults {
        vendor: Vendor::MikroTik,
        // WISP/edge-ish posture: very responsive, frequently exposes a
        // management service, modest SNMPv3.
        exposure: ExposurePolicy {
            posture: [0.02, 0.08, 0.01, 0.01, 0.04, 0.04, 0.02, 0.78],
            snmp: 0.42,
            open_service: 0.15,
        },
        syn_ack: SynAckProfile {
            window: 14600,
            mss: 1460,
            window_scale: Some(7),
            sack_permitted: true,
            timestamps: true,
            rto_schedule: &[1.0, 2.0, 4.0, 8.0, 16.0],
        },
        banner: "SSH-2.0-ROSSSH",
        engine_id_prefix: "mikrotik",
        background_pps: 60.0,
        errors_from_loopback: false,
    };
    // RouterOS is Linux: the bulk of deployments land on kernel-generation
    // vectors shared with net-snmp boxes (the 4 heavy non-unique sigs of
    // Table 5); 26 version-specific quirk trains are unique.
    let mut specs = vec![
        linux_a("RouterOS 6.44", 0.26),
        linux_b("RouterOS 6.48", 0.18),
        linux_c("RouterOS 7.1", 0.14),
        linux_d("RouterOS 7.10", 0.08),
    ];
    // Unique quirk trains: small shares, distinct vectors.
    type QuirkSpec = (
        &'static str,
        IpidPlan,
        (u8, u8, u8),
        QuotePolicy,
        bool,
        Option<u16>,
    );
    let quirks: [QuirkSpec; 26] = [
        (
            "ROS 6.40",
            plan(CTR0, CTR0, CTR0),
            (64, 64, 64),
            UpTo(32),
            true,
            None,
        ),
        (
            "ROS 6.41",
            plan(CTR0, CTR0, CTR0),
            (64, 64, 64),
            UpTo(36),
            true,
            None,
        ),
        (
            "ROS 6.42",
            plan(CTR0, CTR0, CTR0),
            (64, 64, 64),
            FullPacket,
            false,
            None,
        ),
        (
            "ROS 6.43",
            plan(CTR0, CTR0, CTR0),
            (64, 64, 64),
            Rfc792Min,
            false,
            None,
        ),
        (
            "ROS 6.45",
            plan(CTR0, CTR0, CTR0),
            (255, 64, 64),
            FullPacket,
            true,
            None,
        ),
        (
            "ROS 6.46",
            plan(CTR0, CTR0, CTR0),
            (64, 255, 64),
            FullPacket,
            true,
            None,
        ),
        (
            "ROS 6.47",
            plan(CTR0, CTR0, CTR0),
            (64, 64, 255),
            FullPacket,
            true,
            None,
        ),
        (
            "ROS 6.49",
            plan(CTR0, CTR0, CTR0),
            (64, 64, 64),
            FullPacket,
            true,
            Some(36),
        ),
        (
            "ROS 7.2",
            plan(ZERO, CTR0, CTR0),
            (64, 64, 64),
            Rfc792Min,
            true,
            None,
        ),
        (
            "ROS 7.3",
            plan(ZERO, CTR0, CTR0),
            (64, 64, 64),
            UpTo(32),
            true,
            None,
        ),
        (
            "ROS 7.4",
            plan(ZERO, RAND, CTR0),
            (64, 64, 64),
            Rfc792Min,
            true,
            None,
        ),
        (
            "ROS 7.5",
            plan(ZERO, RAND, CTR0),
            (64, 64, 64),
            UpTo(36),
            true,
            None,
        ),
        (
            "ROS 7.6",
            plan(ZERO, CTR0, CTR0),
            (64, 64, 64),
            FullPacket,
            true,
            Some(44),
        ),
        (
            "ROS 7.7",
            plan(ZERO, RAND, CTR0),
            (64, 64, 64),
            FullPacket,
            false,
            None,
        ),
        (
            "ROS 7.8",
            plan(ZERO, CTR0, CTR0),
            (255, 64, 64),
            FullPacket,
            true,
            None,
        ),
        (
            "ROS 7.9",
            plan(ZERO, RAND, CTR0),
            (64, 64, 255),
            FullPacket,
            true,
            None,
        ),
        (
            "ROS 7.11",
            plan(ZERO, CTR0, CTR0),
            (64, 255, 64),
            FullPacket,
            true,
            None,
        ),
        (
            "ROS 7.12",
            plan(ZERO, RAND, CTR0),
            (64, 64, 64),
            FullWithExtension(8),
            true,
            None,
        ),
        (
            "ROS 6 PPPoE",
            plan(CTR0, CTR0, CTR0),
            (64, 64, 64),
            FullWithExtension(8),
            true,
            None,
        ),
        (
            "ROS 6 hotspot",
            plan(CTR0, CTR0, CTR0),
            (64, 64, 64),
            FullPacket,
            true,
            Some(28),
        ),
        (
            "ROS 6 CHR",
            plan(CTR0, CTR0, CTR0),
            (64, 64, 64),
            UpTo(28),
            false,
            None,
        ),
        (
            "ROS 7 CHR",
            plan(ZERO, RAND, CTR0),
            (64, 64, 64),
            UpTo(28),
            true,
            None,
        ),
        (
            "ROS SwOS",
            plan(DUP, CTR0, CTR0),
            (64, 64, 64),
            Rfc792Min,
            true,
            None,
        ),
        (
            "ROS 6 LTE",
            plan(CTR0, CTR0, CTR0),
            (64, 64, 64),
            Rfc792Min,
            true,
            Some(36),
        ),
        (
            "ROS 7 wifiwave",
            plan(ZERO, CTR0, CTR0),
            (64, 64, 64),
            FullPacket,
            false,
            None,
        ),
        (
            "ROS 7 ax",
            plan(ZERO, RAND, CTR0),
            (255, 64, 64),
            FullPacket,
            true,
            None,
        ),
    ];
    for (family, ipid, ttl, quote, rst, cap) in quirks {
        specs.push(Spec {
            family,
            share: 0.012,
            ipid,
            reflect: false,
            ttl,
            quote,
            rst_from_ack: rst,
            cap,
        });
    }
    expand(&defaults, specs)
}

fn h3c() -> Vec<Variant> {
    let defaults = VendorDefaults {
        vendor: Vendor::H3C,
        exposure: ExposurePolicy {
            posture: [0.04, 0.24, 0.01, 0.01, 0.06, 0.07, 0.02, 0.55],
            snmp: 0.38,
            open_service: 0.04,
        },
        syn_ack: SynAckProfile::minimal(8192, 1460),
        banner: "SSH-2.0-Comware-7.1",
        engine_id_prefix: "comware",
        background_pps: 110.0,
        errors_from_loopback: false,
    };
    let specs = vec![
        // Bulk of H3C deployments collide with Huawei's Comware lineage
        // (4 sigs) and one Linux management plane (Table 5: H3C is mostly
        // non-unique; recall collapses in Table 8).
        comware_a("Comware 7", 0.30),
        comware_b("Comware 5", 0.20),
        comware_c("Comware 7 SP", 0.12),
        comware_d("Comware MSR", 0.10),
        linux_a("H3C mgmt-linux", 0.13),
        // Small unique trains.
        spec!(
            "Comware 7 FW",
            0.05,
            plan(CTR0, CTR1, CTR2),
            true,
            (255, 64, 255),
            FullWithExtension(4),
            false
        ),
        spec!(
            "Comware 9",
            0.04,
            plan(CTR0, CTR1, CTR2),
            true,
            (255, 64, 64),
            FullPacket,
            false
        ),
        spec!(
            "Comware 5 LSW",
            0.03,
            plan(CTR0, CTR1, CTR0),
            true,
            (255, 255, 255),
            FullPacket,
            false
        ),
        spec!(
            "Comware 7 WA",
            0.02,
            plan(CTR0, CTR0, CTR0),
            true,
            (255, 64, 255),
            UpTo(32),
            true
        ),
        spec!(
            "Comware legacy",
            0.01,
            plan(STATIC, CTR0, CTR0),
            true,
            (255, 64, 255),
            FullPacket,
            false
        ),
    ];
    expand(&defaults, specs)
}

fn alcatel_nokia() -> Vec<Variant> {
    let defaults = VendorDefaults {
        vendor: Vendor::AlcatelNokia,
        exposure: ExposurePolicy {
            posture: [0.03, 0.22, 0.01, 0.01, 0.06, 0.07, 0.02, 0.58],
            snmp: 0.45,
            open_service: 0.02,
        },
        syn_ack: SynAckProfile::minimal(10240, 1460),
        banner: "SSH-2.0-OpenSSH_6.6 TiMOS",
        engine_id_prefix: "timos",
        background_pps: 160.0,
        errors_from_loopback: true,
    };
    let specs = vec![
        spec!(
            "TiMOS SR",
            0.7,
            plan(ZERO, CTR0, CTR1),
            false,
            (255, 255, 255),
            Rfc792Min,
            false
        ),
        spec!(
            "TiMOS SAS",
            0.3,
            plan(STATIC, CTR0, CTR1),
            false,
            (255, 255, 255),
            Rfc792Min,
            false
        ),
    ];
    expand(&defaults, specs)
}

fn ericsson() -> Vec<Variant> {
    let defaults = VendorDefaults {
        vendor: Vendor::Ericsson,
        exposure: ExposurePolicy {
            posture: [0.04, 0.24, 0.01, 0.01, 0.06, 0.06, 0.02, 0.56],
            snmp: 0.35,
            open_service: 0.02,
        },
        syn_ack: SynAckProfile::minimal(5840, 1460),
        banner: "SSH-2.0-SEOS",
        engine_id_prefix: "seos",
        background_pps: 130.0,
        errors_from_loopback: true,
    };
    let specs = vec![spec!(
        "IPOS",
        1.0,
        plan(ZERO, ZERO, ZERO),
        false,
        (255, 255, 255),
        Rfc792Min,
        false
    )];
    expand(&defaults, specs)
}

fn brocade() -> Vec<Variant> {
    let defaults = VendorDefaults {
        vendor: Vendor::Brocade,
        exposure: ExposurePolicy {
            posture: [0.03, 0.22, 0.01, 0.01, 0.06, 0.07, 0.02, 0.58],
            snmp: 0.33,
            open_service: 0.04,
        },
        syn_ack: SynAckProfile::minimal(16384, 1460),
        banner: "SSH-2.0-RomSShell_4.62",
        engine_id_prefix: "netiron",
        background_pps: 100.0,
        errors_from_loopback: false,
    };
    let specs = vec![
        // Collides with Cisco IOS 11 (this plus the Linux overlap is why
        // Brocade's precision/recall sag in Table 8).
        legacy_ios_netiron("NetIron legacy", 0.40),
        linux_b("NetIron SLX-linux", 0.15),
        spec!(
            "NetIron MLX",
            0.30,
            plan(CTR0, CTR1, CTR2),
            false,
            (64, 64, 255),
            UpTo(36),
            false
        ),
        spec!(
            "NetIron CES",
            0.15,
            plan(CTR0, CTR1, CTR2),
            false,
            (64, 64, 255),
            FullPacket,
            false
        ),
    ];
    expand(&defaults, specs)
}

fn ruijie() -> Vec<Variant> {
    let defaults = VendorDefaults {
        vendor: Vendor::Ruijie,
        exposure: ExposurePolicy {
            posture: [0.04, 0.24, 0.01, 0.01, 0.06, 0.07, 0.02, 0.55],
            snmp: 0.36,
            open_service: 0.03,
        },
        syn_ack: SynAckProfile::minimal(8192, 1460),
        banner: "SSH-2.0-RGOS_SSH",
        engine_id_prefix: "rgos",
        background_pps: 90.0,
        errors_from_loopback: false,
    };
    let specs = vec![
        spec!(
            "RGOS 11",
            0.8,
            plan(CTR0, CTR1, CTR2),
            true,
            (64, 64, 64),
            Rfc792Min,
            false
        ),
        spec!(
            "RGOS 12",
            0.2,
            plan(CTR0, CTR1, CTR2),
            true,
            (64, 64, 64),
            FullPacket,
            false
        ),
    ];
    expand(&defaults, specs)
}

fn net_snmp() -> Vec<Variant> {
    let defaults = VendorDefaults {
        vendor: Vendor::NetSnmp,
        exposure: ExposurePolicy {
            posture: [0.02, 0.08, 0.01, 0.01, 0.04, 0.04, 0.02, 0.78],
            snmp: 0.50,
            open_service: 0.20,
        },
        syn_ack: SynAckProfile {
            window: 29200,
            mss: 1460,
            window_scale: Some(7),
            sack_permitted: true,
            timestamps: true,
            rto_schedule: &[1.0, 2.0, 4.0, 8.0, 16.0],
        },
        banner: "SSH-2.0-OpenSSH_8.4p1 Debian",
        engine_id_prefix: "netsnmp",
        background_pps: 40.0,
        errors_from_loopback: false,
    };
    let specs = vec![
        // All four kernel-generation vectors collide with MikroTik (and
        // linux_a additionally with H3C's management plane).
        linux_a("Linux 3.x", 0.30),
        linux_b("Linux 4.x min", 0.22),
        linux_c("Linux 4.18+", 0.25),
        linux_d("Linux 5.x", 0.18),
        // One genuinely unique software-router build.
        spec!(
            "FreeBSD frr",
            0.05,
            plan(RAND, CTR0, CTR0),
            false,
            (64, 64, 64),
            Rfc792Min,
            true
        ),
    ];
    expand(&defaults, specs)
}

fn other_vendor(
    vendor: Vendor,
    banner: &'static str,
    prefix: &'static str,
    specs: Vec<Spec>,
) -> Vec<Variant> {
    let defaults = VendorDefaults {
        vendor,
        exposure: ExposurePolicy {
            posture: [0.04, 0.24, 0.01, 0.01, 0.06, 0.07, 0.02, 0.55],
            snmp: 0.30,
            open_service: 0.05,
        },
        syn_ack: SynAckProfile::minimal(8192, 1380),
        banner,
        engine_id_prefix: prefix,
        background_pps: 80.0,
        errors_from_loopback: false,
    };
    expand(&defaults, specs)
}

fn build_standard() -> Catalog {
    let mut variants = BTreeMap::new();
    variants.insert(Vendor::Cisco, cisco());
    variants.insert(Vendor::Juniper, juniper());
    variants.insert(Vendor::Huawei, huawei());
    variants.insert(Vendor::MikroTik, mikrotik());
    variants.insert(Vendor::H3C, h3c());
    variants.insert(Vendor::AlcatelNokia, alcatel_nokia());
    variants.insert(Vendor::Ericsson, ericsson());
    variants.insert(Vendor::Brocade, brocade());
    variants.insert(Vendor::Ruijie, ruijie());
    variants.insert(Vendor::NetSnmp, net_snmp());
    // "Other" vendors: mostly generic embedded stacks colliding with each
    // other (the 18 non-unique "Other" sigs of Table 5) plus a few
    // distinctive ones.
    variants.insert(
        Vendor::Zte,
        other_vendor(
            Vendor::Zte,
            "SSH-2.0-ZTE_SSH",
            "zxros",
            vec![
                embedded_a("ZXROS a", 0.5),
                embedded_c("ZXROS c", 0.3),
                spec!(
                    "ZXROS unique",
                    0.2,
                    plan(CTR0, CTR1, CTR0),
                    true,
                    (64, 255, 255),
                    Rfc792Min,
                    false
                ),
            ],
        ),
    );
    variants.insert(
        Vendor::Extreme,
        other_vendor(
            Vendor::Extreme,
            "SSH-2.0-EXOS",
            "exos",
            vec![
                embedded_b("EXOS b", 0.5),
                embedded_c("EXOS c", 0.3),
                spec!(
                    "EXOS unique",
                    0.2,
                    plan(CTR0, CTR1, CTR1),
                    false,
                    (64, 255, 64),
                    FullPacket,
                    true
                ),
            ],
        ),
    );
    variants.insert(
        Vendor::Arista,
        other_vendor(
            Vendor::Arista,
            "SSH-2.0-OpenSSH_7.6 Arista",
            "eos",
            vec![
                linux_c("EOS linux", 0.6),
                spec!(
                    "EOS unique",
                    0.4,
                    plan(ZERO, CTR0, CTR1),
                    false,
                    (64, 64, 255),
                    FullPacket,
                    true
                ),
            ],
        ),
    );
    variants.insert(
        Vendor::Fortinet,
        other_vendor(
            Vendor::Fortinet,
            "SSH-2.0-FortiSSH",
            "fortios",
            vec![
                embedded_a("FortiOS a", 0.5),
                embedded_b("FortiOS b", 0.3),
                spec!(
                    "FortiOS unique",
                    0.2,
                    plan(RAND, CTR0, CTR1),
                    false,
                    (255, 64, 64),
                    Rfc792Min,
                    false
                ),
            ],
        ),
    );
    variants.insert(
        Vendor::DLink,
        other_vendor(
            Vendor::DLink,
            "SSH-2.0-DLink",
            "dlink",
            vec![embedded_a("DGS a", 0.6), embedded_b("DGS b", 0.4)],
        ),
    );
    variants.insert(
        Vendor::Teldat,
        other_vendor(
            Vendor::Teldat,
            "SSH-2.0-Teldat",
            "cit",
            vec![embedded_b("CIT b", 0.5), embedded_c("CIT c", 0.5)],
        ),
    );
    Catalog { variants }
}

/// Approximate global market share of router vendors (prior for topology
/// generation; regional skews are applied on top by `lfp-topo`).
pub fn global_market_share() -> Vec<(Vendor, f64)> {
    vec![
        (Vendor::Cisco, 0.40),
        (Vendor::Huawei, 0.155),
        (Vendor::MikroTik, 0.135),
        (Vendor::Juniper, 0.12),
        (Vendor::H3C, 0.040),
        (Vendor::NetSnmp, 0.040),
        (Vendor::Brocade, 0.018),
        (Vendor::AlcatelNokia, 0.022),
        (Vendor::Ruijie, 0.012),
        (Vendor::Ericsson, 0.006),
        (Vendor::Zte, 0.016),
        (Vendor::Extreme, 0.010),
        (Vendor::Arista, 0.010),
        (Vendor::Fortinet, 0.008),
        (Vendor::DLink, 0.005),
        (Vendor::Teldat, 0.003),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    /// The feature-vector-relevant projection of a profile.
    fn vector_key(profile: &StackProfile) -> String {
        format!(
            "{:?}|{}|{:?}|{:?}|{}|{:?}",
            profile.ipid,
            profile.icmp_echo_reflect_ipid,
            profile.ttl,
            profile.quote,
            profile.rst_seq_from_ack,
            profile.echo_payload_cap
        )
    }

    #[test]
    fn catalog_covers_all_vendors() {
        let catalog = Catalog::standard();
        for vendor in Vendor::ALL {
            assert!(
                !catalog.variants(vendor).is_empty(),
                "missing variants for {vendor}"
            );
        }
        assert!(catalog.len() >= 100, "catalog too small: {}", catalog.len());
    }

    #[test]
    fn anchor_profiles_reproduce_table6_relationship() {
        let cisco = default_variant(Vendor::Cisco);
        let juniper = default_variant(Vendor::Juniper);
        assert_eq!(cisco.family, "IOS 15");
        assert_eq!(juniper.family, "JunOS 18");
        // Identical everywhere except the ICMP initial TTL.
        assert_eq!(cisco.ipid, juniper.ipid);
        assert_eq!(cisco.quote, juniper.quote);
        assert_eq!(cisco.rst_seq_from_ack, juniper.rst_seq_from_ack);
        assert_eq!(cisco.ttl.tcp, juniper.ttl.tcp);
        assert_eq!(cisco.ttl.udp, juniper.ttl.udp);
        assert_eq!(cisco.ttl.icmp, 255);
        assert_eq!(juniper.ttl.icmp, 64);
    }

    #[test]
    fn within_vendor_vectors_are_distinct() {
        // Unique signatures require distinct vectors inside each vendor;
        // collisions must only be cross-vendor.
        let catalog = Catalog::standard();
        for vendor in Vendor::ALL {
            let mut seen = HashMap::new();
            for variant in catalog.variants(vendor) {
                let key = vector_key(&variant.profile);
                if let Some(previous) = seen.insert(key.clone(), variant.profile.family) {
                    panic!(
                        "{vendor}: {} and {} share vector {key}",
                        previous, variant.profile.family
                    );
                }
            }
        }
    }

    #[test]
    fn engineered_collisions_exist_across_vendors() {
        let catalog = Catalog::standard();
        let mut by_vector: HashMap<String, Vec<Vendor>> = HashMap::new();
        for vendor in Vendor::ALL {
            for variant in catalog.variants(vendor) {
                by_vector
                    .entry(vector_key(&variant.profile))
                    .or_default()
                    .push(vendor);
            }
        }
        let collisions: Vec<_> = by_vector.values().filter(|v| v.len() > 1).collect();
        assert!(
            collisions.len() >= 8,
            "expected ≥8 cross-vendor collisions, found {}",
            collisions.len()
        );
        // The specific ones the paper motivates:
        let has = |a: Vendor, b: Vendor| {
            by_vector
                .values()
                .any(|vendors| vendors.contains(&a) && vendors.contains(&b))
        };
        assert!(has(Vendor::MikroTik, Vendor::NetSnmp), "Linux lineage");
        assert!(has(Vendor::Huawei, Vendor::H3C), "Comware lineage");
        assert!(has(Vendor::Cisco, Vendor::Brocade), "legacy IOS/NetIron");
    }

    #[test]
    fn shares_are_positive_and_sane() {
        let catalog = Catalog::standard();
        for vendor in Vendor::ALL {
            let total: f64 = catalog.variants(vendor).iter().map(|v| v.share).sum();
            assert!(total > 0.5 && total < 1.5, "{vendor}: share sum {total}");
            for variant in catalog.variants(vendor) {
                assert!(variant.share > 0.0);
            }
        }
    }

    #[test]
    fn sampling_respects_shares() {
        let catalog = Catalog::standard();
        let mut rng = SmallRng::seed_from_u64(7);
        let mut counts: HashMap<&'static str, usize> = HashMap::new();
        for _ in 0..20_000 {
            let profile = catalog.sample(Vendor::Cisco, &mut rng);
            *counts.entry(profile.family).or_default() += 1;
        }
        // The anchor (share 0.30) must dominate the rare trains.
        let anchor = counts["IOS 15"];
        assert!(anchor > 4_000, "anchor sampled only {anchor} times");
        let rare = counts.get("IOS legacy GSR").copied().unwrap_or(0);
        assert!(rare < anchor / 10);
    }

    #[test]
    fn market_share_sums_to_one() {
        let total: f64 = global_market_share().iter().map(|(_, share)| share).sum();
        assert!((total - 1.0).abs() < 1e-9, "market share sums to {total}");
    }

    #[test]
    fn cisco_has_25_unique_and_1_colliding_variant() {
        let catalog = Catalog::standard();
        assert_eq!(catalog.variants(Vendor::Cisco).len(), 26);
        assert_eq!(catalog.variants(Vendor::Juniper).len(), 15);
        assert_eq!(catalog.variants(Vendor::MikroTik).len(), 30);
        assert_eq!(catalog.variants(Vendor::Huawei).len(), 12);
    }
}
