//! Stack profiles: the feature-relevant knobs of a router OS family.
//!
//! A [`StackProfile`] captures everything observable about how a particular
//! router OS answers probes — exactly the dimensions the LFP feature set
//! (paper Table 1) measures, plus the service-exposure knobs the baselines
//! (Nmap, Hershel, banner grabbing) depend on. Profiles are *descriptions*;
//! the stateful object that answers packets is [`crate::device::RouterDevice`].

use crate::ipid::IpidPlan;
use crate::vendor::Vendor;

/// Initial TTL values per *probe* protocol.
///
/// Note the keying: the response to a UDP probe is an ICMP error, but many
/// stacks generate ICMP errors in a different path (often the control
/// plane) than echo replies, so its initial TTL can differ from the echo
/// reply's — e.g. JunOS uses 64 for echo replies but 255 for port
/// unreachable. This is precisely the (UDP, ICMP, TCP) iTTL triple of
/// Table 1/Table 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TtlPlan {
    /// Initial TTL of ICMP echo replies.
    pub icmp: u8,
    /// Initial TTL of TCP RSTs.
    pub tcp: u8,
    /// Initial TTL of ICMP errors answering UDP probes.
    pub udp: u8,
}

impl TtlPlan {
    /// Convenience constructor in (icmp, tcp, udp) order.
    pub const fn new(icmp: u8, tcp: u8, udp: u8) -> Self {
        TtlPlan { icmp, tcp, udp }
    }
}

/// How much of an offending datagram a stack quotes inside ICMP errors.
///
/// This determines the "UDP response size" feature: with LFP's 40-byte UDP
/// probe (20 IP + 8 UDP + 12 payload), RFC 792 minimal quoting yields a
/// 56-byte response, full quoting 68 bytes, and so on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QuotePolicy {
    /// RFC 792 minimum: original IP header + 8 bytes (28 quoted bytes).
    Rfc792Min,
    /// Quote the entire offending datagram (RFC 1812 "as much as possible").
    FullPacket,
    /// Quote at most `n` bytes of the offending datagram.
    UpTo(u16),
    /// Quote the full datagram and append an extension structure of `n`
    /// bytes (RFC 4884-style length attribute, seen on some carrier gear).
    FullWithExtension(u16),
}

impl QuotePolicy {
    /// Number of quoted (plus extension) bytes for an offending datagram of
    /// `original_len` bytes.
    pub fn quoted_len(self, original_len: usize) -> usize {
        match self {
            QuotePolicy::Rfc792Min => original_len.min(28),
            QuotePolicy::FullPacket => original_len,
            QuotePolicy::UpTo(n) => original_len.min(n as usize),
            QuotePolicy::FullWithExtension(n) => original_len + n as usize,
        }
    }
}

/// SYN-ACK characteristics for devices that expose a TCP service; read by
/// the Hershel and Nmap baselines, not by LFP itself.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SynAckProfile {
    /// Advertised window.
    pub window: u16,
    /// MSS option.
    pub mss: u16,
    /// Window-scale option, if sent.
    pub window_scale: Option<u8>,
    /// Whether SACK-permitted is sent.
    pub sack_permitted: bool,
    /// Whether timestamps are sent.
    pub timestamps: bool,
    /// SYN-ACK retransmission timeouts in seconds (Hershel's RTO feature).
    pub rto_schedule: &'static [f64],
}

impl SynAckProfile {
    /// A bare profile typical of embedded control planes.
    pub const fn minimal(window: u16, mss: u16) -> Self {
        SynAckProfile {
            window,
            mss,
            window_scale: None,
            sack_permitted: false,
            timestamps: false,
            rto_schedule: &[3.0, 6.0, 12.0],
        }
    }
}

/// Filtering-posture distribution controlling which devices expose what.
///
/// A device's responsiveness is sampled *once per device* as a joint
/// posture over the three probe protocols — not independently per
/// protocol. This captures the operational reality (an ACL either permits
/// a protocol or it doesn't) and is what produces the paper's two
/// signature observations: an IP answers all three probes of a protocol
/// or none (Figures 5/6), and per-protocol responsiveness is strongly
/// correlated (Figure 4's mass at 0 and 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExposurePolicy {
    /// Weights over response postures, i.e. the 8 subsets of
    /// {ICMP, TCP, UDP}, in the order: none, icmp, tcp, udp, icmp+tcp,
    /// icmp+udp, tcp+udp, all. Need not be normalised.
    pub posture: [f64; 8],
    /// Probability the SNMPv3 agent is reachable from the open Internet.
    pub snmp: f64,
    /// Probability a management TCP service (with banner) is exposed.
    pub open_service: f64,
}

impl ExposurePolicy {
    /// Index into `posture` for a (icmp, tcp, udp) combination.
    pub fn posture_index(icmp: bool, tcp: bool, udp: bool) -> usize {
        match (icmp, tcp, udp) {
            (false, false, false) => 0,
            (true, false, false) => 1,
            (false, true, false) => 2,
            (false, false, true) => 3,
            (true, true, false) => 4,
            (true, false, true) => 5,
            (false, true, true) => 6,
            (true, true, true) => 7,
        }
    }

    /// The (icmp, tcp, udp) combination for a posture index.
    pub fn posture_flags(index: usize) -> (bool, bool, bool) {
        [
            (false, false, false),
            (true, false, false),
            (false, true, false),
            (false, false, true),
            (true, true, false),
            (true, false, true),
            (false, true, true),
            (true, true, true),
        ][index]
    }

    /// Sample a posture from the weight vector.
    pub fn sample_posture<R: rand::Rng>(&self, rng: &mut R) -> (bool, bool, bool) {
        let total: f64 = self.posture.iter().sum();
        let mut draw = rng.gen::<f64>() * total;
        for (index, &weight) in self.posture.iter().enumerate() {
            if draw < weight {
                return Self::posture_flags(index);
            }
            draw -= weight;
        }
        Self::posture_flags(7)
    }

    /// Marginal probability a device answers the given protocol
    /// (0 = icmp, 1 = tcp, 2 = udp).
    pub fn marginal(&self, protocol: usize) -> f64 {
        let total: f64 = self.posture.iter().sum();
        let mut sum = 0.0;
        for (index, &weight) in self.posture.iter().enumerate() {
            let flags = Self::posture_flags(index);
            let answers = [flags.0, flags.1, flags.2][protocol];
            if answers {
                sum += weight;
            }
        }
        sum / total
    }
}

/// The complete behavioural description of a router OS family.
#[derive(Debug, Clone, PartialEq)]
pub struct StackProfile {
    /// The vendor shipping this stack.
    pub vendor: Vendor,
    /// Human-readable OS family / release train ("IOS 15", "JunOS 18", ...).
    pub family: &'static str,
    /// IPID allocation plan.
    pub ipid: IpidPlan,
    /// Whether echo replies reflect the request's IPID verbatim (the "ICMP
    /// IPID echo" feature).
    pub icmp_echo_reflect_ipid: bool,
    /// Initial TTLs per probe protocol.
    pub ttl: TtlPlan,
    /// ICMP error quoting policy.
    pub quote: QuotePolicy,
    /// RFC 793 §3.4 compliance: RST to a SYN with ACK set takes its
    /// sequence number from the ACK field (true) or uses zero (false).
    pub rst_seq_from_ack: bool,
    /// Whether ICMP errors (port unreachable) are sourced from the
    /// router's canonical/loopback interface instead of the probed one.
    /// Common on big-iron control planes; it is the behaviour
    /// iffinder-style alias resolution exploits.
    pub errors_from_loopback: bool,
    /// Maximum echo payload reflected in replies (None = unbounded). Stacks
    /// that cap the reflection produce smaller "ICMP echo response size"
    /// feature values.
    pub echo_payload_cap: Option<u16>,
    /// Background traffic rate (packets/s) driving IPID counters.
    pub background_pps: f64,
    /// Exposure probabilities.
    pub exposure: ExposurePolicy,
    /// SYN-ACK shape for exposed services.
    pub syn_ack: SynAckProfile,
    /// Banner returned by an exposed management service.
    pub banner: &'static str,
    /// Text prefix used when generating this stack's SNMPv3 engine ID.
    pub engine_id_prefix: &'static str,
}

impl StackProfile {
    /// Expected ICMP echo response size on the wire (IP total length) for a
    /// request with `payload_len` bytes of payload.
    pub fn echo_response_len(&self, payload_len: usize) -> usize {
        let reflected = match self.echo_payload_cap {
            Some(cap) => payload_len.min(cap as usize),
            None => payload_len,
        };
        20 + 8 + reflected
    }

    /// Expected ICMP port-unreachable response size (IP total length) for
    /// an offending datagram of `original_len` bytes.
    pub fn unreachable_response_len(&self, original_len: usize) -> usize {
        20 + 8 + self.quote.quoted_len(original_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quote_policies_yield_paper_sizes() {
        // LFP's UDP probe datagram is 40 bytes (20 IP + 8 UDP + 12 payload).
        assert_eq!(QuotePolicy::Rfc792Min.quoted_len(40), 28); // → 56-byte response
        assert_eq!(QuotePolicy::FullPacket.quoted_len(40), 40); // → 68-byte response
        assert_eq!(QuotePolicy::UpTo(128).quoted_len(40), 40);
        assert_eq!(QuotePolicy::UpTo(32).quoted_len(40), 32);
        assert_eq!(QuotePolicy::FullWithExtension(8).quoted_len(40), 48); // → 76
    }

    #[test]
    fn response_lengths_match_table6() {
        let profile = StackProfile {
            vendor: Vendor::Cisco,
            family: "test",
            ipid: IpidPlan::random_all(),
            icmp_echo_reflect_ipid: false,
            ttl: TtlPlan::new(255, 64, 255),
            quote: QuotePolicy::Rfc792Min,
            rst_seq_from_ack: false,
            errors_from_loopback: false,
            echo_payload_cap: None,
            background_pps: 50.0,
            exposure: ExposurePolicy {
                posture: [0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0],
                snmp: 0.5,
                open_service: 0.0,
            },
            syn_ack: SynAckProfile::minimal(4128, 536),
            banner: "",
            engine_id_prefix: "x",
        };
        // Table 6: ICMP echo response 84, UDP response 56 (probe = 56-byte
        // payload ping, 40-byte UDP datagram).
        assert_eq!(profile.echo_response_len(56), 84);
        assert_eq!(profile.unreachable_response_len(40), 56);
    }

    #[test]
    fn echo_cap_truncates() {
        let mut profile_cap = None;
        profile_cap.replace(16u16);
        let reflected = match profile_cap {
            Some(cap) => 56usize.min(cap as usize),
            None => 56,
        };
        assert_eq!(20 + 8 + reflected, 44);
    }
}
