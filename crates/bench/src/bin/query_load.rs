//! query-load — open-loop pipelined load generator for `vendor-queryd`.
//!
//! ```text
//! query-load [--addr 127.0.0.1:7377] [--connections 512] [--pipeline 16]
//!            [--requests-per-conn 200] [--churn-every 0] [--distinct 64]
//!            [--wait-secs 30] [--deadline-secs 180] [--threads 1]
//!            [--phase serve] [--scaling-loops N]
//!            [--bench-json BENCH_campaign.json] [--shutdown]
//! ```
//!
//! Where `query-bench` is a *closed-loop* client (one request per round
//! trip — it measures latency under polite load), this generator drives
//! the hostile schedule the event-loop daemon exists for: hundreds of
//! concurrent connections, each keeping `--pipeline` requests in flight
//! without waiting for answers, optionally tearing the connection down
//! and reconnecting every `--churn-every` responses. Connections are
//! multiplexed over the same `poll(2)` layer the server uses
//! (`lfp_serve::sys`) from `--threads N` driver threads (default one —
//! cheap at 512+ sockets; raise it when one generator core cannot
//! saturate a multi-loop daemon).
//!
//! Results land in `BENCH_campaign.json` under `--phase` (default
//! `serve`). When writing the `serve` phase and a `serve_baseline`
//! phase (the thread-per-connection daemon measured by an earlier run
//! with `--phase serve_baseline`) is present, the phase also records
//! the baseline throughput and the event-loop/baseline ratio CI
//! asserts on.
//!
//! `--scaling-loops N` tags the run as one cell of the **serve scaling
//! sweep** (the daemon is expected to be running with `--loops N`): the
//! run additionally merges a `loops{N}_conns{C}` cell into the
//! `serve_scaling` phase, and once both the `loops1_conns512` and
//! `loops4_conns512` cells are present the phase records
//! `speedup_4loops_512` — the multi-loop scaling ratio CI asserts on.
//!
//! `--cluster` switches to the **replication scenario**: `--addr` is a
//! primary running with `--serve-replicas`, each `--follower ADDR` a
//! follower of it, and each `--ingest-delta FILE` a delta the primary
//! is told to ingest (`repl_ingest`) partway through the run — so
//! epochs advance *while* every node is being queried. The driver
//! maintains one global `min_epoch` floor (the highest epoch any reply
//! echoed) and splices it into every request: a correct node either
//! answers at ≥ the floor or refuses with the typed `stale_epoch`
//! envelope (counted, retried until the follower catches up). An `ok`
//! reply *below* the floor is a **stale answer** — the invariant
//! violation the `replication` phase records and CI asserts is zero.
//! After the rounds the driver waits for every follower to converge on
//! the primary's epoch, then replays a sample of the mix against every
//! node twice and requires the warm replies to be **byte-identical**
//! across replicas at equal epochs. Exit is nonzero on any stale
//! answer, any mismatched reply, or a follower that never converged.
//!
//! `--store-compaction` needs no daemon at all: it builds a world,
//! measures `--epochs` fresh snapshot deltas, ingests them one at a
//! time into a store persisted as a **segmented epoch log** with the
//! background compactor armed at `--compact-after`, and hammers the
//! engine from a query thread the whole time — then replays the same
//! deltas against a monolithic-file store. The `store_compaction`
//! phase records per-epoch save times for both disciplines (segmented
//! must be O(delta), i.e. faster), the compactor's counters, and the
//! query errors observed while segments were being folded (CI asserts
//! zero).
//!
//! `--chaos` switches to the resilient-client scenario: the daemon is
//! expected to be running under a fault-injecting I/O policy and/or an
//! admission-control watermark (`vendor-queryd --fault-profile
//! aggressive --queue-watermark N`), and every connection retries
//! `overloaded` sheds and connection resets with seeded, jittered
//! exponential backoff ([`lfp_bench::mix::Backoff`]) from a global
//! `--retry-budget`. The run records a `chaos` phase whose
//! `lost_acknowledged` field CI asserts is **zero**: every request
//! slot ends in an acknowledged success, no received reply goes
//! unattributed, and the retry budget is not exhausted — the
//! client-observable statement of "graceful degradation". Churn is
//! ignored under `--chaos` (the injected resets *are* the churn).

use lfp_analysis::json::{parse, JsonBuilder, JsonValue};
use lfp_analysis::World;
use lfp_bench::mix::{build_mix, connect_with_retry, request, Backoff};
use lfp_bench::{measure_deltas, merge_bench_phase, read_bench_phase};
use lfp_net::link::splitmix64;
use lfp_obs::Histogram;
use lfp_query::{wire, FrameDecoder};
use lfp_serve::answer_line;
use lfp_serve::sys::{poll_fds, PollFd, POLLIN, POLLOUT};
use lfp_store::{CompactionPolicy, Compactor, Store};
use lfp_topo::Scale;
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    let mut args = std::env::args().skip(1);
    let mut addr = "127.0.0.1:7377".to_string();
    let mut connections = 512usize;
    let mut pipeline = 16usize;
    let mut requests_per_conn = 200usize;
    let mut churn_every = 0usize;
    let mut distinct = 64usize;
    let mut wait_secs = 30u64;
    let mut deadline_secs = 180u64;
    let mut phase_name: Option<String> = None;
    let mut bench_json = "BENCH_campaign.json".to_string();
    let mut shutdown = false;
    let mut chaos = false;
    let mut seed = 1u64;
    let mut retry_budget = 100_000u64;
    let mut threads = 1usize;
    let mut scaling_loops: Option<u64> = None;
    let mut cluster = false;
    let mut followers: Vec<String> = Vec::new();
    let mut ingest_deltas: Vec<String> = Vec::new();
    let mut rounds = 60usize;
    let mut store_compaction = false;
    let mut epochs = 20usize;
    let mut compact_after = 5usize;
    let mut scale_name = "tiny".to_string();

    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => {
                addr = args
                    .next()
                    .unwrap_or_else(|| usage("--addr needs host:port"))
            }
            "--connections" => connections = parse_number(args.next(), "--connections"),
            "--pipeline" => pipeline = parse_number(args.next(), "--pipeline"),
            "--requests-per-conn" => {
                requests_per_conn = parse_number(args.next(), "--requests-per-conn")
            }
            "--churn-every" => churn_every = parse_number(args.next(), "--churn-every"),
            "--distinct" => distinct = parse_number(args.next(), "--distinct"),
            "--wait-secs" => wait_secs = parse_number(args.next(), "--wait-secs"),
            "--deadline-secs" => deadline_secs = parse_number(args.next(), "--deadline-secs"),
            "--phase" => {
                phase_name = Some(args.next().unwrap_or_else(|| usage("--phase needs a name")))
            }
            "--bench-json" => {
                bench_json = args
                    .next()
                    .unwrap_or_else(|| usage("--bench-json needs a path"))
            }
            "--threads" => threads = parse_number(args.next(), "--threads"),
            "--scaling-loops" => scaling_loops = Some(parse_number(args.next(), "--scaling-loops")),
            "--shutdown" => shutdown = true,
            "--chaos" => chaos = true,
            "--cluster" => cluster = true,
            "--follower" => followers.push(
                args.next()
                    .unwrap_or_else(|| usage("--follower needs host:port")),
            ),
            "--ingest-delta" => ingest_deltas.push(
                args.next()
                    .unwrap_or_else(|| usage("--ingest-delta needs a file path")),
            ),
            "--rounds" => rounds = parse_number(args.next(), "--rounds"),
            "--seed" => seed = parse_number(args.next(), "--seed"),
            "--retry-budget" => retry_budget = parse_number(args.next(), "--retry-budget"),
            "--store-compaction" => store_compaction = true,
            "--epochs" => epochs = parse_number(args.next(), "--epochs"),
            "--compact-after" => compact_after = parse_number(args.next(), "--compact-after"),
            "--scale" => scale_name = args.next().unwrap_or_else(|| usage("--scale needs a name")),
            other => usage(&format!("unknown argument '{other}'")),
        }
    }
    let connections = connections.max(1);
    let pipeline = pipeline.max(1);
    let requests_per_conn = requests_per_conn.max(1);
    let threads = threads.clamp(1, connections);
    let phase_name = phase_name.unwrap_or_else(|| {
        if cluster {
            "replication".to_string()
        } else if chaos {
            "chaos".to_string()
        } else if store_compaction {
            "store_compaction".to_string()
        } else {
            "serve".to_string()
        }
    });

    if store_compaction {
        let code = store_compaction_drive(
            &scale_name,
            epochs.max(1),
            compact_after.max(1),
            &bench_json,
            &phase_name,
        );
        std::process::exit(code);
    }

    if cluster {
        let code = cluster_drive(
            &addr,
            &followers,
            &ingest_deltas,
            rounds.max(1),
            distinct,
            wait_secs,
            Duration::from_secs(deadline_secs),
            &bench_json,
            &phase_name,
            shutdown,
        );
        std::process::exit(code);
    }

    // -- bootstrap: wait for the daemon, fetch the catalog, warm ------
    // Under chaos the daemon is injecting faults on every connection,
    // so the bootstrap itself must already tolerate resets: retry the
    // whole connect-and-ask sequence instead of dying on the first cut.
    let deadline = Instant::now() + Duration::from_secs(wait_secs);
    let mut probe;
    let catalog = loop {
        probe = connect_with_retry(&addr, Duration::from_secs(wait_secs))
            .unwrap_or_else(|error| fail(&error));
        match request(&mut probe, "{\"query\":\"catalog\"}") {
            Ok(reply) => break reply,
            Err(error) if chaos && Instant::now() < deadline => {
                eprintln!("catalog attempt failed ({error}); retrying");
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(error) => fail(&format!("catalog query failed: {error}")),
        }
    };
    let catalog =
        parse(&catalog).unwrap_or_else(|error| fail(&format!("bad catalog JSON: {error}")));
    if catalog.get("ok").and_then(JsonValue::as_bool) != Some(true) {
        fail(&format!("catalog refused: {}", catalog.render()));
    }
    let result = catalog.get("result").unwrap_or(&JsonValue::Null);
    let mix = build_mix(result, distinct)
        .unwrap_or_else(|| fail("catalog advertised no AS ids to query"));
    let mut warm_errors = 0usize;
    for line in &mix {
        match request(&mut probe, line) {
            Ok(reply) if reply.contains("\"ok\": true") => {}
            _ => warm_errors += 1,
        }
    }
    if warm_errors > 0 && !chaos {
        eprintln!("warning: {warm_errors} queries failed during warm-up");
    }
    // The bootstrap replies (catalog + warm-up) were acknowledged by
    // this client too: a reconciliation against the daemon's response
    // ledger must count them alongside the timed run.
    let bootstrap_acked = 1 + (mix.len() - warm_errors) as u64;
    eprintln!(
        "driving {addr}: {connections} connections × {requests_per_conn} requests, \
         pipeline {pipeline}, churn every {churn_every}, {} distinct queries{}",
        mix.len(),
        if chaos { ", chaos mode" } else { "" },
    );

    let total = (connections * requests_per_conn) as u64;
    let exit_code = if chaos {
        let run = chaos_drive(
            &addr,
            &mix,
            connections,
            pipeline,
            requests_per_conn,
            Duration::from_secs(deadline_secs),
            seed,
            retry_budget,
        );
        let qps = run.ok as f64 / run.seconds.max(1e-9);
        println!(
            "{phase_name}: {}/{total} acknowledged in {:.2}s → {qps:.0} q/s \
             ({} sheds retried, {} reconnects, {} retries used of {retry_budget}, \
             {} lost acknowledged)",
            run.ok, run.seconds, run.sheds, run.reconnects, run.retries_used, run.lost
        );
        // The daemon's own accounting closes the loop: nonzero
        // injected-fault and shed counters prove the run actually
        // exercised the chaos path rather than sailing through.
        let stats = probe_stats(&addr);
        write_chaos_phase(
            &bench_json,
            &phase_name,
            connections,
            pipeline,
            &run,
            retry_budget,
            stats.as_ref(),
        );
        (run.lost > 0 || run.retry_budget_remaining == 0) as i32
    } else {
        // -- timed open-loop run --------------------------------------
        let run = drive_multi(
            &addr,
            &mix,
            connections,
            pipeline,
            requests_per_conn,
            churn_every,
            Duration::from_secs(deadline_secs),
            threads,
        );
        let qps = run.ok as f64 / run.seconds.max(1e-9);
        let (p50, p90, p99, p999, max) = (
            run.latency_us.quantile(0.50),
            run.latency_us.quantile(0.90),
            run.latency_us.quantile(0.99),
            run.latency_us.quantile(0.999),
            run.latency_us.max(),
        );
        println!(
            "{phase_name}: {}/{total} pipelined queries acknowledged in {:.2}s → {qps:.0} q/s \
             (p50 {p50}µs, p90 {p90}µs, p99 {p99}µs, p999 {p999}µs, max {max}µs, \
             {} reconnects, {} errors)",
            run.ok, run.seconds, run.churn_events, run.errors
        );

        write_phase(
            &bench_json,
            &phase_name,
            connections,
            pipeline,
            run.ok,
            run.errors,
            run.churn_events,
            run.seconds,
            qps,
            &run.latency_us,
            bootstrap_acked,
        );
        if let Some(loops) = scaling_loops {
            write_scaling_cell(
                &bench_json,
                loops,
                connections,
                run.ok,
                run.errors,
                run.seconds,
                qps,
            );
        }
        (run.errors > 0) as i32
    };

    if shutdown {
        send_shutdown(&addr, chaos, &mut probe);
    }
    if exit_code != 0 {
        std::process::exit(exit_code);
    }
}

/// Ask the daemon for its `stats` control answer, tolerating injected
/// resets on the probe connection itself (bounded retries, read
/// timeout so a killed reply can't hang the run).
fn probe_stats(addr: &str) -> Option<JsonValue> {
    for _attempt in 0..20 {
        let Ok(stream) = TcpStream::connect(addr) else {
            std::thread::sleep(Duration::from_millis(50));
            continue;
        };
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(Duration::from_secs(5))).ok();
        let mut reader = BufReader::new(match stream.try_clone() {
            Ok(clone) => clone,
            Err(_) => continue,
        });
        let mut stream = stream;
        if writeln!(stream, "{{\"query\":\"stats\"}}").is_err() {
            continue;
        }
        let mut reply = String::new();
        if matches!(reader.read_line(&mut reply), Ok(n) if n > 0) {
            if let Ok(value) = parse(reply.trim_end()) {
                if value.get("ok").and_then(JsonValue::as_bool) == Some(true) {
                    return value.get("result").cloned();
                }
            }
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("warning: could not fetch stats from {addr}");
    None
}

/// Send the shutdown control query. In chaos mode the bootstrap probe
/// may long since have been reset, so retry over fresh connections
/// until the acknowledgement (or the drain refusing new connections)
/// confirms the daemon got it.
fn send_shutdown(addr: &str, chaos: bool, probe: &mut lfp_bench::mix::Connection) {
    if !chaos {
        let _ = request(probe, "{\"query\":\"shutdown\"}");
        eprintln!("sent shutdown");
        return;
    }
    for _attempt in 0..20 {
        let Ok(stream) = TcpStream::connect(addr) else {
            // Refusing connections: the daemon is already draining.
            eprintln!("sent shutdown");
            return;
        };
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(Duration::from_secs(5))).ok();
        let mut reader = BufReader::new(match stream.try_clone() {
            Ok(clone) => clone,
            Err(_) => continue,
        });
        let mut stream = stream;
        if writeln!(stream, "{{\"query\":\"shutdown\"}}").is_err() {
            continue;
        }
        let mut reply = String::new();
        if matches!(reader.read_line(&mut reply), Ok(n) if n > 0) && reply.contains("shutting down")
        {
            eprintln!("sent shutdown");
            return;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("warning: shutdown acknowledgement never arrived");
}

fn usage(message: &str) -> ! {
    eprintln!("{message}");
    eprintln!(
        "usage: query-load [--addr HOST:PORT] [--connections N] [--pipeline N] \
         [--requests-per-conn N] [--churn-every N] [--distinct N] [--wait-secs N] \
         [--deadline-secs N] [--threads N] [--phase NAME] [--scaling-loops N] \
         [--bench-json PATH] [--shutdown] [--chaos] [--seed N] [--retry-budget N] \
         [--cluster] [--follower HOST:PORT]... [--ingest-delta FILE]... [--rounds N] \
         [--store-compaction] [--epochs N] [--compact-after N] [--scale NAME]"
    );
    std::process::exit(2);
}

fn fail(message: &str) -> ! {
    eprintln!("query-load: {message}");
    std::process::exit(1);
}

fn parse_number<T: std::str::FromStr>(value: Option<String>, flag: &str) -> T {
    value
        .and_then(|text| text.parse().ok())
        .unwrap_or_else(|| usage(&format!("{flag} needs a number")))
}

// ---------------------------------------------------------------------
// The segmented-store scenario (`--store-compaction`)
// ---------------------------------------------------------------------

/// Drive the segmented epoch log end to end, no daemon involved: build
/// a world, measure `epochs` fresh snapshot deltas, then ingest them
/// one at a time into a store persisted as a segmented log (background
/// compactor armed at `--compact-after`) while a query thread hammers
/// the engine the whole time. A second pass replays the identical
/// deltas against a monolithic-file store as the baseline. The phase
/// records per-epoch save times for both disciplines (the O(delta)
/// claim CI asserts on), the compactor's counters, and the number of
/// query errors observed while segments were being folded (must be 0).
fn store_compaction_drive(
    scale_name: &str,
    epochs: usize,
    compact_after: usize,
    bench_json: &str,
    phase_name: &str,
) -> i32 {
    let scale = Scale::by_name(scale_name)
        .unwrap_or_else(|| fail(&format!("unknown scale '{scale_name}'")));
    eprintln!("building world at scale '{scale_name}' and measuring {epochs} delta campaigns…");
    let world = Arc::new(World::build(scale));
    let deltas = measure_deltas(&world, epochs);

    let root = std::env::temp_dir().join(format!("query-load-compaction-{}", std::process::id()));
    let seg_dir = root.join("segmented");
    let mono_file = root.join("store.lfp");
    if let Err(error) = std::fs::create_dir_all(&root) {
        fail(&format!(
            "cannot create scratch dir {}: {error}",
            root.display()
        ));
    }

    // -- segmented pass: ingest + per-epoch sealed segments, compactor
    //    folding in the background, queries running throughout --------
    let store = Arc::new(Store::from_world(Arc::clone(&world)));
    if let Err(error) = store.save_segmented(&seg_dir) {
        fail(&format!("base save failed: {error}"));
    }
    let mut compactor = Compactor::spawn(
        Arc::clone(&store),
        CompactionPolicy::after_segments(compact_after),
    );

    let stop = Arc::new(AtomicBool::new(false));
    let query_errors = Arc::new(AtomicU64::new(0));
    let queries_answered = Arc::new(AtomicU64::new(0));
    let query_thread = {
        let store = Arc::clone(&store);
        let stop = Arc::clone(&stop);
        let errors = Arc::clone(&query_errors);
        let answered = Arc::clone(&queries_answered);
        // The same lines a live daemon would serve: bootstrap the mix
        // from the engine's own catalog answer.
        let catalog = answer_line("{\"query\":\"catalog\"}", &store.engine());
        let catalog = parse(&catalog).unwrap_or_else(|e| fail(&format!("bad catalog: {e:?}")));
        let mix = build_mix(catalog.get("result").unwrap_or(&JsonValue::Null), 32)
            .unwrap_or_else(|| fail("catalog advertised no AS ids"));
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                for line in &mix {
                    let reply = answer_line(line, &store.engine());
                    if reply.contains("\"ok\": true") {
                        answered.fetch_add(1, Ordering::Relaxed);
                    } else {
                        errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        })
    };

    let run_start = Instant::now();
    let mut seg_save_ms: Vec<f64> = Vec::with_capacity(epochs);
    let mut seg_save_bytes: Vec<u64> = Vec::with_capacity(epochs);
    for delta in &deltas {
        if let Err(error) = store.ingest(delta.clone()) {
            fail(&format!("segmented ingest failed: {error}"));
        }
        let save_start = Instant::now();
        match store.save_segmented(&seg_dir) {
            Ok(report) => {
                // The bytes a crash would make this save redo: the
                // sealed segments, plus the base only when it was
                // actually rewritten.
                seg_save_bytes.push(
                    report.segment_bytes
                        + if report.base_rewritten {
                            report.base_bytes
                        } else {
                            0
                        },
                );
            }
            Err(error) => fail(&format!("segmented save failed: {error}")),
        }
        seg_save_ms.push(save_start.elapsed().as_secs_f64() * 1e3);
        compactor.nudge();
    }
    // Let the compactor catch up with the tail of the run before the
    // counters are read (bounded wait; folds at tiny scale are fast).
    let settle = Instant::now();
    while settle.elapsed() < Duration::from_secs(30) {
        match store.log_status() {
            Some(status) if status.segments > compact_after => {
                compactor.nudge();
                std::thread::sleep(Duration::from_millis(50));
            }
            _ => break,
        }
    }
    stop.store(true, Ordering::Relaxed);
    let _ = query_thread.join();
    let stats = compactor.stats();
    compactor.shutdown();
    let status = store.log_status();
    let seconds = run_start.elapsed().as_secs_f64();

    // -- monolithic baseline: identical deltas, full-file rewrite per
    //    epoch ---------------------------------------------------------
    let mono = Store::from_world(Arc::clone(&world));
    if let Err(error) = mono.save(&mono_file) {
        fail(&format!("monolithic save failed: {error}"));
    }
    let mut mono_save_ms: Vec<f64> = Vec::with_capacity(epochs);
    let mut mono_save_bytes: Vec<u64> = Vec::with_capacity(epochs);
    for delta in &deltas {
        if let Err(error) = mono.ingest(delta.clone()) {
            fail(&format!("monolithic ingest failed: {error}"));
        }
        let save_start = Instant::now();
        match mono.save(&mono_file) {
            Ok(report) => mono_save_bytes.push(report.bytes),
            Err(error) => fail(&format!("monolithic save failed: {error}")),
        }
        mono_save_ms.push(save_start.elapsed().as_secs_f64() * 1e3);
    }

    let mean = |samples: &[f64]| samples.iter().sum::<f64>() / samples.len().max(1) as f64;
    let max = |samples: &[f64]| samples.iter().cloned().fold(0.0f64, f64::max);
    let mean_bytes =
        |samples: &[u64]| samples.iter().sum::<u64>() as f64 / samples.len().max(1) as f64;
    let seg_mean = mean(&seg_save_ms);
    let mono_mean = mean(&mono_save_ms);
    // The O(delta) claim: a segmented save writes the delta, a
    // monolithic save rewrites the world. Bytes are the robust
    // comparison — per-epoch wall time at tiny scales is fsync-bound.
    let seg_bytes = mean_bytes(&seg_save_bytes);
    let mono_bytes = mean_bytes(&mono_save_bytes);
    let errors = query_errors.load(Ordering::Relaxed);
    let answered = queries_answered.load(Ordering::Relaxed);
    println!(
        "{phase_name}: {epochs} epochs at scale '{scale_name}' — per-epoch save writes \
         {seg_bytes:.0} bytes segmented vs {mono_bytes:.0} monolithic ({:.1}× less), \
         mean {seg_mean:.2}ms vs {mono_mean:.2}ms, {} compaction run(s) folded {} \
         segment(s), {answered} queries answered concurrently with {errors} error(s)",
        mono_bytes / seg_bytes.max(1.0),
        stats.runs,
        stats.segments_folded,
    );

    let mut phase = JsonBuilder::object();
    phase.string("scale", scale_name);
    phase.integer("epochs", epochs as u64);
    phase.integer("compact_after", compact_after as u64);
    phase.raw("segmented_save_bytes_mean", format!("{seg_bytes:.1}"));
    phase.raw("monolithic_save_bytes_mean", format!("{mono_bytes:.1}"));
    phase.raw(
        "save_bytes_ratio",
        format!("{:.4}", mono_bytes / seg_bytes.max(1.0)),
    );
    phase.raw("segmented_save_ms_mean", format!("{seg_mean:.4}"));
    phase.raw("segmented_save_ms_max", format!("{:.4}", max(&seg_save_ms)));
    phase.raw("monolithic_save_ms_mean", format!("{mono_mean:.4}"));
    phase.raw(
        "monolithic_save_ms_max",
        format!("{:.4}", max(&mono_save_ms)),
    );
    phase.integer("compactions", stats.runs);
    phase.integer("segments_folded", stats.segments_folded);
    phase.integer("compaction_errors", stats.errors);
    phase.integer("queries_during_run", answered);
    phase.integer("query_errors_during_compaction", errors);
    if let Some(status) = status {
        phase.integer("final_segments", status.segments as u64);
        phase.integer("final_segment_bytes", status.segment_bytes);
        phase.integer("final_base_bytes", status.base_bytes);
        phase.integer("covered_epoch", status.covered);
    }
    let phase = parse(&phase.finish()).expect("phase JSON is valid");
    merge_bench_phase(bench_json, phase_name, phase, Some(seconds));
    eprintln!("phase '{phase_name}' merged into {bench_json}");

    let _ = std::fs::remove_dir_all(&root);
    (errors > 0 || stats.errors > 0 || stats.runs == 0) as i32
}

// ---------------------------------------------------------------------
// The replication scenario (`--cluster`)
// ---------------------------------------------------------------------

/// What the cluster run observed. `stale_answers` is the invariant:
/// an `ok` reply whose echoed epoch is below the `min_epoch` floor the
/// request carried — data a fenced request must never receive.
struct ClusterRun {
    queries: u64,
    /// Correct fencing refusals (retried until the node caught up).
    typed_stales: u64,
    /// Fencing violations: `ok` below the requested floor. Must be 0.
    stale_answers: u64,
    errors: u64,
    ingests_sent: u64,
    /// Followers whose epoch reached the primary's before the deadline.
    followers_converged: u64,
    /// Warm replies compared byte-for-byte across replicas.
    replies_compared: u64,
    /// Comparisons that differed. Must be 0.
    mismatched_replies: u64,
    final_epoch: u64,
    seconds: f64,
}

/// Splice the fencing floor into a compact mix line (`{...}` →
/// `{..., "min_epoch": N}`). `min_epoch` is not part of the canonical
/// echo, so fenced and unfenced forms of the same query produce
/// byte-identical replies.
fn splice_min_epoch(line: &str, floor: u64) -> String {
    let body = line
        .trim_end()
        .strip_suffix('}')
        .unwrap_or_else(|| fail("mix line is not a JSON object"));
    format!("{body},\"min_epoch\":{floor}}}")
}

/// The epoch a node is serving at, read from the canonical echo of a
/// trivial query (works on primaries and followers alike — no
/// replication queries involved).
fn node_epoch(conn: &mut lfp_bench::mix::Connection) -> Result<u64, String> {
    let reply = request(conn, "{\"query\":\"catalog\"}")?;
    let value = parse(&reply).map_err(|error| format!("bad reply JSON: {error:?}"))?;
    value
        .get("query")
        .and_then(|echo| echo.get("epoch"))
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| format!("reply carries no epoch echo: {reply}"))
}

/// Drive one primary + N followers with mid-run ingest churn, fencing
/// every request with the highest epoch any reply has echoed. See the
/// module docs for the invariants; returns the process exit code.
#[allow(clippy::too_many_arguments)]
fn cluster_drive(
    primary: &str,
    followers: &[String],
    deltas: &[String],
    rounds: usize,
    distinct: usize,
    wait_secs: u64,
    deadline: Duration,
    bench_json: &str,
    phase_name: &str,
    shutdown: bool,
) -> i32 {
    let started = Instant::now();
    let hard_deadline = started + deadline;
    let wait = Duration::from_secs(wait_secs);

    let mut names: Vec<String> = Vec::with_capacity(1 + followers.len());
    names.push(primary.to_string());
    names.extend(followers.iter().cloned());
    let mut nodes: Vec<lfp_bench::mix::Connection> = names
        .iter()
        .map(|addr| connect_with_retry(addr, wait).unwrap_or_else(|error| fail(&error)))
        .collect();
    eprintln!(
        "cluster: primary {primary} + {} follower(s), {rounds} rounds, {} delta(s) to ingest",
        followers.len(),
        deltas.len()
    );

    let catalog = request(&mut nodes[0], "{\"query\":\"catalog\"}")
        .unwrap_or_else(|error| fail(&format!("catalog query failed: {error}")));
    let catalog =
        parse(&catalog).unwrap_or_else(|error| fail(&format!("bad catalog JSON: {error:?}")));
    if catalog.get("ok").and_then(JsonValue::as_bool) != Some(true) {
        fail(&format!("catalog refused: {}", catalog.render()));
    }
    let mix = build_mix(catalog.get("result").unwrap_or(&JsonValue::Null), distinct)
        .unwrap_or_else(|| fail("catalog advertised no AS ids to query"));

    let mut run = ClusterRun {
        queries: 0,
        typed_stales: 0,
        stale_answers: 0,
        errors: 0,
        ingests_sent: 0,
        followers_converged: 0,
        replies_compared: 0,
        mismatched_replies: 0,
        final_epoch: 0,
        seconds: 0.0,
    };
    // The global fencing floor: the highest epoch any reply echoed.
    // Seed it from the primary so round 0 is already fenced.
    let mut floor = node_epoch(&mut nodes[0]).unwrap_or_else(|error| fail(&error));

    // Spread the ingests over the run: delta k lands at round
    // rounds·(k+1)/(deltas+1), so epochs advance mid-run, not at the
    // edges.
    let ingest_round = |k: usize| -> usize { rounds * (k + 1) / (deltas.len() + 1) };

    for round in 0..rounds {
        while run.ingests_sent < deltas.len() as u64
            && round >= ingest_round(run.ingests_sent as usize)
        {
            let delta = &deltas[run.ingests_sent as usize];
            let line = format!(
                "{{\"query\": \"repl_ingest\", \"path\": \"{}\"}}",
                lfp_analysis::json::escape(delta)
            );
            let reply = request(&mut nodes[0], &line)
                .unwrap_or_else(|error| fail(&format!("repl_ingest failed: {error}")));
            let value = parse(&reply)
                .unwrap_or_else(|error| fail(&format!("bad repl_ingest reply: {error:?}")));
            if value.get("ok").and_then(JsonValue::as_bool) != Some(true) {
                fail(&format!("primary refused repl_ingest: {reply}"));
            }
            let epoch = value
                .get("result")
                .and_then(|result| result.get("epoch"))
                .and_then(JsonValue::as_u64)
                .unwrap_or(floor);
            floor = floor.max(epoch);
            run.ingests_sent += 1;
            eprintln!("round {round}: primary ingested {delta} → epoch {epoch} (floor {floor})");
        }

        for node in 0..nodes.len() {
            let line = &mix[(round * 7 + node * 3) % mix.len()];
            let fenced = splice_min_epoch(line, floor);
            loop {
                if Instant::now() >= hard_deadline {
                    eprintln!("warning: cluster deadline expired mid-round {round}");
                    run.errors += 1;
                    break;
                }
                let reply = match request(&mut nodes[node], &fenced) {
                    Ok(reply) => reply,
                    Err(error) => {
                        eprintln!("{}: request failed: {error}", names[node]);
                        run.errors += 1;
                        break;
                    }
                };
                if let Some((have, want)) = wire::stale_epoch_of(&reply) {
                    // Correct fencing: the node admits it is behind
                    // rather than serving old data. Wait it out.
                    run.typed_stales += 1;
                    debug_assert!(have < want);
                    std::thread::sleep(Duration::from_millis(20));
                    continue;
                }
                let value = match parse(&reply) {
                    Ok(value) => value,
                    Err(error) => {
                        eprintln!("{}: unparseable reply: {error:?}", names[node]);
                        run.errors += 1;
                        break;
                    }
                };
                if value.get("ok").and_then(JsonValue::as_bool) == Some(true) {
                    let epoch = value
                        .get("query")
                        .and_then(|echo| echo.get("epoch"))
                        .and_then(JsonValue::as_u64)
                        .unwrap_or(0);
                    if epoch < floor {
                        // The violation: an `ok` answer below the
                        // fence the request carried.
                        eprintln!(
                            "STALE ANSWER from {}: epoch {epoch} under floor {floor}",
                            names[node]
                        );
                        run.stale_answers += 1;
                    }
                    floor = floor.max(epoch);
                    run.queries += 1;
                } else {
                    eprintln!("{}: error reply: {reply}", names[node]);
                    run.errors += 1;
                }
                break;
            }
        }
    }

    // -- convergence: every follower must reach the primary's epoch --
    let target = node_epoch(&mut nodes[0]).unwrap_or_else(|error| fail(&error));
    run.final_epoch = target;
    for (index, follower) in followers.iter().enumerate() {
        let node = index + 1;
        loop {
            match node_epoch(&mut nodes[node]) {
                Ok(epoch) if epoch >= target => {
                    run.followers_converged += 1;
                    break;
                }
                Ok(_) => {}
                Err(error) => eprintln!("{follower}: epoch probe failed: {error}"),
            }
            if Instant::now() >= hard_deadline {
                eprintln!("warning: {follower} never converged to epoch {target}");
                break;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    // -- byte-identity: warm replies must match across replicas ------
    // Two requests per node per line: the second is a cache hit
    // (`"cached": true`) everywhere, so at equal epochs the full reply
    // line — envelope, canonical echo, rendered result — must be
    // byte-identical across the cluster.
    if run.followers_converged == followers.len() as u64 {
        for line in mix.iter().take(16) {
            let fenced = splice_min_epoch(line, target);
            let mut reference: Option<String> = None;
            for (node, name) in names.iter().enumerate() {
                let warm = request(&mut nodes[node], &fenced)
                    .and_then(|_| request(&mut nodes[node], &fenced));
                let warm = match warm {
                    Ok(reply) => reply,
                    Err(error) => {
                        eprintln!("{name}: identity probe failed: {error}");
                        run.errors += 1;
                        continue;
                    }
                };
                match &reference {
                    None => reference = Some(warm),
                    Some(expected) => {
                        run.replies_compared += 1;
                        if &warm != expected {
                            eprintln!(
                                "REPLY MISMATCH on {name} for {line}:\n  primary:  {expected}\n  replica:  {warm}"
                            );
                            run.mismatched_replies += 1;
                        }
                    }
                }
            }
        }
    } else {
        eprintln!("skipping byte-identity sweep: cluster did not converge");
    }

    run.seconds = started.elapsed().as_secs_f64();
    println!(
        "{phase_name}: {} fenced queries over {} node(s) in {:.2}s — {} typed stales honoured, \
         {} stale answers, {} ingests, {}/{} followers converged, \
         {} identical warm replies, {} mismatched",
        run.queries,
        names.len(),
        run.seconds,
        run.typed_stales,
        run.stale_answers,
        run.ingests_sent,
        run.followers_converged,
        followers.len(),
        run.replies_compared - run.mismatched_replies,
        run.mismatched_replies,
    );
    write_replication_phase(bench_json, phase_name, followers.len(), &run);

    if shutdown {
        // Followers first, then the primary (each is its own process).
        for node in (0..nodes.len()).rev() {
            let _ = request(&mut nodes[node], "{\"query\":\"shutdown\"}");
        }
        eprintln!("sent shutdown to all {} nodes", nodes.len());
    }

    (run.stale_answers > 0
        || run.mismatched_replies > 0
        || run.followers_converged < followers.len() as u64
        || run.errors > 0) as i32
}

/// Write the `replication` phase: the fencing and convergence ledger
/// CI asserts on (`stale_answers == 0`, `mismatched_replies == 0`,
/// `followers_converged == follower count`).
fn write_replication_phase(path: &str, phase_name: &str, followers: usize, run: &ClusterRun) {
    let mut phase = JsonBuilder::object();
    phase.integer("followers", followers as u64);
    phase.integer("queries", run.queries);
    phase.integer("typed_stales", run.typed_stales);
    phase.integer("stale_answers", run.stale_answers);
    phase.integer("errors", run.errors);
    phase.integer("ingests_sent", run.ingests_sent);
    phase.integer("followers_converged", run.followers_converged);
    phase.integer("replies_compared", run.replies_compared);
    phase.integer("mismatched_replies", run.mismatched_replies);
    phase.integer("final_epoch", run.final_epoch);
    phase.number("seconds", run.seconds);
    let phase = parse(&phase.finish()).expect("phase JSON is valid");
    merge_bench_phase(path, phase_name, phase, Some(run.seconds));
    eprintln!("wrote {phase_name} phase to {path}");
}

/// One load connection's life: a budget of requests pushed through a
/// bounded pipeline, with optional teardown-and-reconnect churn.
struct LoadConn {
    stream: TcpStream,
    decoder: FrameDecoder,
    out: Vec<u8>,
    out_pos: usize,
    /// Requests committed to the output buffer (not necessarily sent).
    queued: usize,
    /// Responses fully received.
    answered: usize,
    budget: usize,
    send_times: VecDeque<Instant>,
    mix_cursor: usize,
    /// Positive: reconnect after this many more responses.
    churn_every: usize,
    until_churn: usize,
    want_churn: bool,
    done: bool,
    failed: bool,
}

impl LoadConn {
    fn open(addr: &str, budget: usize, churn_every: usize, cursor: usize) -> Option<LoadConn> {
        let stream = TcpStream::connect(addr).ok()?;
        stream.set_nodelay(true).ok();
        stream.set_nonblocking(true).ok()?;
        Some(LoadConn {
            stream,
            decoder: FrameDecoder::new(),
            out: Vec::new(),
            out_pos: 0,
            queued: 0,
            answered: 0,
            budget,
            send_times: VecDeque::new(),
            mix_cursor: cursor,
            churn_every,
            until_churn: churn_every.max(1),
            want_churn: false,
            done: false,
            failed: false,
        })
    }

    fn live(&self) -> bool {
        !self.done && !self.failed
    }

    /// Keep the pipeline topped up, with half-depth hysteresis: refill
    /// only once the window has drained to `depth/2`, then burst back
    /// to `depth`. One-request-per-reply refills would degenerate the
    /// whole path into 40-byte segments (a packet per query, each with
    /// its own softirq and wakeup); bursting keeps requests, reads,
    /// executions and replies batched end to end.
    fn fill(&mut self, mix: &[String], depth: usize) {
        let outstanding = self.queued - self.answered;
        if outstanding > depth / 2 {
            return;
        }
        while !self.want_churn && self.queued < self.budget && self.queued - self.answered < depth {
            let line = &mix[self.mix_cursor % mix.len()];
            self.mix_cursor += 1;
            self.out.extend_from_slice(line.as_bytes());
            self.out.push(b'\n');
            self.send_times.push_back(Instant::now());
            self.queued += 1;
        }
    }

    fn wants_write(&self) -> bool {
        self.out_pos < self.out.len()
    }

    fn try_write(&mut self) {
        while self.wants_write() {
            match (&self.stream).write(&self.out[self.out_pos..]) {
                Ok(0) => {
                    self.failed = true;
                    return;
                }
                Ok(n) => self.out_pos += n,
                Err(error) if error.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(error) if error.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.failed = true;
                    return;
                }
            }
        }
        self.out.clear();
        self.out_pos = 0;
    }

    /// Read whatever arrived and account completed responses.
    fn try_read(&mut self, ok: &mut u64, errors: &mut u64, latency_us: &mut Histogram) {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match (&self.stream).read(&mut chunk) {
                Ok(0) => {
                    if self.answered < self.budget {
                        self.failed = true;
                    }
                    return;
                }
                Ok(n) => {
                    self.decoder.feed(&chunk[..n]);
                    while let Some(frame) = self.decoder.next_frame() {
                        let reply = match frame {
                            Ok(line) => line,
                            Err(_) => {
                                self.failed = true;
                                return;
                            }
                        };
                        if let Some(start) = self.send_times.pop_front() {
                            latency_us.record(start.elapsed().as_micros() as u64);
                        }
                        if reply.contains("\"ok\": true") {
                            *ok += 1;
                        } else {
                            *errors += 1;
                        }
                        self.answered += 1;
                        if self.churn_every > 0 && self.answered < self.budget {
                            self.until_churn -= 1;
                            if self.until_churn == 0 {
                                self.until_churn = self.churn_every;
                                self.want_churn = true;
                            }
                        }
                        if self.answered >= self.budget {
                            self.done = true;
                            return;
                        }
                    }
                }
                Err(error) if error.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(error) if error.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.failed = true;
                    return;
                }
            }
        }
    }

    /// At a churn point with an empty pipeline: tear down and reconnect.
    ///
    /// A connection that finished (or failed) while its churn was still
    /// pending must never reconnect: replacing `self` resets `done`,
    /// which would resurrect a budget-complete connection as a zombie
    /// that can neither fill nor finish — pinning the drive loop until
    /// its hard deadline. The collision is easy to hit when a churn
    /// point lands inside the final pipelined batch.
    fn churn_if_due(&mut self, addr: &str) -> bool {
        if !self.live()
            || self.answered >= self.budget
            || !self.want_churn
            || self.queued != self.answered
            || !self.out.is_empty()
        {
            return false;
        }
        let Some(fresh) = LoadConn::open(addr, self.budget, self.churn_every, self.mix_cursor)
        else {
            self.failed = true;
            return false;
        };
        let (queued, answered, until) = (self.queued, self.answered, self.churn_every);
        *self = fresh;
        self.queued = queued;
        self.answered = answered;
        self.until_churn = until;
        true
    }
}

struct RunResult {
    ok: u64,
    errors: u64,
    churn_events: u64,
    seconds: f64,
    /// Client-observed send-to-reply latency, µs — the same log-linear
    /// grid the daemon's own histograms use, so per-thread results merge
    /// exactly and quantiles on both sides are comparable.
    latency_us: Histogram,
}

/// Split the fleet across `threads` driver threads (each running the
/// single-threaded [`drive`] over its own slice of connections) and
/// merge the results. One thread is the historical layout and skips
/// the scaffolding; more are for sweeps where a single generator core
/// would be the bottleneck before a multi-loop daemon is.
#[allow(clippy::too_many_arguments)]
fn drive_multi(
    addr: &str,
    mix: &[String],
    connections: usize,
    pipeline: usize,
    requests_per_conn: usize,
    churn_every: usize,
    deadline: Duration,
    threads: usize,
) -> RunResult {
    if threads <= 1 {
        return drive(
            addr,
            mix,
            connections,
            pipeline,
            requests_per_conn,
            churn_every,
            deadline,
        );
    }
    let started = Instant::now();
    let results: Vec<RunResult> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for index in 0..threads {
            // Spread the remainder over the first few threads so every
            // connection is driven by exactly one thread.
            let share = connections / threads + usize::from(index < connections % threads);
            if share == 0 {
                continue;
            }
            handles.push(scope.spawn(move || {
                drive(
                    addr,
                    mix,
                    share,
                    pipeline,
                    requests_per_conn,
                    churn_every,
                    deadline,
                )
            }));
        }
        handles
            .into_iter()
            .map(|handle| handle.join().expect("driver thread panicked"))
            .collect()
    });
    let mut merged = RunResult {
        ok: 0,
        errors: 0,
        churn_events: 0,
        seconds: started.elapsed().as_secs_f64(),
        latency_us: Histogram::new(),
    };
    for result in results {
        merged.ok += result.ok;
        merged.errors += result.errors;
        merged.churn_events += result.churn_events;
        merged.latency_us.merge(&result.latency_us);
    }
    merged
}

/// Multiplex every connection from this one thread until all budgets
/// are spent (or the deadline expires, counting the shortfall as
/// errors).
fn drive(
    addr: &str,
    mix: &[String],
    connections: usize,
    pipeline: usize,
    requests_per_conn: usize,
    churn_every: usize,
    deadline: Duration,
) -> RunResult {
    let started = Instant::now();
    let hard_deadline = started + deadline;
    let mut conns: Vec<LoadConn> = Vec::with_capacity(connections);
    for index in 0..connections {
        // Phase-shift each connection's cursor so the fleet interleaves
        // different queries, like real fan-in would.
        match LoadConn::open(addr, requests_per_conn, churn_every, index * 7) {
            Some(conn) => conns.push(conn),
            None => fail(&format!("cannot open load connection {index} to {addr}")),
        }
        if churn_every > 0 {
            // Stagger the first churn point per connection: the whole
            // fleet reconnecting on the same response index would melt
            // the listener backlog into SYN-retransmit stalls and
            // measure TCP retry timers instead of the server.
            let conn = conns.last_mut().expect("just pushed");
            conn.until_churn = 1 + (index % churn_every.max(1));
        }
    }

    let mut ok = 0u64;
    let mut errors = 0u64;
    let mut churn_events = 0u64;
    let mut iterations = 0u64;
    let mut latency_us = Histogram::new();
    let mut fds: Vec<PollFd> = Vec::new();
    let mut order: Vec<usize> = Vec::new();

    loop {
        iterations += 1;
        let mut live = 0usize;
        fds.clear();
        order.clear();
        for (index, conn) in conns.iter_mut().enumerate() {
            if conn.churn_if_due(addr) {
                churn_events += 1;
            }
            if !conn.live() {
                continue;
            }
            live += 1;
            conn.fill(mix, pipeline);
            let mut events = POLLIN;
            if conn.wants_write() {
                events |= POLLOUT;
            }
            fds.push(PollFd::new(conn.stream.as_raw_fd(), events));
            order.push(index);
        }
        if live == 0 {
            break;
        }
        if Instant::now() >= hard_deadline {
            for conn in &conns {
                if conn.live() {
                    errors += (conn.budget - conn.answered) as u64;
                }
            }
            eprintln!("warning: deadline expired with {live} connections unfinished");
            break;
        }
        if poll_fds(&mut fds, 200).is_err() {
            fail("poll failed in the load loop");
        }
        for (slot, &index) in order.iter().enumerate() {
            let conn = &mut conns[index];
            if fds[slot].writable() && conn.wants_write() {
                conn.try_write();
            }
            if fds[slot].readable() && conn.live() {
                conn.try_read(&mut ok, &mut errors, &mut latency_us);
            }
        }
    }

    for conn in &conns {
        if conn.failed {
            errors += (conn.budget - conn.answered) as u64;
        }
    }
    eprintln!(
        "load loop: {iterations} iterations, {:.1} replies/iteration",
        ok as f64 / iterations.max(1) as f64
    );
    RunResult {
        ok,
        errors,
        churn_events,
        seconds: started.elapsed().as_secs_f64(),
        latency_us,
    }
}

/// What the chaos scenario observed, client-side.
struct ChaosRun {
    /// Request slots resolved by an acknowledged success.
    ok: u64,
    /// Replies received for sheds the client then retried.
    sheds: u64,
    /// Connection re-opens after injected resets/EOFs.
    reconnects: u64,
    /// Retries consumed from the global budget.
    retries_used: u64,
    /// Budget left at the end (must be > 0 for a passing run).
    retry_budget_remaining: u64,
    /// The invariant: slots that ended without an acknowledged
    /// success, plus replies that matched no outstanding request.
    lost: u64,
    seconds: f64,
    /// Client-observed send-to-reply latency, µs (shared bucket grid
    /// with the daemon's histograms).
    latency_us: Histogram,
}

/// One resilient connection: request slots move `pending` →
/// `outstanding` → resolved, and failures move them *back* — an
/// injected reset requeues everything unanswered (spending retries), a
/// typed `overloaded` reply requeues one slot and pauses sending for
/// the backed-off window. The connection only ever gives a slot up
/// when the global retry budget is gone.
struct ChaosConn {
    /// `None` between a failure and the backed-off reconnect.
    stream: Option<TcpStream>,
    decoder: FrameDecoder,
    out: Vec<u8>,
    out_pos: usize,
    /// Mix cursors not yet committed to the wire.
    pending: VecDeque<usize>,
    /// Mix cursors on the wire awaiting their (in-order) reply.
    outstanding: VecDeque<usize>,
    send_times: VecDeque<Instant>,
    backoff: Backoff,
    /// When to attempt the next reconnect (stream is `None`).
    reopen_at: Instant,
    /// Overload shed: no new sends before this instant.
    pause_until: Option<Instant>,
    resolved_ok: u64,
    /// Slots abandoned (budget exhausted / terminal errors) — each one
    /// is a lost response.
    abandoned: u64,
}

impl ChaosConn {
    fn new(index: usize, slots: usize, seed: u64) -> ChaosConn {
        ChaosConn {
            stream: None,
            decoder: FrameDecoder::new(),
            out: Vec::new(),
            out_pos: 0,
            // Phase-shifted cursors, like the plain generator.
            pending: (0..slots).map(|slot| index * 7 + slot).collect(),
            outstanding: VecDeque::new(),
            send_times: VecDeque::new(),
            backoff: Backoff::new(splitmix64(seed ^ index as u64), 5, 2_000),
            reopen_at: Instant::now(),
            pause_until: None,
            resolved_ok: 0,
            abandoned: 0,
        }
    }

    /// Every slot resolved (acknowledged or — budget gone — abandoned).
    fn finished(&self) -> bool {
        self.pending.is_empty() && self.outstanding.is_empty()
    }

    /// Drop the stream, requeue everything unanswered, and schedule the
    /// backed-off reconnect. Each requeued slot spends one retry; slots
    /// the exhausted budget cannot cover are abandoned (= lost).
    fn disconnect(&mut self, run: &mut ChaosRun, budget_left: &mut u64) {
        self.stream = None;
        self.decoder = FrameDecoder::new();
        self.out.clear();
        self.out_pos = 0;
        self.send_times.clear();
        while let Some(cursor) = self.outstanding.pop_front() {
            if *budget_left > 0 {
                *budget_left -= 1;
                run.retries_used += 1;
                self.pending.push_back(cursor);
            } else {
                self.abandoned += 1;
            }
        }
        if *budget_left == 0 {
            // No budget to resend with: the pending slots can never be
            // acknowledged either.
            self.abandoned += self.pending.len() as u64;
            self.pending.clear();
        }
        self.reopen_at = Instant::now() + self.backoff.next_delay(None);
        self.pause_until = None;
    }

    /// Reconnect if the backoff window has passed. Returns whether a
    /// (re)connection was established this call.
    fn try_reopen(&mut self, addr: &str, now: Instant) -> bool {
        if self.stream.is_some() || self.finished() || now < self.reopen_at {
            return false;
        }
        match TcpStream::connect(addr) {
            Ok(stream) => {
                stream.set_nodelay(true).ok();
                if stream.set_nonblocking(true).is_err() {
                    self.reopen_at = now + self.backoff.next_delay(None);
                    return false;
                }
                self.stream = Some(stream);
                true
            }
            Err(_) => {
                self.reopen_at = now + self.backoff.next_delay(None);
                false
            }
        }
    }

    /// Top up the pipeline from `pending` (same half-depth hysteresis
    /// as the plain generator), unless paused by an overload shed.
    fn fill(&mut self, mix: &[String], depth: usize, now: Instant) {
        if self.stream.is_none() {
            return;
        }
        if let Some(until) = self.pause_until {
            if now < until {
                return;
            }
            self.pause_until = None;
        }
        if self.outstanding.len() > depth / 2 {
            return;
        }
        while self.outstanding.len() < depth {
            let Some(cursor) = self.pending.pop_front() else {
                break;
            };
            let line = &mix[cursor % mix.len()];
            self.out.extend_from_slice(line.as_bytes());
            self.out.push(b'\n');
            self.send_times.push_back(Instant::now());
            self.outstanding.push_back(cursor);
        }
    }

    fn wants_write(&self) -> bool {
        self.out_pos < self.out.len()
    }

    fn try_write(&mut self, run: &mut ChaosRun, budget_left: &mut u64) {
        let Some(stream) = &self.stream else { return };
        while self.out_pos < self.out.len() {
            match (&*stream).write(&self.out[self.out_pos..]) {
                Ok(0) => {
                    run.reconnects += 1;
                    self.disconnect(run, budget_left);
                    return;
                }
                Ok(n) => self.out_pos += n,
                Err(error) if error.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(error) if error.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    run.reconnects += 1;
                    self.disconnect(run, budget_left);
                    return;
                }
            }
        }
        self.out.clear();
        self.out_pos = 0;
    }

    /// Read and resolve replies. Sheds are retried (with the server's
    /// hint flooring the backoff), resets requeue via
    /// [`disconnect`](ChaosConn::disconnect), and a reply with no
    /// outstanding request — which a correct server can never produce —
    /// counts directly as lost.
    fn try_read(&mut self, run: &mut ChaosRun, budget_left: &mut u64, now: Instant) {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            let Some(stream) = &self.stream else { return };
            match (&*stream).read(&mut chunk) {
                Ok(0) => {
                    if !self.finished() {
                        run.reconnects += 1;
                        self.disconnect(run, budget_left);
                    } else {
                        self.stream = None;
                    }
                    return;
                }
                Ok(n) => {
                    self.decoder.feed(&chunk[..n]);
                    while let Some(frame) = self.decoder.next_frame() {
                        let reply = match frame {
                            Ok(line) => line,
                            Err(_) => {
                                run.reconnects += 1;
                                self.disconnect(run, budget_left);
                                return;
                            }
                        };
                        if let Some(start) = self.send_times.pop_front() {
                            run.latency_us.record(start.elapsed().as_micros() as u64);
                        }
                        let Some(cursor) = self.outstanding.pop_front() else {
                            run.lost += 1;
                            continue;
                        };
                        if let Some(hint) = wire::overload_retry_ms(&reply) {
                            run.sheds += 1;
                            if *budget_left > 0 {
                                *budget_left -= 1;
                                run.retries_used += 1;
                                self.pending.push_back(cursor);
                                self.pause_until = Some(now + self.backoff.next_delay(Some(hint)));
                            } else {
                                self.abandoned += 1;
                            }
                        } else if reply.contains("\"ok\": true") {
                            self.resolved_ok += 1;
                            run.ok += 1;
                            self.backoff.reset();
                        } else {
                            // A non-overload error under chaos means a
                            // request the warm-up proved valid failed:
                            // that response is lost, not retryable.
                            self.abandoned += 1;
                        }
                    }
                }
                Err(error) if error.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(error) if error.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    run.reconnects += 1;
                    self.disconnect(run, budget_left);
                    return;
                }
            }
        }
    }
}

/// Multiplex the resilient fleet until every slot is resolved, the
/// retry budget dies, or the deadline expires.
#[allow(clippy::too_many_arguments)]
fn chaos_drive(
    addr: &str,
    mix: &[String],
    connections: usize,
    pipeline: usize,
    requests_per_conn: usize,
    deadline: Duration,
    seed: u64,
    retry_budget: u64,
) -> ChaosRun {
    let started = Instant::now();
    let hard_deadline = started + deadline;
    let mut budget_left = retry_budget;
    let mut run = ChaosRun {
        ok: 0,
        sheds: 0,
        reconnects: 0,
        retries_used: 0,
        retry_budget_remaining: 0,
        lost: 0,
        seconds: 0.0,
        latency_us: Histogram::new(),
    };
    let mut conns: Vec<ChaosConn> = (0..connections)
        .map(|index| ChaosConn::new(index, requests_per_conn, seed))
        .collect();
    let mut fds: Vec<PollFd> = Vec::new();
    let mut order: Vec<usize> = Vec::new();

    loop {
        let now = Instant::now();
        fds.clear();
        order.clear();
        let mut unfinished = 0usize;
        for (index, conn) in conns.iter_mut().enumerate() {
            if conn.finished() {
                continue;
            }
            unfinished += 1;
            conn.try_reopen(addr, now);
            conn.fill(mix, pipeline, now);
            if let Some(stream) = &conn.stream {
                let mut events = POLLIN;
                if conn.wants_write() {
                    events |= POLLOUT;
                }
                fds.push(PollFd::new(stream.as_raw_fd(), events));
                order.push(index);
            }
        }
        if unfinished == 0 {
            break;
        }
        if now >= hard_deadline {
            eprintln!("warning: chaos deadline expired with {unfinished} connections unfinished");
            for conn in &mut conns {
                run.lost += (conn.pending.len() + conn.outstanding.len()) as u64;
                conn.pending.clear();
                conn.outstanding.clear();
            }
            break;
        }
        // Even with every socket down (all in backoff), tick at 20ms so
        // reconnects and pause expiries are observed promptly.
        if !fds.is_empty() && poll_fds(&mut fds, 20).is_err() {
            fail("poll failed in the chaos loop");
        }
        if fds.is_empty() {
            std::thread::sleep(Duration::from_millis(5));
        }
        for (slot, &index) in order.iter().enumerate() {
            let conn = &mut conns[index];
            if fds[slot].writable() && conn.wants_write() {
                conn.try_write(&mut run, &mut budget_left);
            }
            if fds[slot].readable() {
                conn.try_read(&mut run, &mut budget_left, Instant::now());
            }
        }
    }

    run.lost += conns.iter().map(|conn| conn.abandoned).sum::<u64>();
    run.retry_budget_remaining = budget_left;
    run.seconds = started.elapsed().as_secs_f64();
    run
}

/// Render the client-side latency quantiles for a bench phase.
fn latency_json(latency_us: &Histogram) -> String {
    let mut latency = JsonBuilder::object();
    latency.integer("p50", latency_us.quantile(0.50));
    latency.integer("p90", latency_us.quantile(0.90));
    latency.integer("p99", latency_us.quantile(0.99));
    latency.integer("p999", latency_us.quantile(0.999));
    latency.integer("max", latency_us.max());
    latency.finish()
}

/// Write the `chaos` phase: client-observed accounting plus the
/// daemon's own fault/shed counters from a post-run `stats` probe.
fn write_chaos_phase(
    path: &str,
    phase_name: &str,
    connections: usize,
    pipeline: usize,
    run: &ChaosRun,
    retry_budget: u64,
    stats: Option<&JsonValue>,
) {
    let stat = |key: &str| -> u64 {
        stats
            .and_then(|value| value.get(key))
            .and_then(JsonValue::as_u64)
            .unwrap_or(0)
    };
    let latency = latency_json(&run.latency_us);
    let mut phase = JsonBuilder::object();
    phase.integer("connections", connections as u64);
    phase.integer("pipeline", pipeline as u64);
    phase.integer("acknowledged", run.ok);
    phase.integer("lost_acknowledged", run.lost);
    phase.integer("sheds_observed", run.sheds);
    phase.integer("reconnects", run.reconnects);
    phase.integer("retries_used", run.retries_used);
    phase.integer("retry_budget", retry_budget);
    phase.integer("retry_budget_remaining", run.retry_budget_remaining);
    phase.integer("injected_faults", stat("injected_faults"));
    phase.integer("shed", stat("shed"));
    phase.integer("deadline_expired", stat("deadline_expired"));
    phase.number("seconds", run.seconds);
    phase.number("qps", run.ok as f64 / run.seconds.max(1e-9));
    phase.raw("latency_us", latency);
    let phase = parse(&phase.finish()).expect("phase JSON is valid");
    merge_bench_phase(path, phase_name, phase, Some(run.seconds));
    eprintln!("wrote {phase_name} phase to {path}");
}

/// Merge one cell of the serve scaling sweep into the `serve_scaling`
/// phase: cells accumulate across runs under `loops{N}_conns{C}` keys,
/// and once the 1-loop and 4-loop cells at 512 connections are both
/// present the phase records `speedup_4loops_512` — the scaling ratio
/// CI asserts on.
fn write_scaling_cell(
    path: &str,
    loops: u64,
    connections: usize,
    ok: u64,
    errors: u64,
    seconds: f64,
    qps: f64,
) {
    let key = format!("loops{loops}_conns{connections}");
    let mut cell = JsonBuilder::object();
    cell.integer("loops", loops);
    cell.integer("connections", connections as u64);
    cell.integer("queries", ok);
    cell.integer("errors", errors);
    cell.number("seconds", seconds);
    cell.number("qps", qps);

    // Carry every other cell of the grid over from earlier runs.
    let mut grid: Vec<(String, String)> = Vec::new();
    if let Some(previous) = read_bench_phase(path, "serve_scaling") {
        if let Some(entries) = previous.as_object() {
            for (name, value) in entries {
                if name.starts_with("loops") && name != &key {
                    grid.push((name.clone(), value.render()));
                }
            }
        }
    }
    grid.push((key, cell.finish()));
    grid.sort();

    let qps_of = |name: &str| -> Option<f64> {
        let (_, raw) = grid.iter().find(|(cell_name, _)| cell_name == name)?;
        parse(raw).ok()?.get("qps").and_then(JsonValue::as_f64)
    };
    let speedup = match (qps_of("loops1_conns512"), qps_of("loops4_conns512")) {
        (Some(single), Some(quad)) => Some(quad / single.max(1e-9)),
        _ => None,
    };

    let mut phase = JsonBuilder::object();
    for (name, raw) in grid {
        phase.raw(&name, raw);
    }
    if let Some(speedup) = speedup {
        phase.number("speedup_4loops_512", speedup);
    }
    let phase = parse(&phase.finish()).expect("phase JSON is valid");
    merge_bench_phase(path, "serve_scaling", phase, Some(seconds));
    eprintln!("merged serve_scaling cell loops{loops}_conns{connections} into {path}");
}

/// Insert/replace the phase in the bench artefact. The `serve` phase
/// additionally records the thread-per-connection baseline (written by
/// an earlier `--phase serve_baseline` run) and the ratio against it.
#[allow(clippy::too_many_arguments)]
fn write_phase(
    path: &str,
    phase_name: &str,
    connections: usize,
    pipeline: usize,
    ok: u64,
    errors: u64,
    churn_events: u64,
    seconds: f64,
    qps: f64,
    latency_us: &Histogram,
    bootstrap_acked: u64,
) {
    let latency = latency_json(latency_us);
    let mut phase = JsonBuilder::object();
    phase.integer("connections", connections as u64);
    phase.integer("pipeline", pipeline as u64);
    phase.integer("queries", ok);
    // Every successful data reply this process read, bootstrap
    // included — the exact number `lfp_responses_total` must show.
    phase.integer("acknowledged_total", ok + bootstrap_acked);
    phase.integer("errors", errors);
    phase.integer("reconnects", churn_events);
    phase.number("seconds", seconds);
    phase.number("qps", qps);
    phase.raw("latency_us", latency);
    if phase_name == "serve" {
        if let Some(baseline) = read_bench_phase(path, "serve_baseline") {
            if let Some(baseline_qps) = baseline.get("qps").and_then(JsonValue::as_f64) {
                phase.number("baseline_qps", baseline_qps);
                if let Some(baseline_conns) =
                    baseline.get("connections").and_then(JsonValue::as_u64)
                {
                    phase.integer("baseline_connections", baseline_conns);
                }
                phase.number("qps_vs_threaded", qps / baseline_qps.max(1e-9));
            }
        }
    }
    let phase = parse(&phase.finish()).expect("phase JSON is valid");
    merge_bench_phase(path, phase_name, phase, Some(seconds));
    eprintln!("wrote {phase_name} phase to {path}");
}
