//! query-load — open-loop pipelined load generator for `vendor-queryd`.
//!
//! ```text
//! query-load [--addr 127.0.0.1:7377] [--connections 512] [--pipeline 16]
//!            [--requests-per-conn 200] [--churn-every 0] [--distinct 64]
//!            [--wait-secs 30] [--deadline-secs 180]
//!            [--phase serve] [--bench-json BENCH_campaign.json] [--shutdown]
//! ```
//!
//! Where `query-bench` is a *closed-loop* client (one request per round
//! trip — it measures latency under polite load), this generator drives
//! the hostile schedule the event-loop daemon exists for: hundreds of
//! concurrent connections, each keeping `--pipeline` requests in flight
//! without waiting for answers, optionally tearing the connection down
//! and reconnecting every `--churn-every` responses. All connections
//! are multiplexed from **one thread** over the same `poll(2)` layer
//! the server uses (`lfp_serve::sys`), so the generator itself stays
//! cheap at 512+ sockets.
//!
//! Results land in `BENCH_campaign.json` under `--phase` (default
//! `serve`). When writing the `serve` phase and a `serve_baseline`
//! phase (the thread-per-connection daemon measured by an earlier run
//! with `--phase serve_baseline`) is present, the phase also records
//! the baseline throughput and the event-loop/baseline ratio CI
//! asserts on.

use lfp_analysis::json::{parse, JsonBuilder, JsonValue};
use lfp_bench::mix::{build_mix, connect_with_retry, percentile_us, request};
use lfp_bench::{merge_bench_phase, read_bench_phase};
use lfp_query::FrameDecoder;
use lfp_serve::sys::{poll_fds, PollFd, POLLIN, POLLOUT};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::os::fd::AsRawFd;
use std::time::{Duration, Instant};

fn main() {
    let mut args = std::env::args().skip(1);
    let mut addr = "127.0.0.1:7377".to_string();
    let mut connections = 512usize;
    let mut pipeline = 16usize;
    let mut requests_per_conn = 200usize;
    let mut churn_every = 0usize;
    let mut distinct = 64usize;
    let mut wait_secs = 30u64;
    let mut deadline_secs = 180u64;
    let mut phase_name = "serve".to_string();
    let mut bench_json = "BENCH_campaign.json".to_string();
    let mut shutdown = false;

    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => {
                addr = args
                    .next()
                    .unwrap_or_else(|| usage("--addr needs host:port"))
            }
            "--connections" => connections = parse_number(args.next(), "--connections"),
            "--pipeline" => pipeline = parse_number(args.next(), "--pipeline"),
            "--requests-per-conn" => {
                requests_per_conn = parse_number(args.next(), "--requests-per-conn")
            }
            "--churn-every" => churn_every = parse_number(args.next(), "--churn-every"),
            "--distinct" => distinct = parse_number(args.next(), "--distinct"),
            "--wait-secs" => wait_secs = parse_number(args.next(), "--wait-secs"),
            "--deadline-secs" => deadline_secs = parse_number(args.next(), "--deadline-secs"),
            "--phase" => phase_name = args.next().unwrap_or_else(|| usage("--phase needs a name")),
            "--bench-json" => {
                bench_json = args
                    .next()
                    .unwrap_or_else(|| usage("--bench-json needs a path"))
            }
            "--shutdown" => shutdown = true,
            other => usage(&format!("unknown argument '{other}'")),
        }
    }
    let connections = connections.max(1);
    let pipeline = pipeline.max(1);
    let requests_per_conn = requests_per_conn.max(1);

    // -- bootstrap: wait for the daemon, fetch the catalog, warm ------
    let mut probe = connect_with_retry(&addr, Duration::from_secs(wait_secs))
        .unwrap_or_else(|error| fail(&error));
    let catalog = request(&mut probe, "{\"query\":\"catalog\"}")
        .unwrap_or_else(|error| fail(&format!("catalog query failed: {error}")));
    let catalog =
        parse(&catalog).unwrap_or_else(|error| fail(&format!("bad catalog JSON: {error}")));
    if catalog.get("ok").and_then(JsonValue::as_bool) != Some(true) {
        fail(&format!("catalog refused: {}", catalog.render()));
    }
    let result = catalog.get("result").unwrap_or(&JsonValue::Null);
    let mix = build_mix(result, distinct)
        .unwrap_or_else(|| fail("catalog advertised no AS ids to query"));
    let mut warm_errors = 0usize;
    for line in &mix {
        match request(&mut probe, line) {
            Ok(reply) if reply.contains("\"ok\": true") => {}
            _ => warm_errors += 1,
        }
    }
    if warm_errors > 0 {
        eprintln!("warning: {warm_errors} queries failed during warm-up");
    }
    eprintln!(
        "driving {addr}: {connections} connections × {requests_per_conn} requests, \
         pipeline {pipeline}, churn every {churn_every}, {} distinct queries",
        mix.len()
    );

    // -- timed open-loop run ------------------------------------------
    let run = drive(
        &addr,
        &mix,
        connections,
        pipeline,
        requests_per_conn,
        churn_every,
        Duration::from_secs(deadline_secs),
    );
    let total = (connections * requests_per_conn) as u64;
    let qps = run.ok as f64 / run.seconds.max(1e-9);
    let (p50, p90, p99, max) = (
        percentile_us(&run.latencies_us, 0.50),
        percentile_us(&run.latencies_us, 0.90),
        percentile_us(&run.latencies_us, 0.99),
        percentile_us(&run.latencies_us, 1.0),
    );
    println!(
        "{phase_name}: {}/{total} pipelined queries in {:.2}s → {qps:.0} q/s \
         (p50 {p50}µs, p90 {p90}µs, p99 {p99}µs, max {max}µs, \
         {} reconnects, {} errors)",
        run.ok, run.seconds, run.churn_events, run.errors
    );

    write_phase(
        &bench_json,
        &phase_name,
        connections,
        pipeline,
        run.ok,
        run.errors,
        run.churn_events,
        run.seconds,
        qps,
        (p50, p90, p99, max),
    );

    if shutdown {
        let _ = request(&mut probe, "{\"query\":\"shutdown\"}");
        eprintln!("sent shutdown");
    }
    if run.errors > 0 {
        std::process::exit(1);
    }
}

fn usage(message: &str) -> ! {
    eprintln!("{message}");
    eprintln!(
        "usage: query-load [--addr HOST:PORT] [--connections N] [--pipeline N] \
         [--requests-per-conn N] [--churn-every N] [--distinct N] [--wait-secs N] \
         [--deadline-secs N] [--phase NAME] [--bench-json PATH] [--shutdown]"
    );
    std::process::exit(2);
}

fn fail(message: &str) -> ! {
    eprintln!("query-load: {message}");
    std::process::exit(1);
}

fn parse_number<T: std::str::FromStr>(value: Option<String>, flag: &str) -> T {
    value
        .and_then(|text| text.parse().ok())
        .unwrap_or_else(|| usage(&format!("{flag} needs a number")))
}

/// One load connection's life: a budget of requests pushed through a
/// bounded pipeline, with optional teardown-and-reconnect churn.
struct LoadConn {
    stream: TcpStream,
    decoder: FrameDecoder,
    out: Vec<u8>,
    out_pos: usize,
    /// Requests committed to the output buffer (not necessarily sent).
    queued: usize,
    /// Responses fully received.
    answered: usize,
    budget: usize,
    send_times: VecDeque<Instant>,
    mix_cursor: usize,
    /// Positive: reconnect after this many more responses.
    churn_every: usize,
    until_churn: usize,
    want_churn: bool,
    done: bool,
    failed: bool,
}

impl LoadConn {
    fn open(addr: &str, budget: usize, churn_every: usize, cursor: usize) -> Option<LoadConn> {
        let stream = TcpStream::connect(addr).ok()?;
        stream.set_nodelay(true).ok();
        stream.set_nonblocking(true).ok()?;
        Some(LoadConn {
            stream,
            decoder: FrameDecoder::new(),
            out: Vec::new(),
            out_pos: 0,
            queued: 0,
            answered: 0,
            budget,
            send_times: VecDeque::new(),
            mix_cursor: cursor,
            churn_every,
            until_churn: churn_every.max(1),
            want_churn: false,
            done: false,
            failed: false,
        })
    }

    fn live(&self) -> bool {
        !self.done && !self.failed
    }

    /// Keep the pipeline topped up, with half-depth hysteresis: refill
    /// only once the window has drained to `depth/2`, then burst back
    /// to `depth`. One-request-per-reply refills would degenerate the
    /// whole path into 40-byte segments (a packet per query, each with
    /// its own softirq and wakeup); bursting keeps requests, reads,
    /// executions and replies batched end to end.
    fn fill(&mut self, mix: &[String], depth: usize) {
        let outstanding = self.queued - self.answered;
        if outstanding > depth / 2 {
            return;
        }
        while !self.want_churn && self.queued < self.budget && self.queued - self.answered < depth {
            let line = &mix[self.mix_cursor % mix.len()];
            self.mix_cursor += 1;
            self.out.extend_from_slice(line.as_bytes());
            self.out.push(b'\n');
            self.send_times.push_back(Instant::now());
            self.queued += 1;
        }
    }

    fn wants_write(&self) -> bool {
        self.out_pos < self.out.len()
    }

    fn try_write(&mut self) {
        while self.wants_write() {
            match (&self.stream).write(&self.out[self.out_pos..]) {
                Ok(0) => {
                    self.failed = true;
                    return;
                }
                Ok(n) => self.out_pos += n,
                Err(error) if error.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(error) if error.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.failed = true;
                    return;
                }
            }
        }
        self.out.clear();
        self.out_pos = 0;
    }

    /// Read whatever arrived and account completed responses.
    fn try_read(&mut self, ok: &mut u64, errors: &mut u64, latencies: &mut Vec<u64>) {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match (&self.stream).read(&mut chunk) {
                Ok(0) => {
                    if self.answered < self.budget {
                        self.failed = true;
                    }
                    return;
                }
                Ok(n) => {
                    self.decoder.feed(&chunk[..n]);
                    while let Some(frame) = self.decoder.next_frame() {
                        let reply = match frame {
                            Ok(line) => line,
                            Err(_) => {
                                self.failed = true;
                                return;
                            }
                        };
                        if let Some(start) = self.send_times.pop_front() {
                            latencies.push(start.elapsed().as_micros() as u64);
                        }
                        if reply.contains("\"ok\": true") {
                            *ok += 1;
                        } else {
                            *errors += 1;
                        }
                        self.answered += 1;
                        if self.churn_every > 0 && self.answered < self.budget {
                            self.until_churn -= 1;
                            if self.until_churn == 0 {
                                self.until_churn = self.churn_every;
                                self.want_churn = true;
                            }
                        }
                        if self.answered >= self.budget {
                            self.done = true;
                            return;
                        }
                    }
                }
                Err(error) if error.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(error) if error.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.failed = true;
                    return;
                }
            }
        }
    }

    /// At a churn point with an empty pipeline: tear down and reconnect.
    fn churn_if_due(&mut self, addr: &str) -> bool {
        if !self.want_churn || self.queued != self.answered || !self.out.is_empty() {
            return false;
        }
        let Some(fresh) = LoadConn::open(addr, self.budget, self.churn_every, self.mix_cursor)
        else {
            self.failed = true;
            return false;
        };
        let (queued, answered, until) = (self.queued, self.answered, self.churn_every);
        *self = fresh;
        self.queued = queued;
        self.answered = answered;
        self.until_churn = until;
        true
    }
}

struct RunResult {
    ok: u64,
    errors: u64,
    churn_events: u64,
    seconds: f64,
    latencies_us: Vec<u64>,
}

/// Multiplex every connection from this one thread until all budgets
/// are spent (or the deadline expires, counting the shortfall as
/// errors).
fn drive(
    addr: &str,
    mix: &[String],
    connections: usize,
    pipeline: usize,
    requests_per_conn: usize,
    churn_every: usize,
    deadline: Duration,
) -> RunResult {
    let started = Instant::now();
    let hard_deadline = started + deadline;
    let mut conns: Vec<LoadConn> = Vec::with_capacity(connections);
    for index in 0..connections {
        // Phase-shift each connection's cursor so the fleet interleaves
        // different queries, like real fan-in would.
        match LoadConn::open(addr, requests_per_conn, churn_every, index * 7) {
            Some(conn) => conns.push(conn),
            None => fail(&format!("cannot open load connection {index} to {addr}")),
        }
        if churn_every > 0 {
            // Stagger the first churn point per connection: the whole
            // fleet reconnecting on the same response index would melt
            // the listener backlog into SYN-retransmit stalls and
            // measure TCP retry timers instead of the server.
            let conn = conns.last_mut().expect("just pushed");
            conn.until_churn = 1 + (index % churn_every.max(1));
        }
    }

    let mut ok = 0u64;
    let mut errors = 0u64;
    let mut churn_events = 0u64;
    let mut iterations = 0u64;
    let mut latencies: Vec<u64> = Vec::with_capacity(connections * requests_per_conn);
    let mut fds: Vec<PollFd> = Vec::new();
    let mut order: Vec<usize> = Vec::new();

    loop {
        iterations += 1;
        let mut live = 0usize;
        fds.clear();
        order.clear();
        for (index, conn) in conns.iter_mut().enumerate() {
            if conn.churn_if_due(addr) {
                churn_events += 1;
            }
            if !conn.live() {
                continue;
            }
            live += 1;
            conn.fill(mix, pipeline);
            let mut events = POLLIN;
            if conn.wants_write() {
                events |= POLLOUT;
            }
            fds.push(PollFd::new(conn.stream.as_raw_fd(), events));
            order.push(index);
        }
        if live == 0 {
            break;
        }
        if Instant::now() >= hard_deadline {
            for conn in &conns {
                if conn.live() {
                    errors += (conn.budget - conn.answered) as u64;
                }
            }
            eprintln!("warning: deadline expired with {live} connections unfinished");
            break;
        }
        if poll_fds(&mut fds, 200).is_err() {
            fail("poll failed in the load loop");
        }
        for (slot, &index) in order.iter().enumerate() {
            let conn = &mut conns[index];
            if fds[slot].writable() && conn.wants_write() {
                conn.try_write();
            }
            if fds[slot].readable() && conn.live() {
                conn.try_read(&mut ok, &mut errors, &mut latencies);
            }
        }
    }

    for conn in &conns {
        if conn.failed {
            errors += (conn.budget - conn.answered) as u64;
        }
    }
    eprintln!(
        "load loop: {iterations} iterations, {:.1} replies/iteration",
        ok as f64 / iterations.max(1) as f64
    );
    latencies.sort_unstable();
    RunResult {
        ok,
        errors,
        churn_events,
        seconds: started.elapsed().as_secs_f64(),
        latencies_us: latencies,
    }
}

/// Insert/replace the phase in the bench artefact. The `serve` phase
/// additionally records the thread-per-connection baseline (written by
/// an earlier `--phase serve_baseline` run) and the ratio against it.
#[allow(clippy::too_many_arguments)]
fn write_phase(
    path: &str,
    phase_name: &str,
    connections: usize,
    pipeline: usize,
    ok: u64,
    errors: u64,
    churn_events: u64,
    seconds: f64,
    qps: f64,
    (p50, p90, p99, max): (u64, u64, u64, u64),
) {
    let mut latency = JsonBuilder::object();
    latency.integer("p50", p50);
    latency.integer("p90", p90);
    latency.integer("p99", p99);
    latency.integer("max", max);
    let mut phase = JsonBuilder::object();
    phase.integer("connections", connections as u64);
    phase.integer("pipeline", pipeline as u64);
    phase.integer("queries", ok);
    phase.integer("errors", errors);
    phase.integer("reconnects", churn_events);
    phase.number("seconds", seconds);
    phase.number("qps", qps);
    phase.raw("latency_us", latency.finish());
    if phase_name == "serve" {
        if let Some(baseline) = read_bench_phase(path, "serve_baseline") {
            if let Some(baseline_qps) = baseline.get("qps").and_then(JsonValue::as_f64) {
                phase.number("baseline_qps", baseline_qps);
                if let Some(baseline_conns) =
                    baseline.get("connections").and_then(JsonValue::as_u64)
                {
                    phase.integer("baseline_connections", baseline_conns);
                }
                phase.number("qps_vs_threaded", qps / baseline_qps.max(1e-9));
            }
        }
    }
    let phase = parse(&phase.finish()).expect("phase JSON is valid");
    merge_bench_phase(path, phase_name, phase, Some(seconds));
    eprintln!("wrote {phase_name} phase to {path}");
}
