//! query-bench — load generator for `vendor-queryd`.
//!
//! ```text
//! query-bench [--addr 127.0.0.1:7377] [--connections 8] [--requests 2000]
//!             [--distinct 64] [--wait-secs 30]
//!             [--bench-json BENCH_campaign.json] [--shutdown]
//! ```
//!
//! Connects to a running daemon (retrying until `--wait-secs`, so it can
//! start in parallel with the daemon's world build), bootstraps a
//! deterministic query mix from the daemon's `catalog` answer, warms the
//! result cache with one pass over the distinct queries, then drives
//! `--connections` concurrent client connections issuing `--requests`
//! queries each and reports throughput and latency percentiles.
//!
//! Results land in `BENCH_campaign.json` as a `query_engine` phase:
//! the file is parsed (if present), the top-level `query_engine` object
//! is inserted or replaced, and `phases_seconds.query_engine` is set so
//! the serving layer shows up next to the campaign phases.

use lfp_analysis::json::{parse, JsonBuilder, JsonValue};
use lfp_bench::merge_bench_phase;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn main() {
    let mut args = std::env::args().skip(1);
    let mut addr = "127.0.0.1:7377".to_string();
    let mut connections = 8usize;
    let mut requests = 2000usize;
    let mut distinct = 64usize;
    let mut wait_secs = 30u64;
    let mut bench_json = "BENCH_campaign.json".to_string();
    let mut shutdown = false;

    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => {
                addr = args
                    .next()
                    .unwrap_or_else(|| usage("--addr needs host:port"))
            }
            "--connections" => connections = parse_number(args.next(), "--connections"),
            "--requests" => requests = parse_number(args.next(), "--requests"),
            "--distinct" => distinct = parse_number(args.next(), "--distinct"),
            "--wait-secs" => wait_secs = parse_number(args.next(), "--wait-secs"),
            "--bench-json" => {
                bench_json = args
                    .next()
                    .unwrap_or_else(|| usage("--bench-json needs a path"))
            }
            "--shutdown" => shutdown = true,
            other => usage(&format!("unknown argument '{other}'")),
        }
    }
    let connections = connections.max(1);
    let distinct = distinct.max(1);

    // -- bootstrap: wait for the daemon, fetch the catalog ------------
    let mut probe = connect_with_retry(&addr, Duration::from_secs(wait_secs));
    let catalog = request(&mut probe, "{\"query\":\"catalog\"}")
        .unwrap_or_else(|error| fail(&format!("catalog query failed: {error}")));
    let catalog =
        parse(&catalog).unwrap_or_else(|error| fail(&format!("bad catalog JSON: {error}")));
    if catalog.get("ok").and_then(JsonValue::as_bool) != Some(true) {
        fail(&format!("catalog refused: {}", catalog.render()));
    }
    let result = catalog.get("result").unwrap_or(&JsonValue::Null);
    let mix = build_mix(result, distinct);
    eprintln!(
        "driving {addr}: {} distinct queries × {connections} connections × {requests} requests",
        mix.len()
    );

    // -- warm pass: every distinct query once -------------------------
    let mut warm_errors = 0usize;
    for line in &mix {
        match request(&mut probe, line) {
            Ok(reply) if reply.contains("\"ok\": true") => {}
            _ => warm_errors += 1,
        }
    }
    if warm_errors > 0 {
        eprintln!("warning: {warm_errors} queries failed during warm-up");
    }

    // -- timed run ----------------------------------------------------
    let timed_start = Instant::now();
    let worker_results: Vec<WorkerResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|worker| {
                let mix = &mix;
                let addr = &addr;
                scope.spawn(move || drive_worker(addr, mix, worker, requests))
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("load worker panicked"))
            .collect()
    });
    let seconds = timed_start.elapsed().as_secs_f64();

    let mut latencies: Vec<u64> = Vec::with_capacity(connections * requests);
    let (mut ok, mut cached, mut errors) = (0u64, 0u64, 0u64);
    for result in &worker_results {
        latencies.extend(&result.latencies_us);
        ok += result.ok;
        cached += result.cached;
        errors += result.errors;
    }
    latencies.sort_unstable();
    let total = ok + errors;
    let qps = total as f64 / seconds.max(1e-9);
    let hit_percent = cached as f64 * 100.0 / ok.max(1) as f64;
    let percentile = |p: f64| -> u64 {
        if latencies.is_empty() {
            return 0;
        }
        let index = ((latencies.len() - 1) as f64 * p).round() as usize;
        latencies[index]
    };
    let (p50, p90, p99, max) = (
        percentile(0.50),
        percentile(0.90),
        percentile(0.99),
        percentile(1.0),
    );

    println!(
        "query_engine: {total} queries in {seconds:.2}s → {qps:.0} q/s \
         (p50 {p50}µs, p90 {p90}µs, p99 {p99}µs, max {max}µs, \
         {hit_percent:.1}% cache hits, {errors} errors)"
    );

    write_bench_phase(
        &bench_json,
        connections,
        total,
        seconds,
        qps,
        (p50, p90, p99, max),
        hit_percent,
        errors,
    );

    if shutdown {
        let _ = request(&mut probe, "{\"query\":\"shutdown\"}");
        eprintln!("sent shutdown");
    }
    if errors > 0 {
        std::process::exit(1);
    }
}

fn usage(message: &str) -> ! {
    eprintln!("{message}");
    eprintln!(
        "usage: query-bench [--addr HOST:PORT] [--connections N] [--requests N] \
         [--distinct N] [--wait-secs N] [--bench-json PATH] [--shutdown]"
    );
    std::process::exit(2);
}

fn fail(message: &str) -> ! {
    eprintln!("query-bench: {message}");
    std::process::exit(1);
}

fn parse_number<T: std::str::FromStr>(value: Option<String>, flag: &str) -> T {
    value
        .and_then(|text| text.parse().ok())
        .unwrap_or_else(|| usage(&format!("{flag} needs a number")))
}

/// A connected client: line-buffered reader + writer over one stream.
struct Connection {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

fn connect(addr: &str) -> std::io::Result<Connection> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let reader = BufReader::new(stream.try_clone()?);
    Ok(Connection {
        reader,
        writer: BufWriter::new(stream),
    })
}

fn connect_with_retry(addr: &str, timeout: Duration) -> Connection {
    let deadline = Instant::now() + timeout;
    loop {
        match connect(addr) {
            Ok(connection) => return connection,
            Err(error) => {
                if Instant::now() >= deadline {
                    fail(&format!(
                        "cannot connect to {addr} within {timeout:?}: {error}"
                    ));
                }
                std::thread::sleep(Duration::from_millis(100));
            }
        }
    }
}

/// One request/response round trip.
fn request(connection: &mut Connection, line: &str) -> Result<String, String> {
    writeln!(connection.writer, "{line}")
        .and_then(|()| connection.writer.flush())
        .map_err(|error| format!("send: {error}"))?;
    let mut reply = String::new();
    match connection.reader.read_line(&mut reply) {
        Ok(0) => Err("connection closed".to_string()),
        Ok(_) => Ok(reply.trim_end().to_string()),
        Err(error) => Err(format!("recv: {error}")),
    }
}

/// Build a deterministic request mix from the daemon's catalog: every
/// query kind, cycling through the advertised AS ids, sources, regions
/// and slices. Deterministic so reruns are comparable and so the warm
/// pass covers exactly the timed working set.
fn build_mix(catalog: &JsonValue, distinct: usize) -> Vec<String> {
    let numbers = |key: &str| -> Vec<u64> {
        catalog
            .get(key)
            .and_then(JsonValue::as_array)
            .map(|items| items.iter().filter_map(JsonValue::as_u64).collect())
            .unwrap_or_default()
    };
    let strings = |key: &str| -> Vec<String> {
        catalog
            .get(key)
            .and_then(JsonValue::as_array)
            .map(|items| {
                items
                    .iter()
                    .filter_map(JsonValue::as_str)
                    .map(str::to_string)
                    .collect()
            })
            .unwrap_or_default()
    };
    let src_ases = numbers("src_ases");
    let dst_ases = numbers("dst_ases");
    let sources = strings("sources");
    let regions = strings("regions");
    let slices = strings("slices");
    if src_ases.is_empty() || dst_ases.is_empty() {
        fail("catalog advertised no AS ids to query");
    }

    let pick = |items: &[u64], index: usize| items[index % items.len()];
    let pick_str = |items: &[String], index: usize| items[index % items.len()].clone();
    let mut mix = Vec::with_capacity(distinct);
    for index in 0..distinct {
        let line = match index % 6 {
            0 => format!(
                "{{\"query\":\"vendor_mix\",\"as\":{}}}",
                pick(&src_ases, index / 6)
            ),
            1 if !regions.is_empty() => format!(
                "{{\"query\":\"vendor_mix\",\"region\":\"{}\",\"method\":\"{}\"}}",
                pick_str(&regions, index / 6),
                if index % 2 == 0 { "lfp" } else { "snmp" },
            ),
            2 => format!(
                "{{\"query\":\"path_diversity\",\"src_as\":{},\"dst_as\":{}}}",
                pick(&src_ases, index / 6),
                pick(&dst_ases, index / 3),
            ),
            3 if !sources.is_empty() => format!(
                "{{\"query\":\"transitions\",\"source\":\"{}\"}}",
                pick_str(&sources, index / 6)
            ),
            4 if !slices.is_empty() => format!(
                "{{\"query\":\"longest_runs\",\"slice\":\"{}\"}}",
                pick_str(&slices, index / 6)
            ),
            _ => format!(
                "{{\"query\":\"path_diversity\",\"src_as\":{},\"dst_as\":{},\"min_hops\":{}}}",
                pick(&src_ases, index / 2),
                pick(&dst_ases, index / 4),
                2 + index % 4,
            ),
        };
        mix.push(line);
    }
    mix
}

struct WorkerResult {
    latencies_us: Vec<u64>,
    ok: u64,
    cached: u64,
    errors: u64,
}

/// One timed connection: `requests` sequential round trips over the
/// shared mix, phase-shifted per worker so connections interleave
/// different queries.
fn drive_worker(addr: &str, mix: &[String], worker: usize, requests: usize) -> WorkerResult {
    let mut result = WorkerResult {
        latencies_us: Vec::with_capacity(requests),
        ok: 0,
        cached: 0,
        errors: 0,
    };
    let mut connection = match connect(addr) {
        Ok(connection) => connection,
        Err(_) => {
            result.errors = requests as u64;
            return result;
        }
    };
    for index in 0..requests {
        let line = &mix[(worker * 7 + index) % mix.len()];
        let start = Instant::now();
        match request(&mut connection, line) {
            Ok(reply) if reply.contains("\"ok\": true") => {
                result.latencies_us.push(start.elapsed().as_micros() as u64);
                result.ok += 1;
                if reply.contains("\"cached\": true") {
                    result.cached += 1;
                }
            }
            _ => result.errors += 1,
        }
    }
    result
}

/// Insert/replace the `query_engine` phase in the bench artefact,
/// preserving whatever the `experiments` binary already wrote there
/// (shared merge logic lives in `lfp_bench::merge_bench_phase`).
#[allow(clippy::too_many_arguments)]
fn write_bench_phase(
    path: &str,
    connections: usize,
    queries: u64,
    seconds: f64,
    qps: f64,
    (p50, p90, p99, max): (u64, u64, u64, u64),
    hit_percent: f64,
    errors: u64,
) {
    let mut latency = JsonBuilder::object();
    latency.integer("p50", p50);
    latency.integer("p90", p90);
    latency.integer("p99", p99);
    latency.integer("max", max);
    let mut phase = JsonBuilder::object();
    phase.integer("connections", connections as u64);
    phase.integer("queries", queries);
    phase.number("seconds", seconds);
    phase.number("qps", qps);
    phase.raw("latency_us", latency.finish());
    phase.number("cache_hit_percent", hit_percent);
    phase.integer("errors", errors);
    let phase = parse(&phase.finish()).expect("phase JSON is valid");
    merge_bench_phase(path, "query_engine", phase, Some(seconds));
    eprintln!("wrote query_engine phase to {path}");
}
