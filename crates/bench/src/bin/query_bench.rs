//! query-bench — load generator for `vendor-queryd`.
//!
//! ```text
//! query-bench [--addr 127.0.0.1:7377] [--connections 8] [--requests 2000]
//!             [--distinct 64] [--wait-secs 30]
//!             [--bench-json BENCH_campaign.json] [--shutdown]
//! ```
//!
//! Connects to a running daemon (retrying until `--wait-secs`, so it can
//! start in parallel with the daemon's world build), bootstraps a
//! deterministic query mix from the daemon's `catalog` answer, warms the
//! result cache with one pass over the distinct queries, then drives
//! `--connections` concurrent client connections issuing `--requests`
//! queries each and reports throughput and latency percentiles.
//!
//! Results land in `BENCH_campaign.json` as a `query_engine` phase:
//! the file is parsed (if present), the top-level `query_engine` object
//! is inserted or replaced, and `phases_seconds.query_engine` is set so
//! the serving layer shows up next to the campaign phases.

use lfp_analysis::json::{parse, JsonBuilder, JsonValue};
use lfp_bench::merge_bench_phase;
use lfp_bench::mix::{build_mix, connect, connect_with_retry, percentile_us, request};
use std::time::{Duration, Instant};

fn main() {
    let mut args = std::env::args().skip(1);
    let mut addr = "127.0.0.1:7377".to_string();
    let mut connections = 8usize;
    let mut requests = 2000usize;
    let mut distinct = 64usize;
    let mut wait_secs = 30u64;
    let mut bench_json = "BENCH_campaign.json".to_string();
    let mut shutdown = false;

    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => {
                addr = args
                    .next()
                    .unwrap_or_else(|| usage("--addr needs host:port"))
            }
            "--connections" => connections = parse_number(args.next(), "--connections"),
            "--requests" => requests = parse_number(args.next(), "--requests"),
            "--distinct" => distinct = parse_number(args.next(), "--distinct"),
            "--wait-secs" => wait_secs = parse_number(args.next(), "--wait-secs"),
            "--bench-json" => {
                bench_json = args
                    .next()
                    .unwrap_or_else(|| usage("--bench-json needs a path"))
            }
            "--shutdown" => shutdown = true,
            other => usage(&format!("unknown argument '{other}'")),
        }
    }
    let connections = connections.max(1);
    let distinct = distinct.max(1);

    // -- bootstrap: wait for the daemon, fetch the catalog ------------
    let mut probe = connect_with_retry(&addr, Duration::from_secs(wait_secs))
        .unwrap_or_else(|error| fail(&error));
    let catalog = request(&mut probe, "{\"query\":\"catalog\"}")
        .unwrap_or_else(|error| fail(&format!("catalog query failed: {error}")));
    let catalog =
        parse(&catalog).unwrap_or_else(|error| fail(&format!("bad catalog JSON: {error}")));
    if catalog.get("ok").and_then(JsonValue::as_bool) != Some(true) {
        fail(&format!("catalog refused: {}", catalog.render()));
    }
    let result = catalog.get("result").unwrap_or(&JsonValue::Null);
    let mix = build_mix(result, distinct)
        .unwrap_or_else(|| fail("catalog advertised no AS ids to query"));
    eprintln!(
        "driving {addr}: {} distinct queries × {connections} connections × {requests} requests",
        mix.len()
    );

    // -- warm pass: every distinct query once -------------------------
    let mut warm_errors = 0usize;
    for line in &mix {
        match request(&mut probe, line) {
            Ok(reply) if reply.contains("\"ok\": true") => {}
            _ => warm_errors += 1,
        }
    }
    if warm_errors > 0 {
        eprintln!("warning: {warm_errors} queries failed during warm-up");
    }

    // -- timed run ----------------------------------------------------
    let timed_start = Instant::now();
    let worker_results: Vec<WorkerResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|worker| {
                let mix = &mix;
                let addr = &addr;
                scope.spawn(move || drive_worker(addr, mix, worker, requests))
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("load worker panicked"))
            .collect()
    });
    let seconds = timed_start.elapsed().as_secs_f64();

    let mut latencies: Vec<u64> = Vec::with_capacity(connections * requests);
    let (mut ok, mut cached, mut errors) = (0u64, 0u64, 0u64);
    for result in &worker_results {
        latencies.extend(&result.latencies_us);
        ok += result.ok;
        cached += result.cached;
        errors += result.errors;
    }
    latencies.sort_unstable();
    let total = ok + errors;
    let qps = total as f64 / seconds.max(1e-9);
    let hit_percent = cached as f64 * 100.0 / ok.max(1) as f64;
    let (p50, p90, p99, max) = (
        percentile_us(&latencies, 0.50),
        percentile_us(&latencies, 0.90),
        percentile_us(&latencies, 0.99),
        percentile_us(&latencies, 1.0),
    );

    println!(
        "query_engine: {total} queries in {seconds:.2}s → {qps:.0} q/s \
         (p50 {p50}µs, p90 {p90}µs, p99 {p99}µs, max {max}µs, \
         {hit_percent:.1}% cache hits, {errors} errors)"
    );

    write_bench_phase(
        &bench_json,
        connections,
        total,
        seconds,
        qps,
        (p50, p90, p99, max),
        hit_percent,
        errors,
    );

    if shutdown {
        let _ = request(&mut probe, "{\"query\":\"shutdown\"}");
        eprintln!("sent shutdown");
    }
    if errors > 0 {
        std::process::exit(1);
    }
}

fn usage(message: &str) -> ! {
    eprintln!("{message}");
    eprintln!(
        "usage: query-bench [--addr HOST:PORT] [--connections N] [--requests N] \
         [--distinct N] [--wait-secs N] [--bench-json PATH] [--shutdown]"
    );
    std::process::exit(2);
}

fn fail(message: &str) -> ! {
    eprintln!("query-bench: {message}");
    std::process::exit(1);
}

fn parse_number<T: std::str::FromStr>(value: Option<String>, flag: &str) -> T {
    value
        .and_then(|text| text.parse().ok())
        .unwrap_or_else(|| usage(&format!("{flag} needs a number")))
}

struct WorkerResult {
    latencies_us: Vec<u64>,
    ok: u64,
    cached: u64,
    errors: u64,
}

/// One timed connection: `requests` sequential round trips over the
/// shared mix, phase-shifted per worker so connections interleave
/// different queries.
fn drive_worker(addr: &str, mix: &[String], worker: usize, requests: usize) -> WorkerResult {
    let mut result = WorkerResult {
        latencies_us: Vec::with_capacity(requests),
        ok: 0,
        cached: 0,
        errors: 0,
    };
    let mut connection = match connect(addr) {
        Ok(connection) => connection,
        Err(_) => {
            result.errors = requests as u64;
            return result;
        }
    };
    for index in 0..requests {
        let line = &mix[(worker * 7 + index) % mix.len()];
        let start = Instant::now();
        match request(&mut connection, line) {
            Ok(reply) if reply.contains("\"ok\": true") => {
                result.latencies_us.push(start.elapsed().as_micros() as u64);
                result.ok += 1;
                if reply.contains("\"cached\": true") {
                    result.cached += 1;
                }
            }
            _ => result.errors += 1,
        }
    }
    result
}

/// Insert/replace the `query_engine` phase in the bench artefact,
/// preserving whatever the `experiments` binary already wrote there
/// (shared merge logic lives in `lfp_bench::merge_bench_phase`).
#[allow(clippy::too_many_arguments)]
fn write_bench_phase(
    path: &str,
    connections: usize,
    queries: u64,
    seconds: f64,
    qps: f64,
    (p50, p90, p99, max): (u64, u64, u64, u64),
    hit_percent: f64,
    errors: u64,
) {
    let mut latency = JsonBuilder::object();
    latency.integer("p50", p50);
    latency.integer("p90", p90);
    latency.integer("p99", p99);
    latency.integer("max", max);
    let mut phase = JsonBuilder::object();
    phase.integer("connections", connections as u64);
    phase.integer("queries", queries);
    phase.number("seconds", seconds);
    phase.number("qps", qps);
    phase.raw("latency_us", latency.finish());
    phase.number("cache_hit_percent", hit_percent);
    phase.integer("errors", errors);
    let phase = parse(&phase.finish()).expect("phase JSON is valid");
    merge_bench_phase(path, "query_engine", phase, Some(seconds));
    eprintln!("wrote query_engine phase to {path}");
}
