//! Regenerate the paper's tables and figures.
//!
//! ```text
//! experiments [--scale tiny|small|paper|path-stress|query-stress|ingest-stress] [--serial] [--json DIR]
//!             [--markdown FILE] [--bench-json FILE] [ids…|all]
//! ```
//!
//! Builds one fully measured `World` at the requested scale, runs the
//! selected experiments (default: all), prints each report, and optionally
//! writes per-experiment JSON plus a combined Markdown summary (the body
//! of EXPERIMENTS.md).
//!
//! Every run also emits `BENCH_campaign.json` with wall-clock seconds per
//! campaign phase (generate / collect / scan / finalize / classify /
//! path_corpus / experiments), so successive PRs have a performance
//! trajectory. The `path_corpus` phase times the build-once columnar
//! path store behind the §6 figures — warm builds pay it up front, lazy
//! runs on first use inside an experiment.
//! `--serial` forces the single-threaded single-shard reference path —
//! the baseline the parallel campaign's speedup is measured against.

use lfp_analysis::experiments::{all_ids, run_all_parallel, run_by_id, EXPERIMENTS};
use lfp_analysis::json::JsonBuilder;
use lfp_analysis::world::CampaignTimings;
use lfp_analysis::{Report, World};
use lfp_topo::Scale;
use std::io::Write;
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1).peekable();
    let mut scale = Scale::small();
    let mut scale_name = "small".to_string();
    let mut parallel = true;
    let mut json_dir: Option<String> = None;
    let mut markdown: Option<String> = None;
    let mut bench_json = "BENCH_campaign.json".to_string();
    let mut run_all_requested = false;
    let mut ids: Vec<String> = Vec::new();

    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let value = args.next().unwrap_or_default();
                scale = Scale::by_name(&value).unwrap_or_else(|| {
                    eprintln!("unknown scale '{value}' (tiny|small|paper|path-stress|query-stress|ingest-stress)");
                    std::process::exit(2);
                });
                scale_name = value;
            }
            "--serial" => parallel = false,
            "--json" => json_dir = args.next(),
            "--markdown" => markdown = args.next(),
            "--bench-json" => {
                bench_json = args.next().unwrap_or_else(|| {
                    eprintln!("--bench-json needs a path");
                    std::process::exit(2);
                })
            }
            "--list" => {
                for experiment in EXPERIMENTS {
                    println!("{:<22} {}", experiment.id, experiment.title);
                }
                return;
            }
            "all" => run_all_requested = true,
            other => ids.push(other.to_string()),
        }
    }
    let run_everything = run_all_requested || ids.is_empty();
    if run_everything {
        ids = all_ids().iter().map(|s| s.to_string()).collect();
    }

    eprintln!(
        "building world at scale '{scale_name}' (~{} routers, {} campaign)…",
        scale.approx_routers(),
        if parallel { "parallel" } else { "serial" },
    );
    let build_start = Instant::now();
    // Warming the campaign cache (the `classify` phase) only pays off
    // when the whole registry runs; a subset build stays lazy.
    let (world, timings) = World::build_instrumented(scale, parallel, run_everything);
    eprintln!(
        "world ready in {:.1}s (generate {:.1}s, collect {:.1}s, scan {:.1}s, finalize {:.1}s, classify {:.1}s, path corpus {:.1}s)",
        build_start.elapsed().as_secs_f64(),
        timings.generate,
        timings.collect,
        timings.scan,
        timings.finalize,
        timings.classify,
        timings.path_corpus,
    );
    eprintln!(
        "  {} routers, {} interfaces, {} unique / {} non-unique signatures",
        world.internet.routers().len(),
        world.internet.network().interface_count(),
        world.set.unique_count(),
        world.set.non_unique_count(),
    );

    let experiments_start = Instant::now();
    let reports: Vec<Report> = if run_everything && parallel {
        run_all_parallel(&world)
    } else {
        ids.iter()
            .filter_map(|id| {
                let report = run_by_id(&world, id);
                if report.is_none() {
                    eprintln!("unknown experiment id '{id}' — try --list");
                }
                report
            })
            .collect()
    };
    let experiments_secs = experiments_start.elapsed().as_secs_f64();
    for report in &reports {
        println!("{}", report.render_text());
    }
    eprintln!(
        "{} experiments in {:.1}s ({})",
        reports.len(),
        experiments_secs,
        if run_everything && parallel {
            "parallel registry"
        } else {
            "sequential"
        },
    );

    write_bench_json(
        &bench_json,
        &scale_name,
        parallel,
        &timings,
        experiments_secs,
        reports.len(),
        &world,
    );

    if let Some(dir) = json_dir {
        std::fs::create_dir_all(&dir).expect("create json dir");
        for report in &reports {
            let path = format!("{dir}/{}.json", report.id);
            std::fs::write(&path, report.to_json()).expect("write json");
        }
        eprintln!("wrote {} JSON reports to {dir}", reports.len());
    }

    if let Some(path) = markdown {
        let mut out = std::fs::File::create(&path).expect("create markdown file");
        writeln!(
            out,
            "<!-- generated by `experiments --scale {scale_name}` -->"
        )
        .unwrap();
        for report in &reports {
            writeln!(out, "### {} — {}\n", report.id, report.title).unwrap();
            if !report.columns.is_empty() {
                writeln!(out, "| {} |", report.columns.join(" | ")).unwrap();
                writeln!(
                    out,
                    "|{}|",
                    report
                        .columns
                        .iter()
                        .map(|_| "---")
                        .collect::<Vec<_>>()
                        .join("|")
                )
                .unwrap();
                for row in &report.rows {
                    writeln!(out, "| {} |", row.join(" | ")).unwrap();
                }
                writeln!(out).unwrap();
            }
            for series in &report.series {
                let sampled: Vec<String> = series
                    .points
                    .iter()
                    .step_by((series.points.len() / 8).max(1))
                    .map(|(x, y)| format!("({x:.2}, {y:.3})"))
                    .collect();
                writeln!(out, "- series `{}`: {}", series.name, sampled.join(" ")).unwrap();
            }
            writeln!(out, "\n- **paper**: {}", report.paper_claim).unwrap();
            writeln!(out, "- **measured**: {}\n", report.measured_claim).unwrap();
            for note in &report.notes {
                writeln!(out, "- note: {note}").unwrap();
            }
        }
        eprintln!("wrote markdown summary to {path}");
    }
}

/// Emit the per-phase timing artefact (`BENCH_campaign.json`).
#[allow(clippy::too_many_arguments)]
fn write_bench_json(
    path: &str,
    scale_name: &str,
    parallel: bool,
    timings: &CampaignTimings,
    experiments_secs: f64,
    experiment_count: usize,
    world: &World,
) {
    // Warm builds pay the corpus up front (timings.path_corpus); lazy
    // subset runs build it inside the first path experiment, so that
    // wall-clock is carved out of the `experiments` phase to keep the
    // phases summing to `total`.
    let corpus_secs = world.path_corpus_seconds();
    let lazy_corpus_secs = corpus_secs - timings.path_corpus;
    let experiments_only_secs = (experiments_secs - lazy_corpus_secs).max(0.0);
    let mut phases = JsonBuilder::object();
    phases.number("generate", timings.generate);
    phases.number("collect", timings.collect);
    phases.number("scan", timings.scan);
    phases.number("finalize", timings.finalize);
    phases.number("classify", timings.classify);
    phases.number("path_corpus", corpus_secs);
    phases.number("experiments", experiments_only_secs);
    phases.number(
        "total",
        timings.total() + lazy_corpus_secs + experiments_only_secs,
    );

    let mut sizes = JsonBuilder::object();
    sizes.integer("routers", world.internet.routers().len() as u64);
    sizes.integer(
        "interfaces",
        world.internet.network().interface_count() as u64,
    );
    sizes.integer("datasets", (world.ripe_scans.len() + 1) as u64);
    sizes.integer("unique_signatures", world.set.unique_count() as u64);
    sizes.integer("non_unique_signatures", world.set.non_unique_count() as u64);
    if let Some(corpus) = world.path_corpus_if_built() {
        sizes.integer("paths", corpus.len() as u64);
        sizes.integer("path_sequences", corpus.distinct_sequences() as u64);
    }
    sizes.integer("experiments", experiment_count as u64);

    let mut json = JsonBuilder::object();
    json.string("artifact", "BENCH_campaign");
    json.string("scale", scale_name);
    json.string("mode", if parallel { "parallel" } else { "serial" });
    json.integer(
        "threads",
        std::thread::available_parallelism()
            .map(|n| n.get() as u64)
            .unwrap_or(1),
    );
    json.raw("phases_seconds", phases.finish());
    json.raw("campaign", sizes.finish());
    std::fs::write(path, json.finish_pretty() + "\n").expect("write bench json");
    eprintln!("wrote phase timings to {path}");
}
