//! vendor-queryd — serve vendor-intelligence queries over TCP.
//!
//! ```text
//! vendor-queryd [--scale tiny|small|paper|path-stress|query-stress|ingest-stress]
//!               [--addr 127.0.0.1] [--port 7377]
//!               [--loops N] [--workers N] [--max-connections N] [--max-inflight N]
//!               [--write-buffer-cap BYTES] [--drain-timeout-ms N]
//!               [--queue-watermark N] [--request-deadline-ms N]
//!               [--retry-hint-ms N]
//!               [--fault-seed N] [--fault-profile quiet|light|aggressive]
//!               [--cache-shards N] [--cache-capacity N]
//!               [--slowlog-size N] [--metrics-dump]
//!               [--store PATH] [--ingest DIR] [--bench-json FILE]
//!               [--compact-after N]
//!               [--follow ADDR] [--serve-replicas]
//!               [--threaded]
//! ```
//!
//! ## Replication
//!
//! `--serve-replicas` makes this daemon a replication **primary**: the
//! `repl_status` / `repl_snapshot` / `repl_delta` / `repl_ingest`
//! queries (see `lfp_store::repl`) are answered on the ordinary
//! serving port, ahead of the data path. `--follow ADDR` makes it a
//! **follower** of the primary at `ADDR`: on start it loads its local
//! `--store` (then catches up via shipped deltas) or, lacking one,
//! pulls the primary's full snapshot — resumably, through a `.sync`
//! scratch file whose progress survives a mid-sync kill; then a
//! background poller applies each new epoch through the same
//! `Store::ingest` path local ingest uses, persisting after every
//! applied delta when `--store` is set. Followers answer every data
//! query themselves and enforce `min_epoch` fencing: a request whose
//! floor is above the follower's applied epoch gets the typed
//! `stale_epoch` refusal, never old data.
//!
//! ## Overload and chaos
//!
//! `--queue-watermark N` sheds data queries with the typed
//! `overloaded` wire error once N decoded requests are queued for the
//! worker pool; `--request-deadline-ms` expires queued requests the
//! same way; `--retry-hint-ms` sets the `retry_ms` hint clients back
//! off by. `--fault-seed`/`--fault-profile` put the deterministic
//! [`FaultPolicy`](lfp_serve::FaultPolicy) between the event loop and
//! the kernel — the daemon then injects short reads/writes, `EINTR`,
//! spurious wakeups, resets and write stalls against itself, which is
//! what `query-load --chaos` drives in CI. With multiple loops each
//! shard runs an **independent lane** of the seeded schedule
//! (`seed ⊕ shard_id` — see the determinism contract in
//! `lfp_serve::policy`), so multi-loop chaos runs stay replayable.
//! Event loop only.
//!
//! Serves the line protocol (see `lfp_query::wire`): one JSON query per
//! line in, one JSON result per line out. By default the daemon runs on
//! the **sharded readiness-driven core** from `lfp-serve` — an
//! acceptor distributing connections round-robin across `--loops N`
//! independent event loops (default 1; `0` sizes from the machine),
//! each multiplexing its connections over `poll(2)` with its own
//! worker pool, pipelining and per-connection backpressure,
//! slow-reader eviction, and a graceful drain on shutdown. `--threaded`
//! selects the legacy thread-per-connection core instead (kept as the
//! baseline the `serve` bench phase compares against). `--port 0` binds
//! an ephemeral port; the `listening on` line printed to stdout carries
//! the actual address.
//!
//! ## Control queries and observability
//!
//! Beyond the query grammar: `{"query": "stats"}` (event loop only)
//! reports connections, queue depths and the serving epoch;
//! `{"query": "metrics"}` returns the Prometheus text exposition
//! (JSON-escaped in the reply envelope); `{"query": "slowlog"}` dumps
//! the top-K-by-latency slow-query log (`--slowlog-size N` sets K,
//! default 64, 0 disables); `{"query": "shutdown"}` acknowledges,
//! **drains every accepted request on every connection**, then exits;
//! an EOF or `quit` line ends one connection (after its pipelined
//! responses flush). `--metrics-dump` prints the final exposition to
//! stdout after the drain — the scrape CI archives next to the bench
//! artefact. Event loop only.
//!
//! ## Persistence and ingestion
//!
//! Without `--store`, the daemon measures a fresh `World` at the
//! requested scale on every start. With `--store PATH`:
//!
//! * if `PATH` exists, the daemon **cold-starts from the store** — the
//!   deterministic Internet regenerates, everything measured or
//!   classified loads from disk, and serving resumes at the persisted
//!   epoch (an order of magnitude faster than a rebuild);
//! * otherwise the daemon builds the world once and **saves the store**
//!   to `PATH` for the next start.
//!
//! `--ingest DIR` then folds every `*.delta` file in `DIR` (sorted by
//! file name; written by `store-tool deltas`) into the serving state as
//! one epoch per snapshot before the listener opens, and re-persists the
//! store when `--store` is set. `--bench-json FILE` records the
//! `store` phase — rebuild seconds on the first run, load seconds and
//! the rebuild/load speedup on a restart.
//!
//! ## Segmented store and background compaction
//!
//! When `--store` points at a **directory** (or `--compact-after N` is
//! given), persistence uses the segmented epoch log
//! (`lfp_store::segment`): the base snapshot is written once and each
//! ingested epoch seals one O(delta) segment file, with the `MANIFEST`
//! rename as the atomic publish point. `--compact-after N` arms the
//! background compactor: once more than N segments are published it
//! folds them into a fresh sealed base, off the serving threads —
//! queries and replication keep flowing during a fold. The compactor's
//! counters ride the `stats` reply (`compactions`,
//! `compaction_segments_folded`, `compaction_errors`,
//! `compaction_last_us`) and the `metrics` exposition (as `lfp_*`
//! gauges). Followers with a segmented `--store` persist **per applied
//! epoch** — one segment file per delta instead of rewriting the world
//! after every poll.

use lfp_analysis::json::{parse, JsonBuilder, JsonValue};
use lfp_analysis::World;
use lfp_bench::{merge_bench_phase, read_bench_phase};
use lfp_query::wire;
use lfp_serve::{
    answer_line, is_shutdown_line, DirectIo, EngineSource, FaultPlan, FaultPolicy, IoPolicy,
    ServeConfig, Server, SHUTDOWN_ACK,
};
use lfp_store::{
    follow_once, follow_once_persistent, CompactionPolicy, Compactor, ReplClient, ReplSource,
    SnapshotDelta, Store,
};
use lfp_topo::Scale;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

fn main() {
    let mut args = std::env::args().skip(1);
    let mut scale = Scale::query_stress();
    let mut scale_name = "query-stress".to_string();
    let mut addr = "127.0.0.1".to_string();
    let mut port = 7377u16;
    let mut cache_shards = 16usize;
    let mut cache_capacity = 4096usize;
    let mut store_path: Option<String> = None;
    let mut ingest_dir: Option<String> = None;
    let mut bench_json: Option<String> = None;
    let mut threaded = false;
    let mut follow_addr: Option<String> = None;
    let mut serve_replicas = false;
    let mut compact_after: Option<usize> = None;
    let mut config = ServeConfig::default();
    let mut tuned_event_loop = false;
    let mut fault_seed = 0u64;
    let mut fault_profile: Option<String> = None;
    let mut metrics_dump = false;

    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let value = args.next().unwrap_or_default();
                scale = Scale::by_name(&value).unwrap_or_else(|| {
                    eprintln!(
                        "unknown scale '{value}' \
                         (tiny|small|paper|path-stress|query-stress|ingest-stress)"
                    );
                    std::process::exit(2);
                });
                scale_name = value;
            }
            "--addr" => addr = args.next().unwrap_or_else(|| usage("--addr needs a host")),
            "--port" => port = parse_number(args.next(), "--port"),
            "--loops" => {
                config.loops = parse_number(args.next(), "--loops");
                tuned_event_loop = true;
            }
            "--workers" => {
                config.workers = parse_number(args.next(), "--workers");
                tuned_event_loop = true;
            }
            "--max-connections" => {
                config.max_connections = parse_number(args.next(), "--max-connections");
                tuned_event_loop = true;
            }
            "--max-inflight" => {
                config.max_inflight = parse_number(args.next(), "--max-inflight");
                tuned_event_loop = true;
            }
            "--write-buffer-cap" => {
                config.write_buffer_cap = parse_number(args.next(), "--write-buffer-cap");
                tuned_event_loop = true;
            }
            "--drain-timeout-ms" => {
                config.drain_timeout =
                    Duration::from_millis(parse_number(args.next(), "--drain-timeout-ms"));
                tuned_event_loop = true;
            }
            "--queue-watermark" => {
                config.queue_watermark = parse_number(args.next(), "--queue-watermark");
                tuned_event_loop = true;
            }
            "--request-deadline-ms" => {
                config.request_deadline =
                    Duration::from_millis(parse_number(args.next(), "--request-deadline-ms"));
                tuned_event_loop = true;
            }
            "--retry-hint-ms" => {
                config.retry_hint_ms = parse_number(args.next(), "--retry-hint-ms");
                tuned_event_loop = true;
            }
            "--fault-seed" => {
                fault_seed = parse_number(args.next(), "--fault-seed");
                tuned_event_loop = true;
            }
            "--fault-profile" => {
                fault_profile = Some(
                    args.next()
                        .unwrap_or_else(|| usage("--fault-profile needs a name")),
                );
                tuned_event_loop = true;
            }
            "--slowlog-size" => {
                config.slowlog_capacity = parse_number(args.next(), "--slowlog-size");
                tuned_event_loop = true;
            }
            "--metrics-dump" => {
                metrics_dump = true;
                tuned_event_loop = true;
            }
            "--cache-shards" => cache_shards = parse_number(args.next(), "--cache-shards"),
            "--cache-capacity" => cache_capacity = parse_number(args.next(), "--cache-capacity"),
            "--store" => {
                store_path = Some(args.next().unwrap_or_else(|| usage("--store needs a path")))
            }
            "--ingest" => {
                ingest_dir = Some(
                    args.next()
                        .unwrap_or_else(|| usage("--ingest needs a directory")),
                )
            }
            "--bench-json" => {
                bench_json = Some(
                    args.next()
                        .unwrap_or_else(|| usage("--bench-json needs a path")),
                )
            }
            "--follow" => {
                follow_addr = Some(
                    args.next()
                        .unwrap_or_else(|| usage("--follow needs a primary host:port")),
                )
            }
            "--compact-after" => compact_after = Some(parse_number(args.next(), "--compact-after")),
            "--serve-replicas" => serve_replicas = true,
            "--threaded" => threaded = true,
            other => usage(&format!("unknown argument '{other}'")),
        }
    }

    // A directory store (or any store with a compaction knob) uses the
    // segmented epoch log; a plain file keeps the monolithic format.
    let segmented = compact_after.is_some()
        || store_path
            .as_deref()
            .is_some_and(|path| Path::new(path).is_dir());

    let store = match follow_addr.as_deref() {
        Some(primary) => Arc::new(open_follower_store(
            primary,
            store_path.as_deref(),
            segmented,
            cache_shards,
            cache_capacity,
        )),
        None => Arc::new(open_store(
            scale,
            &scale_name,
            store_path.as_deref(),
            segmented,
            cache_shards,
            cache_capacity,
            bench_json.as_deref(),
        )),
    };

    if let Some(dir) = ingest_dir.as_deref() {
        if follow_addr.is_some() {
            eprintln!("warning: --ingest is ignored with --follow (the primary ingests)");
        } else {
            ingest_directory(&store, dir);
            if let Some(path) = store_path.as_deref() {
                match persist_store(&store, path, segmented) {
                    Ok((bytes, seconds)) => eprintln!(
                        "re-persisted store after ingest ({bytes} bytes in {seconds:.3}s)"
                    ),
                    Err(error) => eprintln!("warning: could not re-persist store: {error}"),
                }
            }
        }
    }

    let compactor = compact_after.map(|limit| {
        let handle = Arc::new(Compactor::spawn(
            Arc::clone(&store),
            CompactionPolicy::after_segments(limit),
        ));
        eprintln!("background compactor armed: fold after {limit} segments");
        handle.nudge();
        handle
    });

    if let Some(primary) = follow_addr.clone() {
        spawn_follower_poller(
            primary,
            Arc::clone(&store),
            store_path.clone(),
            segmented,
            compactor.clone(),
        );
    }
    let repl = serve_replicas.then(|| Arc::new(ReplSource::new(Arc::clone(&store))));

    if threaded {
        if tuned_event_loop {
            eprintln!(
                "warning: --workers/--max-connections/--max-inflight/--write-buffer-cap/\
                 --drain-timeout-ms tune the event loop and are ignored with --threaded"
            );
        }
        serve_threaded(&addr, port, &scale_name, &store, repl.as_deref());
    } else {
        let fault_plan = fault_profile.as_deref().map(|name| {
            let plan = FaultPlan::by_name(name, fault_seed)
                .unwrap_or_else(|| usage("--fault-profile must be quiet, light or aggressive"));
            eprintln!(
                "fault injection armed: profile {name}, seed {fault_seed} \
                 (lane seed ⊕ shard per loop)"
            );
            plan
        });
        serve_event_loop(
            &addr,
            port,
            &scale_name,
            config,
            store,
            fault_plan,
            metrics_dump,
            repl,
            compactor,
        );
    }
}

/// Persist `store` to `path` in its configured format: segmented log
/// directory (O(delta) per epoch after the first save) or monolithic
/// file. Returns `(bytes_written, seconds)`.
fn persist_store(store: &Store, path: &str, segmented: bool) -> Result<(u64, f64), String> {
    if segmented {
        let report = store
            .save_segmented(Path::new(path))
            .map_err(|error| error.to_string())?;
        let bytes = if report.base_rewritten {
            report.base_bytes + report.segment_bytes
        } else {
            report.segment_bytes
        };
        Ok((bytes, report.seconds))
    } else {
        let report = store
            .save(Path::new(path))
            .map_err(|error| error.to_string())?;
        Ok((report.bytes, report.seconds))
    }
}

/// Bridges the compactor's counters into the serving core's `stats` /
/// `metrics` renders.
struct CompactionStats(Arc<Compactor>);

impl lfp_serve::StatsSource for CompactionStats {
    fn fields(&self) -> Vec<(String, u64)> {
        let stats = self.0.stats();
        vec![
            ("compactions".to_string(), stats.runs),
            (
                "compaction_segments_folded".to_string(),
                stats.segments_folded,
            ),
            ("compaction_errors".to_string(), stats.errors),
            ("compaction_last_us".to_string(), stats.last_run_us),
        ]
    }
}

/// Bridges the store's replication answerer into the serving core's
/// worker-side extension seam.
struct ReplExtension(Arc<ReplSource>);

impl lfp_serve::LineExtension for ReplExtension {
    fn try_answer(&self, line: &str) -> Option<String> {
        self.0.answer(line)
    }
}

/// The default serving core: the sharded `lfp-serve` readiness loops.
/// Each shard gets its own fault lane (`seed ⊕ shard_id`) when a plan
/// is armed, so a multi-loop chaos run is exactly as replayable as a
/// single-loop one.
#[allow(clippy::too_many_arguments)]
fn serve_event_loop(
    addr: &str,
    port: u16,
    scale_name: &str,
    config: ServeConfig,
    store: Arc<Store>,
    fault_plan: Option<FaultPlan>,
    metrics_dump: bool,
    repl: Option<Arc<ReplSource>>,
    compactor: Option<Arc<Compactor>>,
) {
    let engine_store = Arc::clone(&store);
    let source: Arc<dyn EngineSource> = Arc::new(move || engine_store.engine());
    let mut server =
        Server::bind_with_policy_factory((addr, port), config, source, |shard| match fault_plan {
            Some(plan) => Box::new(FaultPolicy::new(plan.lane(shard as u64))),
            None => Box::new(DirectIo) as Box<dyn IoPolicy>,
        })
        .unwrap_or_else(|error| {
            eprintln!("cannot bind {addr}:{port}: {error}");
            std::process::exit(1);
        });
    if let Some(repl) = repl {
        server.set_line_extension(Arc::new(ReplExtension(repl)));
        eprintln!("replication primary: serving repl_* queries");
    }
    if let Some(compactor) = compactor.as_ref() {
        server.set_stats_source(Arc::new(CompactionStats(Arc::clone(compactor))));
    }
    // The readiness line clients and CI wait for — keep it stable.
    println!(
        "vendor-queryd listening on {} (scale {scale_name}, {} paths, epoch {}, \
         event loop, {} loops, {} workers)",
        server.local_addr(),
        store.engine().corpus().len(),
        store.epoch(),
        server.loop_count(),
        server.worker_count(),
    );
    std::io::stdout().flush().ok();

    let obs = server.obs_handle();
    let report = server.run();
    if metrics_dump {
        // The drained daemon's final exposition: every counter has
        // quiesced, so this is the scrape CI reconciles and archives.
        print!("{}", obs.metrics(&store.engine()));
        std::io::stdout().flush().ok();
    }
    if let Some(compactor) = compactor {
        let stats = compactor.stats();
        eprintln!(
            "compactor: {} fold(s), {} segment(s) folded, {} error(s)",
            stats.runs, stats.segments_folded, stats.errors
        );
        // Drop joins the thread; no fold is cut off mid-publish.
    }
    let stats = store.engine().cache_stats();
    eprintln!(
        "drained and stopped at epoch {}: {} connections, {} queries, {} control, \
         {} evicted, {} shed, {} deadline-expired, {} injected faults, \
         {}/{} shards drained, drained_cleanly={} ({} loop iterations, \
         {} reads / {} bytes in, {} cache entries, {} hits / {} misses)",
        store.epoch(),
        report.accepted,
        report.queries,
        report.control,
        report.evicted,
        report.shed,
        report.deadline_expired,
        report.injected_faults,
        report.shards_drained,
        report.loops,
        report.drained_cleanly,
        report.iterations,
        report.socket_reads,
        report.bytes_read,
        stats.entries,
        stats.hits,
        stats.misses,
    );
}

/// How often a follower polls its primary for new deltas.
const FOLLOW_POLL: Duration = Duration::from_millis(150);

/// Open a **follower**'s serving store. A usable local `--store` wins
/// (cold start, then delta catch-up closes the gap); otherwise the
/// primary's full snapshot is pulled resumably through a `.sync`
/// scratch file and validated by the store format's section checksums
/// before anything trusts it.
fn open_follower_store(
    primary: &str,
    store_path: Option<&str>,
    segmented: bool,
    cache_shards: usize,
    cache_capacity: usize,
) -> Store {
    let mut client = ReplClient::new(primary);
    if let Some(path) = store_path {
        if Path::new(path).exists() {
            match Store::load_with_cache(Path::new(path), cache_shards, cache_capacity) {
                Ok((store, report)) => {
                    eprintln!(
                        "follower cold start from {path} in {:.3}s (epoch {})",
                        report.seconds, report.epoch
                    );
                    match follow_once(&mut client, &store) {
                        Ok(0) => {}
                        Ok(applied) => {
                            eprintln!("caught up {applied} epoch(s) → epoch {}", store.epoch())
                        }
                        Err(error) => eprintln!(
                            "warning: initial catch-up failed ({error}); the poller will retry"
                        ),
                    }
                    return store;
                }
                Err(error) => {
                    eprintln!("local store {path} unusable ({error}); full resync from {primary}")
                }
            }
        }
    }
    let scratch = match store_path {
        Some(path) => PathBuf::from(format!("{path}.sync")),
        None => {
            std::env::temp_dir().join(format!("vendor-queryd-follow-{}.sync", std::process::id()))
        }
    };
    for attempt in 1..=5u32 {
        let bytes = match client.sync_snapshot(&scratch) {
            Ok(bytes) => bytes,
            Err(error) => {
                eprintln!("snapshot sync from {primary} failed ({error}), attempt {attempt}/5");
                std::thread::sleep(Duration::from_millis(300 * u64::from(attempt)));
                continue;
            }
        };
        match Store::from_bytes_with_cache(&bytes, cache_shards, cache_capacity) {
            Ok(store) => {
                let _ = std::fs::remove_file(&scratch);
                eprintln!(
                    "follower synced {} bytes from {primary} (epoch {})",
                    bytes.len(),
                    store.epoch()
                );
                if let Some(path) = store_path {
                    match persist_store(&store, path, segmented) {
                        Ok((bytes, _)) => eprintln!("persisted synced store ({bytes} bytes)"),
                        Err(error) => eprintln!("warning: could not persist sync: {error}"),
                    }
                }
                return store;
            }
            Err(error) => {
                // The checksums caught a torn transfer: drop the
                // partial and pull again from scratch.
                eprintln!("synced snapshot failed validation ({error}); restarting sync");
                let _ = std::fs::remove_file(&scratch);
            }
        }
    }
    eprintln!("cannot sync from primary {primary} after 5 attempts");
    std::process::exit(1);
}

/// The follower's replication loop: poll the primary, apply every new
/// delta through `Store::ingest` (atomic engine swap per epoch), and
/// re-persist after advancing so a kill at any point restarts from the
/// last fully-applied epoch. Segmented persistence seals one segment
/// per applied epoch (O(delta) per poll instead of a full rewrite);
/// the background compactor, when armed, is nudged after every batch.
fn spawn_follower_poller(
    primary: String,
    store: Arc<Store>,
    persist: Option<String>,
    segmented: bool,
    compactor: Option<Arc<Compactor>>,
) {
    std::thread::spawn(move || {
        let mut client = ReplClient::new(&primary);
        loop {
            let advanced = match persist.as_deref() {
                Some(path) if segmented => {
                    follow_once_persistent(&mut client, &store, Path::new(path))
                }
                _ => follow_once(&mut client, &store),
            };
            match advanced {
                Ok(0) => {}
                Ok(applied) => {
                    eprintln!(
                        "follower applied {applied} delta(s) → epoch {}",
                        store.epoch()
                    );
                    if !segmented {
                        if let Some(path) = persist.as_deref() {
                            if let Err(error) = store.save(Path::new(path)) {
                                eprintln!("warning: follower could not persist: {error}");
                            }
                        }
                    }
                    if let Some(handle) = compactor.as_deref() {
                        handle.nudge();
                    }
                }
                Err(error) => {
                    eprintln!("follower poll of {primary} failed: {error}");
                    std::thread::sleep(Duration::from_millis(500));
                }
            }
            std::thread::sleep(FOLLOW_POLL);
        }
    });
}

/// Open the serving store: load from `--store` when the file exists,
/// else build (and persist, when `--store` was given). Records the
/// `store` bench phase either way.
fn open_store(
    scale: Scale,
    scale_name: &str,
    store_path: Option<&str>,
    segmented: bool,
    cache_shards: usize,
    cache_capacity: usize,
    bench_json: Option<&str>,
) -> Store {
    if let Some(path) = store_path {
        if Path::new(path).exists() {
            eprintln!("loading store from {path}…");
            let (store, report) =
                Store::load_with_cache(Path::new(path), cache_shards, cache_capacity)
                    .unwrap_or_else(|error| {
                        eprintln!("cannot load store {path}: {error}");
                        std::process::exit(1);
                    });
            if store.world().scale != scale {
                eprintln!(
                    "warning: store was built at a different scale; serving the stored campaign"
                );
            }
            eprintln!(
                "cold start from store in {:.3}s ({} bytes, epoch {}, {} paths)",
                report.seconds,
                report.bytes,
                report.epoch,
                store.engine().corpus().len(),
            );
            if let Some(bench) = bench_json {
                record_store_phase(bench, scale_name, None, Some(report.seconds), report.bytes);
            }
            return store;
        }
    }

    eprintln!(
        "building world at scale '{scale_name}' (~{} routers)…",
        scale.approx_routers()
    );
    let build_start = Instant::now();
    let world = Arc::new(World::build(scale));
    let store = Store::from_world_with_cache(world, cache_shards, cache_capacity);
    let rebuild_seconds = build_start.elapsed().as_secs_f64();
    eprintln!(
        "world + engine ready in {rebuild_seconds:.1}s ({} paths, {} sequences)",
        store.engine().corpus().len(),
        store.engine().corpus().distinct_sequences(),
    );
    let mut bytes = 0u64;
    if let Some(path) = store_path {
        match persist_store(&store, path, segmented) {
            Ok((saved, seconds)) => {
                bytes = saved;
                eprintln!("saved store to {path} ({saved} bytes in {seconds:.3}s)");
            }
            Err(error) => eprintln!("warning: could not save store to {path}: {error}"),
        }
    }
    if let Some(bench) = bench_json {
        record_store_phase(bench, scale_name, Some(rebuild_seconds), None, bytes);
    }
    store
}

/// Merge the `store` phase into the bench artefact. Rebuild and load
/// runs each contribute their half; once both halves are present the
/// phase carries the cold-start speedup CI asserts on.
fn record_store_phase(
    path: &str,
    scale_name: &str,
    rebuild_seconds: Option<f64>,
    load_seconds: Option<f64>,
    bytes: u64,
) {
    let previous = read_bench_phase(path, "store");
    let field = |name: &str| -> Option<f64> {
        previous
            .as_ref()
            .and_then(|phase| phase.get(name))
            .and_then(JsonValue::as_f64)
    };
    let rebuild = rebuild_seconds.or_else(|| field("rebuild_seconds"));
    let load = load_seconds.or_else(|| field("load_seconds"));

    let mut phase = JsonBuilder::object();
    phase.string("scale", scale_name);
    if let Some(rebuild) = rebuild {
        phase.number("rebuild_seconds", rebuild);
    }
    if let Some(load) = load {
        phase.number("load_seconds", load);
    }
    if bytes > 0 {
        phase.integer("store_bytes", bytes);
    }
    if let (Some(rebuild), Some(load)) = (rebuild, load) {
        phase.number("speedup", rebuild / load.max(1e-9));
    }
    let seconds = load_seconds.or(rebuild_seconds);
    let phase = parse(&phase.finish()).expect("phase JSON is valid");
    merge_bench_phase(path, "store", phase, seconds);
    eprintln!("recorded store phase in {path}");
}

/// Ingest every `*.delta` file in a directory, sorted by file name, one
/// epoch per snapshot.
fn ingest_directory(store: &Store, dir: &str) {
    let mut paths: Vec<std::path::PathBuf> = match std::fs::read_dir(dir) {
        Ok(entries) => entries
            .filter_map(|entry| entry.ok())
            .map(|entry| entry.path())
            .filter(|path| path.extension().is_some_and(|ext| ext == "delta"))
            .collect(),
        Err(error) => {
            eprintln!("cannot read ingest directory {dir}: {error}");
            std::process::exit(1);
        }
    };
    paths.sort();
    if paths.is_empty() {
        eprintln!("warning: no *.delta files in {dir}");
        return;
    }
    for path in paths {
        let bytes = match std::fs::read(&path) {
            Ok(bytes) => bytes,
            Err(error) => {
                eprintln!("cannot read {}: {error}", path.display());
                std::process::exit(1);
            }
        };
        let delta = match SnapshotDelta::from_bytes(&bytes) {
            Ok(delta) => delta,
            Err(error) => {
                eprintln!("cannot decode {}: {error}", path.display());
                std::process::exit(1);
            }
        };
        match store.ingest(delta) {
            Ok(report) => eprintln!(
                "ingested {} → epoch {} (+{} paths in {:.3}s)",
                report.sources.join(", "),
                report.epoch,
                report.new_paths,
                report.seconds,
            ),
            Err(error) => {
                eprintln!("ingest of {} failed: {error}", path.display());
                std::process::exit(1);
            }
        }
    }
}

fn usage(message: &str) -> ! {
    eprintln!("{message}");
    eprintln!(
        "usage: vendor-queryd [--scale NAME] [--addr HOST] [--port N] \
         [--loops N] [--workers N] [--max-connections N] [--max-inflight N] \
         [--write-buffer-cap BYTES] [--drain-timeout-ms N] \
         [--queue-watermark N] [--request-deadline-ms N] [--retry-hint-ms N] \
         [--fault-seed N] [--fault-profile quiet|light|aggressive] \
         [--cache-shards N] [--cache-capacity N] \
         [--slowlog-size N] [--metrics-dump] \
         [--store PATH] [--ingest DIR] [--compact-after N] \
         [--bench-json FILE] \
         [--follow ADDR] [--serve-replicas] [--threaded]"
    );
    std::process::exit(2);
}

fn parse_number<T: std::str::FromStr>(value: Option<String>, flag: &str) -> T {
    value
        .and_then(|text| text.parse().ok())
        .unwrap_or_else(|| usage(&format!("{flag} needs a number")))
}

// ---------------------------------------------------------------------
// The legacy thread-per-connection core (`--threaded`): retained as the
// baseline the `serve` bench phase measures the event loop against.
// ---------------------------------------------------------------------

/// Longest request line a threaded connection may send (the event loop
/// gets this from `ServeConfig::max_frame_bytes` instead).
const MAX_LINE_BYTES: usize = 64 * 1024;

/// How long a threaded shutdown waits for other connections' in-flight
/// responses before exiting anyway.
const THREADED_DRAIN_TIMEOUT: Duration = Duration::from_secs(5);

/// Requests currently being answered across all connection threads —
/// the gauge the `shutdown` handler drains before exiting, so another
/// connection's already-read request is not cut off mid-write (the old
/// daemon acked and called `exit(0)`, dropping them).
struct Inflight {
    count: Mutex<u64>,
    idle: Condvar,
}

impl Inflight {
    fn new() -> Inflight {
        Inflight {
            count: Mutex::new(0),
            idle: Condvar::new(),
        }
    }

    fn enter(&self) {
        *self.count.lock().expect("inflight lock") += 1;
    }

    fn exit(&self) {
        let mut count = self.count.lock().expect("inflight lock");
        *count -= 1;
        if *count == 0 {
            self.idle.notify_all();
        }
    }

    /// Wait until no request is mid-flight (or the timeout passes).
    fn drain(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut count = self.count.lock().expect("inflight lock");
        while *count > 0 {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return false;
            }
            let (next, _) = self.idle.wait_timeout(count, left).expect("inflight lock");
            count = next;
        }
        true
    }
}

fn serve_threaded(
    addr: &str,
    port: u16,
    scale_name: &str,
    store: &Arc<Store>,
    repl: Option<&ReplSource>,
) {
    let listener = TcpListener::bind((addr, port)).unwrap_or_else(|error| {
        eprintln!("cannot bind {addr}:{port}: {error}");
        std::process::exit(1);
    });
    let local = listener.local_addr().expect("bound socket has an address");
    println!(
        "vendor-queryd listening on {local} (scale {scale_name}, {} paths, epoch {}, \
         thread per connection)",
        store.engine().corpus().len(),
        store.epoch(),
    );
    std::io::stdout().flush().ok();

    let inflight = Arc::new(Inflight::new());
    let draining = Arc::new(AtomicBool::new(false));
    std::thread::scope(|scope| {
        for connection in listener.incoming() {
            match connection {
                Ok(stream) => {
                    let store = Arc::clone(store);
                    let inflight = Arc::clone(&inflight);
                    let draining = Arc::clone(&draining);
                    scope.spawn(move || {
                        serve_connection(stream, &store, &inflight, &draining, repl)
                    });
                }
                Err(error) => eprintln!("accept failed: {error}"),
            }
        }
    });
}

/// One bounded protocol line: `Line` (newline stripped), `TooLong`
/// (the oversized line was consumed and discarded), or `Eof`.
enum LineRead {
    Line(String),
    TooLong,
    Eof,
}

/// Read one `\n`-terminated line without ever holding more than
/// `MAX_LINE_BYTES` of it (`BufReader::lines` would buffer the whole
/// line first).
fn read_bounded_line<R: BufRead>(reader: &mut R) -> std::io::Result<LineRead> {
    let mut line: Vec<u8> = Vec::new();
    let mut overflow = false;
    loop {
        let buffer = reader.fill_buf()?;
        if buffer.is_empty() {
            // EOF: a partial unterminated line is not a request.
            return Ok(if overflow {
                LineRead::TooLong
            } else if line.is_empty() {
                LineRead::Eof
            } else {
                LineRead::Line(String::from_utf8_lossy(&line).into_owned())
            });
        }
        match buffer.iter().position(|&byte| byte == b'\n') {
            Some(newline) => {
                if !overflow {
                    line.extend_from_slice(&buffer[..newline]);
                }
                reader.consume(newline + 1);
                return Ok(if overflow || line.len() > MAX_LINE_BYTES {
                    LineRead::TooLong
                } else {
                    LineRead::Line(String::from_utf8_lossy(&line).into_owned())
                });
            }
            None => {
                if !overflow {
                    line.extend_from_slice(buffer);
                    if line.len() > MAX_LINE_BYTES {
                        overflow = true;
                        line = Vec::new();
                    }
                }
                let consumed = buffer.len();
                reader.consume(consumed);
            }
        }
    }
}

/// One connection: read a line, answer a line, until EOF/`quit`. The
/// serving engine is fetched from the store **per request**, so a
/// long-lived connection observes an epoch swap on its very next query.
fn serve_connection(
    stream: TcpStream,
    store: &Store,
    inflight: &Inflight,
    draining: &AtomicBool,
    repl: Option<&ReplSource>,
) {
    // One request per round trip: Nagle would add 40ms to every answer.
    stream.set_nodelay(true).ok();
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    loop {
        let line = match read_bounded_line(&mut reader) {
            Ok(LineRead::Line(line)) => line,
            Ok(LineRead::TooLong) => {
                // Oversized input is hostile or broken either way; answer
                // once and drop the connection rather than resynchronise.
                let reply =
                    wire::error_envelope(&format!("request line exceeds {MAX_LINE_BYTES} bytes"));
                let _ = writeln!(writer, "{reply}").and_then(|()| writer.flush());
                break;
            }
            Ok(LineRead::Eof) | Err(_) => break,
        };
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == "quit" {
            break;
        }
        // Count the request in-flight *before* checking the drain flag:
        // a request that got past the check is guaranteed to be waited
        // for by the shutting-down thread.
        inflight.enter();
        if draining.load(Ordering::SeqCst) {
            inflight.exit();
            break;
        }
        let (reply, shutdown) = respond(line, store, repl);
        let delivered = writeln!(writer, "{reply}")
            .and_then(|()| writer.flush())
            .is_ok();
        inflight.exit();
        if !delivered {
            break;
        }
        if shutdown {
            // Drain: let every other connection's in-flight response
            // reach its socket before the process goes away.
            draining.store(true, Ordering::SeqCst);
            let clean = inflight.drain(THREADED_DRAIN_TIMEOUT);
            let stats = store.engine().cache_stats();
            eprintln!(
                "shutdown requested at epoch {} (drained={clean}, {} cache entries, \
                 {} hits / {} misses)",
                store.epoch(),
                stats.entries,
                stats.hits,
                stats.misses
            );
            std::process::exit(0);
        }
    }
}

/// Answer one protocol line. The bool asks the caller to exit the
/// process (the `shutdown` control query) after the reply is flushed.
/// Detection and ack come from `lfp-serve`, so the two serving cores
/// answer shutdown byte-identically by construction.
fn respond(line: &str, store: &Store, repl: Option<&ReplSource>) -> (String, bool) {
    if is_shutdown_line(line) {
        return (SHUTDOWN_ACK.to_string(), true);
    }
    // The replication extension gets first refusal, exactly as the
    // event-loop workers give it — the two cores answer identically.
    if let Some(reply) = repl.and_then(|repl| repl.answer(line)) {
        return (reply, false);
    }
    (answer_line(line, &store.engine()), false)
}
