//! vendor-queryd — serve vendor-intelligence queries over TCP.
//!
//! ```text
//! vendor-queryd [--scale tiny|small|paper|path-stress|query-stress]
//!               [--addr 127.0.0.1] [--port 7377]
//!               [--cache-shards N] [--cache-capacity N]
//! ```
//!
//! Builds one fully measured `World` at the requested scale, wraps it in
//! an `lfp_query::QueryEngine`, and serves the line protocol (see
//! `lfp_query::wire`): one JSON query per line in, one JSON result per
//! line out, one thread per connection, all connections sharing the
//! engine's result cache. `--port 0` binds an ephemeral port; the
//! `listening on` line printed to stdout carries the actual address.
//!
//! Two control lines exist beyond the query grammar:
//! `{"query": "shutdown"}` stops the daemon (after acknowledging), and
//! an EOF or `quit` line ends one connection.

use lfp_analysis::json::parse;
use lfp_analysis::World;
use lfp_query::{wire, QueryEngine};
use lfp_topo::Scale;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1);
    let mut scale = Scale::query_stress();
    let mut scale_name = "query-stress".to_string();
    let mut addr = "127.0.0.1".to_string();
    let mut port = 7377u16;
    let mut cache_shards = 16usize;
    let mut cache_capacity = 4096usize;

    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let value = args.next().unwrap_or_default();
                scale = Scale::by_name(&value).unwrap_or_else(|| {
                    eprintln!(
                        "unknown scale '{value}' (tiny|small|paper|path-stress|query-stress)"
                    );
                    std::process::exit(2);
                });
                scale_name = value;
            }
            "--addr" => addr = args.next().unwrap_or_else(|| usage("--addr needs a host")),
            "--port" => port = parse_number(args.next(), "--port"),
            "--cache-shards" => cache_shards = parse_number(args.next(), "--cache-shards"),
            "--cache-capacity" => cache_capacity = parse_number(args.next(), "--cache-capacity"),
            other => usage(&format!("unknown argument '{other}'")),
        }
    }

    eprintln!(
        "building world at scale '{scale_name}' (~{} routers)…",
        scale.approx_routers()
    );
    let build_start = Instant::now();
    let world = World::build(scale);
    let engine = QueryEngine::with_cache(&world, cache_shards, cache_capacity);
    eprintln!(
        "world + engine ready in {:.1}s ({} paths, {} sequences)",
        build_start.elapsed().as_secs_f64(),
        engine.corpus().len(),
        engine.corpus().distinct_sequences(),
    );

    let listener = TcpListener::bind((addr.as_str(), port)).unwrap_or_else(|error| {
        eprintln!("cannot bind {addr}:{port}: {error}");
        std::process::exit(1);
    });
    let local = listener.local_addr().expect("bound socket has an address");
    // The readiness line clients and CI wait for — keep it stable.
    println!(
        "vendor-queryd listening on {local} (scale {scale_name}, {} paths)",
        engine.corpus().len()
    );
    std::io::stdout().flush().ok();

    std::thread::scope(|scope| {
        for connection in listener.incoming() {
            match connection {
                Ok(stream) => {
                    let engine = &engine;
                    scope.spawn(move || serve_connection(stream, engine));
                }
                Err(error) => eprintln!("accept failed: {error}"),
            }
        }
    });
}

fn usage(message: &str) -> ! {
    eprintln!("{message}");
    eprintln!(
        "usage: vendor-queryd [--scale NAME] [--addr HOST] [--port N] \
         [--cache-shards N] [--cache-capacity N]"
    );
    std::process::exit(2);
}

fn parse_number<T: std::str::FromStr>(value: Option<String>, flag: &str) -> T {
    value
        .and_then(|text| text.parse().ok())
        .unwrap_or_else(|| usage(&format!("{flag} needs a number")))
}

/// Longest request line a connection may send. Far above any legal
/// query, far below anything that could pressure memory — a client
/// streaming an endless line must not buffer unbounded bytes before
/// validation even runs.
const MAX_LINE_BYTES: usize = 64 * 1024;

/// One bounded protocol line: `Line` (newline stripped), `TooLong`
/// (the oversized line was consumed and discarded), or `Eof`.
enum LineRead {
    Line(String),
    TooLong,
    Eof,
}

/// Read one `\n`-terminated line without ever holding more than
/// `MAX_LINE_BYTES` of it (`BufReader::lines` would buffer the whole
/// line first).
fn read_bounded_line<R: BufRead>(reader: &mut R) -> std::io::Result<LineRead> {
    let mut line: Vec<u8> = Vec::new();
    let mut overflow = false;
    loop {
        let buffer = reader.fill_buf()?;
        if buffer.is_empty() {
            // EOF: a partial unterminated line is not a request.
            return Ok(if overflow {
                LineRead::TooLong
            } else if line.is_empty() {
                LineRead::Eof
            } else {
                LineRead::Line(String::from_utf8_lossy(&line).into_owned())
            });
        }
        match buffer.iter().position(|&byte| byte == b'\n') {
            Some(newline) => {
                if !overflow {
                    line.extend_from_slice(&buffer[..newline]);
                }
                reader.consume(newline + 1);
                return Ok(if overflow || line.len() > MAX_LINE_BYTES {
                    LineRead::TooLong
                } else {
                    LineRead::Line(String::from_utf8_lossy(&line).into_owned())
                });
            }
            None => {
                if !overflow {
                    line.extend_from_slice(buffer);
                    if line.len() > MAX_LINE_BYTES {
                        overflow = true;
                        line = Vec::new();
                    }
                }
                let consumed = buffer.len();
                reader.consume(consumed);
            }
        }
    }
}

/// One connection: read a line, answer a line, until EOF/`quit`.
fn serve_connection(stream: TcpStream, engine: &QueryEngine<'_>) {
    // One request per round trip: Nagle would add 40ms to every answer.
    stream.set_nodelay(true).ok();
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    loop {
        let line = match read_bounded_line(&mut reader) {
            Ok(LineRead::Line(line)) => line,
            Ok(LineRead::TooLong) => {
                // Oversized input is hostile or broken either way; answer
                // once and drop the connection rather than resynchronise.
                let reply =
                    wire::error_envelope(&format!("request line exceeds {MAX_LINE_BYTES} bytes"));
                let _ = writeln!(writer, "{reply}").and_then(|()| writer.flush());
                break;
            }
            Ok(LineRead::Eof) | Err(_) => break,
        };
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == "quit" {
            break;
        }
        let (reply, shutdown) = respond(line, engine);
        if writeln!(writer, "{reply}")
            .and_then(|()| writer.flush())
            .is_err()
        {
            break;
        }
        if shutdown {
            let stats = engine.cache_stats();
            eprintln!(
                "shutdown requested ({} cache entries, {} hits / {} misses)",
                stats.entries, stats.hits, stats.misses
            );
            std::process::exit(0);
        }
    }
}

/// Answer one protocol line. The bool asks the caller to exit the
/// process (the `shutdown` control query) after the reply is flushed.
fn respond(line: &str, engine: &QueryEngine<'_>) -> (String, bool) {
    let value = match parse(line) {
        Ok(value) => value,
        Err(error) => {
            return (
                wire::error_envelope(&format!("invalid JSON: {error}")),
                false,
            )
        }
    };
    if value.get("query").and_then(|field| field.as_str()) == Some("shutdown") {
        return (
            "{\"ok\": true, \"result\": \"shutting down\"}".to_string(),
            true,
        );
    }
    match wire::decode_value(&value) {
        Ok(query) => match engine.execute(&query) {
            Ok(response) => (wire::ok_envelope(&query.canonical(), &response), false),
            Err(error) => (wire::error_envelope(&error), false),
        },
        Err(error) => (wire::error_envelope(&error), false),
    }
}
