//! store-tool — offline companion for the persistent world store.
//!
//! ```text
//! store-tool deltas  --scale NAME --count N --out DIR
//! store-tool inspect --store PATH
//! ```
//!
//! `deltas` measures `N` snapshot campaigns *beyond* a scale's base
//! campaign — the planning churn chain simply continues past
//! `scale.snapshots`, so the deltas are exactly the snapshots a
//! longer-running measurement would have collected next — scans each
//! delta's router population, and writes one `*.delta` file per
//! snapshot (consumed by `vendor-queryd --ingest DIR`).
//!
//! `inspect` prints a store file's section layout and campaign summary
//! without loading a world.

use lfp_core::pipeline::scan_dataset;
use lfp_store::codec::decode_campaign;
use lfp_store::format::{FileReader, MAGIC};
use lfp_store::SnapshotDelta;
use lfp_topo::datasets::{measure_ripe_snapshot, plan_ripe_snapshots_extended};
use lfp_topo::{Internet, Scale};
use std::net::Ipv4Addr;
use std::path::PathBuf;
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("deltas") => deltas(args),
        Some("inspect") => inspect(args),
        _ => usage("expected a subcommand"),
    }
}

fn usage(message: &str) -> ! {
    eprintln!("{message}");
    eprintln!("usage: store-tool deltas --scale NAME --count N --out DIR");
    eprintln!("       store-tool inspect --store PATH");
    std::process::exit(2);
}

fn deltas(mut args: impl Iterator<Item = String>) {
    let mut scale = Scale::ingest_stress();
    let mut scale_name = "ingest-stress".to_string();
    let mut count = 2usize;
    let mut out = "deltas".to_string();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let value = args.next().unwrap_or_default();
                scale = Scale::by_name(&value)
                    .unwrap_or_else(|| usage(&format!("unknown scale '{value}'")));
                scale_name = value;
            }
            "--count" => {
                count = args
                    .next()
                    .and_then(|value| value.parse().ok())
                    .unwrap_or_else(|| usage("--count needs a number"))
            }
            "--out" => out = args.next().unwrap_or_else(|| usage("--out needs a dir")),
            other => usage(&format!("unknown argument '{other}'")),
        }
    }
    if count == 0 {
        usage("--count must be at least 1");
    }
    std::fs::create_dir_all(&out).unwrap_or_else(|error| {
        eprintln!("cannot create {out}: {error}");
        std::process::exit(1);
    });

    eprintln!("generating internet at scale '{scale_name}'…");
    let start = Instant::now();
    let internet = Internet::generate(scale);
    let base = scale.snapshots;
    let plans = plan_ripe_snapshots_extended(&internet, base + count);
    for (index, plan) in plans[base..].iter().enumerate() {
        let measure_start = Instant::now();
        let snapshot = measure_ripe_snapshot(&internet, &internet.network().fork(), plan);
        let targets: Vec<Ipv4Addr> = snapshot.router_ips.iter().copied().collect();
        let shards = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        let scan = scan_dataset(&internet.network().fork(), &snapshot.name, &targets, shards);
        let delta = SnapshotDelta::from_measurement(&snapshot, &scan);
        let path = PathBuf::from(&out).join(format!("{:02}-{}.delta", index + 1, snapshot.name));
        std::fs::write(&path, delta.to_bytes()).unwrap_or_else(|error| {
            eprintln!("cannot write {}: {error}", path.display());
            std::process::exit(1);
        });
        println!(
            "wrote {} ({} traces, {} targets) in {:.2}s",
            path.display(),
            delta.traces.len(),
            delta.targets.len(),
            measure_start.elapsed().as_secs_f64(),
        );
    }
    eprintln!(
        "emitted {count} snapshot deltas beyond {scale_name}'s base campaign in {:.2}s",
        start.elapsed().as_secs_f64()
    );
}

fn inspect(mut args: impl Iterator<Item = String>) {
    let mut store: Option<String> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--store" => store = args.next(),
            other => usage(&format!("unknown argument '{other}'")),
        }
    }
    let path = store.unwrap_or_else(|| usage("inspect needs --store PATH"));
    let bytes = std::fs::read(&path).unwrap_or_else(|error| {
        eprintln!("cannot read {path}: {error}");
        std::process::exit(1);
    });
    let file = match FileReader::parse(&bytes, MAGIC) {
        Ok(file) => file,
        Err(error) => {
            eprintln!("{path}: {error}");
            std::process::exit(1);
        }
    };
    println!("{path}: {} bytes", bytes.len());
    for (tag, len) in file.section_summaries() {
        println!("  section {tag:<4} {len:>12} bytes");
    }
    match decode_campaign(&bytes) {
        Ok(campaign) => {
            println!(
                "  campaign: {} snapshots + ITDK, {} corpus rows over {} sources, epoch {}",
                campaign.ripe.len(),
                campaign.corpus.source.len(),
                campaign.corpus.sources.len(),
                campaign.epoch,
            );
            for delta in &campaign.deltas {
                println!(
                    "  epoch delta {}: {} traces, {} targets",
                    delta.name,
                    delta.traces.len(),
                    delta.targets.len()
                );
            }
        }
        Err(error) => {
            eprintln!("{path}: sections verify but campaign is invalid: {error}");
            std::process::exit(1);
        }
    }
}
