//! # lfp-bench — benches and the experiments harness
//!
//! Two consumers share this crate:
//!
//! * the `experiments` binary (`cargo run -p lfp-bench --release --bin
//!   experiments -- all`) regenerates every paper table and figure from a
//!   freshly measured [`lfp_analysis::World`], and
//! * the Criterion benches (`cargo bench`) time the packet codecs, the
//!   fingerprinting hot paths, the simulator, and each experiment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use lfp_analysis::World;
use lfp_topo::Scale;
use std::sync::OnceLock;

/// A lazily built tiny world shared by benches (building a world is
/// expensive; timing individual experiments should not re-measure it).
pub fn shared_tiny_world() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| World::build(Scale::tiny()))
}

/// A lazily built small world for scaling benches.
pub fn shared_small_world() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| World::build(Scale::small()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_world_is_cached() {
        let a = shared_tiny_world() as *const World;
        let b = shared_tiny_world() as *const World;
        assert_eq!(a, b);
    }
}
