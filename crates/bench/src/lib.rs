//! # lfp-bench — benches and the experiments harness
//!
//! Three consumers share this crate:
//!
//! * the `experiments` binary (`cargo run -p lfp-bench --release --bin
//!   experiments -- all`) regenerates every paper table and figure from a
//!   freshly measured [`lfp_analysis::World`],
//! * the serving binaries — `vendor-queryd` plus the `query-bench`
//!   (closed-loop) and `query-load` (open-loop pipelined) generators,
//!   which share the catalog-bootstrapped request [`mix`] — and
//! * the Criterion benches (`cargo bench`) time the packet codecs, the
//!   fingerprinting hot paths, the simulator, and each experiment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod mix;

use lfp_analysis::json::{parse, JsonBuilder, JsonValue};
use lfp_analysis::World;
use lfp_core::pipeline::scan_dataset;
use lfp_store::SnapshotDelta;
use lfp_topo::datasets::{measure_ripe_snapshot, plan_ripe_snapshots_extended};
use lfp_topo::Scale;
use std::net::Ipv4Addr;
use std::sync::{Arc, OnceLock};

/// A lazily built tiny world shared by benches (building a world is
/// expensive; timing individual experiments should not re-measure it).
/// Shared ownership so serving-layer benches can hand it to a
/// `QueryEngine` directly.
pub fn shared_tiny_world() -> Arc<World> {
    static WORLD: OnceLock<Arc<World>> = OnceLock::new();
    Arc::clone(WORLD.get_or_init(|| Arc::new(World::build(Scale::tiny()))))
}

/// A lazily built small world for scaling benches.
pub fn shared_small_world() -> Arc<World> {
    static WORLD: OnceLock<Arc<World>> = OnceLock::new();
    Arc::clone(WORLD.get_or_init(|| Arc::new(World::build(Scale::small()))))
}

/// Measure `count` snapshot deltas beyond a world's base campaign by
/// continuing the planning churn chain, and scan each delta's router
/// population — the exact flow `store-tool deltas` ships to disk. The
/// `store_compaction` bench and the store test battery both ingest
/// these, so a benched epoch is byte-for-byte the epoch a longer
/// measurement campaign would have produced next.
pub fn measure_deltas(world: &World, count: usize) -> Vec<SnapshotDelta> {
    let internet = &world.internet;
    let base = internet.scale.snapshots;
    let plans = plan_ripe_snapshots_extended(internet, base + count);
    plans[base..]
        .iter()
        .map(|plan| {
            let snapshot = measure_ripe_snapshot(internet, &internet.network().fork(), plan);
            let targets: Vec<Ipv4Addr> = snapshot.router_ips.iter().copied().collect();
            let scan = scan_dataset(&internet.network().fork(), &snapshot.name, &targets, 4);
            SnapshotDelta::from_measurement(&snapshot, &scan)
        })
        .collect()
}

/// Insert/replace one named phase object in `BENCH_campaign.json`,
/// preserving every other top-level field (the `experiments`,
/// `query-bench` and `vendor-queryd` binaries all write into the same
/// artefact). When `seconds` is given, `phases_seconds.<name>` is
/// mirrored so the phase lines up with the campaign timings.
pub fn merge_bench_phase(path: &str, name: &str, phase: JsonValue, seconds: Option<f64>) {
    let mut document = std::fs::read_to_string(path)
        .ok()
        .and_then(|text| parse(&text).ok())
        .unwrap_or_else(|| {
            let mut fresh = JsonBuilder::object();
            fresh.string("artifact", "BENCH_campaign");
            parse(&fresh.finish()).expect("fresh JSON is valid")
        });
    if document.set(name, phase.clone()).is_none() {
        eprintln!("warning: {path} is not a JSON object; rewriting it");
        let mut fresh = JsonBuilder::object();
        fresh.string("artifact", "BENCH_campaign");
        document = parse(&fresh.finish()).expect("fresh JSON is valid");
        document.set(name, phase);
    }
    if let (Some(seconds), Some(phases)) = (seconds, document.get("phases_seconds")) {
        let mut phases = phases.clone();
        phases.set(name, JsonValue::Number(seconds));
        document.set("phases_seconds", phases);
    }

    // Pretty top level (one field per line), like the experiments bin.
    let mut rendered = JsonBuilder::object();
    if let Some(fields) = document.as_object() {
        for (key, value) in fields {
            rendered.raw(key, value.render());
        }
    }
    std::fs::write(path, rendered.finish_pretty() + "\n").expect("write bench json");
}

/// Read one phase object back from the bench artefact, if present (the
/// store bench uses this to compute rebuild-vs-load speedups across two
/// daemon runs).
pub fn read_bench_phase(path: &str, name: &str) -> Option<JsonValue> {
    let text = std::fs::read_to_string(path).ok()?;
    parse(&text).ok()?.get(name).cloned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_world_is_cached() {
        let a = shared_tiny_world();
        let b = shared_tiny_world();
        assert!(Arc::ptr_eq(&a, &b));
    }
}
