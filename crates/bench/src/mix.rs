//! Client-side plumbing shared by the load generators.
//!
//! `query-bench` (closed-loop round trips) and `query-load` (open-loop
//! pipelining with connection churn) both bootstrap their request mix
//! from the daemon's `catalog` answer and speak the same line protocol;
//! the shared pieces live here so the two generators cannot drift.

use lfp_analysis::json::JsonValue;
use lfp_net::link::splitmix64;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Jittered exponential backoff for `overloaded` sheds and connection
/// resets — the client half of the server's admission-control
/// contract.
///
/// Full-jitter: each retry sleeps `uniform(0, min(cap, base << attempt))`,
/// floored at the server's `retry_ms` hint when one came back (the
/// server knows its own queue; the client must not undercut it — the
/// floor is **sticky** across the failure streak and applies even
/// above `cap_ms`, because the cap bounds the client's own jitter
/// window, not the server's explicit ask). Uniform-over-the-window
/// rather than around-the-midpoint because shed clients are
/// *synchronised* by the shed itself — deterministic delays would
/// march them back in lockstep and re-trigger the watermark. Seeded,
/// so a chaos run's retry timing is reproducible.
#[derive(Debug, Clone)]
pub struct Backoff {
    seed: u64,
    base_ms: u64,
    cap_ms: u64,
    /// Consecutive failures since the last success.
    attempt: u32,
    /// Jitter draws so far (the deterministic randomness clock).
    draws: u64,
    /// Highest server `retry_ms` hint seen this failure streak. A
    /// reset-triggered retry with no hint of its own must not undercut
    /// what the server already asked for.
    hint_floor_ms: u64,
}

impl Backoff {
    /// A backoff starting at `base_ms` and capping at `cap_ms`.
    pub fn new(seed: u64, base_ms: u64, cap_ms: u64) -> Backoff {
        Backoff {
            seed,
            base_ms: base_ms.max(1),
            cap_ms: cap_ms.max(1),
            attempt: 0,
            draws: 0,
            hint_floor_ms: 0,
        }
    }

    /// Delay before the next retry. `hint_ms` is the server's
    /// `retry_ms` field when the failure was a typed `overloaded`
    /// shed (`None` for resets). Advances the attempt counter. The
    /// largest hint seen since the last success floors every delay in
    /// the streak — including hints above `cap_ms`, which cap only
    /// the jitter window.
    pub fn next_delay(&mut self, hint_ms: Option<u64>) -> Duration {
        self.hint_floor_ms = self.hint_floor_ms.max(hint_ms.unwrap_or(0));
        let window = self
            .base_ms
            .saturating_mul(1u64 << self.attempt.min(20))
            .min(self.cap_ms);
        self.attempt = self.attempt.saturating_add(1);
        self.draws = self.draws.wrapping_add(1);
        let jittered = splitmix64(self.seed ^ self.draws) % window.max(1);
        Duration::from_millis(jittered.max(self.hint_floor_ms))
    }

    /// A success ends the failure streak: the next delay starts from
    /// `base_ms` again and the server-hint floor is forgotten.
    pub fn reset(&mut self) {
        self.attempt = 0;
        self.hint_floor_ms = 0;
    }

    /// Consecutive failures since the last [`reset`](Backoff::reset).
    pub fn attempts(&self) -> u32 {
        self.attempt
    }
}

/// A connected blocking client: line-buffered reader + writer over one
/// stream.
pub struct Connection {
    /// Buffered read half.
    pub reader: BufReader<TcpStream>,
    /// Buffered write half.
    pub writer: BufWriter<TcpStream>,
}

/// Connect once (nodelay on).
pub fn connect(addr: &str) -> std::io::Result<Connection> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let reader = BufReader::new(stream.try_clone()?);
    Ok(Connection {
        reader,
        writer: BufWriter::new(stream),
    })
}

/// Connect, retrying until `timeout` (the daemon may still be building
/// its world).
pub fn connect_with_retry(addr: &str, timeout: Duration) -> Result<Connection, String> {
    let deadline = Instant::now() + timeout;
    loop {
        match connect(addr) {
            Ok(connection) => return Ok(connection),
            Err(error) => {
                if Instant::now() >= deadline {
                    return Err(format!(
                        "cannot connect to {addr} within {timeout:?}: {error}"
                    ));
                }
                std::thread::sleep(Duration::from_millis(100));
            }
        }
    }
}

/// One request/response round trip.
pub fn request(connection: &mut Connection, line: &str) -> Result<String, String> {
    writeln!(connection.writer, "{line}")
        .and_then(|()| connection.writer.flush())
        .map_err(|error| format!("send: {error}"))?;
    let mut reply = String::new();
    match connection.reader.read_line(&mut reply) {
        Ok(0) => Err("connection closed".to_string()),
        Ok(_) => Ok(reply.trim_end().to_string()),
        Err(error) => Err(format!("recv: {error}")),
    }
}

/// Build a deterministic request mix from the daemon's catalog: every
/// query kind, cycling through the advertised AS ids, sources, regions
/// and slices. Deterministic so reruns are comparable and so a warm
/// pass covers exactly the timed working set. Returns `None` when the
/// catalog advertised no AS ids at all.
pub fn build_mix(catalog: &JsonValue, distinct: usize) -> Option<Vec<String>> {
    let numbers = |key: &str| -> Vec<u64> {
        catalog
            .get(key)
            .and_then(JsonValue::as_array)
            .map(|items| items.iter().filter_map(JsonValue::as_u64).collect())
            .unwrap_or_default()
    };
    let strings = |key: &str| -> Vec<String> {
        catalog
            .get(key)
            .and_then(JsonValue::as_array)
            .map(|items| {
                items
                    .iter()
                    .filter_map(JsonValue::as_str)
                    .map(str::to_string)
                    .collect()
            })
            .unwrap_or_default()
    };
    let src_ases = numbers("src_ases");
    let dst_ases = numbers("dst_ases");
    let sources = strings("sources");
    let regions = strings("regions");
    let slices = strings("slices");
    if src_ases.is_empty() || dst_ases.is_empty() {
        return None;
    }

    let pick = |items: &[u64], index: usize| items[index % items.len()];
    let pick_str = |items: &[String], index: usize| items[index % items.len()].clone();
    let mut mix = Vec::with_capacity(distinct);
    for index in 0..distinct.max(1) {
        let line = match index % 6 {
            0 => format!(
                "{{\"query\":\"vendor_mix\",\"as\":{}}}",
                pick(&src_ases, index / 6)
            ),
            1 if !regions.is_empty() => format!(
                "{{\"query\":\"vendor_mix\",\"region\":\"{}\",\"method\":\"{}\"}}",
                pick_str(&regions, index / 6),
                if index % 2 == 0 { "lfp" } else { "snmp" },
            ),
            2 => format!(
                "{{\"query\":\"path_diversity\",\"src_as\":{},\"dst_as\":{}}}",
                pick(&src_ases, index / 6),
                pick(&dst_ases, index / 3),
            ),
            3 if !sources.is_empty() => format!(
                "{{\"query\":\"transitions\",\"source\":\"{}\"}}",
                pick_str(&sources, index / 6)
            ),
            4 if !slices.is_empty() => format!(
                "{{\"query\":\"longest_runs\",\"slice\":\"{}\"}}",
                pick_str(&slices, index / 6)
            ),
            _ => format!(
                "{{\"query\":\"path_diversity\",\"src_as\":{},\"dst_as\":{},\"min_hops\":{}}}",
                pick(&src_ases, index / 2),
                pick(&dst_ases, index / 4),
                2 + index % 4,
            ),
        };
        mix.push(line);
    }
    Some(mix)
}

/// Latency percentile over a **sorted** µs list (nearest-rank).
pub fn percentile_us(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let index = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[index]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let mut a = Backoff::new(11, 10, 500);
        let mut b = Backoff::new(11, 10, 500);
        for attempt in 0..12 {
            let left = a.next_delay(None);
            assert_eq!(left, b.next_delay(None), "attempt {attempt}");
            // Window for attempt n is min(cap, base << n); full jitter
            // stays strictly inside it.
            let window = 10u64.saturating_mul(1 << attempt.min(20)).min(500);
            assert!(left.as_millis() < u128::from(window.max(1)) + 1);
        }
        // Different seeds decorrelate — the whole point of jitter.
        let mut c = Backoff::new(12, 10, 500);
        let same = (0..12).filter(|_| a.next_delay(None) == c.next_delay(None));
        assert!(
            same.count() < 12,
            "seeds 11 and 12 produced identical jitter"
        );
    }

    #[test]
    fn backoff_honours_server_hint_and_reset() {
        let mut backoff = Backoff::new(7, 1, 4);
        // Window is tiny (≤4ms) but the server said 50ms: the hint
        // floors the delay, even though it exceeds cap_ms.
        assert!(backoff.next_delay(Some(50)) >= Duration::from_millis(50));
        assert_eq!(backoff.attempts(), 1);
        // The floor is sticky: a follow-up failure with *no* hint (a
        // reset, say) must still respect what the server asked for —
        // the old behaviour let it retry after ≤4ms.
        assert!(backoff.next_delay(None) >= Duration::from_millis(50));
        // A weaker hint never lowers the established floor…
        assert!(backoff.next_delay(Some(10)) >= Duration::from_millis(50));
        // …and a stronger one raises it.
        assert!(backoff.next_delay(Some(80)) >= Duration::from_millis(80));
        assert_eq!(backoff.attempts(), 4);
        backoff.reset();
        assert_eq!(backoff.attempts(), 0);
        // Success forgets the floor: delays shrink back under the cap.
        assert!(backoff.next_delay(None) < Duration::from_millis(50));
    }
}
