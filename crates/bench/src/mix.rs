//! Client-side plumbing shared by the load generators.
//!
//! `query-bench` (closed-loop round trips) and `query-load` (open-loop
//! pipelining with connection churn) both bootstrap their request mix
//! from the daemon's `catalog` answer and speak the same line protocol;
//! the shared pieces live here so the two generators cannot drift.

use lfp_analysis::json::JsonValue;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// A connected blocking client: line-buffered reader + writer over one
/// stream.
pub struct Connection {
    /// Buffered read half.
    pub reader: BufReader<TcpStream>,
    /// Buffered write half.
    pub writer: BufWriter<TcpStream>,
}

/// Connect once (nodelay on).
pub fn connect(addr: &str) -> std::io::Result<Connection> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let reader = BufReader::new(stream.try_clone()?);
    Ok(Connection {
        reader,
        writer: BufWriter::new(stream),
    })
}

/// Connect, retrying until `timeout` (the daemon may still be building
/// its world).
pub fn connect_with_retry(addr: &str, timeout: Duration) -> Result<Connection, String> {
    let deadline = Instant::now() + timeout;
    loop {
        match connect(addr) {
            Ok(connection) => return Ok(connection),
            Err(error) => {
                if Instant::now() >= deadline {
                    return Err(format!(
                        "cannot connect to {addr} within {timeout:?}: {error}"
                    ));
                }
                std::thread::sleep(Duration::from_millis(100));
            }
        }
    }
}

/// One request/response round trip.
pub fn request(connection: &mut Connection, line: &str) -> Result<String, String> {
    writeln!(connection.writer, "{line}")
        .and_then(|()| connection.writer.flush())
        .map_err(|error| format!("send: {error}"))?;
    let mut reply = String::new();
    match connection.reader.read_line(&mut reply) {
        Ok(0) => Err("connection closed".to_string()),
        Ok(_) => Ok(reply.trim_end().to_string()),
        Err(error) => Err(format!("recv: {error}")),
    }
}

/// Build a deterministic request mix from the daemon's catalog: every
/// query kind, cycling through the advertised AS ids, sources, regions
/// and slices. Deterministic so reruns are comparable and so a warm
/// pass covers exactly the timed working set. Returns `None` when the
/// catalog advertised no AS ids at all.
pub fn build_mix(catalog: &JsonValue, distinct: usize) -> Option<Vec<String>> {
    let numbers = |key: &str| -> Vec<u64> {
        catalog
            .get(key)
            .and_then(JsonValue::as_array)
            .map(|items| items.iter().filter_map(JsonValue::as_u64).collect())
            .unwrap_or_default()
    };
    let strings = |key: &str| -> Vec<String> {
        catalog
            .get(key)
            .and_then(JsonValue::as_array)
            .map(|items| {
                items
                    .iter()
                    .filter_map(JsonValue::as_str)
                    .map(str::to_string)
                    .collect()
            })
            .unwrap_or_default()
    };
    let src_ases = numbers("src_ases");
    let dst_ases = numbers("dst_ases");
    let sources = strings("sources");
    let regions = strings("regions");
    let slices = strings("slices");
    if src_ases.is_empty() || dst_ases.is_empty() {
        return None;
    }

    let pick = |items: &[u64], index: usize| items[index % items.len()];
    let pick_str = |items: &[String], index: usize| items[index % items.len()].clone();
    let mut mix = Vec::with_capacity(distinct);
    for index in 0..distinct.max(1) {
        let line = match index % 6 {
            0 => format!(
                "{{\"query\":\"vendor_mix\",\"as\":{}}}",
                pick(&src_ases, index / 6)
            ),
            1 if !regions.is_empty() => format!(
                "{{\"query\":\"vendor_mix\",\"region\":\"{}\",\"method\":\"{}\"}}",
                pick_str(&regions, index / 6),
                if index % 2 == 0 { "lfp" } else { "snmp" },
            ),
            2 => format!(
                "{{\"query\":\"path_diversity\",\"src_as\":{},\"dst_as\":{}}}",
                pick(&src_ases, index / 6),
                pick(&dst_ases, index / 3),
            ),
            3 if !sources.is_empty() => format!(
                "{{\"query\":\"transitions\",\"source\":\"{}\"}}",
                pick_str(&sources, index / 6)
            ),
            4 if !slices.is_empty() => format!(
                "{{\"query\":\"longest_runs\",\"slice\":\"{}\"}}",
                pick_str(&slices, index / 6)
            ),
            _ => format!(
                "{{\"query\":\"path_diversity\",\"src_as\":{},\"dst_as\":{},\"min_hops\":{}}}",
                pick(&src_ases, index / 2),
                pick(&dst_ases, index / 4),
                2 + index % 4,
            ),
        };
        mix.push(line);
    }
    Some(mix)
}

/// Latency percentile over a **sorted** µs list (nearest-rank).
pub fn percentile_us(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let index = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[index]
}
