//! Criterion benches for the wire-format codecs: the per-packet cost every
//! probe and every simulated response pays.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use lfp_packet::icmp::IcmpRepr;
use lfp_packet::ipv4::{self, Ipv4Packet, Ipv4Repr, Protocol};
use lfp_packet::snmp::{EngineId, SnmpV3Message};
use lfp_packet::tcp::{TcpFlags, TcpOptions, TcpRepr};
use lfp_packet::udp::UdpRepr;
use std::net::Ipv4Addr;

const SRC: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);
const DST: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 2);

fn bench_ipv4(c: &mut Criterion) {
    let mut group = c.benchmark_group("ipv4");
    let repr = Ipv4Repr {
        src: SRC,
        dst: DST,
        protocol: Protocol::Udp,
        ttl: 64,
        ident: 0x1234,
        dont_frag: false,
        payload_len: 20,
    };
    let datagram = ipv4::build_datagram(&repr, &[0u8; 20]);
    group.throughput(Throughput::Bytes(datagram.len() as u64));
    group.bench_function("emit", |b| {
        b.iter(|| ipv4::build_datagram(black_box(&repr), black_box(&[0u8; 20])))
    });
    group.bench_function("parse", |b| {
        b.iter(|| {
            let packet = Ipv4Packet::new_checked(black_box(&datagram[..])).unwrap();
            Ipv4Repr::parse(&packet).unwrap()
        })
    });
    group.finish();
}

fn bench_transport(c: &mut Criterion) {
    let mut group = c.benchmark_group("transport");
    let tcp = TcpRepr {
        src_port: 50000,
        dst_port: 33533,
        seq: 1,
        ack: 2,
        flags: TcpFlags::SYN,
        window: 1024,
        options: TcpOptions {
            mss: Some(1460),
            window_scale: Some(7),
            sack_permitted: true,
            timestamps: Some((1, 0)),
        },
    };
    group.bench_function("tcp_emit_with_options", |b| {
        b.iter(|| black_box(&tcp).to_bytes(SRC, DST))
    });
    let udp = UdpRepr {
        src_port: 51000,
        dst_port: 33533,
        payload: vec![0u8; 12],
    };
    group.bench_function("udp_emit", |b| {
        b.iter(|| black_box(&udp).to_bytes(SRC, DST))
    });
    let echo = IcmpRepr::EchoRequest {
        ident: 1,
        seq: 1,
        payload: vec![0u8; 56],
    };
    group.bench_function("icmp_echo_emit", |b| b.iter(|| black_box(&echo).to_bytes()));
    group.finish();
}

fn bench_snmp(c: &mut Criterion) {
    let mut group = c.benchmark_group("snmpv3");
    let request = SnmpV3Message::discovery_request(7);
    let engine = EngineId::text(9, "bench-engine-0001");
    let report = SnmpV3Message::discovery_report(7, &engine, 3, 100_000, 42);
    let report_bytes = report.to_bytes().unwrap();
    group.bench_function("discovery_request_encode", |b| {
        b.iter(|| black_box(&request).to_bytes().unwrap())
    });
    group.bench_function("report_parse_and_engine_extract", |b| {
        b.iter(|| {
            let message = SnmpV3Message::parse(black_box(&report_bytes)).unwrap();
            message.authoritative_engine_id().unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ipv4, bench_transport, bench_snmp);
criterion_main!(benches);
