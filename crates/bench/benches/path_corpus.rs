//! Path-corpus benchmarks: the build fold (single-shard vs parallel) and
//! the query families the §6 figures and the ordered-path experiments
//! lean on. The build is the `path_corpus` phase `BENCH_campaign.json`
//! tracks; the queries show why a build-once store beats re-walking the
//! trace list per figure.

use criterion::{criterion_group, criterion_main, Criterion};
use lfp_analysis::path_corpus::{LabelSource, PathCorpus};
use lfp_bench::shared_tiny_world;
use std::num::NonZeroUsize;

fn bench_corpus_build(c: &mut Criterion) {
    let world = shared_tiny_world();
    let mut group = c.benchmark_group("path_corpus_build");
    group.sample_size(10);
    group.bench_function("single_shard", |b| {
        b.iter(|| PathCorpus::build_with_shards(&world, NonZeroUsize::new(1).unwrap()))
    });
    group.bench_function("parallel", |b| b.iter(|| PathCorpus::build(&world)));
    group.finish();
}

fn bench_corpus_queries(c: &mut Criterion) {
    let world = shared_tiny_world();
    let corpus = world.path_corpus();
    let rows = corpus.all_rows();
    let latest = corpus.rows_in(corpus.latest_ripe_source(), None);
    let mut group = c.benchmark_group("path_corpus_query");
    group.bench_function("path_length_ecdf", |b| {
        b.iter(|| corpus.path_length_ecdf(&latest))
    });
    group.bench_function("identified_fraction_ecdf", |b| {
        b.iter(|| corpus.identified_fraction_ecdf(&latest, 3, 0, LabelSource::Lfp))
    });
    group.bench_function("top_vendor_combinations", |b| {
        b.iter(|| corpus.top_vendor_combinations(&latest, 10))
    });
    group.bench_function("transition_matrix", |b| {
        b.iter(|| corpus.transition_matrix(&rows))
    });
    group.bench_function("longest_run_ecdf", |b| {
        b.iter(|| corpus.longest_run_ecdf(&rows))
    });
    group.bench_function("segment_summary", |b| {
        b.iter(|| corpus.segment_summary(&rows))
    });
    group.finish();
}

criterion_group!(benches, bench_corpus_build, bench_corpus_queries);
criterion_main!(benches);
