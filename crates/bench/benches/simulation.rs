//! Criterion benches for the substrate: Internet generation, BGP route
//! computation, traceroute, and raw probe throughput.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use lfp_net::traceroute::{traceroute, TracerouteOptions};
use lfp_packet::icmp::IcmpRepr;
use lfp_packet::ipv4::{self, Ipv4Repr, Protocol};
use lfp_topo::{AsGraph, Internet, Scale};

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("generation");
    group.sample_size(10);
    group.bench_function("as_graph_tiny", |b| {
        b.iter(|| AsGraph::generate(black_box(&Scale::tiny())))
    });
    group.bench_function("internet_tiny", |b| {
        b.iter(|| Internet::generate(black_box(Scale::tiny())))
    });
    group.finish();
}

fn bench_bgp(c: &mut Criterion) {
    let graph = AsGraph::generate(&Scale::small());
    let mut group = c.benchmark_group("bgp");
    group.throughput(Throughput::Elements(graph.len() as u64));
    group.bench_function("routes_to_one_destination", |b| {
        let mut destination = 0u32;
        b.iter(|| {
            destination = (destination + 17) % graph.len() as u32;
            graph.routes_to(black_box(destination), None)
        })
    });
    group.bench_function("path_reconstruction", |b| {
        let table = graph.routes_to(37, None);
        let mut source = 0u32;
        b.iter(|| {
            source = (source + 13) % graph.len() as u32;
            table.path_from(black_box(source), &graph)
        })
    });
    group.finish();
}

fn bench_probe_throughput(c: &mut Criterion) {
    let internet = Internet::generate(Scale::tiny());
    let targets = internet.all_interfaces();
    let probes: Vec<Vec<u8>> = targets
        .iter()
        .take(64)
        .map(|&dst| {
            let icmp = IcmpRepr::EchoRequest {
                ident: 1,
                seq: 1,
                payload: vec![0u8; 56],
            }
            .to_bytes();
            ipv4::build_datagram(
                &Ipv4Repr {
                    src: std::net::Ipv4Addr::new(192, 0, 2, 9),
                    dst,
                    protocol: Protocol::Icmp,
                    ttl: 64,
                    ident: 7,
                    dont_frag: false,
                    payload_len: icmp.len(),
                },
                &icmp,
            )
        })
        .collect();
    let mut group = c.benchmark_group("network");
    group.throughput(Throughput::Elements(probes.len() as u64));
    let mut tick = 0u64;
    group.bench_function("probe_64_targets", |b| {
        b.iter(|| {
            tick += 1;
            probes
                .iter()
                .enumerate()
                .filter_map(|(index, probe)| {
                    internet
                        .network()
                        .probe(probe, tick as f64, tick ^ index as u64)
                })
                .count()
        })
    });
    group.finish();
}

fn bench_traceroute(c: &mut Criterion) {
    let internet = Internet::generate(Scale::tiny());
    let vantage = internet.vantages()[0];
    let targets = internet.all_interfaces();
    let mut group = c.benchmark_group("traceroute");
    let mut tick = 0u64;
    group.bench_function("single_traceroute", |b| {
        b.iter(|| {
            tick += 1;
            let dst = targets[(tick as usize * 31) % targets.len()];
            traceroute(
                internet.network(),
                vantage.id,
                vantage.src_ip,
                black_box(dst),
                TracerouteOptions::default(),
                tick as f64 * 100.0,
                tick,
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_generation,
    bench_bgp,
    bench_probe_throughput,
    bench_traceroute
);
criterion_main!(benches);
