//! Query-engine benchmarks: the serving hot paths `vendor-queryd` rides.
//!
//! `cache_hit` is the path a warm daemon serves almost every request
//! from (hash + shard lock + `Arc` clone); the `cold_*` benches time a
//! full plan → execute → render for each query family; `batch_*`
//! measures the fan-out executor against the same queries run serially.

use criterion::{criterion_group, criterion_main, Criterion};
use lfp_bench::shared_tiny_world;
use lfp_query::{run_batch, wire, Query, QueryEngine, Selection};

fn mixed_queries(engine: &QueryEngine, count: usize) -> Vec<Query> {
    let src = engine.corpus().src_as_ids();
    let dst = engine.corpus().dst_as_ids();
    (0..count)
        .map(|index| match index % 4 {
            0 => Query::VendorMixAs {
                as_id: src[index % src.len()],
                method: lfp_analysis::path_corpus::LabelSource::Lfp,
            },
            1 => Query::PathDiversity {
                selection: Selection {
                    src_as: Some(src[index % src.len()]),
                    dst_as: Some(dst[index % dst.len()]),
                    ..Selection::default()
                },
            },
            2 => Query::Transitions {
                selection: Selection {
                    min_hops: Some((2 + index % 4) as u16),
                    ..Selection::default()
                },
            },
            _ => Query::LongestRuns {
                selection: Selection::default(),
            },
        })
        .collect()
}

fn bench_engine_paths(c: &mut Criterion) {
    let world = shared_tiny_world();
    let engine = QueryEngine::new(world);
    let pair = mixed_queries(&engine, 2).pop().unwrap();
    let mut group = c.benchmark_group("query_engine");
    group.bench_function("cold_path_diversity", |b| {
        b.iter(|| engine.execute_uncached(&pair).unwrap())
    });
    group.bench_function("cold_transitions_full_corpus", |b| {
        b.iter(|| {
            engine
                .execute_uncached(&Query::Transitions {
                    selection: Selection::default(),
                })
                .unwrap()
        })
    });
    // Warm the cache, then time the hit path.
    engine.execute(&pair).unwrap();
    group.bench_function("cache_hit", |b| b.iter(|| engine.execute(&pair).unwrap()));
    // The miss/insert path: round-robin over twice the capacity makes
    // every insert an evicting miss, so this times the per-miss key
    // allocation (now one shared `Arc<str>`, previously two `String`s).
    group.bench_function("cache_insert_miss", |b| {
        let cache = lfp_query::ShardedLru::new(8, 512);
        let keys: Vec<String> = (0..1024)
            .map(|index| format!(r#"{{"query":"vendor_mix","as":{index}}}"#))
            .collect();
        let body: std::sync::Arc<str> = std::sync::Arc::from(r#"{"ok": true}"#);
        let mut next = 0usize;
        b.iter(|| {
            cache.insert(&keys[next % keys.len()], std::sync::Arc::clone(&body));
            next += 1;
        })
    });
    group.bench_function("wire_decode", |b| {
        b.iter(|| {
            wire::decode(r#"{"query":"path_diversity","src_as":3,"dst_as":9,"min_hops":2}"#)
                .unwrap()
        })
    });
    group.finish();
}

fn bench_batch(c: &mut Criterion) {
    let world = shared_tiny_world();
    let mut group = c.benchmark_group("query_batch");
    group.sample_size(10);
    group.bench_function("batch_64_cold_engine", |b| {
        b.iter(|| {
            let engine = QueryEngine::new(world.clone());
            let queries = mixed_queries(&engine, 64);
            run_batch(&engine, &queries)
        })
    });
    let engine = QueryEngine::new(world.clone());
    let queries = mixed_queries(&engine, 64);
    run_batch(&engine, &queries);
    group.bench_function("batch_64_warm_cache", |b| {
        b.iter(|| run_batch(&engine, &queries))
    });
    group.finish();
}

criterion_group!(benches, bench_engine_paths, bench_batch);
criterion_main!(benches);
