//! Criterion benches for the fingerprinting hot paths: IPID
//! classification, feature extraction, signature lookup, and the full
//! 10-packet probe of one router.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use lfp_bench::shared_tiny_world;
use lfp_core::extract::{classify_ipids, extract};
use lfp_core::probe::probe_target;
use lfp_net::network::{DeviceId, DirectOracle};
use lfp_net::Network;
use lfp_stack::catalog;
use lfp_stack::device::RouterDevice;
use lfp_stack::vendor::Vendor;
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::Arc;

fn bench_ipid_classification(c: &mut Criterion) {
    let mut group = c.benchmark_group("ipid");
    let sequences: [[u16; 3]; 4] = [
        [100, 105, 112],     // incremental
        [7, 52_000, 31_000], // random
        [500, 500, 500],     // static
        [65_530, 65_535, 4], // wrapping incremental
    ];
    group.bench_function("classify_4_sequences", |b| {
        b.iter(|| {
            for sequence in &sequences {
                black_box(classify_ipids(black_box(sequence)));
            }
        })
    });
    group.finish();
}

fn single_router_network(vendor: Vendor) -> (Network, Ipv4Addr) {
    let profile = Arc::new(catalog::default_variant(vendor));
    let device = (0..500)
        .map(|seed| RouterDevice::new(Arc::clone(&profile), seed))
        .find(|d| {
            let e = d.exposure();
            e.icmp && e.tcp && e.udp && e.snmp
        })
        .expect("exposed device");
    let ip = Ipv4Addr::new(9, 9, 9, 9);
    let mut interfaces = HashMap::new();
    interfaces.insert(ip, DeviceId(0));
    let mut network = Network::new(vec![device], interfaces, Box::new(DirectOracle), 5);
    network.set_base_loss(0.0);
    (network, ip)
}

fn bench_probe_and_extract(c: &mut Criterion) {
    let mut group = c.benchmark_group("probe");
    group.throughput(Throughput::Elements(1));
    let (network, ip) = single_router_network(Vendor::MikroTik);
    let mut tick = 0u64;
    group.bench_function("probe_target_10_packets", |b| {
        b.iter(|| {
            tick += 1;
            probe_target(&network, ip, tick as f64, tick)
        })
    });
    let observation = probe_target(&network, ip, 1e9, 0xfeed);
    group.bench_function("extract_features", |b| {
        b.iter(|| extract(black_box(&observation)))
    });
    group.finish();
}

fn bench_signature_lookup(c: &mut Criterion) {
    let world = shared_tiny_world();
    let (_, scan) = world.latest_ripe();
    let vectors = &scan.vectors;
    let mut group = c.benchmark_group("signatures");
    group.throughput(Throughput::Elements(vectors.len() as u64));
    group.bench_function("classify_scan_vectors", |b| {
        b.iter(|| {
            vectors
                .iter()
                .filter(|v| world.set.classify(v).unique_vendor().is_some())
                .count()
        })
    });
    group.bench_function("finalize_union_db", |b| {
        b.iter(|| world.union_db.finalize(black_box(2)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_ipid_classification,
    bench_probe_and_extract,
    bench_signature_lookup
);
criterion_main!(benches);
