//! One Criterion bench per paper table/figure: times each experiment
//! generator against a shared, pre-measured tiny world. (The heavyweight
//! cohort-based experiments — table7 and fig18 — run with a reduced
//! sample budget by virtue of the tiny scale.)

use criterion::{criterion_group, criterion_main, Criterion};
use lfp_analysis::experiments::EXPERIMENTS;
use lfp_bench::shared_tiny_world;

fn bench_experiments(c: &mut Criterion) {
    let world = shared_tiny_world();
    let mut group = c.benchmark_group("experiments");
    group.sample_size(10);
    for experiment in EXPERIMENTS {
        group.bench_function(experiment.id, |b| b.iter(|| (experiment.run)(&world)));
    }
    group.finish();
}

criterion_group!(benches, bench_experiments);
criterion_main!(benches);
