//! Process-level replication test: one primary + two followers, real
//! `vendor-queryd` binaries over real sockets, with a follower killed
//! and restarted mid-ingest.
//!
//! The acceptance invariants of the replication plane, end to end:
//!
//! * a follower bootstraps from the primary's shipped snapshot, then
//!   tracks epochs through shipped deltas;
//! * a fenced query (`min_epoch`) is **never** answered `ok` below its
//!   floor — the node either answers at ≥ the floor or refuses with
//!   the typed `stale_epoch` envelope until it has caught up;
//! * a follower killed mid-run restarts from its persisted store,
//!   resyncs the epochs it missed, and converges;
//! * at equal epochs, warm replies are byte-identical across replicas.

use lfp_analysis::json::{parse, JsonValue};
use lfp_analysis::World;
use lfp_bench::mix::{build_mix, connect_with_retry, request, Connection};
use lfp_core::pipeline::scan_dataset;
use lfp_query::wire;
use lfp_store::{SnapshotDelta, Store};
use lfp_topo::datasets::{measure_ripe_snapshot, plan_ripe_snapshots_extended};
use std::io::{BufRead, BufReader};
use std::net::Ipv4Addr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const WAIT: Duration = Duration::from_secs(30);

/// Measure `count` snapshot deltas beyond the base campaign — the same
/// churn chain `store-tool deltas` ships to disk.
fn measure_deltas(world: &World, count: usize) -> Vec<SnapshotDelta> {
    let internet = &world.internet;
    let base = internet.scale.snapshots;
    let plans = plan_ripe_snapshots_extended(internet, base + count);
    plans[base..]
        .iter()
        .map(|plan| {
            let snapshot = measure_ripe_snapshot(internet, &internet.network().fork(), plan);
            let targets: Vec<Ipv4Addr> = snapshot.router_ips.iter().copied().collect();
            let scan = scan_dataset(&internet.network().fork(), &snapshot.name, &targets, 4);
            SnapshotDelta::from_measurement(&snapshot, &scan)
        })
        .collect()
}

/// A spawned daemon that is killed on drop (so a failing assert never
/// leaks listeners across test runs).
struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    fn spawn(args: &[&str]) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_vendor-queryd"))
            .args(args)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn vendor-queryd");
        // The readiness line carries the ephemeral address.
        let stdout = child.stdout.take().expect("piped stdout");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("read readiness line");
        let addr = line
            .split("listening on ")
            .nth(1)
            .and_then(|rest| rest.split_whitespace().next())
            .unwrap_or_else(|| panic!("no address in readiness line: {line:?}"))
            .to_string();
        Daemon { child, addr }
    }

    fn shutdown(mut self) {
        if let Ok(mut conn) = connect_with_retry(&self.addr, Duration::from_secs(2)) {
            let _ = request(&mut conn, "{\"query\":\"shutdown\"}");
        }
        let _ = self.child.wait();
        // Disarm the drop kill: the child is already gone.
        std::mem::forget(self);
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

struct Scratch(PathBuf);

impl Scratch {
    fn new() -> Scratch {
        let dir = std::env::temp_dir().join(format!("lfp-repl-cluster-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn fenced(line: &str, floor: u64) -> String {
    let body = line.trim_end().strip_suffix('}').expect("JSON object line");
    format!("{body},\"min_epoch\":{floor}}}")
}

/// The epoch a node serves at, from the canonical echo.
fn epoch_of(conn: &mut Connection) -> u64 {
    let reply = request(conn, "{\"query\":\"catalog\"}").expect("epoch probe");
    parse(&reply)
        .expect("reply parses")
        .get("query")
        .and_then(|echo| echo.get("epoch"))
        .and_then(JsonValue::as_u64)
        .expect("reply echoes its epoch")
}

/// Fenced request against one node: returns the `ok` reply, asserting
/// the fencing contract — any `ok` must be at ≥ `floor`, anything else
/// must be the typed `stale_epoch` refusal (retried until caught up).
fn fenced_request(conn: &mut Connection, line: &str, floor: u64, who: &str) -> String {
    let fenced_line = fenced(line, floor);
    let deadline = Instant::now() + WAIT;
    loop {
        let reply = request(conn, &fenced_line).expect("fenced request");
        if let Some((have, want)) = wire::stale_epoch_of(&reply) {
            assert!(have < want, "{who}: nonsensical stale_epoch {have}/{want}");
            assert!(
                Instant::now() < deadline,
                "{who}: still stale_epoch ({have} < {want}) after {WAIT:?}"
            );
            std::thread::sleep(Duration::from_millis(20));
            continue;
        }
        let value = parse(&reply).expect("reply parses");
        assert_eq!(
            value.get("ok").and_then(JsonValue::as_bool),
            Some(true),
            "{who}: fenced request failed: {reply}"
        );
        let epoch = value
            .get("query")
            .and_then(|echo| echo.get("epoch"))
            .and_then(JsonValue::as_u64)
            .expect("ok reply echoes its epoch");
        assert!(
            epoch >= floor,
            "{who}: STALE ANSWER — ok at epoch {epoch} under fence {floor}: {reply}"
        );
        return reply;
    }
}

fn wait_for_epoch(addr: &str, target: u64, who: &str) -> Connection {
    let deadline = Instant::now() + WAIT;
    loop {
        if let Ok(mut conn) = connect_with_retry(addr, Duration::from_secs(2)) {
            if epoch_of(&mut conn) >= target {
                return conn;
            }
        }
        assert!(
            Instant::now() < deadline,
            "{who} never converged to epoch {target}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn cluster_survives_follower_kill_and_serves_identical_epochs() {
    let scratch = Scratch::new();

    // -- fixture: a tiny store plus two delta files to churn with ---
    let world = lfp_bench::shared_tiny_world();
    let deltas = measure_deltas(&world, 2);
    let delta_paths: Vec<PathBuf> = deltas
        .iter()
        .enumerate()
        .map(|(index, delta)| {
            let path = scratch.path(&format!("{:02}.delta", index + 1));
            std::fs::write(&path, delta.to_bytes()).expect("write delta file");
            path
        })
        .collect();
    let primary_store = scratch.path("primary.lfps");
    Store::from_world(world)
        .save(&primary_store)
        .expect("seed primary store");
    let store_arg = |path: &Path| path.to_str().expect("utf-8 path").to_string();

    // -- the cluster: primary + two followers ------------------------
    let primary = Daemon::spawn(&[
        "--store",
        &store_arg(&primary_store),
        "--port",
        "0",
        "--serve-replicas",
    ]);
    let f1_store = store_arg(&scratch.path("follower1.lfps"));
    let f2_store = store_arg(&scratch.path("follower2.lfps"));
    let follower1 = Daemon::spawn(&[
        "--follow",
        &primary.addr,
        "--store",
        &f1_store,
        "--port",
        "0",
    ]);
    let follower2 = Daemon::spawn(&[
        "--follow",
        &primary.addr,
        "--store",
        &f2_store,
        "--port",
        "0",
    ]);

    let mut p = connect_with_retry(&primary.addr, WAIT).expect("connect primary");
    let mut c1 = connect_with_retry(&follower1.addr, WAIT).expect("connect follower 1");
    let mut c2 = connect_with_retry(&follower2.addr, WAIT).expect("connect follower 2");

    // Build the query mix from the primary's catalog.
    let catalog = request(&mut p, "{\"query\":\"catalog\"}").expect("catalog");
    let catalog = parse(&catalog).expect("catalog parses");
    assert_eq!(catalog.get("ok").and_then(JsonValue::as_bool), Some(true));
    let mix = build_mix(catalog.get("result").expect("catalog result"), 16)
        .expect("catalog advertises AS ids");

    // Followers bootstrapped from the shipped snapshot serve epoch 0.
    assert_eq!(epoch_of(&mut c1), 0);
    assert_eq!(epoch_of(&mut c2), 0);

    // -- epoch 1: ingest on the primary, fence the followers ---------
    let ingest = format!(
        "{{\"query\": \"repl_ingest\", \"path\": \"{}\"}}",
        delta_paths[0].display()
    );
    let reply = request(&mut p, &ingest).expect("repl_ingest");
    assert!(reply.contains("\"ok\": true"), "ingest refused: {reply}");
    let floor = 1u64;
    for (conn, who) in [(&mut c1, "follower1"), (&mut c2, "follower2")] {
        for line in mix.iter().take(4) {
            fenced_request(conn, line, floor, who);
        }
    }

    // -- kill follower 2 mid-run, advance the world without it -------
    drop(c2);
    drop(follower2);
    let ingest = format!(
        "{{\"query\": \"repl_ingest\", \"path\": \"{}\"}}",
        delta_paths[1].display()
    );
    let reply = request(&mut p, &ingest).expect("repl_ingest 2");
    assert!(reply.contains("\"ok\": true"), "ingest refused: {reply}");
    assert_eq!(epoch_of(&mut p), 2);

    // Follower 1 (still alive) must reach epoch 2 behind the fence.
    for line in mix.iter().take(4) {
        fenced_request(&mut c1, line, 2, "follower1");
    }

    // -- restart follower 2: persisted store + resync ----------------
    let follower2 = Daemon::spawn(&[
        "--follow",
        &primary.addr,
        "--store",
        &f2_store,
        "--port",
        "0",
    ]);
    let mut c2 = wait_for_epoch(&follower2.addr, 2, "restarted follower2");
    for line in mix.iter().take(4) {
        fenced_request(&mut c2, line, 2, "restarted follower2");
    }

    // -- byte-identity at equal epochs -------------------------------
    // Second request per node is the warm (cached) one; at equal
    // epochs the whole reply line must match across the cluster.
    for line in mix.iter().take(8) {
        let warm = |conn: &mut Connection, who: &str| {
            fenced_request(conn, line, 2, who);
            fenced_request(conn, line, 2, who)
        };
        let expected = warm(&mut p, "primary");
        assert_eq!(warm(&mut c1, "follower1"), expected, "follower1 diverged");
        assert_eq!(warm(&mut c2, "follower2"), expected, "follower2 diverged");
    }

    drop(p);
    drop(c1);
    drop(c2);
    follower1.shutdown();
    follower2.shutdown();
    primary.shutdown();
}
