//! The end-to-end measurement pipeline (paper Figure 1).
//!
//! ① scan targets with the 10-packet schedule → ② label SNMPv3 responders
//! through their engine IDs → ③ build the signature database → ④ finalise
//! unique/partial signatures → ⑤ classify every responsive IP.
//!
//! Scanning is parallel and deterministic: the scanner shards targets by
//! owning device, so alias interfaces of one router are probed in
//! submission order by a single worker.

use crate::extract::{self};
use crate::features::FeatureVector;
use crate::probe::{self, TargetObservation};
use crate::signature::{Classification, SignatureDb, SignatureSet};
use crate::snmp_label;
use lfp_net::{scan, Network, ScanConfig};
use lfp_stack::vendor::Vendor;
use std::collections::BTreeMap;
use std::net::Ipv4Addr;
use std::num::NonZeroUsize;

/// A scanned dataset: observations, vectors and labels, index-aligned
/// with the target list.
#[derive(Debug)]
pub struct DatasetScan {
    /// Dataset name (RIPE-1 … ITDK).
    pub name: String,
    /// The probed addresses.
    pub targets: Vec<Ipv4Addr>,
    /// Raw observations per target.
    pub observations: Vec<TargetObservation>,
    /// Extracted feature vectors per target.
    pub vectors: Vec<FeatureVector>,
    /// SNMPv3-derived vendor labels per target.
    pub labels: Vec<Option<Vendor>>,
}

impl DatasetScan {
    /// IPs responsive to anything (the paper's "IPs" column in Table 3).
    pub fn responsive_count(&self) -> usize {
        self.observations
            .iter()
            .filter(|o| o.is_responsive())
            .count()
    }

    /// IPs that answered SNMPv3.
    pub fn snmp_count(&self) -> usize {
        self.labels.iter().flatten().count()
    }

    /// IPs with both a label and a *full* LFP vector (the labelled set
    /// signatures are built from).
    pub fn snmp_and_lfp_count(&self) -> usize {
        self.labels
            .iter()
            .zip(&self.vectors)
            .filter(|(label, vector)| label.is_some() && vector.is_full())
            .count()
    }

    /// IPs with a full LFP vector but no SNMPv3 answer — the coverage LFP
    /// adds over the state of the art.
    pub fn lfp_only_count(&self) -> usize {
        self.labels
            .iter()
            .zip(&self.vectors)
            .filter(|(label, vector)| label.is_none() && vector.is_full())
            .count()
    }

    /// Build this dataset's signature database from its labelled rows.
    pub fn signature_db(&self) -> SignatureDb {
        let mut db = SignatureDb::new();
        for (label, vector) in self.labels.iter().zip(&self.vectors) {
            if let Some(vendor) = label {
                db.add(*vector, *vendor);
            }
        }
        db
    }
}

/// Probe every target of a dataset (Figure 1 ①–②).
pub fn scan_dataset(
    network: &Network,
    name: &str,
    targets: &[Ipv4Addr],
    shards: usize,
) -> DatasetScan {
    let config = ScanConfig {
        shards: NonZeroUsize::new(shards.max(1)).unwrap(),
        pacing: 0.002,
    };
    let observations: Vec<TargetObservation> = scan(
        targets,
        config,
        |&ip| match network.device_of(ip) {
            Some(device) => u64::from(device.0),
            None => u64::from(u32::from(ip)) | 1 << 40,
        },
        |&ip, ctx| probe::probe_target(network, ip, ctx.start_time, ctx.index as u64),
    );
    let vectors: Vec<FeatureVector> = observations.iter().map(extract::extract).collect();
    let labels: Vec<Option<Vendor>> = observations
        .iter()
        .map(|o| {
            o.snmp_engine
                .as_ref()
                .and_then(snmp_label::vendor_from_engine)
        })
        .collect();
    DatasetScan {
        name: name.to_string(),
        targets: targets.to_vec(),
        observations,
        vectors,
        labels,
    }
}

/// Merge the labelled databases of several scans (Figure 1 ③).
pub fn union_db(scans: &[&DatasetScan]) -> SignatureDb {
    let mut union = SignatureDb::new();
    for scan in scans {
        union.merge(&scan.signature_db());
    }
    union
}

/// Classify every target of a scan against a signature set (Figure 1 ⑤).
pub fn classify_scan(scan: &DatasetScan, set: &SignatureSet) -> Vec<Classification> {
    scan.vectors.iter().map(|v| set.classify(v)).collect()
}

/// Per-vendor signature statistics over the labelled data of a merged
/// database (paper Table 5): for each vendor, the number of unique
/// signatures (and IPs covered) and non-unique signatures (and IPs).
pub fn vendor_signature_stats(
    db: &SignatureDb,
    set: &SignatureSet,
    scans: &[&DatasetScan],
) -> BTreeMap<Vendor, VendorSignatureStats> {
    let mut stats: BTreeMap<Vendor, VendorSignatureStats> = BTreeMap::new();
    // Signature membership per vendor.
    for (vector, &vendor) in &set.unique {
        stats.entry(vendor).or_default().unique_sigs += 1;
        let _ = vector;
    }
    for list in set.non_unique.values() {
        for &(vendor, _) in list.iter() {
            stats.entry(vendor).or_default().non_unique_sigs += 1;
        }
    }
    // IP attribution: walk the labelled observations once. The paper's
    // "labelled dataset" is SNMPv3 ∩ LFP, i.e. label plus full vector.
    for scan in scans {
        for (label, vector) in scan.labels.iter().zip(&scan.vectors) {
            let Some(vendor) = label else { continue };
            if !vector.is_full() {
                continue;
            }
            let entry = stats.entry(*vendor).or_default();
            entry.labeled_ips += 1;
            if set.unique.contains_key(vector) {
                entry.unique_ips += 1;
            } else if set.non_unique.contains_key(vector) {
                entry.non_unique_ips += 1;
            }
        }
    }
    let _ = db;
    stats
}

/// Table 5 row contents for one vendor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VendorSignatureStats {
    /// Labelled IPs for this vendor.
    pub labeled_ips: usize,
    /// Unique signatures attributed to the vendor.
    pub unique_sigs: usize,
    /// Labelled IPs covered by unique signatures.
    pub unique_ips: usize,
    /// Non-unique signatures the vendor participates in.
    pub non_unique_sigs: usize,
    /// Labelled IPs covered by non-unique signatures.
    pub non_unique_ips: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfp_topo::{Internet, Scale};

    fn scanned_internet() -> (Internet, DatasetScan) {
        let internet = Internet::generate(Scale::tiny());
        let targets = internet.all_interfaces();
        let scan = scan_dataset(internet.network(), "test", &targets, 4);
        (internet, scan)
    }

    #[test]
    fn scan_produces_aligned_outputs() {
        let (_, scan) = scanned_internet();
        assert_eq!(scan.targets.len(), scan.observations.len());
        assert_eq!(scan.targets.len(), scan.vectors.len());
        assert_eq!(scan.targets.len(), scan.labels.len());
        assert!(scan.responsive_count() > scan.targets.len() / 3);
        assert!(scan.snmp_count() > 0);
        assert!(scan.snmp_and_lfp_count() > 0);
        assert!(scan.lfp_only_count() > 0);
    }

    #[test]
    fn labels_match_ground_truth_exactly() {
        // SNMPv3 labelling is the paper's ground truth; on the simulated
        // Internet it must agree with the generator's vendor assignment.
        let (internet, scan) = scanned_internet();
        let mut checked = 0;
        for (target, label) in scan.targets.iter().zip(&scan.labels) {
            if let Some(vendor) = label {
                let truth = internet.truth_of(*target).unwrap();
                assert_eq!(truth.vendor, *vendor, "label mismatch at {target}");
                checked += 1;
            }
        }
        assert!(checked > 10, "too few labels to trust this test: {checked}");
    }

    #[test]
    fn classification_against_own_db_is_consistent() {
        let (internet, scan) = scanned_internet();
        let db = scan.signature_db();
        let set = db.finalize(2);
        let classifications = classify_scan(&scan, &set);
        let mut correct = 0usize;
        let mut wrong = 0usize;
        for ((target, classification), _vector) in
            scan.targets.iter().zip(&classifications).zip(&scan.vectors)
        {
            if let Some(vendor) = classification.unique_vendor() {
                let truth = internet.truth_of(*target).unwrap().vendor;
                if truth == vendor {
                    correct += 1;
                } else {
                    wrong += 1;
                }
            }
        }
        assert!(correct > 0);
        // Unique signatures at tiny scale can still collide by chance, but
        // accuracy must be overwhelming.
        let accuracy = correct as f64 / (correct + wrong).max(1) as f64;
        assert!(accuracy > 0.9, "accuracy {accuracy} ({correct}/{wrong})");
    }

    #[test]
    fn scan_is_deterministic_across_shard_counts() {
        let internet = Internet::generate(Scale::tiny());
        let targets = internet.all_interfaces();
        let single = scan_dataset(internet.network(), "a", &targets, 1);
        // Note: rescanning the same internet mutates counters, so build a
        // fresh one for the parallel run.
        let internet2 = Internet::generate(Scale::tiny());
        let parallel = scan_dataset(internet2.network(), "b", &targets, 8);
        assert_eq!(single.vectors, parallel.vectors);
        assert_eq!(single.labels, parallel.labels);
    }
}
