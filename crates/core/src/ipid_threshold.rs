//! IPID threshold analysis (paper §3.6, Figures 2 and 3).
//!
//! The sequential/random decision rests on an empirical knee: the
//! distribution of the *maximum* consecutive IPID step per fully
//! responsive IP shows sequential counters bunched near zero and random
//! ones spread uniformly; 1,300 sits in the knee. This module computes
//! both distributions from observations plus the misclassification bound
//! the paper derives.

use crate::probe::TargetObservation;

/// Per-IP maximum consecutive IPID step across all nine responses
/// (Figure 2's x-axis). Only fully responsive observations contribute,
/// as in the paper.
pub fn max_steps_per_ip(observations: &[TargetObservation]) -> Vec<u16> {
    observations
        .iter()
        .filter(|o| o.icmp.len() >= 3 && o.tcp.len() >= 3 && o.udp.len() >= 3)
        .filter_map(|o| {
            let ipids: Vec<u16> = o.timeline.iter().map(|&(_, _, id)| id).collect();
            ipids.windows(2).map(|w| w[1].wrapping_sub(w[0])).max()
        })
        .collect()
}

/// Signed IPID differences between consecutive responses (Figure 3's
/// x-axis), mapped into `[-32768, 32767]`.
pub fn consecutive_diffs(observations: &[TargetObservation]) -> Vec<i32> {
    let mut diffs = Vec::new();
    for observation in observations {
        if observation.icmp.len() < 3 || observation.tcp.len() < 3 || observation.udp.len() < 3 {
            continue;
        }
        for window in observation.timeline.windows(2) {
            let raw = i32::from(window[1].2) - i32::from(window[0].2);
            // Wrap into the signed 16-bit interval.
            let wrapped = if raw > 32_767 {
                raw - 65_536
            } else if raw < -32_768 {
                raw + 65_536
            } else {
                raw
            };
            diffs.push(wrapped);
        }
    }
    diffs
}

/// Probability a *random* IPID counter produces a single step at or below
/// `threshold` (the paper's 1301/2^16 ≈ 0.019).
pub fn single_step_false_positive(threshold: u16) -> f64 {
    f64::from(threshold) / 65_536.0 + 1.0 / 65_536.0
}

/// Probability all `steps` consecutive random steps fall at or below the
/// threshold — the misclassification bound (0.019⁸ for the full schedule).
pub fn misclassification_probability(threshold: u16, steps: u32) -> f64 {
    single_step_false_positive(threshold).powi(steps as i32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::{ProbeReply, ProtoTag};

    fn full_observation(ipids: [u16; 9]) -> TargetObservation {
        let mut observation = TargetObservation::default();
        let tags = [
            ProtoTag::Icmp,
            ProtoTag::Tcp,
            ProtoTag::Udp,
            ProtoTag::Icmp,
            ProtoTag::Tcp,
            ProtoTag::Udp,
            ProtoTag::Icmp,
            ProtoTag::Tcp,
            ProtoTag::Udp,
        ];
        for (index, (&ipid, &tag)) in ipids.iter().zip(&tags).enumerate() {
            let at = index as f64 * 0.05;
            let reply = ProbeReply {
                at,
                ipid,
                ttl: 60,
                total_len: 84,
            };
            observation.timeline.push((tag, at, ipid));
            match tag {
                ProtoTag::Icmp => {
                    observation.icmp.push(reply);
                    observation.icmp_echo_match.push(false);
                }
                ProtoTag::Tcp => observation.tcp.push(reply),
                ProtoTag::Udp => observation.udp.push(reply),
            }
        }
        observation
    }

    #[test]
    fn max_step_of_a_shared_counter_is_small() {
        let observation = full_observation([10, 12, 15, 19, 20, 26, 30, 31, 37]);
        let steps = max_steps_per_ip(&[observation]);
        assert_eq!(steps, vec![6]);
    }

    #[test]
    fn partial_observations_are_excluded() {
        let mut observation = full_observation([1, 2, 3, 4, 5, 6, 7, 8, 9]);
        observation.udp.pop();
        assert!(max_steps_per_ip(&[observation]).is_empty());
    }

    #[test]
    fn diffs_wrap_into_signed_range() {
        let observation = full_observation([65_530, 5, 65_500, 10, 20, 30, 40, 50, 60]);
        let diffs = consecutive_diffs(&[observation]);
        assert_eq!(diffs.len(), 8);
        assert_eq!(diffs[0], 11); // 65530 → 5 wraps forward by 11
        assert!(diffs.iter().all(|&d| (-32_768..=32_767).contains(&d)));
    }

    #[test]
    fn paper_misclassification_bound() {
        let p = single_step_false_positive(1300);
        assert!((p - 0.01985).abs() < 0.0005, "p = {p}");
        let all_protocols = misclassification_probability(1300, 8);
        assert!(all_protocols < 1e-13, "bound = {all_protocols}");
        let per_protocol = misclassification_probability(1300, 2);
        assert!((per_protocol - 0.019_85f64.powi(2)).abs() < 1e-6);
    }
}
