//! The LFP probe schedule: nine single-packet probes plus one SNMPv3
//! discovery (paper §3.3, Figure 1 ①).
//!
//! Per target: three ICMP echo requests, two TCP ACKs and one TCP SYN with
//! a non-zero acknowledgment field to closed port 33533, and three UDP
//! datagrams with 12 zero bytes to the same port. Probes are interleaved
//! across protocols so cross-protocol counter sharing is observable in the
//! response IPID timeline. No malformed packets, ten packets total — the
//! paper's entire ethical footprint argument rests on this schedule.

use lfp_net::Network;
use lfp_packet::icmp::{IcmpPacket, IcmpRepr, UnreachableCode};
use lfp_packet::ipv4::{self, Ipv4Packet, Ipv4Repr, Protocol};
use lfp_packet::snmp::{EngineId, SnmpV3Message};
use lfp_packet::tcp::{TcpFlags, TcpOptions, TcpPacket, TcpRepr};
use lfp_packet::udp::{UdpPacket, UdpRepr};
use std::net::Ipv4Addr;

/// The closed port targeted by TCP and UDP probes (§3.3).
pub const LFP_PORT: u16 = 33533;
/// Source address of the measurement host.
pub const PROBER_IP: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 9);
/// Echo payload size: a classic 56-byte ping (→ 84-byte replies, Table 6).
pub const ECHO_PAYLOAD: usize = 56;
/// Gap between consecutive probes of the interleaved schedule, seconds.
pub const PROBE_GAP: f64 = 0.05;

/// Protocol class of a probe (keyed by *probe*, not response, protocol).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtoTag {
    /// ICMP echo probes.
    Icmp,
    /// TCP probes to a closed port.
    Tcp,
    /// UDP probes to a closed port.
    Udp,
}

/// One parsed probe response.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbeReply {
    /// Reception time (virtual seconds).
    pub at: f64,
    /// IPID of the response.
    pub ipid: u16,
    /// Observed (decayed) TTL.
    pub ttl: u8,
    /// IP total length of the response.
    pub total_len: u16,
}

/// Everything observed about one target after the 10-packet schedule.
#[derive(Debug, Clone, Default)]
pub struct TargetObservation {
    /// The probed address.
    pub target: Option<Ipv4Addr>,
    /// Echo replies, in probe order.
    pub icmp: Vec<ProbeReply>,
    /// Per echo reply: did its IPID mirror the request's header IPID?
    pub icmp_echo_match: Vec<bool>,
    /// TCP RSTs, in probe order.
    pub tcp: Vec<ProbeReply>,
    /// Sequence number of the RST answering the SYN probe, if observed.
    pub syn_rst_seq: Option<u32>,
    /// ICMP port-unreachable responses to the UDP probes, in probe order.
    pub udp: Vec<ProbeReply>,
    /// Engine ID from the SNMPv3 discovery report, if any.
    pub snmp_engine: Option<EngineId>,
    /// Chronological (probe class, reception time, IPID) sequence across
    /// all nine probes — the input to shared-counter analysis.
    pub timeline: Vec<(ProtoTag, f64, u16)>,
}

impl TargetObservation {
    /// Responds to anything (including SNMPv3)?
    pub fn is_responsive(&self) -> bool {
        !self.icmp.is_empty()
            || !self.tcp.is_empty()
            || !self.udp.is_empty()
            || self.snmp_engine.is_some()
    }

    /// Number of protocols (of the three) with at least one response.
    pub fn responsive_protocols(&self) -> usize {
        usize::from(!self.icmp.is_empty())
            + usize::from(!self.tcp.is_empty())
            + usize::from(!self.udp.is_empty())
    }

    /// Responses per protocol, in (ICMP, TCP, UDP) order (Figures 5/6).
    pub fn responses_per_protocol(&self) -> [usize; 3] {
        [self.icmp.len(), self.tcp.len(), self.udp.len()]
    }
}

/// Run the full 10-packet schedule against one target.
///
/// `start_time` paces the scan; `salt` decorrelates loss/jitter draws.
pub fn probe_target(
    network: &Network,
    target: Ipv4Addr,
    start_time: f64,
    salt: u64,
) -> TargetObservation {
    let mut observation = TargetObservation {
        target: Some(target),
        ..TargetObservation::default()
    };
    // Base header IPID for echo requests; reflection is detected by
    // comparing reply IPIDs against these (feature 1).
    let ipid_base = 0x6000u16 | (salt as u16 & 0x0fff);

    for round in 0..3u16 {
        let round_start = start_time + f64::from(round) * 3.0 * PROBE_GAP;

        // -- ICMP echo.
        let request_ipid = ipid_base.wrapping_add(round);
        let icmp = IcmpRepr::EchoRequest {
            ident: 0x4c46, // "LF"
            seq: round,
            payload: vec![0u8; ECHO_PAYLOAD],
        }
        .to_bytes();
        let datagram = wrap(target, Protocol::Icmp, request_ipid, &icmp);
        if let Some(reception) = network.probe(
            &datagram,
            round_start,
            salt ^ (0x1c << 8 | u64::from(round)),
        ) {
            if let Some((reply, is_echo_reply)) =
                parse_icmp_reply(&reception.datagram, reception.at)
            {
                if is_echo_reply {
                    observation.icmp_echo_match.push(reply.ipid == request_ipid);
                    observation
                        .timeline
                        .push((ProtoTag::Icmp, reply.at, reply.ipid));
                    observation.icmp.push(reply);
                }
            }
        }

        // -- TCP: two ACK probes, then one SYN with a non-zero ack field.
        let is_syn_round = round == 2;
        let seq: u32 = 0x2000_0000 | u32::from(round) << 8;
        let ack: u32 = 0x5EED_0000 | u32::from(salt as u16);
        let tcp = TcpRepr {
            src_port: 50000 + round,
            dst_port: LFP_PORT,
            seq,
            ack,
            flags: if is_syn_round {
                TcpFlags::SYN
            } else {
                TcpFlags::ACK
            },
            window: 1024,
            options: TcpOptions::default(),
        }
        .to_bytes(PROBER_IP, target);
        let datagram = wrap(
            target,
            Protocol::Tcp,
            ipid_base.wrapping_add(16 + round),
            &tcp,
        );
        if let Some(reception) = network.probe(
            &datagram,
            round_start + PROBE_GAP,
            salt ^ (0x7c << 8 | u64::from(round)),
        ) {
            if let Some((reply, rst_seq)) = parse_tcp_reply(&reception.datagram, reception.at) {
                if is_syn_round {
                    observation.syn_rst_seq = Some(rst_seq);
                }
                observation
                    .timeline
                    .push((ProtoTag::Tcp, reply.at, reply.ipid));
                observation.tcp.push(reply);
            }
        }

        // -- UDP: 12 zero bytes to the closed port.
        let udp = UdpRepr {
            src_port: 51000 + round,
            dst_port: LFP_PORT,
            payload: vec![0u8; 12],
        }
        .to_bytes(PROBER_IP, target);
        let datagram = wrap(
            target,
            Protocol::Udp,
            ipid_base.wrapping_add(32 + round),
            &udp,
        );
        if let Some(reception) = network.probe(
            &datagram,
            round_start + 2.0 * PROBE_GAP,
            salt ^ (0xdd << 8 | u64::from(round)),
        ) {
            if let Some(reply) = parse_udp_reply(&reception.datagram, reception.at) {
                observation
                    .timeline
                    .push((ProtoTag::Udp, reply.at, reply.ipid));
                observation.udp.push(reply);
            }
        }
    }

    // -- The single SNMPv3 discovery packet.
    let msg_id = (salt as i32 & 0x7fff_ffff).max(1);
    let request = SnmpV3Message::discovery_request(msg_id)
        .to_bytes()
        .expect("discovery request always encodes");
    let udp = UdpRepr {
        src_port: 52000,
        dst_port: 161,
        payload: request,
    }
    .to_bytes(PROBER_IP, target);
    let datagram = wrap(target, Protocol::Udp, ipid_base.wrapping_add(48), &udp);
    if let Some(reception) =
        network.probe(&datagram, start_time + 10.0 * PROBE_GAP, salt ^ 0x514d_5033)
    {
        observation.snmp_engine = parse_snmp_reply(&reception.datagram, msg_id);
    }

    // Jitter can reorder closely-spaced receptions; shared-counter
    // analysis needs true reception order.
    observation.timeline.sort_by(|a, b| a.1.total_cmp(&b.1));
    observation
}

fn wrap(target: Ipv4Addr, protocol: Protocol, ipid: u16, payload: &[u8]) -> Vec<u8> {
    ipv4::build_datagram(
        &Ipv4Repr {
            src: PROBER_IP,
            dst: target,
            protocol,
            ttl: 64,
            ident: ipid,
            dont_frag: false,
            payload_len: payload.len(),
        },
        payload,
    )
}

fn parse_icmp_reply(datagram: &[u8], at: f64) -> Option<(ProbeReply, bool)> {
    let packet = Ipv4Packet::new_checked(datagram).ok()?;
    if packet.protocol() != Protocol::Icmp {
        return None;
    }
    let icmp = IcmpPacket::new_checked(packet.payload()).ok()?;
    let is_echo_reply = matches!(IcmpRepr::parse(&icmp), Ok(IcmpRepr::EchoReply { .. }));
    Some((
        ProbeReply {
            at,
            ipid: packet.ident(),
            ttl: packet.ttl(),
            total_len: packet.total_len(),
        },
        is_echo_reply,
    ))
}

fn parse_tcp_reply(datagram: &[u8], at: f64) -> Option<(ProbeReply, u32)> {
    let packet = Ipv4Packet::new_checked(datagram).ok()?;
    if packet.protocol() != Protocol::Tcp {
        return None;
    }
    let tcp = TcpPacket::new_checked(packet.payload()).ok()?;
    if !tcp.flags().contains(TcpFlags::RST) {
        return None;
    }
    Some((
        ProbeReply {
            at,
            ipid: packet.ident(),
            ttl: packet.ttl(),
            total_len: packet.total_len(),
        },
        tcp.seq(),
    ))
}

fn parse_udp_reply(datagram: &[u8], at: f64) -> Option<ProbeReply> {
    let packet = Ipv4Packet::new_checked(datagram).ok()?;
    if packet.protocol() != Protocol::Icmp {
        return None;
    }
    let icmp = IcmpPacket::new_checked(packet.payload()).ok()?;
    match IcmpRepr::parse(&icmp) {
        Ok(IcmpRepr::DstUnreachable {
            code: UnreachableCode::Port,
            ..
        }) => Some(ProbeReply {
            at,
            ipid: packet.ident(),
            ttl: packet.ttl(),
            total_len: packet.total_len(),
        }),
        _ => None,
    }
}

fn parse_snmp_reply(datagram: &[u8], expected_msg_id: i32) -> Option<EngineId> {
    let packet = Ipv4Packet::new_checked(datagram).ok()?;
    if packet.protocol() != Protocol::Udp {
        return None;
    }
    let udp = UdpPacket::new_checked(packet.payload()).ok()?;
    if udp.src_port() != 161 {
        return None;
    }
    let message = SnmpV3Message::parse(udp.payload()).ok()?;
    if message.msg_id != expected_msg_id {
        return None;
    }
    message.authoritative_engine_id().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfp_net::network::{DeviceId, DirectOracle};
    use lfp_stack::catalog;
    use lfp_stack::device::RouterDevice;
    use lfp_stack::vendor::Vendor;
    use std::collections::HashMap;
    use std::sync::Arc;

    fn network_with(vendor: Vendor) -> (Network, Ipv4Addr) {
        let profile = Arc::new(catalog::default_variant(vendor));
        let device = (0..800)
            .map(|seed| RouterDevice::new(Arc::clone(&profile), seed))
            .find(|d| {
                let e = d.exposure();
                e.icmp && e.tcp && e.udp && e.snmp
            })
            .expect("fully exposed device");
        let ip = Ipv4Addr::new(9, 9, 9, 9);
        let mut interfaces = HashMap::new();
        interfaces.insert(ip, DeviceId(0));
        let mut network = Network::new(vec![device], interfaces, Box::new(DirectOracle), 1234);
        network.set_base_loss(0.0);
        (network, ip)
    }

    #[test]
    fn full_schedule_collects_nine_plus_one() {
        let (network, ip) = network_with(Vendor::MikroTik);
        let observation = probe_target(&network, ip, 0.0, 42);
        assert_eq!(observation.icmp.len(), 3);
        assert_eq!(observation.tcp.len(), 3);
        assert_eq!(observation.udp.len(), 3);
        assert_eq!(observation.timeline.len(), 9);
        assert!(observation.snmp_engine.is_some());
        assert!(observation.syn_rst_seq.is_some());
        assert_eq!(observation.responsive_protocols(), 3);
    }

    #[test]
    fn snmp_engine_carries_vendor_pen() {
        let (network, ip) = network_with(Vendor::Huawei);
        let observation = probe_target(&network, ip, 0.0, 7);
        let engine = observation.snmp_engine.expect("SNMP answer expected");
        assert_eq!(engine.pen, Vendor::Huawei.pen());
    }

    #[test]
    fn linux_stack_syn_rst_copies_ack() {
        let (network, ip) = network_with(Vendor::MikroTik);
        let observation = probe_target(&network, ip, 0.0, 9);
        let seq = observation.syn_rst_seq.unwrap();
        assert_ne!(seq, 0, "Linux-derived stacks copy the probe's ack field");
    }

    #[test]
    fn cisco_syn_rst_is_zero() {
        let (network, ip) = network_with(Vendor::Cisco);
        let observation = probe_target(&network, ip, 0.0, 9);
        assert_eq!(observation.syn_rst_seq.unwrap(), 0);
    }

    #[test]
    fn timeline_is_chronological() {
        let (network, ip) = network_with(Vendor::MikroTik);
        let observation = probe_target(&network, ip, 0.0, 3);
        for pair in observation.timeline.windows(2) {
            assert!(pair[0].1 <= pair[1].1);
        }
    }

    #[test]
    fn unknown_target_is_fully_unresponsive() {
        let (network, _) = network_with(Vendor::Cisco);
        let observation = probe_target(&network, Ipv4Addr::new(8, 8, 8, 8), 0.0, 5);
        assert!(!observation.is_responsive());
        assert_eq!(observation.responses_per_protocol(), [0, 0, 0]);
    }

    #[test]
    fn probing_is_deterministic() {
        let (n1, ip) = network_with(Vendor::Juniper);
        let (n2, _) = network_with(Vendor::Juniper);
        let a = probe_target(&n1, ip, 0.0, 11);
        let b = probe_target(&n2, ip, 0.0, 11);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }
}
