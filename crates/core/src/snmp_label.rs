//! SNMPv3 ground-truth labelling (paper §3.1, building on [2]).
//!
//! An engine ID's leading enterprise number names the implementing vendor.
//! This is the only channel through which vendor truth reaches the
//! measurement pipeline, and it is exactly as partial as in the paper:
//! routers without a reachable SNMPv3 agent contribute no label.

use lfp_packet::snmp::EngineId;
use lfp_stack::vendor::Vendor;

/// Resolve an engine ID to a vendor via its Private Enterprise Number.
pub fn vendor_from_engine(engine: &EngineId) -> Option<Vendor> {
    Vendor::from_pen(engine.pen)
}

/// A labelled observation index: which target, which vendor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Label {
    /// Index into the scan's observation list.
    pub observation: usize,
    /// Vendor decoded from the engine ID.
    pub vendor: Vendor,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_pens_resolve() {
        let engine = EngineId::text(9, "core1");
        assert_eq!(vendor_from_engine(&engine), Some(Vendor::Cisco));
        let engine = EngineId::text(14988, "gw");
        assert_eq!(vendor_from_engine(&engine), Some(Vendor::MikroTik));
    }

    #[test]
    fn unknown_pen_yields_no_label() {
        let engine = EngineId::text(999_999, "mystery");
        assert_eq!(vendor_from_engine(&engine), None);
    }
}
