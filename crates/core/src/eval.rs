//! Evaluation: precision/recall on a train/test split (paper Appendix B,
//! Table 8) and coverage/accuracy scoring used by the tool comparison.

use crate::features::FeatureVector;
use crate::signature::SignatureDb;
use lfp_net::link::splitmix64;
use lfp_stack::vendor::Vendor;
use std::collections::BTreeMap;

/// Precision/recall row for one vendor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrecisionRecall {
    /// True positives.
    pub tp: usize,
    /// False positives (predicted this vendor, truth differs).
    pub fp: usize,
    /// False negatives (truth is this vendor, predicted otherwise or not
    /// at all).
    pub fn_: usize,
    /// Test-set size for the vendor (the paper's "Total (test)").
    pub total_test: usize,
}

impl PrecisionRecall {
    /// Precision = tp / (tp + fp); 0 when undefined.
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            0.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// Recall = tp / (tp + fn); 0 when undefined.
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            0.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }
}

/// Run the 80/20 split evaluation over labelled (vector, vendor) pairs.
///
/// The split is deterministic (hash of the sample index with `seed`).
/// Predictions use the paper's Appendix-B mode: unique signature matches
/// plus the dominant vendor of non-unique matches.
pub fn precision_recall_80_20(
    labeled: &[(FeatureVector, Vendor)],
    min_occurrences: usize,
    seed: u64,
) -> BTreeMap<Vendor, PrecisionRecall> {
    let mut train = SignatureDb::new();
    let mut test: Vec<&(FeatureVector, Vendor)> = Vec::new();
    for (index, sample) in labeled.iter().enumerate() {
        if splitmix64(seed ^ index as u64).is_multiple_of(5) {
            test.push(sample);
        } else {
            train.add(sample.0, sample.1);
        }
    }
    let set = train.finalize(min_occurrences);

    let mut results: BTreeMap<Vendor, PrecisionRecall> = BTreeMap::new();
    for &(vector, truth) in &test {
        let entry = results.entry(*truth).or_insert(PrecisionRecall {
            tp: 0,
            fp: 0,
            fn_: 0,
            total_test: 0,
        });
        entry.total_test += 1;
        match set.classify(vector).majority_vendor() {
            Some(predicted) if predicted == *truth => {
                results.get_mut(truth).unwrap().tp += 1;
            }
            Some(predicted) => {
                results.get_mut(truth).unwrap().fn_ += 1;
                results
                    .entry(predicted)
                    .or_insert(PrecisionRecall {
                        tp: 0,
                        fp: 0,
                        fn_: 0,
                        total_test: 0,
                    })
                    .fp += 1;
            }
            None => {
                results.get_mut(truth).unwrap().fn_ += 1;
            }
        }
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::{InitialTtl, IpidClass};

    fn vector(ittl: InitialTtl, reflect: bool) -> FeatureVector {
        FeatureVector {
            icmp_ipid_echo: Some(reflect),
            icmp_ipid: Some(IpidClass::Random),
            tcp_ipid: Some(IpidClass::Random),
            udp_ipid: Some(IpidClass::Random),
            shared_all: Some(false),
            shared_tcp_icmp: Some(false),
            shared_udp_icmp: Some(false),
            shared_tcp_udp: Some(false),
            udp_ittl: Some(InitialTtl::T255),
            icmp_ittl: Some(ittl),
            tcp_ittl: Some(InitialTtl::T64),
            icmp_resp_size: Some(84),
            tcp_resp_size: Some(40),
            udp_resp_size: Some(56),
            tcp_syn_seq_zero: Some(true),
        }
    }

    #[test]
    fn separable_vendors_score_perfectly() {
        let mut labeled = Vec::new();
        for _ in 0..500 {
            labeled.push((vector(InitialTtl::T255, false), Vendor::Cisco));
            labeled.push((vector(InitialTtl::T64, false), Vendor::Juniper));
        }
        let results = precision_recall_80_20(&labeled, 5, 42);
        for vendor in [Vendor::Cisco, Vendor::Juniper] {
            let pr = results[&vendor];
            assert!(pr.precision() > 0.99, "{vendor}: p={}", pr.precision());
            assert!(pr.recall() > 0.99, "{vendor}: r={}", pr.recall());
            assert!(pr.total_test > 50);
        }
    }

    #[test]
    fn colliding_vendors_trade_precision_for_dominance() {
        // One shared vector, 80% Cisco / 20% Brocade: majority mode
        // predicts Cisco, so Brocade recall collapses while Cisco
        // precision dips — the Table 8 pattern for colliding vendors.
        let mut labeled = Vec::new();
        for index in 0..1000 {
            let vendor = if index % 5 == 0 {
                Vendor::Brocade
            } else {
                Vendor::Cisco
            };
            labeled.push((vector(InitialTtl::T255, false), vendor));
        }
        let results = precision_recall_80_20(&labeled, 5, 7);
        assert_eq!(results[&Vendor::Brocade].recall(), 0.0);
        let cisco = results[&Vendor::Cisco];
        assert!(cisco.recall() > 0.99);
        assert!(cisco.precision() < 0.90);
    }

    #[test]
    fn split_is_deterministic() {
        let labeled: Vec<(FeatureVector, Vendor)> = (0..200)
            .map(|_| (vector(InitialTtl::T255, false), Vendor::Cisco))
            .collect();
        let a = precision_recall_80_20(&labeled, 2, 9);
        let b = precision_recall_80_20(&labeled, 2, 9);
        assert_eq!(a[&Vendor::Cisco].tp, b[&Vendor::Cisco].tp);
        assert_eq!(a[&Vendor::Cisco].total_test, b[&Vendor::Cisco].total_test);
        // Roughly 20% lands in the test set.
        let total = a[&Vendor::Cisco].total_test;
        assert!((20..=60).contains(&total), "test size {total}");
    }
}
