//! # lfp-core — Lightweight FingerPrinting
//!
//! The paper's primary contribution: remote router vendor fingerprinting
//! from ten packets per target.
//!
//! * [`probe`] — the 9+1 probe schedule (3×ICMP echo, 2×TCP ACK + 1×TCP
//!   SYN with a non-zero ack field, 3×UDP, 1×SNMPv3 discovery),
//! * [`features`] — the fifteen-feature vector of Table 1,
//! * [`extract`] — IPID classification at the 1,300-step threshold,
//!   cross-protocol counter-sharing detection, iTTL inference,
//! * [`snmp_label`] — engine-ID → vendor ground-truth labelling,
//! * [`signature`] — unique / non-unique / partial signature database and
//!   the conservative classifier,
//! * [`pipeline`] — the Figure 1 end-to-end flow over whole datasets,
//! * [`eval`] — precision/recall (Table 8) and split evaluation,
//! * [`ipid_threshold`] — the §3.6 threshold analysis (Figures 2/3).
//!
//! ```no_run
//! use lfp_core::pipeline::{scan_dataset, classify_scan};
//! use lfp_topo::{Internet, Scale};
//!
//! let internet = Internet::generate(Scale::small());
//! let targets = internet.all_interfaces();
//! let scan = scan_dataset(internet.network(), "demo", &targets, 8);
//! let set = scan.signature_db().finalize(4);
//! let verdicts = classify_scan(&scan, &set);
//! println!("{} unique signatures", set.unique_count());
//! # let _ = verdicts;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod eval;
pub mod extract;
pub mod features;
pub mod ipid_threshold;
pub mod pipeline;
pub mod probe;
pub mod signature;
pub mod snmp_label;

pub use extract::{extract, IPID_STEP_THRESHOLD};
pub use features::{FeatureVector, InitialTtl, IpidClass, ProtocolCoverage};
pub use pipeline::{classify_scan, scan_dataset, union_db, DatasetScan};
pub use probe::{probe_target, TargetObservation};
pub use signature::{Classification, SignatureDb, SignatureSet};
