//! Feature extraction: probe observations → the 15-feature vector.
//!
//! Implements §3.4 (feature groups) and §3.6 (the IPID step threshold of
//! 1,300 separating sequential from random counters, applied to the
//! *maximum* consecutive step — the conservative choice the paper
//! justifies with the 0.019⁸ misclassification bound).

use crate::features::{FeatureVector, InitialTtl, IpidClass};
use crate::probe::{ProtoTag, TargetObservation};

/// The sequential/random decision threshold on IPID steps (§3.6).
pub const IPID_STEP_THRESHOLD: u16 = 1300;

/// Classify an IPID sequence (chronological). Needs at least two values;
/// the paper's schedule provides three.
pub fn classify_ipids(values: &[u16]) -> Option<IpidClass> {
    classify_ipids_with_threshold(values, IPID_STEP_THRESHOLD)
}

/// Classification with an explicit threshold (ablation A1 sweeps it).
pub fn classify_ipids_with_threshold(values: &[u16], threshold: u16) -> Option<IpidClass> {
    if values.len() < 2 {
        return None;
    }
    if values.iter().all(|&v| v == 0) {
        return Some(IpidClass::Zero);
    }
    if values.windows(2).all(|w| w[0] == w[1]) {
        return Some(IpidClass::Static);
    }
    // "Exactly two responses share a value" — checked before the
    // incremental test because a duplicate pair would otherwise pass the
    // step bound with a zero step.
    if values.len() >= 3 {
        let mut sorted = values.to_vec();
        sorted.sort_unstable();
        let equal_pairs = sorted.windows(2).filter(|w| w[0] == w[1]).count();
        if equal_pairs == 1 {
            return Some(IpidClass::Duplicate);
        }
    }
    let max_step = values
        .windows(2)
        .map(|w| w[1].wrapping_sub(w[0]))
        .max()
        .unwrap_or(0);
    if max_step <= threshold {
        Some(IpidClass::Incremental)
    } else {
        Some(IpidClass::Random)
    }
}

/// Wrap-aware monotonicity of a merged timeline: do these protocols draw
/// from one shared counter?
fn timelines_shared(
    observation: &TargetObservation,
    protocols: &[ProtoTag],
    threshold: u16,
) -> bool {
    let merged: Vec<u16> = observation
        .timeline
        .iter()
        .filter(|(tag, _, _)| protocols.contains(tag))
        .map(|&(_, _, ipid)| ipid)
        .collect();
    if merged.len() < protocols.len() * 2 {
        return false;
    }
    merged
        .windows(2)
        .all(|w| w[1].wrapping_sub(w[0]) <= threshold)
}

/// Extract the full or partial feature vector from an observation.
pub fn extract(observation: &TargetObservation) -> FeatureVector {
    extract_with_threshold(observation, IPID_STEP_THRESHOLD)
}

/// Extraction with an explicit IPID threshold (ablation A1).
pub fn extract_with_threshold(observation: &TargetObservation, threshold: u16) -> FeatureVector {
    let mut vector = FeatureVector::default();

    // A protocol group is "observed" with ≥2 responses — enough for a
    // counter classification. (The all-or-nothing response pattern means
    // this is almost always 3 or 0.)
    let icmp_ipids: Vec<u16> = observation.icmp.iter().map(|r| r.ipid).collect();
    let tcp_ipids: Vec<u16> = observation.tcp.iter().map(|r| r.ipid).collect();
    let udp_ipids: Vec<u16> = observation.udp.iter().map(|r| r.ipid).collect();

    if icmp_ipids.len() >= 2 {
        let reply = &observation.icmp[0];
        vector.icmp_ittl = Some(InitialTtl::infer(reply.ttl));
        vector.icmp_resp_size = Some(reply.total_len);
        vector.icmp_ipid_echo = Some(
            !observation.icmp_echo_match.is_empty()
                && observation.icmp_echo_match.iter().all(|&m| m),
        );
        vector.icmp_ipid = classify_ipids_with_threshold(&icmp_ipids, threshold);
    }
    if tcp_ipids.len() >= 2 {
        let reply = &observation.tcp[0];
        vector.tcp_ittl = Some(InitialTtl::infer(reply.ttl));
        vector.tcp_resp_size = Some(reply.total_len);
        vector.tcp_ipid = classify_ipids_with_threshold(&tcp_ipids, threshold);
        vector.tcp_syn_seq_zero = observation.syn_rst_seq.map(|seq| seq == 0);
    }
    if udp_ipids.len() >= 2 {
        let reply = &observation.udp[0];
        vector.udp_ittl = Some(InitialTtl::infer(reply.ttl));
        vector.udp_resp_size = Some(reply.total_len);
        vector.udp_ipid = classify_ipids_with_threshold(&udp_ipids, threshold);
    }

    // Counter sharing is only defined between incremental counters.
    let incremental = |class: Option<IpidClass>| class == Some(IpidClass::Incremental);
    let icmp_inc = incremental(vector.icmp_ipid);
    let tcp_inc = incremental(vector.tcp_ipid);
    let udp_inc = incremental(vector.udp_ipid);

    if vector.tcp_ittl.is_some() && vector.icmp_ittl.is_some() {
        vector.shared_tcp_icmp = Some(
            tcp_inc
                && icmp_inc
                && timelines_shared(observation, &[ProtoTag::Tcp, ProtoTag::Icmp], threshold),
        );
    }
    if vector.udp_ittl.is_some() && vector.icmp_ittl.is_some() {
        vector.shared_udp_icmp = Some(
            udp_inc
                && icmp_inc
                && timelines_shared(observation, &[ProtoTag::Udp, ProtoTag::Icmp], threshold),
        );
    }
    if vector.tcp_ittl.is_some() && vector.udp_ittl.is_some() {
        vector.shared_tcp_udp = Some(
            tcp_inc
                && udp_inc
                && timelines_shared(observation, &[ProtoTag::Tcp, ProtoTag::Udp], threshold),
        );
    }
    if vector.icmp_ittl.is_some() && vector.tcp_ittl.is_some() && vector.udp_ittl.is_some() {
        vector.shared_all = Some(
            icmp_inc
                && tcp_inc
                && udp_inc
                && timelines_shared(
                    observation,
                    &[ProtoTag::Icmp, ProtoTag::Tcp, ProtoTag::Udp],
                    threshold,
                ),
        );
    }

    vector
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::ProbeReply;

    fn reply(at: f64, ipid: u16, ttl: u8, len: u16) -> ProbeReply {
        ProbeReply {
            at,
            ipid,
            ttl,
            total_len: len,
        }
    }

    #[test]
    fn counter_classes() {
        assert_eq!(classify_ipids(&[5, 6, 9]), Some(IpidClass::Incremental));
        assert_eq!(
            classify_ipids(&[65_530, 65_535, 4]),
            Some(IpidClass::Incremental),
            "wrap-around must stay incremental"
        );
        assert_eq!(classify_ipids(&[0, 0, 0]), Some(IpidClass::Zero));
        assert_eq!(classify_ipids(&[777, 777, 777]), Some(IpidClass::Static));
        assert_eq!(classify_ipids(&[100, 100, 101]), Some(IpidClass::Duplicate));
        assert_eq!(
            classify_ipids(&[100, 40_000, 7_000]),
            Some(IpidClass::Random)
        );
        assert_eq!(classify_ipids(&[5]), None);
        assert_eq!(classify_ipids(&[]), None);
    }

    #[test]
    fn threshold_is_the_paper_constant() {
        assert_eq!(IPID_STEP_THRESHOLD, 1300);
        // Exactly at the threshold: still incremental; above: random.
        assert_eq!(
            classify_ipids(&[0, 1300, 2600]),
            Some(IpidClass::Incremental)
        );
        assert_eq!(classify_ipids(&[0, 1301, 2602]), Some(IpidClass::Random));
    }

    #[test]
    fn backwards_step_is_random() {
        // A decreasing pair wraps to a huge forward step.
        assert_eq!(classify_ipids(&[500, 400, 600]), Some(IpidClass::Random));
    }

    fn observation_with_shared_counter() -> TargetObservation {
        let mut observation = TargetObservation::default();
        // One counter advancing across all protocols: 100, 103, 107, ...
        let ipids = [100u16, 103, 107, 112, 118, 125, 133, 142, 152];
        let tags = [
            ProtoTag::Icmp,
            ProtoTag::Tcp,
            ProtoTag::Udp,
            ProtoTag::Icmp,
            ProtoTag::Tcp,
            ProtoTag::Udp,
            ProtoTag::Icmp,
            ProtoTag::Tcp,
            ProtoTag::Udp,
        ];
        for (index, (&ipid, &tag)) in ipids.iter().zip(&tags).enumerate() {
            let at = index as f64 * 0.05;
            observation.timeline.push((tag, at, ipid));
            let r = reply(at, ipid, 60, 84);
            match tag {
                ProtoTag::Icmp => {
                    observation.icmp.push(r);
                    observation.icmp_echo_match.push(false);
                }
                ProtoTag::Tcp => observation.tcp.push(reply(at, ipid, 60, 40)),
                ProtoTag::Udp => observation.udp.push(reply(at, ipid, 60, 68)),
            }
        }
        observation.syn_rst_seq = Some(0xdead);
        observation
    }

    #[test]
    fn shared_counter_detected_across_all_protocols() {
        let observation = observation_with_shared_counter();
        let vector = extract(&observation);
        assert!(vector.is_full());
        assert_eq!(vector.shared_all, Some(true));
        assert_eq!(vector.shared_tcp_icmp, Some(true));
        assert_eq!(vector.shared_udp_icmp, Some(true));
        assert_eq!(vector.shared_tcp_udp, Some(true));
        assert_eq!(vector.icmp_ipid, Some(IpidClass::Incremental));
        assert_eq!(vector.tcp_syn_seq_zero, Some(false));
        assert_eq!(vector.icmp_ittl, Some(InitialTtl::T64));
    }

    #[test]
    fn independent_counters_are_not_shared() {
        let mut observation = observation_with_shared_counter();
        // Shift the TCP ipids far away: still incremental per-protocol,
        // but interleaving breaks.
        for entry in observation.timeline.iter_mut() {
            if entry.0 == ProtoTag::Tcp {
                entry.2 = entry.2.wrapping_add(30_000);
            }
        }
        for r in observation.tcp.iter_mut() {
            r.ipid = r.ipid.wrapping_add(30_000);
        }
        let vector = extract(&observation);
        assert_eq!(vector.tcp_ipid, Some(IpidClass::Incremental));
        assert_eq!(vector.shared_all, Some(false));
        assert_eq!(vector.shared_tcp_icmp, Some(false));
        assert_eq!(vector.shared_tcp_udp, Some(false));
        assert_eq!(vector.shared_udp_icmp, Some(true), "ICMP+UDP untouched");
    }

    #[test]
    fn random_counters_never_count_as_shared() {
        let mut observation = TargetObservation::default();
        let values = [7u16, 52_000, 31_000, 60_111, 222, 45_000];
        for (index, &ipid) in values.iter().enumerate() {
            let tag = if index % 2 == 0 {
                ProtoTag::Icmp
            } else {
                ProtoTag::Udp
            };
            let at = index as f64 * 0.05;
            observation.timeline.push((tag, at, ipid));
            match tag {
                ProtoTag::Icmp => {
                    observation.icmp.push(reply(at, ipid, 250, 84));
                    observation.icmp_echo_match.push(false);
                }
                _ => observation.udp.push(reply(at, ipid, 250, 56)),
            }
        }
        let vector = extract(&observation);
        assert_eq!(vector.icmp_ipid, Some(IpidClass::Random));
        assert_eq!(vector.shared_udp_icmp, Some(false));
        assert_eq!(vector.icmp_ittl, Some(InitialTtl::T255));
        // TCP never answered: partial vector.
        assert!(!vector.is_full());
        assert_eq!(vector.tcp_ittl, None);
        assert_eq!(vector.shared_tcp_udp, None);
    }

    #[test]
    fn echo_reflection_feature() {
        let mut observation = observation_with_shared_counter();
        observation.icmp_echo_match = vec![true, true, true];
        assert_eq!(extract(&observation).icmp_ipid_echo, Some(true));
        observation.icmp_echo_match = vec![true, false, true];
        assert_eq!(extract(&observation).icmp_ipid_echo, Some(false));
    }

    #[test]
    fn single_response_is_not_enough() {
        let mut observation = TargetObservation::default();
        observation.icmp.push(reply(0.0, 5, 60, 84));
        observation.icmp_echo_match.push(false);
        let vector = extract(&observation);
        assert!(vector.is_empty());
    }
}
