//! Signature database and classifier (paper §3.5, §4.2–4.4).
//!
//! Labelled feature vectors accumulate into a [`SignatureDb`]; finalising
//! it with a minimum-occurrence threshold yields a [`SignatureSet`] with
//! unique, non-unique, and partial signatures. Classification is exact
//! full-vector match first, then partial (projected) match — conservative
//! by construction: only unique matches produce a vendor verdict.

use crate::features::{FeatureVector, ProtocolCoverage};
use lfp_stack::vendor::Vendor;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// An interned, support-ordered candidate-vendor list. Non-unique
/// signatures share one allocation per distinct list, so cloning a
/// [`Classification::NonUnique`] verdict is a reference-count bump, not a
/// heap copy — the per-IP classify loop allocates nothing.
pub type VendorList = Arc<[(Vendor, usize)]>;

/// Accumulator: vector → per-vendor occurrence counts.
#[derive(Debug, Clone, Default)]
pub struct SignatureDb {
    counts: HashMap<FeatureVector, BTreeMap<Vendor, usize>>,
}

impl SignatureDb {
    /// Empty database.
    pub fn new() -> Self {
        SignatureDb::default()
    }

    /// Record one labelled observation. Empty vectors are ignored.
    pub fn add(&mut self, vector: FeatureVector, vendor: Vendor) {
        if vector.is_empty() {
            return;
        }
        *self
            .counts
            .entry(vector)
            .or_default()
            .entry(vendor)
            .or_insert(0) += 1;
    }

    /// Merge another database (the cross-dataset union of §4.2; a vector
    /// labelled with different vendors in different datasets naturally
    /// becomes non-unique here).
    pub fn merge(&mut self, other: &SignatureDb) {
        for (vector, vendors) in &other.counts {
            let entry = self.counts.entry(*vector).or_default();
            for (&vendor, &count) in vendors {
                *entry.entry(vendor).or_insert(0) += count;
            }
        }
    }

    /// Total labelled observations.
    pub fn total_labeled(&self) -> usize {
        self.counts.values().flat_map(|v| v.values()).sum()
    }

    /// Iterate over (vector, per-vendor counts).
    pub fn iter(&self) -> impl Iterator<Item = (&FeatureVector, &BTreeMap<Vendor, usize>)> {
        self.counts.iter()
    }

    /// Number of distinct vectors recorded.
    pub fn distinct_vectors(&self) -> usize {
        self.counts.len()
    }

    /// Count (unique, non-unique) *full* signatures at a threshold — the
    /// Figure 7 sensitivity curve.
    pub fn signature_counts_at(&self, min_occurrences: usize) -> (usize, usize) {
        let mut unique = 0;
        let mut non_unique = 0;
        for (vector, vendors) in &self.counts {
            if !vector.is_full() {
                continue;
            }
            let total: usize = vendors.values().sum();
            if total < min_occurrences.max(1) {
                continue;
            }
            if vendors.len() == 1 {
                unique += 1;
            } else {
                non_unique += 1;
            }
        }
        (unique, non_unique)
    }

    /// Finalise into a classifier at the given occurrence threshold.
    ///
    /// Besides the four signature maps, this prebuilds a single
    /// vector → verdict index (with interned candidate lists) so
    /// [`SignatureSet::classify`] is one hash lookup and one cheap clone.
    pub fn finalize(&self, min_occurrences: usize) -> SignatureSet {
        let min_occurrences = min_occurrences.max(1);
        let mut unique = HashMap::new();
        let mut non_unique: HashMap<FeatureVector, VendorList> = HashMap::new();
        // Interner: one shared allocation per distinct candidate list.
        let mut interned: HashMap<Vec<(Vendor, usize)>, VendorList> = HashMap::new();
        let mut intern = |list: Vec<(Vendor, usize)>| -> VendorList {
            interned
                .entry(list)
                .or_insert_with_key(|key| Arc::from(key.as_slice()))
                .clone()
        };
        // Projected (partial) accumulations: from observed partial vectors
        // *and* from projections of accepted full signatures.
        let mut partial_counts: HashMap<FeatureVector, BTreeMap<Vendor, usize>> = HashMap::new();

        for (vector, vendors) in &self.counts {
            let total: usize = vendors.values().sum();
            if total < min_occurrences {
                continue;
            }
            if vector.is_full() {
                if vendors.len() == 1 {
                    unique.insert(*vector, *vendors.keys().next().unwrap());
                } else {
                    non_unique.insert(*vector, intern(sorted_candidates(vendors)));
                }
                // Project onto every partial combination.
                for coverage in ProtocolCoverage::partial_combinations() {
                    let projected = vector.project(coverage);
                    if projected.is_empty() {
                        continue;
                    }
                    let entry = partial_counts.entry(projected).or_default();
                    for (&vendor, &count) in vendors {
                        *entry.entry(vendor).or_insert(0) += count;
                    }
                }
            } else {
                // Directly-observed partial signature.
                let entry = partial_counts.entry(*vector).or_default();
                for (&vendor, &count) in vendors {
                    *entry.entry(vendor).or_insert(0) += count;
                }
            }
        }

        let mut partial_unique = HashMap::new();
        let mut partial_non_unique: HashMap<FeatureVector, VendorList> = HashMap::new();
        for (vector, vendors) in partial_counts {
            if vendors.len() == 1 {
                partial_unique.insert(vector, *vendors.keys().next().unwrap());
            } else {
                partial_non_unique.insert(vector, intern(sorted_candidates(&vendors)));
            }
        }

        // Prebuilt verdict index. Full and partial vectors can never
        // collide as keys (a full vector has every field set, a projected
        // one does not), so one flat map serves both tiers.
        let mut index: HashMap<FeatureVector, Classification> = HashMap::with_capacity(
            unique.len() + non_unique.len() + partial_unique.len() + partial_non_unique.len(),
        );
        for (&vector, &vendor) in &unique {
            index.insert(
                vector,
                Classification::Unique {
                    vendor,
                    partial: false,
                },
            );
        }
        for (&vector, list) in &non_unique {
            index.insert(vector, Classification::NonUnique(Arc::clone(list)));
        }
        for (&vector, &vendor) in &partial_unique {
            index.insert(
                vector,
                Classification::Unique {
                    vendor,
                    partial: true,
                },
            );
        }
        for (&vector, list) in &partial_non_unique {
            index.insert(vector, Classification::NonUnique(Arc::clone(list)));
        }

        SignatureSet {
            unique,
            non_unique,
            partial_unique,
            partial_non_unique,
            index,
            min_occurrences,
        }
    }
}

/// Candidate list ordered by support (descending), then vendor.
fn sorted_candidates(vendors: &BTreeMap<Vendor, usize>) -> Vec<(Vendor, usize)> {
    let mut list: Vec<(Vendor, usize)> = vendors.iter().map(|(&v, &c)| (v, c)).collect();
    list.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    list
}

/// Verdict of the classifier for one observed vector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Classification {
    /// Matched a (full or partial) unique signature.
    Unique {
        /// The inferred vendor.
        vendor: Vendor,
        /// Whether the match used a partial signature.
        partial: bool,
    },
    /// Matched a non-unique signature: candidate vendors by support
    /// (interned — cloning this verdict is allocation-free).
    NonUnique(VendorList),
    /// Responsive but no signature matches.
    Unknown,
    /// Nothing to classify (unresponsive to all LFP probes).
    Unresponsive,
}

impl Classification {
    /// The conservative verdict the paper's analyses use: unique matches
    /// only.
    pub fn unique_vendor(&self) -> Option<Vendor> {
        match self {
            Classification::Unique { vendor, .. } => Some(*vendor),
            _ => None,
        }
    }

    /// Verdict including the dominant vendor of non-unique matches
    /// (Appendix B's relaxed mode).
    pub fn majority_vendor(&self) -> Option<Vendor> {
        match self {
            Classification::Unique { vendor, .. } => Some(*vendor),
            Classification::NonUnique(list) => list.first().map(|&(v, _)| v),
            _ => None,
        }
    }
}

/// The finalised signature sets (Figure 1 ③–④).
#[derive(Debug, Clone)]
pub struct SignatureSet {
    /// Full unique signatures → vendor.
    pub unique: HashMap<FeatureVector, Vendor>,
    /// Full non-unique signatures → vendors with counts (descending).
    pub non_unique: HashMap<FeatureVector, VendorList>,
    /// Partial unique signatures (projections + observed partials).
    pub partial_unique: HashMap<FeatureVector, Vendor>,
    /// Partial non-unique signatures.
    pub partial_non_unique: HashMap<FeatureVector, VendorList>,
    /// Prebuilt vector → verdict index over all four maps (the classify
    /// hot path; candidate lists are interned, lookups allocate nothing).
    index: HashMap<FeatureVector, Classification>,
    /// The occurrence threshold used.
    pub min_occurrences: usize,
}

impl SignatureSet {
    /// Classify an observed vector: one hash lookup against the prebuilt
    /// index (full and partial tiers share it; keys cannot collide).
    pub fn classify(&self, vector: &FeatureVector) -> Classification {
        if vector.is_empty() {
            return Classification::Unresponsive;
        }
        match self.index.get(vector) {
            Some(verdict) => verdict.clone(),
            // A full vector that misses the full table may still match a
            // projection (e.g. a new firmware changed one protocol's
            // behaviour) — stay conservative and do not guess.
            None => Classification::Unknown,
        }
    }

    /// The original tiered lookup, kept as the reference implementation:
    /// full-vector tables first, then the partial tables. Property tests
    /// assert [`SignatureSet::classify`] agrees with this on arbitrary
    /// corpora.
    pub fn classify_linear(&self, vector: &FeatureVector) -> Classification {
        if vector.is_empty() {
            return Classification::Unresponsive;
        }
        if vector.is_full() {
            if let Some(&vendor) = self.unique.get(vector) {
                return Classification::Unique {
                    vendor,
                    partial: false,
                };
            }
            if let Some(list) = self.non_unique.get(vector) {
                return Classification::NonUnique(Arc::clone(list));
            }
            return Classification::Unknown;
        }
        if let Some(&vendor) = self.partial_unique.get(vector) {
            return Classification::Unique {
                vendor,
                partial: true,
            };
        }
        if let Some(list) = self.partial_non_unique.get(vector) {
            return Classification::NonUnique(Arc::clone(list));
        }
        Classification::Unknown
    }

    /// Number of full unique signatures.
    pub fn unique_count(&self) -> usize {
        self.unique.len()
    }

    /// Number of full non-unique signatures.
    pub fn non_unique_count(&self) -> usize {
        self.non_unique.len()
    }

    /// Table 4: per partial protocol combination, (total, unique,
    /// non-unique) signature counts.
    pub fn partial_stats(&self) -> Vec<(ProtocolCoverage, usize, usize, usize)> {
        ProtocolCoverage::partial_combinations()
            .into_iter()
            .map(|coverage| {
                let unique = self
                    .partial_unique
                    .keys()
                    .filter(|v| v.coverage() == coverage)
                    .count();
                let non_unique = self
                    .partial_non_unique
                    .keys()
                    .filter(|v| v.coverage() == coverage)
                    .count();
                (coverage, unique + non_unique, unique, non_unique)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::{InitialTtl, IpidClass};

    fn vector(ittl: InitialTtl, size: u16) -> FeatureVector {
        FeatureVector {
            icmp_ipid_echo: Some(false),
            icmp_ipid: Some(IpidClass::Random),
            tcp_ipid: Some(IpidClass::Random),
            udp_ipid: Some(IpidClass::Random),
            shared_all: Some(false),
            shared_tcp_icmp: Some(false),
            shared_udp_icmp: Some(false),
            shared_tcp_udp: Some(false),
            udp_ittl: Some(InitialTtl::T255),
            icmp_ittl: Some(ittl),
            tcp_ittl: Some(InitialTtl::T64),
            icmp_resp_size: Some(84),
            tcp_resp_size: Some(40),
            udp_resp_size: Some(size),
            tcp_syn_seq_zero: Some(true),
        }
    }

    #[test]
    fn unique_and_non_unique_separation() {
        let mut db = SignatureDb::new();
        for _ in 0..30 {
            db.add(vector(InitialTtl::T255, 56), Vendor::Cisco);
        }
        for _ in 0..20 {
            db.add(vector(InitialTtl::T64, 56), Vendor::Juniper);
        }
        // A collision: both vendors produce the 68-byte variant.
        for _ in 0..15 {
            db.add(vector(InitialTtl::T64, 68), Vendor::Juniper);
        }
        for _ in 0..10 {
            db.add(vector(InitialTtl::T64, 68), Vendor::MikroTik);
        }
        let set = db.finalize(5);
        assert_eq!(set.unique_count(), 2);
        assert_eq!(set.non_unique_count(), 1);

        match set.classify(&vector(InitialTtl::T255, 56)) {
            Classification::Unique { vendor, partial } => {
                assert_eq!(vendor, Vendor::Cisco);
                assert!(!partial);
            }
            other => panic!("wrong: {other:?}"),
        }
        match set.classify(&vector(InitialTtl::T64, 68)) {
            Classification::NonUnique(list) => {
                assert_eq!(list[0].0, Vendor::Juniper, "dominant vendor first");
            }
            other => panic!("wrong: {other:?}"),
        }
    }

    #[test]
    fn occurrence_threshold_filters_rare_signatures() {
        let mut db = SignatureDb::new();
        for _ in 0..100 {
            db.add(vector(InitialTtl::T255, 56), Vendor::Cisco);
        }
        for _ in 0..3 {
            db.add(vector(InitialTtl::T32, 56), Vendor::Ruijie);
        }
        let strict = db.finalize(20);
        assert_eq!(strict.unique_count(), 1);
        assert_eq!(
            strict.classify(&vector(InitialTtl::T32, 56)),
            Classification::Unknown
        );
        let loose = db.finalize(1);
        assert_eq!(loose.unique_count(), 2);
    }

    #[test]
    fn sensitivity_curve_is_monotonic() {
        let mut db = SignatureDb::new();
        for count in [3usize, 8, 25, 40, 100] {
            for index in 0..count {
                let _ = index;
                db.add(vector(InitialTtl::T255, 40 + count as u16), Vendor::Cisco);
            }
        }
        let mut previous = usize::MAX;
        for threshold in [1usize, 5, 10, 30, 50] {
            let (unique, non_unique) = db.signature_counts_at(threshold);
            assert!(unique + non_unique <= previous);
            previous = unique + non_unique;
        }
    }

    #[test]
    fn partial_projection_classifies_partial_responders() {
        let mut db = SignatureDb::new();
        for _ in 0..30 {
            db.add(vector(InitialTtl::T255, 56), Vendor::Cisco);
        }
        for _ in 0..30 {
            db.add(vector(InitialTtl::T64, 56), Vendor::Juniper);
        }
        let set = db.finalize(5);
        // An ICMP+TCP-only responder: projection still separates the two
        // vendors because the ICMP iTTL differs.
        let partial = vector(InitialTtl::T255, 56).project(ProtocolCoverage {
            icmp: true,
            tcp: true,
            udp: false,
        });
        match set.classify(&partial) {
            Classification::Unique { vendor, partial } => {
                assert_eq!(vendor, Vendor::Cisco);
                assert!(partial);
            }
            other => panic!("wrong: {other:?}"),
        }
        // A TCP+UDP-only responder is ambiguous (vectors differ only in
        // ICMP iTTL) → non-unique.
        let ambiguous = vector(InitialTtl::T255, 56).project(ProtocolCoverage {
            icmp: false,
            tcp: true,
            udp: true,
        });
        assert!(matches!(
            set.classify(&ambiguous),
            Classification::NonUnique(_)
        ));
    }

    #[test]
    fn table4_stats_count_by_combination() {
        let mut db = SignatureDb::new();
        for _ in 0..30 {
            db.add(vector(InitialTtl::T255, 56), Vendor::Cisco);
        }
        for _ in 0..30 {
            db.add(vector(InitialTtl::T64, 56), Vendor::Juniper);
        }
        let set = db.finalize(5);
        let stats = set.partial_stats();
        assert_eq!(stats.len(), 6);
        // TCP & UDP row: one ambiguous signature.
        let (coverage, total, unique, non_unique) = stats[0];
        assert_eq!(coverage.label(), "TCP & UDP");
        assert_eq!((total, unique, non_unique), (1, 0, 1));
        // ICMP & TCP row: two unique signatures.
        let (coverage, total, unique, non_unique) = stats[2];
        assert_eq!(coverage.label(), "ICMP & TCP");
        assert_eq!((total, unique, non_unique), (2, 2, 0));
    }

    #[test]
    fn merge_unions_counts_and_detects_cross_dataset_conflicts() {
        let mut db1 = SignatureDb::new();
        let mut db2 = SignatureDb::new();
        for _ in 0..10 {
            db1.add(vector(InitialTtl::T255, 56), Vendor::Cisco);
            db2.add(vector(InitialTtl::T255, 56), Vendor::Huawei);
        }
        let mut merged = SignatureDb::new();
        merged.merge(&db1);
        merged.merge(&db2);
        assert_eq!(merged.total_labeled(), 20);
        let set = merged.finalize(5);
        assert_eq!(set.unique_count(), 0);
        assert_eq!(set.non_unique_count(), 1);
    }

    #[test]
    fn indexed_classify_agrees_with_linear_walk() {
        let mut db = SignatureDb::new();
        for _ in 0..30 {
            db.add(vector(InitialTtl::T255, 56), Vendor::Cisco);
        }
        for _ in 0..20 {
            db.add(vector(InitialTtl::T64, 68), Vendor::Juniper);
        }
        for _ in 0..10 {
            db.add(vector(InitialTtl::T64, 68), Vendor::MikroTik);
        }
        let set = db.finalize(5);
        // Trained vectors, their projections, an unknown vector, and the
        // empty vector all classify identically through both paths.
        let mut probes = vec![
            vector(InitialTtl::T255, 56),
            vector(InitialTtl::T64, 68),
            vector(InitialTtl::T128, 99),
            FeatureVector::default(),
        ];
        for coverage in ProtocolCoverage::partial_combinations() {
            probes.push(vector(InitialTtl::T255, 56).project(coverage));
            probes.push(vector(InitialTtl::T64, 68).project(coverage));
        }
        for probe in &probes {
            assert_eq!(set.classify(probe), set.classify_linear(probe), "{probe:?}");
        }
    }

    #[test]
    fn non_unique_lists_are_interned() {
        let mut db = SignatureDb::new();
        // Two distinct colliding vectors with identical vendor support.
        for _ in 0..12 {
            db.add(vector(InitialTtl::T64, 68), Vendor::Juniper);
            db.add(vector(InitialTtl::T128, 68), Vendor::Juniper);
        }
        for _ in 0..6 {
            db.add(vector(InitialTtl::T64, 68), Vendor::MikroTik);
            db.add(vector(InitialTtl::T128, 68), Vendor::MikroTik);
        }
        let set = db.finalize(5);
        let a = set.non_unique.get(&vector(InitialTtl::T64, 68)).unwrap();
        let b = set.non_unique.get(&vector(InitialTtl::T128, 68)).unwrap();
        assert!(
            std::sync::Arc::ptr_eq(a, b),
            "identical candidate lists must share one allocation"
        );
        // Classifying clones the interned list, not the contents.
        match set.classify(&vector(InitialTtl::T64, 68)) {
            Classification::NonUnique(list) => assert!(std::sync::Arc::ptr_eq(&list, a)),
            other => panic!("wrong: {other:?}"),
        }
    }

    #[test]
    fn classifier_verdict_helpers() {
        let unique = Classification::Unique {
            vendor: Vendor::Cisco,
            partial: false,
        };
        assert_eq!(unique.unique_vendor(), Some(Vendor::Cisco));
        assert_eq!(unique.majority_vendor(), Some(Vendor::Cisco));
        let non_unique =
            Classification::NonUnique(vec![(Vendor::Juniper, 10), (Vendor::Cisco, 2)].into());
        assert_eq!(non_unique.unique_vendor(), None);
        assert_eq!(non_unique.majority_vendor(), Some(Vendor::Juniper));
        assert_eq!(Classification::Unknown.majority_vendor(), None);
    }
}
