//! The LFP feature set (paper Table 1): fifteen network/transport-layer
//! features extracted from nine probe responses.
//!
//! A [`FeatureVector`] with every field present is a *full* vector; one
//! with whole protocol groups missing is *partial* (§3.5). Vectors are
//! hashable values — the signature database keys on them directly — and
//! render as the pipe-separated rows of the paper's Table 6.

use core::fmt;

/// IPID counter behaviour classes (Table 1 / RFC 4413).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum IpidClass {
    /// Monotonically increasing (wrap-aware), steps below the threshold.
    Incremental,
    /// Spread over the full 16-bit range.
    Random,
    /// The same non-zero value in every response.
    Static,
    /// Zero in every response.
    Zero,
    /// Exactly two of the responses share a value.
    Duplicate,
}

impl fmt::Display for IpidClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            IpidClass::Incremental => "i",
            IpidClass::Random => "r",
            IpidClass::Static => "s",
            IpidClass::Zero => "0",
            IpidClass::Duplicate => "d",
        };
        write!(f, "{s}")
    }
}

/// Inferred initial TTL: the smallest common initial value at or above the
/// observed TTL (Table 1 lists the four values seen in practice).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum InitialTtl {
    /// 32.
    T32,
    /// 64.
    T64,
    /// 128.
    T128,
    /// 255.
    T255,
}

impl InitialTtl {
    /// Round an observed TTL up to the inferred initial value.
    pub fn infer(observed: u8) -> InitialTtl {
        match observed {
            0..=32 => InitialTtl::T32,
            33..=64 => InitialTtl::T64,
            65..=128 => InitialTtl::T128,
            _ => InitialTtl::T255,
        }
    }

    /// Numeric value.
    pub fn value(self) -> u8 {
        match self {
            InitialTtl::T32 => 32,
            InitialTtl::T64 => 64,
            InitialTtl::T128 => 128,
            InitialTtl::T255 => 255,
        }
    }
}

impl fmt::Display for InitialTtl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.value())
    }
}

/// The fifteen LFP features. `None` marks a feature whose protocol group
/// produced no responses (partial signatures).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct FeatureVector {
    /// 1. ICMP IPID echo: reply IPID equals the request's.
    pub icmp_ipid_echo: Option<bool>,
    /// 2. ICMP IPID counter class.
    pub icmp_ipid: Option<IpidClass>,
    /// 3. TCP IPID counter class.
    pub tcp_ipid: Option<IpidClass>,
    /// 4. UDP IPID counter class.
    pub udp_ipid: Option<IpidClass>,
    /// 5. TCP+UDP+ICMP shared counter.
    pub shared_all: Option<bool>,
    /// 6. TCP+ICMP shared counter.
    pub shared_tcp_icmp: Option<bool>,
    /// 7. UDP+ICMP shared counter.
    pub shared_udp_icmp: Option<bool>,
    /// 8. TCP+UDP shared counter.
    pub shared_tcp_udp: Option<bool>,
    /// 9. UDP iTTL (of the ICMP error answering the UDP probe).
    pub udp_ittl: Option<InitialTtl>,
    /// 10. ICMP iTTL (of echo replies).
    pub icmp_ittl: Option<InitialTtl>,
    /// 11. TCP iTTL (of RSTs).
    pub tcp_ittl: Option<InitialTtl>,
    /// 12. ICMP echo response size (IP total length).
    pub icmp_resp_size: Option<u16>,
    /// 13. TCP response size.
    pub tcp_resp_size: Option<u16>,
    /// 14. UDP response size.
    pub udp_resp_size: Option<u16>,
    /// 15. TCP RST sequence number for the SYN probe: zero or non-zero.
    pub tcp_syn_seq_zero: Option<bool>,
}

/// Which protocol groups a vector covers, in (ICMP, TCP, UDP) order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProtocolCoverage {
    /// ICMP features present.
    pub icmp: bool,
    /// TCP features present.
    pub tcp: bool,
    /// UDP features present.
    pub udp: bool,
}

impl ProtocolCoverage {
    /// All three protocols.
    pub const FULL: ProtocolCoverage = ProtocolCoverage {
        icmp: true,
        tcp: true,
        udp: true,
    };

    /// Number of covered protocols.
    pub fn count(self) -> usize {
        usize::from(self.icmp) + usize::from(self.tcp) + usize::from(self.udp)
    }

    /// Human-readable label ("ICMP & TCP", ...), matching Table 4 rows.
    pub fn label(self) -> String {
        let mut parts = Vec::new();
        if self.tcp {
            parts.push("TCP");
        }
        if self.udp {
            parts.push("UDP");
        }
        if self.icmp {
            parts.push("ICMP");
        }
        // Table 4 orders combinations as "TCP & UDP", "ICMP & UDP", ...
        match (self.icmp, self.tcp, self.udp) {
            (true, true, true) => "ICMP & TCP & UDP".to_string(),
            (false, true, true) => "TCP & UDP".to_string(),
            (true, false, true) => "ICMP & UDP".to_string(),
            (true, true, false) => "ICMP & TCP".to_string(),
            _ => parts.join(" & "),
        }
    }

    /// The six partial combinations of Table 4 (everything except full
    /// coverage and no coverage).
    pub fn partial_combinations() -> [ProtocolCoverage; 6] {
        [
            ProtocolCoverage {
                icmp: false,
                tcp: true,
                udp: true,
            },
            ProtocolCoverage {
                icmp: true,
                tcp: false,
                udp: true,
            },
            ProtocolCoverage {
                icmp: true,
                tcp: true,
                udp: false,
            },
            ProtocolCoverage {
                icmp: false,
                tcp: false,
                udp: true,
            },
            ProtocolCoverage {
                icmp: true,
                tcp: false,
                udp: false,
            },
            ProtocolCoverage {
                icmp: false,
                tcp: true,
                udp: false,
            },
        ]
    }
}

impl FeatureVector {
    /// Coverage of this vector.
    pub fn coverage(&self) -> ProtocolCoverage {
        ProtocolCoverage {
            icmp: self.icmp_ittl.is_some(),
            tcp: self.tcp_ittl.is_some(),
            udp: self.udp_ittl.is_some(),
        }
    }

    /// Full vectors have every protocol group present.
    pub fn is_full(&self) -> bool {
        self.coverage() == ProtocolCoverage::FULL
    }

    /// Completely unresponsive.
    pub fn is_empty(&self) -> bool {
        self.coverage().count() == 0
    }

    /// Project onto a protocol subset: features involving uncovered
    /// protocols become `None`. Projection is how full signatures match
    /// partial responders.
    pub fn project(&self, coverage: ProtocolCoverage) -> FeatureVector {
        let keep_icmp = coverage.icmp && self.icmp_ittl.is_some();
        let keep_tcp = coverage.tcp && self.tcp_ittl.is_some();
        let keep_udp = coverage.udp && self.udp_ittl.is_some();
        FeatureVector {
            icmp_ipid_echo: if keep_icmp { self.icmp_ipid_echo } else { None },
            icmp_ipid: if keep_icmp { self.icmp_ipid } else { None },
            tcp_ipid: if keep_tcp { self.tcp_ipid } else { None },
            udp_ipid: if keep_udp { self.udp_ipid } else { None },
            shared_all: if keep_icmp && keep_tcp && keep_udp {
                self.shared_all
            } else {
                None
            },
            shared_tcp_icmp: if keep_tcp && keep_icmp {
                self.shared_tcp_icmp
            } else {
                None
            },
            shared_udp_icmp: if keep_udp && keep_icmp {
                self.shared_udp_icmp
            } else {
                None
            },
            shared_tcp_udp: if keep_tcp && keep_udp {
                self.shared_tcp_udp
            } else {
                None
            },
            udp_ittl: if keep_udp { self.udp_ittl } else { None },
            icmp_ittl: if keep_icmp { self.icmp_ittl } else { None },
            tcp_ittl: if keep_tcp { self.tcp_ittl } else { None },
            icmp_resp_size: if keep_icmp { self.icmp_resp_size } else { None },
            tcp_resp_size: if keep_tcp { self.tcp_resp_size } else { None },
            udp_resp_size: if keep_udp { self.udp_resp_size } else { None },
            tcp_syn_seq_zero: if keep_tcp {
                self.tcp_syn_seq_zero
            } else {
                None
            },
        }
    }

    /// Render in the paper's Table 6 column order.
    pub fn table6_row(&self) -> String {
        fn cell<T: fmt::Display>(value: &Option<T>) -> String {
            match value {
                Some(v) => v.to_string(),
                None => "·".to_string(),
            }
        }
        fn bool_cell(value: &Option<bool>) -> String {
            match value {
                Some(true) => "True".to_string(),
                Some(false) => "False".to_string(),
                None => "·".to_string(),
            }
        }
        // Feature 15 prints as zero/non-zero.
        let seq = match self.tcp_syn_seq_zero {
            Some(true) => "0".to_string(),
            Some(false) => "non-zero".to_string(),
            None => "·".to_string(),
        };
        [
            bool_cell(&self.icmp_ipid_echo),
            cell(&self.icmp_ipid),
            cell(&self.tcp_ipid),
            cell(&self.udp_ipid),
            bool_cell(&self.shared_all),
            bool_cell(&self.shared_tcp_icmp),
            bool_cell(&self.shared_udp_icmp),
            bool_cell(&self.shared_tcp_udp),
            cell(&self.udp_ittl),
            cell(&self.icmp_ittl),
            cell(&self.tcp_ittl),
            cell(&self.icmp_resp_size),
            cell(&self.tcp_resp_size),
            cell(&self.udp_resp_size),
            seq,
        ]
        .join(" ")
    }
}

impl fmt::Display for FeatureVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.table6_row())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Table 6 Juniper exemplar.
    pub(crate) fn juniper_anchor() -> FeatureVector {
        FeatureVector {
            icmp_ipid_echo: Some(false),
            icmp_ipid: Some(IpidClass::Random),
            tcp_ipid: Some(IpidClass::Random),
            udp_ipid: Some(IpidClass::Random),
            shared_all: Some(false),
            shared_tcp_icmp: Some(false),
            shared_udp_icmp: Some(false),
            shared_tcp_udp: Some(false),
            udp_ittl: Some(InitialTtl::T255),
            icmp_ittl: Some(InitialTtl::T64),
            tcp_ittl: Some(InitialTtl::T64),
            icmp_resp_size: Some(84),
            tcp_resp_size: Some(40),
            udp_resp_size: Some(56),
            tcp_syn_seq_zero: Some(true),
        }
    }

    #[test]
    fn ittl_inference_rounds_up() {
        assert_eq!(InitialTtl::infer(32), InitialTtl::T32);
        assert_eq!(InitialTtl::infer(33), InitialTtl::T64);
        assert_eq!(InitialTtl::infer(57), InitialTtl::T64);
        assert_eq!(InitialTtl::infer(120), InitialTtl::T128);
        assert_eq!(InitialTtl::infer(129), InitialTtl::T255);
        assert_eq!(InitialTtl::infer(250), InitialTtl::T255);
    }

    #[test]
    fn table6_rendering_matches_paper_layout() {
        let juniper = juniper_anchor();
        assert_eq!(
            juniper.table6_row(),
            "False r r r False False False False 255 64 64 84 40 56 0"
        );
        // Flip the ICMP iTTL to 255: the Cisco row.
        let cisco = FeatureVector {
            icmp_ittl: Some(InitialTtl::T255),
            ..juniper
        };
        assert_eq!(
            cisco.table6_row(),
            "False r r r False False False False 255 255 64 84 40 56 0"
        );
    }

    #[test]
    fn full_and_partial_coverage() {
        let full = juniper_anchor();
        assert!(full.is_full());
        let partial = full.project(ProtocolCoverage {
            icmp: true,
            tcp: false,
            udp: true,
        });
        assert!(!partial.is_full());
        assert_eq!(partial.tcp_ittl, None);
        assert_eq!(partial.tcp_resp_size, None);
        assert_eq!(partial.tcp_syn_seq_zero, None);
        assert_eq!(partial.shared_all, None);
        assert_eq!(partial.shared_tcp_udp, None);
        assert_eq!(partial.shared_udp_icmp, Some(false));
        assert_eq!(partial.coverage().label(), "ICMP & UDP");
    }

    #[test]
    fn projection_is_idempotent() {
        let full = juniper_anchor();
        for coverage in ProtocolCoverage::partial_combinations() {
            let once = full.project(coverage);
            let twice = once.project(coverage);
            assert_eq!(once, twice);
            assert_eq!(once.coverage(), coverage);
        }
    }

    #[test]
    fn empty_vector_is_empty() {
        let empty = FeatureVector::default();
        assert!(empty.is_empty());
        assert!(!empty.is_full());
        assert_eq!(empty.coverage().count(), 0);
    }

    #[test]
    fn partial_combinations_are_the_six_of_table4() {
        let combos = ProtocolCoverage::partial_combinations();
        assert_eq!(combos.len(), 6);
        let labels: Vec<String> = combos.iter().map(|c| c.label()).collect();
        assert_eq!(labels[0], "TCP & UDP");
        assert_eq!(labels[1], "ICMP & UDP");
        assert_eq!(labels[2], "ICMP & TCP");
        assert_eq!(labels[3], "UDP");
        assert_eq!(labels[4], "ICMP");
        assert_eq!(labels[5], "TCP");
    }
}
