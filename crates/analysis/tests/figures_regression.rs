//! Figure 8–14 regression: the corpus-backed generators must reproduce
//! the flat `paths.rs` reference implementation byte for byte.
//!
//! Each `legacy_*` function below is the pre-corpus generator body,
//! expressed directly over [`lfp_analysis::paths`] and the §6.2 US
//! partition. The registry's corpus-backed reports are compared against
//! them with string equality on both the text and the JSON rendering.

use lfp_analysis::experiments::run_by_id;
use lfp_analysis::paths::{
    distinct_vendor_sets, identified_fraction_ecdf, path_length_ecdf, path_metrics,
    top_vendor_combinations, vendors_per_path_ecdf, PathMetrics,
};
use lfp_analysis::stats::{percent, Ecdf};
use lfp_analysis::us_study::partition;
use lfp_analysis::{Report, Series, World};
use lfp_topo::Scale;
use std::sync::OnceLock;

fn world() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| World::build(Scale::tiny()))
}

fn ecdf_series(name: &str, ecdf: &Ecdf, points: usize) -> Series {
    Series {
        name: name.to_string(),
        points: ecdf.series(points),
    }
}

fn fmt_pct(value: f64) -> String {
    format!("{value:.1}%")
}

/// Metrics for the latest snapshot under the LFP map — the flat pass the
/// pre-corpus generators shared.
fn latest_metrics(world: &World) -> (Vec<PathMetrics>, Vec<PathMetrics>, Vec<PathMetrics>) {
    let (snapshot, scan) = world.latest_ripe();
    let lfp = world.lfp_vendor_map(scan);
    let (intra, inter, _) = partition(&world.internet, &snapshot.traces);
    let all = path_metrics(&snapshot.traces, &lfp);
    let intra_metrics = path_metrics(
        &intra.iter().map(|t| (*t).clone()).collect::<Vec<_>>(),
        &lfp,
    );
    let inter_metrics = path_metrics(
        &inter.iter().map(|t| (*t).clone()).collect::<Vec<_>>(),
        &lfp,
    );
    (all, intra_metrics, inter_metrics)
}

fn legacy_fig8(world: &World) -> Report {
    let mut report = Report::new("fig8", "Path length distribution");
    let (snapshot, _) = world.latest_ripe();
    let ecdf = path_length_ecdf(&snapshot.traces);
    report.series.push(ecdf_series("hop count", &ecdf, 32));
    let at_least_3 = 1.0 - ecdf.fraction_at_or_below(2.0);
    let within_15 = ecdf.fraction_at_or_below(15.0);
    report.paper_claim = "95% of paths have ≥3 hops and ≤15 hops".into();
    report.measured_claim = format!(
        "{} of paths ≥3 hops; {} ≤15 hops",
        fmt_pct(at_least_3 * 100.0),
        fmt_pct(within_15 * 100.0)
    );
    report
}

fn legacy_fig9(world: &World) -> Report {
    let mut report = Report::new("fig9", "Identifiable routers per path");
    let (all, intra, inter) = latest_metrics(world);
    for (name, metrics) in [
        ("All traces", &all),
        ("Intra US", &intra),
        ("Inter US", &inter),
    ] {
        let ecdf = identified_fraction_ecdf(metrics, 3, 0);
        report.series.push(ecdf_series(name, &ecdf, 32));
    }
    let eligible: Vec<&PathMetrics> = all.iter().filter(|m| m.router_hops >= 3).collect();
    let at_least_one = eligible.iter().filter(|m| m.identified >= 1).count();
    let at_least_two = eligible.iter().filter(|m| m.identified >= 2).count();
    report.paper_claim =
        "On ≥3-hop paths LFP identifies ≥1 hop on 82% of paths and ≥2 hops on 62%".into();
    report.measured_claim = format!(
        "≥1 hop identified on {}, ≥2 on {} of ≥3-hop paths",
        fmt_pct(percent(at_least_one, eligible.len())),
        fmt_pct(percent(at_least_two, eligible.len()))
    );
    report
}

fn legacy_fig10(world: &World) -> Report {
    let mut report = Report::new("fig10", "LFP vs SNMPv3 on paths");
    let (snapshot, scan) = world.latest_ripe();
    let lfp_map = world.lfp_vendor_map(scan);
    let snmp_map = world.snmp_vendor_map(scan);
    let lfp_metrics = path_metrics(&snapshot.traces, &lfp_map);
    let snmp_metrics = path_metrics(&snapshot.traces, &snmp_map);
    for (name, metrics, min_fp) in [
        ("LFP min 3 hops", &lfp_metrics, 0usize),
        ("LFP min 3 hops, min 2 fingerprints", &lfp_metrics, 2),
        ("SNMPv3 min 3 hops", &snmp_metrics, 0),
        ("SNMPv3 min 3 hops, min 2 fingerprints", &snmp_metrics, 2),
    ] {
        let ecdf = identified_fraction_ecdf(metrics, 3, min_fp);
        report.series.push(ecdf_series(name, &ecdf, 32));
    }
    let eligible = |metrics: &[PathMetrics]| {
        let total = metrics.iter().filter(|m| m.router_hops >= 3).count();
        let hit = metrics
            .iter()
            .filter(|m| m.router_hops >= 3 && m.identified >= 1)
            .count();
        percent(hit, total)
    };
    report.paper_claim =
        "LFP identifies ≥1 vendor on 82% of ≥3-hop paths; SNMPv3 alone manages 35%".into();
    report.measured_claim = format!(
        "≥1 identified hop: LFP {} vs SNMPv3 {}",
        fmt_pct(eligible(&lfp_metrics)),
        fmt_pct(eligible(&snmp_metrics))
    );
    report
}

fn legacy_fig11(world: &World) -> Report {
    let mut report = Report::new("fig11", "Vendor diversity per path");
    let (all, intra, inter) = latest_metrics(world);
    for (name, metrics) in [
        ("All Traces", &all),
        ("Intra US", &intra),
        ("Inter US", &inter),
    ] {
        let ecdf = vendors_per_path_ecdf(metrics);
        report.series.push(Series {
            name: name.into(),
            points: (0..=5)
                .map(|k| (k as f64, ecdf.fraction_at_or_below(k as f64)))
                .collect(),
        });
    }
    let identified: Vec<&PathMetrics> = all.iter().filter(|m| m.identified > 0).collect();
    let single = identified.iter().filter(|m| m.vendors.len() == 1).count();
    let two = identified.iter().filter(|m| m.vendors.len() == 2).count();
    let three = identified.iter().filter(|m| m.vendors.len() == 3).count();
    report.paper_claim = "≈50% single-vendor paths, ≈40% two vendors, 7% three; ~650 distinct vendor sets; intra-US ~70% single-vendor".into();
    report.measured_claim = format!(
        "{} single-vendor, {} two-vendor, {} three-vendor paths; {} distinct vendor sets",
        fmt_pct(percent(single, identified.len())),
        fmt_pct(percent(two, identified.len())),
        fmt_pct(percent(three, identified.len())),
        distinct_vendor_sets(&all)
    );
    report
}

fn legacy_combos_figure(
    id: &str,
    title: &str,
    metrics: &[PathMetrics],
    paper_claim: &str,
) -> Report {
    let mut report = Report::new(id, title);
    report.columns = vec!["Vendor set".into(), "Share".into(), "Paths".into()];
    let combos = top_vendor_combinations(metrics, 10);
    let top_share: f64 = combos.iter().map(|c| c.1).take(9).sum();
    let cisco_juniper_share: f64 = combos
        .iter()
        .filter(|(label, _, _)| {
            label
                .split(", ")
                .all(|vendor| vendor == "Cisco" || vendor == "Juniper")
        })
        .map(|c| c.1)
        .sum();
    if combos.is_empty() {
        report.row([
            "(no identified paths in this slice at this scale)".into(),
            "—".into(),
            "0".into(),
        ]);
    }
    for (label, share, count) in combos {
        report.row([label, fmt_pct(share), count.to_string()]);
    }
    report.paper_claim = paper_claim.to_string();
    report.measured_claim = format!(
        "top-9 sets cover {}; Cisco/Juniper-only sets {}",
        fmt_pct(top_share),
        fmt_pct(cisco_juniper_share)
    );
    report
}

fn legacy_fig12(world: &World) -> Report {
    let (all, _, _) = latest_metrics(world);
    legacy_combos_figure(
        "fig12",
        "Top vendor combinations (all paths)",
        &all,
        "Top 9 sets cover >95% of paths; Cisco/Juniper-only sets ≈60%",
    )
}

fn legacy_fig13(world: &World) -> Report {
    let (_, intra, _) = latest_metrics(world);
    legacy_combos_figure(
        "fig13",
        "Top vendor combinations (intra-US)",
        &intra,
        "Cisco/Juniper combinations make up more than two thirds of intra-US paths",
    )
}

fn legacy_fig14(world: &World) -> Report {
    let (_, _, inter) = latest_metrics(world);
    legacy_combos_figure(
        "fig14",
        "Top vendor combinations (inter-US)",
        &inter,
        "Inter-US paths are slightly more heterogeneous than intra-US, same leaders",
    )
}

type LegacyFigure = (&'static str, fn(&World) -> Report);

#[test]
fn corpus_backed_figures_match_the_flat_reference_byte_for_byte() {
    let world = world();
    let legacy: [LegacyFigure; 7] = [
        ("fig8", legacy_fig8),
        ("fig9", legacy_fig9),
        ("fig10", legacy_fig10),
        ("fig11", legacy_fig11),
        ("fig12", legacy_fig12),
        ("fig13", legacy_fig13),
        ("fig14", legacy_fig14),
    ];
    for (id, reference) in legacy {
        let expected = reference(world);
        let actual = run_by_id(world, id).expect("figure registered");
        assert_eq!(
            expected.render_text(),
            actual.render_text(),
            "{id} text diverged from the flat reference"
        );
        assert_eq!(
            expected.to_json(),
            actual.to_json(),
            "{id} json diverged from the flat reference"
        );
    }
}

#[test]
fn corpus_slices_match_the_partition_totals() {
    // The corpus' US-slice tagging agrees with the reference partition.
    let world = world();
    let corpus = world.path_corpus();
    let (snapshot, _) = world.latest_ripe();
    let (intra, inter, other) = partition(&world.internet, &snapshot.traces);
    let latest = corpus.latest_ripe_source();
    use lfp_analysis::us_study::UsSlice;
    assert_eq!(
        corpus.rows_in(latest, Some(UsSlice::IntraUs)).len(),
        intra.len()
    );
    assert_eq!(
        corpus.rows_in(latest, Some(UsSlice::InterUs)).len(),
        inter.len()
    );
    assert_eq!(
        corpus.rows_in(latest, Some(UsSlice::Other)).len(),
        other.len()
    );
    assert_eq!(corpus.rows_in(latest, None).len(), snapshot.traces.len());
}
