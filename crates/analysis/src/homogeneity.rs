//! Per-AS coverage and vendor homogeneity (paper Appendix A, Figures
//! 19–20, and the network-level claims of §1/§7.5).

use crate::stats::Ecdf;
use lfp_stack::vendor::Vendor;
use lfp_topo::Internet;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::net::Ipv4Addr;

/// Per-AS router identification summary.
#[derive(Debug, Clone, Default)]
pub struct AsSummary {
    /// Routers of this AS present in the studied dataset.
    pub routers: usize,
    /// Routers with a unique LFP vendor verdict (any interface).
    pub identified: usize,
    /// Routers identified via SNMPv3.
    pub snmp_identified: usize,
    /// Distinct vendors among identified routers.
    pub vendors: BTreeSet<Vendor>,
}

impl AsSummary {
    /// Identified percentage.
    pub fn identified_percent(&self) -> f64 {
        if self.routers == 0 {
            0.0
        } else {
            self.identified as f64 * 100.0 / self.routers as f64
        }
    }
}

/// Group a dataset's target IPs by owning AS and summarise identification
/// per AS. Router membership comes from the address registry equivalent
/// (interface → router → AS), vendor verdicts from the supplied maps.
pub fn per_as_summaries(
    internet: &Internet,
    targets: &[Ipv4Addr],
    lfp: &HashMap<Ipv4Addr, Vendor>,
    snmp: &HashMap<Ipv4Addr, Vendor>,
) -> BTreeMap<u32, AsSummary> {
    // Collapse interfaces to routers first.
    struct RouterAgg {
        as_id: u32,
        lfp_vendor: Option<Vendor>,
        snmp_hit: bool,
    }
    let mut routers: BTreeMap<u32, RouterAgg> = BTreeMap::new();
    for &ip in targets {
        let Some(meta) = internet.truth_of(ip) else {
            continue;
        };
        let entry = routers.entry(meta.device.0).or_insert(RouterAgg {
            as_id: meta.as_id,
            lfp_vendor: None,
            snmp_hit: false,
        });
        if entry.lfp_vendor.is_none() {
            entry.lfp_vendor = lfp.get(&ip).copied();
        }
        entry.snmp_hit |= snmp.contains_key(&ip);
    }

    let mut summaries: BTreeMap<u32, AsSummary> = BTreeMap::new();
    for agg in routers.values() {
        let summary = summaries.entry(agg.as_id).or_default();
        summary.routers += 1;
        if let Some(vendor) = agg.lfp_vendor {
            summary.identified += 1;
            summary.vendors.insert(vendor);
        }
        if agg.snmp_hit {
            summary.snmp_identified += 1;
        }
    }
    summaries
}

/// Figure 19: ECDF of identified-router percentage per AS, restricted to
/// ASes with at least `min_routers` routers in the dataset.
pub fn coverage_ecdf(summaries: &BTreeMap<u32, AsSummary>, min_routers: usize) -> Ecdf {
    Ecdf::new(
        summaries
            .values()
            .filter(|s| s.routers >= min_routers.max(1))
            .map(|s| s.identified_percent())
            .collect(),
    )
}

/// Figure 20: ECDF of distinct vendor counts per AS (same restriction).
pub fn vendors_ecdf(summaries: &BTreeMap<u32, AsSummary>, min_routers: usize) -> Ecdf {
    Ecdf::new(
        summaries
            .values()
            .filter(|s| s.routers >= min_routers.max(1))
            .map(|s| s.vendors.len() as f64)
            .collect(),
    )
}

/// Vendor-homogeneous ASes (§6.3's selection rule): at least `min_ips`
/// identified routers and ≥ `dominance` of them from a single vendor.
/// Returns (as_id, dominant vendor, dominant share).
pub fn homogeneous_ases(
    summaries_by_vendor: &BTreeMap<u32, BTreeMap<Vendor, usize>>,
    min_identified: usize,
    dominance: f64,
) -> Vec<(u32, Vendor, f64)> {
    let mut result = Vec::new();
    for (&as_id, vendors) in summaries_by_vendor {
        let total: usize = vendors.values().sum();
        if total < min_identified {
            continue;
        }
        if let Some((&vendor, &count)) = vendors.iter().max_by_key(|(_, &c)| c) {
            let share = count as f64 / total as f64;
            if share >= dominance {
                result.push((as_id, vendor, share));
            }
        }
    }
    result
}

/// Per-AS identified-router counts by vendor (input to
/// [`homogeneous_ases`] and the regional analyses).
pub fn per_as_vendor_counts(
    internet: &Internet,
    targets: &[Ipv4Addr],
    lfp: &HashMap<Ipv4Addr, Vendor>,
) -> BTreeMap<u32, BTreeMap<Vendor, usize>> {
    // Count routers once, not interfaces.
    let mut seen_router: BTreeSet<u32> = BTreeSet::new();
    let mut counts: BTreeMap<u32, BTreeMap<Vendor, usize>> = BTreeMap::new();
    for &ip in targets {
        let Some(meta) = internet.truth_of(ip) else {
            continue;
        };
        let Some(&vendor) = lfp.get(&ip) else {
            continue;
        };
        if !seen_router.insert(meta.device.0) {
            continue;
        }
        *counts
            .entry(meta.as_id)
            .or_default()
            .entry(vendor)
            .or_insert(0) += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfp_topo::Scale;

    #[test]
    fn summaries_group_by_as_and_router() {
        let internet = Internet::generate(Scale::tiny());
        let targets = internet.all_interfaces();
        // Pretend LFP identified every Cisco interface.
        let mut lfp = HashMap::new();
        for router in internet.routers() {
            if router.vendor == Vendor::Cisco {
                for &ip in &router.interfaces {
                    lfp.insert(ip, Vendor::Cisco);
                }
            }
        }
        let snmp = HashMap::new();
        let summaries = per_as_summaries(&internet, &targets, &lfp, &snmp);
        let total_routers: usize = summaries.values().map(|s| s.routers).sum();
        assert_eq!(total_routers, internet.routers().len());
        for summary in summaries.values() {
            assert!(summary.identified <= summary.routers);
            if summary.identified > 0 {
                assert_eq!(summary.vendors.iter().next(), Some(&Vendor::Cisco));
            }
        }
    }

    #[test]
    fn coverage_ecdf_respects_min_routers() {
        let internet = Internet::generate(Scale::tiny());
        let targets = internet.all_interfaces();
        let lfp = HashMap::new();
        let snmp = HashMap::new();
        let summaries = per_as_summaries(&internet, &targets, &lfp, &snmp);
        let all = coverage_ecdf(&summaries, 1);
        let big = coverage_ecdf(&summaries, 10);
        assert!(big.len() <= all.len());
    }

    #[test]
    fn homogeneous_selection_applies_thresholds() {
        let mut counts: BTreeMap<u32, BTreeMap<Vendor, usize>> = BTreeMap::new();
        counts.entry(1).or_default().insert(Vendor::Huawei, 90);
        counts.entry(1).or_default().insert(Vendor::Cisco, 10);
        counts.entry(2).or_default().insert(Vendor::Cisco, 5);
        counts.entry(3).or_default().insert(Vendor::Cisco, 50);
        counts.entry(3).or_default().insert(Vendor::Juniper, 50);
        let selected = homogeneous_ases(&counts, 20, 0.85);
        assert_eq!(selected.len(), 1);
        assert_eq!(selected[0].0, 1);
        assert_eq!(selected[0].1, Vendor::Huawei);
        assert!((selected[0].2 - 0.9).abs() < 1e-9);
    }
}
