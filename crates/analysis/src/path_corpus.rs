//! The path corpus: a build-once, query-many columnar store over every
//! trace a measured [`World`] holds (paper §6, Figures 8–14, and the
//! ordered-path analyses beyond them).
//!
//! ## Why a corpus
//!
//! The flat functions in [`crate::paths`] re-walk and re-classify every
//! trace once per figure. That is seven passes over the same snapshot for
//! Figures 8–14 alone, and it only models *unordered* vendor sets — the
//! sequence a packet actually traverses (who hands off to whom, how long
//! a single vendor keeps custody, how diversity differs between the edge
//! and the transit core) is invisible to it. The corpus pays the
//! classification cost exactly once, interns each trace's classified hop
//! sequence into a compact vendor-run encoding, and indexes the result by
//! source AS, destination AS, path length, vendor set and vendor
//! sequence, so every figure — and every new ordered analysis — is a
//! cheap scan over small integer columns.
//!
//! ## Construction and determinism
//!
//! Building ingests every RIPE snapshot plus ITDK-derivable paths
//! ([`lfp_topo::datasets::derive_itdk_traces`]: ground-truth routed paths
//! toward the ITDK router population). Per-trace classification fans out
//! through [`lfp_net::scanner::scan`] and inherits its determinism
//! contract — results return in submission order regardless of shard
//! count — so the serial interning fold that follows sees an identical
//! stream whether the corpus was built on one shard or sixteen
//! (`tests/determinism.rs` asserts the built corpora compare equal).
//!
//! Figure 8–14 queries are regression-tested byte-for-byte against the
//! flat reference implementation (`tests/figures_regression.rs`).

use crate::paths::hop_vendors;
use crate::stats::Ecdf;
use crate::us_study::{slice_of, UsSlice};
use crate::world::World;
use lfp_net::link::splitmix64;
use lfp_net::scanner::{scan, ScanConfig};
use lfp_stack::vendor::Vendor;
use lfp_topo::datasets::{derive_itdk_traces, TraceRecord};
use lfp_topo::Internet;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::net::Ipv4Addr;
use std::num::NonZeroUsize;

/// Hop code for a responsive router hop without a unique LFP verdict.
pub const UNKNOWN_HOP: u8 = u8::MAX;

/// Compact code of a vendor (its index in [`Vendor::ALL`]).
pub fn vendor_code(vendor: Vendor) -> u8 {
    Vendor::ALL
        .iter()
        .position(|&v| v == vendor)
        .expect("every vendor is in Vendor::ALL") as u8
}

/// Vendor behind a hop code ([`UNKNOWN_HOP`] and out-of-range are `None`).
pub fn code_vendor(code: u8) -> Option<Vendor> {
    Vendor::ALL.get(code as usize).copied()
}

/// Which identification method a per-path query consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LabelSource {
    /// Unique LFP classifications (the paper's method).
    Lfp,
    /// SNMPv3 engine-ID labels (the baseline).
    Snmp,
}

/// Summary of edge-vs-transit vendor diversity over a row selection
/// (paths are segmented by the AS owning each hop; the first and last AS
/// segments are the edge, everything between them the transit core).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SegmentSummary {
    /// Paths considered (at least one identified hop).
    pub paths: usize,
    /// Paths that actually have a transit portion (≥ 3 AS segments).
    pub paths_with_core: usize,
    /// Mean distinct identified vendors in the edge segments.
    pub edge_mean: f64,
    /// Mean distinct identified vendors in the core (over paths that have
    /// one).
    pub core_mean: f64,
    /// Paths whose edge segments mix ≥ 2 vendors.
    pub edge_multi: usize,
    /// Paths whose core mixes ≥ 2 vendors.
    pub core_multi: usize,
}

/// One trace queued for the parallel classification fan-out.
struct TraceItem<'a> {
    index: usize,
    source: u16,
    trace: &'a TraceRecord,
    lfp: &'a HashMap<Ipv4Addr, Vendor>,
    snmp: &'a HashMap<Ipv4Addr, Vendor>,
}

/// Per-trace worker output: everything the serial interning fold needs.
struct EncodedPath {
    source: u16,
    src_as: u32,
    dst_as: u32,
    effective_len: u16,
    snmp_identified: u16,
    slice: UsSlice,
    codes: Vec<u8>,
    edge_vendors: u8,
    core_vendors: u8,
    as_segments: u16,
}

/// The columnar path store. All per-path attributes are parallel columns
/// indexed by row id; hop sequences live run-length encoded in a shared
/// arena behind interned sequence ids.
#[derive(Debug, Clone, PartialEq)]
pub struct PathCorpus {
    /// Dataset names, index-aligned with the `source` column's values.
    sources: Vec<String>,
    /// How many leading sources are RIPE snapshots (the rest are derived).
    ripe_source_count: usize,
    /// Source id of the most recent RIPE-style snapshot. Starts at
    /// `ripe_source_count - 1`; epoch ingestion moves it to the newest
    /// appended snapshot source.
    latest_ripe: usize,

    // -- columns (one entry per path) -------------------------------
    source: Vec<u16>,
    src_as: Vec<u32>,
    dst_as: Vec<u32>,
    effective_len: Vec<u16>,
    router_hops: Vec<u16>,
    identified: Vec<u16>,
    snmp_identified: Vec<u16>,
    slice: Vec<UsSlice>,
    set_id: Vec<u32>,
    seq_id: Vec<u32>,
    edge_vendors: Vec<u8>,
    core_vendors: Vec<u8>,
    as_segments: Vec<u16>,

    // -- interning arenas -------------------------------------------
    /// Run-length encoded hop codes, shared by all sequences.
    runs: Vec<(u8, u16)>,
    /// (offset, len) into `runs` per sequence id.
    seq_spans: Vec<(u32, u32)>,
    /// Distinct identified-vendor sets (sorted), per set id.
    sets: Vec<Vec<Vendor>>,
    /// Pre-rendered ", "-joined labels, per set id.
    set_labels: Vec<String>,

    // -- indexes ----------------------------------------------------
    by_source: Vec<Vec<u32>>,
    by_src_as: HashMap<u32, Vec<u32>>,
    by_dst_as: HashMap<u32, Vec<u32>>,
    by_length: HashMap<u16, Vec<u32>>,
    by_set: Vec<Vec<u32>>,
    by_seq: Vec<Vec<u32>>,
}

impl PathCorpus {
    /// Build the corpus for a world with the default shard budget (one
    /// per available core, like [`ScanConfig::default`]).
    pub fn build(world: &World) -> PathCorpus {
        Self::build_with_shards(world, ScanConfig::default().shards)
    }

    /// Build with an explicit shard count. Shard count never changes the
    /// result (the scanner's determinism contract), only the wall-clock.
    pub fn build_with_shards(world: &World, shards: NonZeroUsize) -> PathCorpus {
        let internet = &world.internet;
        let derived = derive_itdk_traces(internet, &world.itdk, internet.scale.dests_per_vantage);

        // Per-source vendor maps: each snapshot classifies through its own
        // scan; the derived ITDK paths through the ITDK scan. The Arcs are
        // held here so the fan-out below can borrow plain references.
        let lfp_maps: Vec<_> = world
            .all_scans()
            .map(|scan| world.lfp_vendor_map(scan))
            .collect();
        let snmp_maps: Vec<_> = world
            .all_scans()
            .map(|scan| world.snmp_vendor_map(scan))
            .collect();

        let ripe_source_count = world.ripe.len();
        let mut sources: Vec<String> = world.ripe.iter().map(|s| s.name.clone()).collect();
        sources.push("ITDK-derived".to_string());

        let mut items: Vec<TraceItem> = Vec::new();
        for (source, snapshot) in world.ripe.iter().enumerate() {
            for trace in &snapshot.traces {
                items.push(TraceItem {
                    index: items.len(),
                    source: source as u16,
                    trace,
                    lfp: lfp_maps[source].as_ref(),
                    snmp: snmp_maps[source].as_ref(),
                });
            }
        }
        for trace in &derived {
            items.push(TraceItem {
                index: items.len(),
                source: ripe_source_count as u16,
                trace,
                lfp: lfp_maps[ripe_source_count].as_ref(),
                snmp: snmp_maps[ripe_source_count].as_ref(),
            });
        }

        // Phase 1 — parallel classification. Classification is pure, so
        // any key partitioning is valid; hashing the submission index
        // spreads work evenly. Results come back in submission order.
        let config = ScanConfig {
            shards,
            pacing: 0.0,
        };
        let encoded = scan(
            &items,
            config,
            |item| splitmix64(item.index as u64 ^ 0x9e37_79b9_7f4a_7c15),
            |item, _ctx| encode_path(internet, item),
        );

        // Phase 2 — serial interning fold over the ordered stream.
        let mut corpus = PathCorpus {
            by_source: sources.iter().map(|_| Vec::new()).collect(),
            sources,
            ripe_source_count,
            latest_ripe: ripe_source_count - 1,
            source: Vec::with_capacity(encoded.len()),
            src_as: Vec::with_capacity(encoded.len()),
            dst_as: Vec::with_capacity(encoded.len()),
            effective_len: Vec::with_capacity(encoded.len()),
            router_hops: Vec::with_capacity(encoded.len()),
            identified: Vec::with_capacity(encoded.len()),
            snmp_identified: Vec::with_capacity(encoded.len()),
            slice: Vec::with_capacity(encoded.len()),
            set_id: Vec::with_capacity(encoded.len()),
            seq_id: Vec::with_capacity(encoded.len()),
            edge_vendors: Vec::with_capacity(encoded.len()),
            core_vendors: Vec::with_capacity(encoded.len()),
            as_segments: Vec::with_capacity(encoded.len()),
            runs: Vec::new(),
            seq_spans: Vec::new(),
            sets: Vec::new(),
            set_labels: Vec::new(),
            by_src_as: HashMap::new(),
            by_dst_as: HashMap::new(),
            by_length: HashMap::new(),
            by_set: Vec::new(),
            by_seq: Vec::new(),
        };
        let mut seq_intern: HashMap<Vec<(u8, u16)>, u32> = HashMap::new();
        let mut set_intern: HashMap<Vec<Vendor>, u32> = HashMap::new();
        for path in encoded {
            corpus.intern(path, &mut seq_intern, &mut set_intern);
        }
        corpus
    }

    fn intern(
        &mut self,
        path: EncodedPath,
        seq_intern: &mut HashMap<Vec<(u8, u16)>, u32>,
        set_intern: &mut HashMap<Vec<Vendor>, u32>,
    ) {
        let row = self.source.len() as u32;

        let mut runs: Vec<(u8, u16)> = Vec::new();
        for &code in &path.codes {
            match runs.last_mut() {
                Some((last, count)) if *last == code && *count < u16::MAX => *count += 1,
                _ => runs.push((code, 1)),
            }
        }
        let seq_id = *seq_intern.entry(runs.clone()).or_insert_with(|| {
            let id = self.seq_spans.len() as u32;
            let offset = self.runs.len() as u32;
            self.runs.extend(runs.iter().copied());
            self.seq_spans.push((offset, runs.len() as u32));
            self.by_seq.push(Vec::new());
            id
        });

        let set: Vec<Vendor> = path
            .codes
            .iter()
            .filter(|&&code| code != UNKNOWN_HOP)
            .filter_map(|&code| code_vendor(code))
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        let set_id = *set_intern.entry(set.clone()).or_insert_with(|| {
            let id = self.sets.len() as u32;
            let label = set
                .iter()
                .map(|vendor| vendor.name().to_string())
                .collect::<Vec<_>>()
                .join(", ");
            self.sets.push(set.clone());
            self.set_labels.push(label);
            self.by_set.push(Vec::new());
            id
        });

        let identified = path.codes.iter().filter(|&&c| c != UNKNOWN_HOP).count() as u16;
        let router_hops = path.codes.len() as u16;

        self.source.push(path.source);
        self.src_as.push(path.src_as);
        self.dst_as.push(path.dst_as);
        self.effective_len.push(path.effective_len);
        self.router_hops.push(router_hops);
        self.identified.push(identified);
        self.snmp_identified.push(path.snmp_identified);
        self.slice.push(path.slice);
        self.set_id.push(set_id);
        self.seq_id.push(seq_id);
        self.edge_vendors.push(path.edge_vendors);
        self.core_vendors.push(path.core_vendors);
        self.as_segments.push(path.as_segments);

        self.by_source[path.source as usize].push(row);
        self.by_src_as.entry(path.src_as).or_default().push(row);
        self.by_dst_as.entry(path.dst_as).or_default().push(row);
        self.by_length.entry(router_hops).or_default().push(row);
        self.by_set[set_id as usize].push(row);
        self.by_seq[seq_id as usize].push(row);
    }

    // -- shape ------------------------------------------------------

    /// Number of paths stored.
    pub fn len(&self) -> usize {
        self.source.len()
    }

    /// True when no paths were ingested.
    pub fn is_empty(&self) -> bool {
        self.source.is_empty()
    }

    /// Dataset names, index-aligned with source ids.
    pub fn sources(&self) -> &[String] {
        &self.sources
    }

    /// Number of distinct interned hop sequences.
    pub fn distinct_sequences(&self) -> usize {
        self.seq_spans.len()
    }

    /// Source id of the most recent RIPE snapshot (the paper's path
    /// analyses all read this source). Epoch ingestion advances it to the
    /// newest appended snapshot.
    pub fn latest_ripe_source(&self) -> usize {
        self.latest_ripe
    }

    /// Source id of the derived ITDK path set.
    pub fn derived_source(&self) -> usize {
        self.ripe_source_count
    }

    // -- row selection ----------------------------------------------

    /// Rows of one source, in ingestion (trace) order.
    pub fn rows_of_source(&self, source: usize) -> &[u32] {
        self.by_source
            .get(source)
            .map(|rows| rows.as_slice())
            .unwrap_or(&[])
    }

    /// Every row, in ingestion order.
    pub fn all_rows(&self) -> Vec<u32> {
        (0..self.len() as u32).collect()
    }

    /// Rows of one source, optionally restricted to a US slice.
    pub fn rows_in(&self, source: usize, slice: Option<UsSlice>) -> Vec<u32> {
        self.rows_of_source(source)
            .iter()
            .copied()
            .filter(|&row| slice.is_none_or(|wanted| self.slice[row as usize] == wanted))
            .collect()
    }

    /// Rows whose vantage sits in the given AS.
    pub fn rows_from_as(&self, as_id: u32) -> &[u32] {
        self.by_src_as
            .get(&as_id)
            .map(|rows| rows.as_slice())
            .unwrap_or(&[])
    }

    /// Rows whose destination sits in the given AS.
    pub fn rows_to_as(&self, as_id: u32) -> &[u32] {
        self.by_dst_as
            .get(&as_id)
            .map(|rows| rows.as_slice())
            .unwrap_or(&[])
    }

    /// Rows with exactly `hops` router hops.
    pub fn rows_with_length(&self, hops: u16) -> &[u32] {
        self.by_length
            .get(&hops)
            .map(|rows| rows.as_slice())
            .unwrap_or(&[])
    }

    /// Rows sharing one interned hop sequence.
    pub fn rows_with_sequence(&self, seq: u32) -> &[u32] {
        self.by_seq
            .get(seq as usize)
            .map(|rows| rows.as_slice())
            .unwrap_or(&[])
    }

    /// Rows whose vantage sits in `src_as` **and** whose destination sits
    /// in `dst_as` — the AS-pair selection every path-diversity query
    /// starts from. Computed as a sorted intersection of the two
    /// per-endpoint indexes (both are built in row order, hence sorted),
    /// so the cost is linear in the smaller index, not in the corpus.
    pub fn rows_between(&self, src_as: u32, dst_as: u32) -> Vec<u32> {
        intersect_sorted(self.rows_from_as(src_as), self.rows_to_as(dst_as))
    }

    /// Source id of a dataset by name (e.g. `"RIPE-2"`, `"ITDK-derived"`).
    pub fn source_id(&self, name: &str) -> Option<usize> {
        self.sources.iter().position(|source| source == name)
    }

    /// Every source AS with at least one row, ascending (planner and
    /// load-generator catalogs).
    pub fn src_as_ids(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = self.by_src_as.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Every destination AS with at least one row, ascending.
    pub fn dst_as_ids(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = self.by_dst_as.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    // -- per-row accessors ------------------------------------------

    /// Source (dataset) id of a row.
    pub fn source_of(&self, row: u32) -> u16 {
        self.source[row as usize]
    }

    /// Router-hop count of a row (the length the `by_length` index keys).
    pub fn hops_of(&self, row: u32) -> u16 {
        self.router_hops[row as usize]
    }

    /// US slice of a row's trace endpoints.
    pub fn us_slice_of(&self, row: u32) -> UsSlice {
        self.slice[row as usize]
    }

    /// The run-length encoded hop codes of a row's sequence.
    pub fn runs_of(&self, row: u32) -> &[(u8, u16)] {
        let (offset, len) = self.seq_spans[self.seq_id[row as usize] as usize];
        &self.runs[offset as usize..(offset + len) as usize]
    }

    /// The distinct identified vendors of a row (sorted).
    pub fn vendor_set(&self, row: u32) -> &[Vendor] {
        &self.sets[self.set_id[row as usize] as usize]
    }

    fn identified_by(&self, row: u32, method: LabelSource) -> u16 {
        match method {
            LabelSource::Lfp => self.identified[row as usize],
            LabelSource::Snmp => self.snmp_identified[row as usize],
        }
    }

    // -- figure queries (byte-identical to `crate::paths`) ----------

    /// Figure 8: ECDF of effective path lengths over the selection.
    pub fn path_length_ecdf(&self, rows: &[u32]) -> Ecdf {
        Ecdf::new(
            rows.iter()
                .map(|&row| self.effective_len[row as usize] as f64)
                .collect(),
        )
    }

    /// Figures 9/10: ECDF of the identified-hop percentage over rows with
    /// at least `min_hops` router hops and `min_identified` fingerprints,
    /// under either identification method.
    pub fn identified_fraction_ecdf(
        &self,
        rows: &[u32],
        min_hops: usize,
        min_identified: usize,
        method: LabelSource,
    ) -> Ecdf {
        Ecdf::new(
            rows.iter()
                .filter_map(|&row| {
                    let hops = self.router_hops[row as usize] as usize;
                    let identified = self.identified_by(row, method) as usize;
                    if hops >= min_hops && identified >= min_identified && hops > 0 {
                        Some(identified as f64 * 100.0 / hops as f64)
                    } else {
                        None
                    }
                })
                .collect(),
        )
    }

    /// Count of rows with ≥ `min_hops` router hops and ≥ `min_identified`
    /// identified hops under the method.
    pub fn count_identified_at_least(
        &self,
        rows: &[u32],
        min_hops: usize,
        min_identified: usize,
        method: LabelSource,
    ) -> usize {
        rows.iter()
            .filter(|&&row| {
                self.router_hops[row as usize] as usize >= min_hops
                    && self.identified_by(row, method) as usize >= min_identified
            })
            .count()
    }

    /// Rows with at least one LFP-identified hop.
    pub fn identified_paths(&self, rows: &[u32]) -> usize {
        rows.iter()
            .filter(|&&row| self.identified[row as usize] > 0)
            .count()
    }

    /// Rows whose identified-vendor set has exactly `size` members
    /// (identified paths only).
    pub fn count_set_size(&self, rows: &[u32], size: usize) -> usize {
        rows.iter()
            .filter(|&&row| self.identified[row as usize] > 0 && self.vendor_set(row).len() == size)
            .count()
    }

    /// Figure 11: ECDF of distinct vendors per path (paths with at least
    /// one identified hop).
    pub fn vendors_per_path_ecdf(&self, rows: &[u32]) -> Ecdf {
        Ecdf::new(
            rows.iter()
                .filter(|&&row| self.identified[row as usize] > 0)
                .map(|&row| self.vendor_set(row).len() as f64)
                .collect(),
        )
    }

    /// Figures 12–14: ranked vendor combinations (unordered sets) with
    /// their share of identified paths.
    pub fn top_vendor_combinations(&self, rows: &[u32], top: usize) -> Vec<(String, f64, usize)> {
        let mut counts: HashMap<u32, usize> = HashMap::new();
        let mut total = 0usize;
        for &row in rows {
            let set_id = self.set_id[row as usize];
            if self.sets[set_id as usize].is_empty() {
                continue;
            }
            total += 1;
            *counts.entry(set_id).or_default() += 1;
        }
        let mut ranked: Vec<(String, usize)> = counts
            .into_iter()
            .map(|(set_id, count)| (self.set_labels[set_id as usize].clone(), count))
            .collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked
            .into_iter()
            .take(top)
            .map(|(label, count)| (label, count as f64 * 100.0 / total.max(1) as f64, count))
            .collect()
    }

    /// Count of distinct non-empty vendor sets over the selection.
    pub fn distinct_vendor_sets(&self, rows: &[u32]) -> usize {
        rows.iter()
            .map(|&row| self.set_id[row as usize])
            .filter(|&set_id| !self.sets[set_id as usize].is_empty())
            .collect::<BTreeSet<_>>()
            .len()
    }

    // -- ordered analyses (beyond the flat implementation) ----------

    /// Vendor transition matrix: for every adjacent pair in each path's
    /// identified-hop subsequence, count the hand-off `from → to`.
    /// Consecutive same-vendor routers count as self-transitions, so the
    /// diagonal measures custody kept and the off-diagonal custody
    /// changed.
    pub fn transition_matrix(&self, rows: &[u32]) -> BTreeMap<(Vendor, Vendor), usize> {
        let mut matrix: BTreeMap<(Vendor, Vendor), usize> = BTreeMap::new();
        for &row in rows {
            let mut previous: Option<Vendor> = None;
            for &(code, len) in self.runs_of(row) {
                let Some(vendor) = code_vendor(code) else {
                    continue;
                };
                if let Some(from) = previous {
                    *matrix.entry((from, vendor)).or_default() += 1;
                }
                if len > 1 {
                    *matrix.entry((vendor, vendor)).or_default() += len as usize - 1;
                }
                previous = Some(vendor);
            }
        }
        matrix
    }

    /// ECDF of the longest same-vendor run per path (strict hop
    /// adjacency: an unidentified hop breaks the run). Paths without an
    /// identified hop are excluded.
    pub fn longest_run_ecdf(&self, rows: &[u32]) -> Ecdf {
        Ecdf::new(
            rows.iter()
                .filter_map(|&row| {
                    self.runs_of(row)
                        .iter()
                        .filter(|&&(code, _)| code != UNKNOWN_HOP)
                        .map(|&(_, len)| len)
                        .max()
                        .map(f64::from)
                })
                .collect(),
        )
    }

    /// Edge-vs-transit vendor diversity over the selection (identified
    /// paths only; see [`SegmentSummary`]).
    pub fn segment_summary(&self, rows: &[u32]) -> SegmentSummary {
        let mut summary = SegmentSummary::default();
        let mut edge_total = 0usize;
        let mut core_total = 0usize;
        for &row in rows {
            if self.identified[row as usize] == 0 {
                continue;
            }
            summary.paths += 1;
            let edge = self.edge_vendors[row as usize] as usize;
            edge_total += edge;
            if edge >= 2 {
                summary.edge_multi += 1;
            }
            if self.as_segments[row as usize] >= 3 {
                summary.paths_with_core += 1;
                let core = self.core_vendors[row as usize] as usize;
                core_total += core;
                if core >= 2 {
                    summary.core_multi += 1;
                }
            }
        }
        if summary.paths > 0 {
            summary.edge_mean = edge_total as f64 / summary.paths as f64;
        }
        if summary.paths_with_core > 0 {
            summary.core_mean = core_total as f64 / summary.paths_with_core as f64;
        }
        summary
    }

    // -- serialization and incremental ingestion --------------------

    /// Dump everything a store needs to reconstruct this corpus exactly:
    /// the column vectors and interning arenas, with enums lowered to
    /// stable one-byte codes. Indexes, derived columns (`router_hops`,
    /// `identified`) and rendered labels are *not* dumped — they are pure
    /// functions of the rest and [`PathCorpus::from_parts`] rebuilds them.
    pub fn to_parts(&self) -> CorpusParts {
        CorpusParts {
            sources: self.sources.clone(),
            ripe_source_count: self.ripe_source_count as u32,
            latest_ripe: self.latest_ripe as u32,
            source: self.source.clone(),
            src_as: self.src_as.clone(),
            dst_as: self.dst_as.clone(),
            effective_len: self.effective_len.clone(),
            snmp_identified: self.snmp_identified.clone(),
            slice: self.slice.iter().map(|slice| slice.code()).collect(),
            set_id: self.set_id.clone(),
            seq_id: self.seq_id.clone(),
            edge_vendors: self.edge_vendors.clone(),
            core_vendors: self.core_vendors.clone(),
            as_segments: self.as_segments.clone(),
            runs: self.runs.clone(),
            seq_spans: self.seq_spans.clone(),
            sets: self
                .sets
                .iter()
                .map(|set| set.iter().map(|&vendor| vendor_code(vendor)).collect())
                .collect(),
        }
    }

    /// Reconstruct a corpus from dumped parts, validating every id,
    /// code and span before touching an index (a corrupted store must
    /// produce an error, never a panic). Byte-identical to the corpus
    /// the parts were dumped from (`PartialEq`-tested).
    pub fn from_parts(parts: CorpusParts) -> Result<PathCorpus, String> {
        let rows = parts.source.len();
        let columns = [
            ("src_as", parts.src_as.len()),
            ("dst_as", parts.dst_as.len()),
            ("effective_len", parts.effective_len.len()),
            ("snmp_identified", parts.snmp_identified.len()),
            ("slice", parts.slice.len()),
            ("set_id", parts.set_id.len()),
            ("seq_id", parts.seq_id.len()),
            ("edge_vendors", parts.edge_vendors.len()),
            ("core_vendors", parts.core_vendors.len()),
            ("as_segments", parts.as_segments.len()),
        ];
        for (name, len) in columns {
            if len != rows {
                return Err(format!("column {name} has {len} rows, expected {rows}"));
            }
        }
        let source_count = parts.sources.len();
        let ripe_source_count = parts.ripe_source_count as usize;
        let latest_ripe = parts.latest_ripe as usize;
        if source_count == 0 {
            return Err("corpus has no sources".to_string());
        }
        for (index, name) in parts.sources.iter().enumerate() {
            if parts.sources[..index].iter().any(|prior| prior == name) {
                return Err(format!("duplicate source name '{name}'"));
            }
        }
        if ripe_source_count == 0 || ripe_source_count >= source_count {
            return Err(format!(
                "ripe_source_count {ripe_source_count} out of range for {source_count} sources"
            ));
        }
        if latest_ripe >= source_count || latest_ripe == ripe_source_count {
            return Err(format!(
                "latest_ripe {latest_ripe} is not a snapshot source id"
            ));
        }
        // Arenas: spans in bounds, codes valid, sets sorted and unique.
        for &(offset, len) in &parts.seq_spans {
            let end = (offset as usize)
                .checked_add(len as usize)
                .ok_or_else(|| "sequence span overflows".to_string())?;
            if end > parts.runs.len() {
                return Err(format!(
                    "sequence span {offset}+{len} exceeds {} runs",
                    parts.runs.len()
                ));
            }
        }
        for &(code, len) in &parts.runs {
            if code != UNKNOWN_HOP && code_vendor(code).is_none() {
                return Err(format!("invalid vendor code {code} in run arena"));
            }
            if len == 0 {
                return Err("zero-length run in arena".to_string());
            }
        }
        let sets: Vec<Vec<Vendor>> = parts
            .sets
            .iter()
            .map(|codes| {
                let set: Vec<Vendor> = codes
                    .iter()
                    .map(|&code| {
                        code_vendor(code)
                            .ok_or_else(|| format!("invalid vendor code {code} in set"))
                    })
                    .collect::<Result<_, String>>()?;
                if set.windows(2).any(|pair| pair[0] >= pair[1]) {
                    return Err("vendor set not sorted/unique".to_string());
                }
                Ok(set)
            })
            .collect::<Result<_, String>>()?;
        let slice: Vec<UsSlice> = parts
            .slice
            .iter()
            .map(|&code| {
                UsSlice::from_code(code).ok_or_else(|| format!("invalid slice code {code}"))
            })
            .collect::<Result<_, String>>()?;

        let set_labels: Vec<String> = sets
            .iter()
            .map(|set| {
                set.iter()
                    .map(|vendor| vendor.name().to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            })
            .collect();

        let mut corpus = PathCorpus {
            by_source: parts.sources.iter().map(|_| Vec::new()).collect(),
            sources: parts.sources,
            ripe_source_count,
            latest_ripe,
            source: parts.source,
            src_as: parts.src_as,
            dst_as: parts.dst_as,
            effective_len: parts.effective_len,
            router_hops: Vec::with_capacity(rows),
            identified: Vec::with_capacity(rows),
            snmp_identified: parts.snmp_identified,
            slice,
            set_id: parts.set_id,
            seq_id: parts.seq_id,
            edge_vendors: parts.edge_vendors,
            core_vendors: parts.core_vendors,
            as_segments: parts.as_segments,
            runs: parts.runs,
            seq_spans: parts.seq_spans,
            sets,
            set_labels,
            by_src_as: HashMap::new(),
            by_dst_as: HashMap::new(),
            by_length: HashMap::new(),
            by_set: vec![Vec::new(); parts.sets.len()],
            by_seq: Vec::new(),
        };
        corpus.by_seq = vec![Vec::new(); corpus.seq_spans.len()];

        // Per-row validation + derived columns + index rebuild, one pass
        // in row order (indexes come out sorted, exactly as built).
        for row in 0..rows {
            let source = corpus.source[row] as usize;
            if source >= source_count {
                return Err(format!("row {row} references unknown source {source}"));
            }
            let seq_id = corpus.seq_id[row] as usize;
            if seq_id >= corpus.seq_spans.len() {
                return Err(format!("row {row} references unknown sequence {seq_id}"));
            }
            let set_id = corpus.set_id[row] as usize;
            if set_id >= corpus.sets.len() {
                return Err(format!("row {row} references unknown set {set_id}"));
            }
            let (offset, len) = corpus.seq_spans[seq_id];
            let runs = &corpus.runs[offset as usize..(offset + len) as usize];
            let hops: usize = runs.iter().map(|&(_, count)| count as usize).sum();
            if hops > u16::MAX as usize {
                return Err(format!("row {row} has {hops} hops (exceeds u16)"));
            }
            let identified: usize = runs
                .iter()
                .filter(|&&(code, _)| code != UNKNOWN_HOP)
                .map(|&(_, count)| count as usize)
                .sum();
            corpus.router_hops.push(hops as u16);
            corpus.identified.push(identified as u16);

            let row = row as u32;
            corpus.by_source[source].push(row);
            corpus
                .by_src_as
                .entry(corpus.src_as[row as usize])
                .or_default()
                .push(row);
            corpus
                .by_dst_as
                .entry(corpus.dst_as[row as usize])
                .or_default()
                .push(row);
            corpus.by_length.entry(hops as u16).or_default().push(row);
            corpus.by_set[set_id].push(row);
            corpus.by_seq[seq_id].push(row);
        }
        Ok(corpus)
    }

    /// Fold new snapshot sources into a copy of this corpus without
    /// touching any existing row: per-trace classification of the *new*
    /// traces fans out through [`scan`] (the same determinism contract as
    /// [`PathCorpus::build`]), then the serial interning fold appends
    /// them as fresh sources. The interning tables are re-derived from
    /// the arenas, so appended rows share sequence/set ids with the base
    /// corpus — and a one-source-at-a-time chain of calls produces a
    /// corpus equal to one call carrying every source (regression-tested
    /// by `lfp-store`).
    pub fn extended_with(
        &self,
        internet: &Internet,
        additions: &[NewPathSource<'_>],
        shards: NonZeroUsize,
    ) -> Result<PathCorpus, String> {
        let mut corpus = self.clone();
        // Names must be fresh against the corpus *and* unique within the
        // batch — otherwise one call could build a corpus whose persisted
        // form `from_parts` would reject forever.
        for (index, addition) in additions.iter().enumerate() {
            if corpus.sources.iter().any(|name| name == &addition.name)
                || additions[..index]
                    .iter()
                    .any(|prior| prior.name == addition.name)
            {
                return Err(format!("source '{}' already in corpus", addition.name));
            }
        }
        if corpus.sources.len() + additions.len() > u16::MAX as usize {
            return Err("source id space exhausted".to_string());
        }
        // Re-derive the interning tables from the arenas (cheap relative
        // to classification; the arenas are append-only so ids persist).
        let mut seq_intern: HashMap<Vec<(u8, u16)>, u32> = HashMap::new();
        for (id, &(offset, len)) in corpus.seq_spans.iter().enumerate() {
            let key = corpus.runs[offset as usize..(offset + len) as usize].to_vec();
            seq_intern.insert(key, id as u32);
        }
        let mut set_intern: HashMap<Vec<Vendor>, u32> = HashMap::new();
        for (id, set) in corpus.sets.iter().enumerate() {
            set_intern.insert(set.clone(), id as u32);
        }

        let config = ScanConfig {
            shards,
            pacing: 0.0,
        };
        for addition in additions {
            let source_id = corpus.sources.len();
            corpus.sources.push(addition.name.clone());
            corpus.by_source.push(Vec::new());
            let items: Vec<TraceItem> = addition
                .traces
                .iter()
                .enumerate()
                .map(|(index, trace)| TraceItem {
                    index,
                    source: source_id as u16,
                    trace,
                    lfp: addition.lfp,
                    snmp: addition.snmp,
                })
                .collect();
            let encoded = scan(
                &items,
                config,
                |item| splitmix64(item.index as u64 ^ 0x9e37_79b9_7f4a_7c15),
                |item, _ctx| encode_path(internet, item),
            );
            for path in encoded {
                corpus.intern(path, &mut seq_intern, &mut set_intern);
            }
            if addition.is_ripe_snapshot {
                corpus.latest_ripe = source_id;
            }
        }
        Ok(corpus)
    }
}

/// One snapshot's worth of new traces for [`PathCorpus::extended_with`]:
/// the traces plus the per-method vendor maps they classify through
/// (produced by scanning the snapshot's router population and classifying
/// it against the world's frozen signature set).
pub struct NewPathSource<'a> {
    /// Dataset name the new source registers under (must be unused).
    pub name: String,
    /// The new traces, in collection order.
    pub traces: &'a [TraceRecord],
    /// ip → vendor for unique LFP verdicts over the new population.
    pub lfp: &'a HashMap<Ipv4Addr, Vendor>,
    /// ip → vendor for SNMPv3 labels over the new population.
    pub snmp: &'a HashMap<Ipv4Addr, Vendor>,
    /// Whether this source is a RIPE-style snapshot (advances
    /// [`PathCorpus::latest_ripe_source`]).
    pub is_ripe_snapshot: bool,
}

/// Everything [`PathCorpus::to_parts`] dumps — plain vectors with enums
/// lowered to stable codes, ready for a length-prefixed columnar store.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusParts {
    /// Dataset names, index-aligned with source ids.
    pub sources: Vec<String>,
    /// How many leading sources are base RIPE snapshots.
    pub ripe_source_count: u32,
    /// Source id of the most recent RIPE-style snapshot.
    pub latest_ripe: u32,
    /// Source id per row.
    pub source: Vec<u16>,
    /// Vantage AS per row.
    pub src_as: Vec<u32>,
    /// Destination AS per row.
    pub dst_as: Vec<u32>,
    /// Effective path length per row.
    pub effective_len: Vec<u16>,
    /// SNMPv3-identified hop count per row.
    pub snmp_identified: Vec<u16>,
    /// US slice code per row (see [`UsSlice::code`]).
    pub slice: Vec<u8>,
    /// Interned vendor-set id per row.
    pub set_id: Vec<u32>,
    /// Interned hop-sequence id per row.
    pub seq_id: Vec<u32>,
    /// Distinct identified vendors in the edge segments, per row.
    pub edge_vendors: Vec<u8>,
    /// Distinct identified vendors in the transit core, per row.
    pub core_vendors: Vec<u8>,
    /// AS segment count per row.
    pub as_segments: Vec<u16>,
    /// The shared run-length arena.
    pub runs: Vec<(u8, u16)>,
    /// (offset, len) into `runs` per sequence id.
    pub seq_spans: Vec<(u32, u32)>,
    /// Vendor codes per interned set (sorted, unique).
    pub sets: Vec<Vec<u8>>,
}

/// Intersect two ascending row-id slices (the corpus indexes are built in
/// row order, so every index lookup returns a sorted slice). Linear
/// two-pointer merge; the planner's only set operation.
pub fn intersect_sorted(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Worker: classify one trace into its encoded row. Pure, so the scanner
/// may run it on any shard.
fn encode_path(internet: &Internet, item: &TraceItem) -> EncodedPath {
    let hops = item.trace.router_hops();
    let codes: Vec<u8> = hop_vendors(&hops, item.lfp)
        .into_iter()
        .map(|verdict| verdict.map(vendor_code).unwrap_or(UNKNOWN_HOP))
        .collect();
    let snmp_identified = hops
        .iter()
        .filter(|hop| item.snmp.contains_key(hop))
        .count() as u16;
    let hop_as: Vec<u32> = hops
        .iter()
        .map(|&hop| {
            internet
                .truth_of(hop)
                .map(|meta| meta.as_id)
                .unwrap_or(u32::MAX)
        })
        .collect();
    let (edge_vendors, core_vendors, as_segments) = segment_diversity(&codes, &hop_as);
    EncodedPath {
        source: item.source,
        src_as: item.trace.src_as,
        dst_as: item.trace.dst_as,
        effective_len: item.trace.effective_length() as u16,
        snmp_identified,
        slice: slice_of(internet, item.trace),
        codes,
        edge_vendors,
        core_vendors,
        as_segments,
    }
}

/// Segment a path by the AS owning each hop; the first and last segments
/// are the edge, the rest the transit core. Returns (distinct identified
/// vendors in the edge, in the core, AS segment count).
fn segment_diversity(codes: &[u8], hop_as: &[u32]) -> (u8, u8, u16) {
    if codes.is_empty() {
        return (0, 0, 0);
    }
    let mut segments: Vec<(usize, usize)> = Vec::new();
    let mut start = 0usize;
    for index in 1..hop_as.len() {
        if hop_as[index] != hop_as[index - 1] {
            segments.push((start, index));
            start = index;
        }
    }
    segments.push((start, hop_as.len()));
    let last = segments.len() - 1;
    let mut edge: BTreeSet<u8> = BTreeSet::new();
    let mut core: BTreeSet<u8> = BTreeSet::new();
    for (index, &(from, to)) in segments.iter().enumerate() {
        let target = if index == 0 || index == last {
            &mut edge
        } else {
            &mut core
        };
        for &code in &codes[from..to] {
            if code != UNKNOWN_HOP {
                target.insert(code);
            }
        }
    }
    (edge.len() as u8, core.len() as u8, segments.len() as u16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vendor_codes_round_trip() {
        for &vendor in &Vendor::ALL {
            assert_eq!(code_vendor(vendor_code(vendor)), Some(vendor));
        }
        assert_eq!(code_vendor(UNKNOWN_HOP), None);
    }

    #[test]
    fn segment_diversity_splits_edge_and_core() {
        // AS layout 1 1 | 2 2 | 3 — edge = first + last segment.
        let codes = [0u8, UNKNOWN_HOP, 1, 2, 3];
        let hop_as = [1u32, 1, 2, 2, 3];
        let (edge, core, segments) = segment_diversity(&codes, &hop_as);
        assert_eq!(segments, 3);
        assert_eq!(edge, 2); // vendor 0 at the head, vendor 3 at the tail
        assert_eq!(core, 2); // vendors 1 and 2 in the middle AS
                             // Two segments only: everything is edge.
        let (edge2, core2, segments2) = segment_diversity(&[0, 1], &[1, 2]);
        assert_eq!((edge2, core2, segments2), (2, 0, 2));
        assert_eq!(segment_diversity(&[], &[]), (0, 0, 0));
    }

    #[test]
    fn run_length_encoding_is_compact_and_queryable() {
        // Build a corpus over a real tiny world and sanity-check shape.
        let world = crate::world::World::build(lfp_topo::Scale::tiny());
        let corpus = world.path_corpus();
        assert!(!corpus.is_empty());
        assert_eq!(corpus.sources().len(), world.ripe.len() + 1);
        assert_eq!(corpus.latest_ripe_source(), world.ripe.len() - 1);
        // Every source contributed rows and the columns stay aligned.
        let total: usize = (0..corpus.sources().len())
            .map(|source| corpus.rows_of_source(source).len())
            .sum();
        assert_eq!(total, corpus.len());
        // Interning actually shares sequences.
        assert!(corpus.distinct_sequences() <= corpus.len());
        for row in corpus.all_rows() {
            let runs = corpus.runs_of(row);
            let hops: usize = runs.iter().map(|&(_, len)| len as usize).sum();
            assert_eq!(hops, corpus.router_hops[row as usize] as usize);
            let identified: usize = runs
                .iter()
                .filter(|&&(code, _)| code != UNKNOWN_HOP)
                .map(|&(_, len)| len as usize)
                .sum();
            assert_eq!(identified, corpus.identified[row as usize] as usize);
        }
    }

    #[test]
    fn indexes_cover_all_rows() {
        let world = crate::world::World::build(lfp_topo::Scale::tiny());
        let corpus = world.path_corpus();
        let by_src: usize = corpus.by_src_as.values().map(Vec::len).sum();
        let by_dst: usize = corpus.by_dst_as.values().map(Vec::len).sum();
        let by_len: usize = corpus.by_length.values().map(Vec::len).sum();
        let by_set: usize = corpus.by_set.iter().map(Vec::len).sum();
        let by_seq: usize = corpus.by_seq.iter().map(Vec::len).sum();
        assert_eq!(by_src, corpus.len());
        assert_eq!(by_dst, corpus.len());
        assert_eq!(by_len, corpus.len());
        assert_eq!(by_set, corpus.len());
        assert_eq!(by_seq, corpus.len());
        // Index lookups agree with the columns.
        let row = 0u32;
        assert!(corpus.rows_from_as(corpus.src_as[0]).contains(&row));
        assert!(corpus.rows_to_as(corpus.dst_as[0]).contains(&row));
        assert!(corpus
            .rows_with_length(corpus.router_hops[0])
            .contains(&row));
        assert!(corpus.rows_with_sequence(corpus.seq_id[0]).contains(&row));
    }

    #[test]
    fn intersect_sorted_is_set_intersection() {
        assert_eq!(intersect_sorted(&[1, 3, 5, 9], &[2, 3, 4, 5, 10]), [3, 5]);
        assert_eq!(intersect_sorted(&[], &[1, 2]), Vec::<u32>::new());
        assert_eq!(intersect_sorted(&[7], &[7]), [7]);
        assert_eq!(intersect_sorted(&[1, 2], &[3, 4]), Vec::<u32>::new());
        // One side a strict subset of the other.
        assert_eq!(intersect_sorted(&[2, 4, 6, 8], &[4, 8]), [4, 8]);
    }

    #[test]
    fn rows_between_matches_naive_pair_scan() {
        let world = crate::world::World::build(lfp_topo::Scale::tiny());
        let corpus = world.path_corpus();
        let mut checked_nonempty = 0usize;
        for &src in corpus.src_as_ids().iter().take(8) {
            for &dst in corpus.dst_as_ids().iter().take(8) {
                let fast = corpus.rows_between(src, dst);
                let naive: Vec<u32> = corpus
                    .all_rows()
                    .into_iter()
                    .filter(|&row| {
                        corpus.src_as[row as usize] == src && corpus.dst_as[row as usize] == dst
                    })
                    .collect();
                assert_eq!(fast, naive, "pair ({src}, {dst}) diverged");
                checked_nonempty += usize::from(!fast.is_empty());
            }
        }
        assert!(checked_nonempty > 0, "no AS pair had any path");
        // Unknown ASes intersect to nothing.
        assert!(corpus.rows_between(u32::MAX - 1, 0).is_empty());
    }

    #[test]
    fn per_row_accessors_expose_the_columns() {
        let world = crate::world::World::build(lfp_topo::Scale::tiny());
        let corpus = world.path_corpus();
        for row in corpus.all_rows() {
            assert_eq!(corpus.source_of(row), corpus.source[row as usize]);
            assert_eq!(corpus.hops_of(row), corpus.router_hops[row as usize]);
            assert_eq!(corpus.us_slice_of(row), corpus.slice[row as usize]);
        }
        assert_eq!(
            corpus.source_id("ITDK-derived"),
            Some(corpus.derived_source())
        );
        assert_eq!(corpus.source_id(&corpus.sources()[0]), Some(0));
        assert_eq!(corpus.source_id("no-such-dataset"), None);
    }

    #[test]
    fn transition_matrix_counts_handoffs() {
        let world = crate::world::World::build(lfp_topo::Scale::tiny());
        let corpus = world.path_corpus();
        let rows = corpus.all_rows();
        let matrix = corpus.transition_matrix(&rows);
        // Total transitions = sum over rows of (identified hops - gaps' merges):
        // every adjacent pair in the identified subsequence counts once.
        let expected: usize = rows
            .iter()
            .map(|&row| {
                let identified = corpus.identified[row as usize] as usize;
                identified.saturating_sub(1)
            })
            .sum();
        let total: usize = matrix.values().sum();
        assert_eq!(total, expected);
    }
}
