//! Responsiveness distributions (paper §4.1, Figures 4–6).

use crate::stats::Ecdf;
use lfp_core::pipeline::DatasetScan;

/// Figure 4: ECDF of the number of responsive protocols (0–3) per IP.
pub fn responsive_protocols_ecdf(scan: &DatasetScan) -> Ecdf {
    Ecdf::new(
        scan.observations
            .iter()
            .map(|o| o.responsive_protocols() as f64)
            .collect(),
    )
}

/// Figures 5/6: per-protocol ECDFs of responses (0–3) per IP, in
/// (ICMP, TCP, UDP) order.
pub fn responses_per_protocol_ecdfs(scan: &DatasetScan) -> [Ecdf; 3] {
    let collect = |index: usize| {
        Ecdf::new(
            scan.observations
                .iter()
                .map(|o| o.responses_per_protocol()[index] as f64)
                .collect(),
        )
    };
    [collect(0), collect(1), collect(2)]
}

/// Headline fractions: (any-protocol responsive, all-three responsive).
pub fn headline_fractions(scan: &DatasetScan) -> (f64, f64) {
    let total = scan.observations.len().max(1) as f64;
    let any = scan
        .observations
        .iter()
        .filter(|o| o.responsive_protocols() >= 1)
        .count() as f64;
    let all = scan
        .observations
        .iter()
        .filter(|o| o.responsive_protocols() == 3)
        .count() as f64;
    (any / total, all / total)
}

/// The all-or-nothing property of Figures 5/6: among IPs with any response
/// on a protocol, the fraction that answered all three probes.
pub fn all_or_nothing_fraction(scan: &DatasetScan, protocol: usize) -> f64 {
    let mut responders = 0usize;
    let mut complete = 0usize;
    for observation in &scan.observations {
        let count = observation.responses_per_protocol()[protocol];
        if count > 0 {
            responders += 1;
            if count == 3 {
                complete += 1;
            }
        }
    }
    if responders == 0 {
        1.0
    } else {
        complete as f64 / responders as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfp_core::pipeline::scan_dataset;
    use lfp_topo::{Internet, Scale};

    #[test]
    fn distributions_behave_on_a_tiny_world() {
        let internet = Internet::generate(Scale::tiny());
        let targets = internet.all_interfaces();
        let scan = scan_dataset(internet.network(), "t", &targets, 4);

        let protocols = responsive_protocols_ecdf(&scan);
        assert_eq!(protocols.len(), targets.len());
        // ECDF at 3 covers everything.
        assert_eq!(protocols.fraction_at_or_below(3.0), 1.0);

        let (any, all) = headline_fractions(&scan);
        assert!(any >= all);
        assert!(any > 0.3, "responsiveness unexpectedly low: {any}");

        let [icmp, tcp, udp] = responses_per_protocol_ecdfs(&scan);
        // ICMP is the most answered protocol (paper §4.1).
        assert!(
            icmp.fraction_at_or_below(0.0) <= tcp.fraction_at_or_below(0.0) + 0.05,
            "ICMP should respond at least as often as TCP"
        );
        assert_eq!(udp.len(), targets.len());

        // All-or-nothing: responders overwhelmingly answer all 3 probes.
        for protocol in 0..3 {
            let fraction = all_or_nothing_fraction(&scan, protocol);
            assert!(
                fraction > 0.85,
                "protocol {protocol}: only {fraction} complete"
            );
        }
    }
}
