//! Regional vendor distribution (paper Appendix A.2, Figures 21–22).

use lfp_stack::vendor::Vendor;
use lfp_topo::{Continent, Internet};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::net::Ipv4Addr;

/// Per-continent router identification tallies.
#[derive(Debug, Clone, Default)]
pub struct ContinentStats {
    /// Routers identified by LFP, per vendor.
    pub lfp_by_vendor: BTreeMap<Vendor, usize>,
    /// Routers identified via SNMPv3 (any vendor).
    pub snmp_routers: usize,
}

impl ContinentStats {
    /// Total LFP-identified routers.
    pub fn lfp_total(&self) -> usize {
        self.lfp_by_vendor.values().sum()
    }

    /// The dominant vendor and its share.
    pub fn dominant(&self) -> Option<(Vendor, f64)> {
        let total = self.lfp_total();
        self.lfp_by_vendor
            .iter()
            .max_by_key(|(_, &count)| count)
            .map(|(&vendor, &count)| (vendor, count as f64 / total.max(1) as f64))
    }

    /// LFP's additional contribution over SNMPv3, in percent
    /// (paper: +100% in EU/Asia, +205% Oceania, ...).
    pub fn lfp_uplift_percent(&self) -> f64 {
        if self.snmp_routers == 0 {
            return 0.0;
        }
        (self.lfp_total() as f64 / self.snmp_routers as f64 - 1.0) * 100.0
    }
}

/// Figure 21: tally identified routers per continent and vendor. Routers
/// are attributed to the continent of their host network's registration.
pub fn per_continent(
    internet: &Internet,
    targets: &[Ipv4Addr],
    lfp: &HashMap<Ipv4Addr, Vendor>,
    snmp: &HashMap<Ipv4Addr, Vendor>,
) -> BTreeMap<Continent, ContinentStats> {
    let mut stats: BTreeMap<Continent, ContinentStats> = BTreeMap::new();
    let mut lfp_seen: BTreeSet<u32> = BTreeSet::new();
    let mut snmp_seen: BTreeSet<u32> = BTreeSet::new();
    for &ip in targets {
        let Some(meta) = internet.truth_of(ip) else {
            continue;
        };
        let continent = internet.continent_of(meta.as_id);
        if let Some(&vendor) = lfp.get(&ip) {
            if lfp_seen.insert(meta.device.0) {
                *stats
                    .entry(continent)
                    .or_default()
                    .lfp_by_vendor
                    .entry(vendor)
                    .or_insert(0) += 1;
            }
        }
        if snmp.contains_key(&ip) && snmp_seen.insert(meta.device.0) {
            stats.entry(continent).or_default().snmp_routers += 1;
        }
    }
    stats
}

/// Figure 22: the top-N networks by LFP-identified routers, with the
/// SNMPv3 count alongside and a region-coded label ("AS-1", "NA-2", ...).
pub fn top_networks(
    internet: &Internet,
    per_as_lfp: &BTreeMap<u32, BTreeMap<Vendor, usize>>,
    per_as_snmp: &BTreeMap<u32, usize>,
    top: usize,
) -> Vec<TopNetwork> {
    let mut ranked: Vec<(u32, usize)> = per_as_lfp
        .iter()
        .map(|(&as_id, vendors)| (as_id, vendors.values().sum()))
        .collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

    let mut region_counters: BTreeMap<&'static str, usize> = BTreeMap::new();
    ranked
        .into_iter()
        .take(top)
        .map(|(as_id, lfp_routers)| {
            let region = internet.continent_of(as_id).abbrev();
            let index = region_counters.entry(region).or_insert(0);
            *index += 1;
            TopNetwork {
                as_id,
                label: format!("{region}-{index}"),
                lfp_routers,
                snmp_routers: per_as_snmp.get(&as_id).copied().unwrap_or(0),
            }
        })
        .collect()
}

/// One Figure 22 bar.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopNetwork {
    /// Internal AS id.
    pub as_id: u32,
    /// Region-coded label (the paper anonymises networks the same way).
    pub label: String,
    /// LFP-identified routers.
    pub lfp_routers: usize,
    /// SNMPv3-identified routers.
    pub snmp_routers: usize,
}

/// Per-AS SNMPv3-identified router counts (companion to
/// `homogeneity::per_as_vendor_counts`).
pub fn per_as_snmp_counts(
    internet: &Internet,
    targets: &[Ipv4Addr],
    snmp: &HashMap<Ipv4Addr, Vendor>,
) -> BTreeMap<u32, usize> {
    let mut seen: BTreeSet<u32> = BTreeSet::new();
    let mut counts: BTreeMap<u32, usize> = BTreeMap::new();
    for &ip in targets {
        let Some(meta) = internet.truth_of(ip) else {
            continue;
        };
        if snmp.contains_key(&ip) && seen.insert(meta.device.0) {
            *counts.entry(meta.as_id).or_insert(0) += 1;
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfp_topo::Scale;

    #[test]
    fn continent_stats_aggregate_routers_not_interfaces() {
        let internet = Internet::generate(Scale::tiny());
        let targets = internet.all_interfaces();
        let mut lfp = HashMap::new();
        for router in internet.routers() {
            for &ip in &router.interfaces {
                lfp.insert(ip, router.vendor);
            }
        }
        let snmp = HashMap::new();
        let stats = per_continent(&internet, &targets, &lfp, &snmp);
        let total: usize = stats.values().map(|s| s.lfp_total()).sum();
        assert_eq!(total, internet.routers().len(), "one count per router");
    }

    #[test]
    fn top_networks_rank_and_label() {
        let internet = Internet::generate(Scale::tiny());
        let mut per_as: BTreeMap<u32, BTreeMap<Vendor, usize>> = BTreeMap::new();
        per_as.entry(3).or_default().insert(Vendor::Cisco, 100);
        per_as.entry(7).or_default().insert(Vendor::Huawei, 300);
        per_as.entry(9).or_default().insert(Vendor::Juniper, 50);
        let mut per_as_snmp = BTreeMap::new();
        per_as_snmp.insert(7u32, 120usize);
        let top = top_networks(&internet, &per_as, &per_as_snmp, 2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].as_id, 7);
        assert_eq!(top[0].lfp_routers, 300);
        assert_eq!(top[0].snmp_routers, 120);
        assert!(top[0].label.contains('-'));
    }

    #[test]
    fn uplift_math() {
        let mut stats = ContinentStats::default();
        stats.lfp_by_vendor.insert(Vendor::Cisco, 200);
        stats.snmp_routers = 100;
        assert!((stats.lfp_uplift_percent() - 100.0).abs() < 1e-9);
        assert_eq!(stats.dominant().unwrap().0, Vendor::Cisco);
    }
}
