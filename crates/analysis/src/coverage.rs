//! Coverage analyses: who identifies which IPs and routers (paper §7.1,
//! §7.2, Figures 15–17).

use lfp_stack::vendor::Vendor;
use std::collections::{BTreeMap, HashMap};
use std::net::Ipv4Addr;

/// Per-vendor identification tallies for one dataset (a Figure 15/16 bar
/// group).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MethodSplit {
    /// Identified by SNMPv3 only.
    pub snmp_only: usize,
    /// Identified by both techniques.
    pub both: usize,
    /// Identified by LFP only.
    pub lfp_only: usize,
}

impl MethodSplit {
    /// Total identified by any method.
    pub fn total(&self) -> usize {
        self.snmp_only + self.both + self.lfp_only
    }

    /// Total identified including LFP.
    pub fn lfp_total(&self) -> usize {
        self.both + self.lfp_only
    }

    /// Total identified by SNMPv3.
    pub fn snmp_total(&self) -> usize {
        self.snmp_only + self.both
    }
}

/// Figures 15/16: split IP identifications per vendor by method.
pub fn ip_method_split(
    targets: &[Ipv4Addr],
    snmp: &HashMap<Ipv4Addr, Vendor>,
    lfp: &HashMap<Ipv4Addr, Vendor>,
) -> BTreeMap<Vendor, MethodSplit> {
    let mut split: BTreeMap<Vendor, MethodSplit> = BTreeMap::new();
    for ip in targets {
        match (snmp.get(ip), lfp.get(ip)) {
            (Some(&vendor), Some(_)) => split.entry(vendor).or_default().both += 1,
            (Some(&vendor), None) => split.entry(vendor).or_default().snmp_only += 1,
            (None, Some(&vendor)) => split.entry(vendor).or_default().lfp_only += 1,
            (None, None) => {}
        }
    }
    split
}

/// Router-level (alias-set) identification: each alias set becomes one
/// router whose vendor is the agreed classification of its members.
/// Returns the per-vendor split plus the alias-consistency statistics of
/// §7.2 (sets whose classified members all agree).
pub fn router_method_split(
    alias_sets: &[Vec<Ipv4Addr>],
    snmp: &HashMap<Ipv4Addr, Vendor>,
    lfp: &HashMap<Ipv4Addr, Vendor>,
) -> (BTreeMap<Vendor, MethodSplit>, AliasConsistency) {
    let mut split: BTreeMap<Vendor, MethodSplit> = BTreeMap::new();
    let mut consistency = AliasConsistency::default();

    for set in alias_sets {
        let lfp_votes: Vec<Vendor> = set.iter().filter_map(|ip| lfp.get(ip).copied()).collect();
        let snmp_votes: Vec<Vendor> = set.iter().filter_map(|ip| snmp.get(ip).copied()).collect();

        let lfp_vendor = agreed(&lfp_votes);
        let snmp_vendor = agreed(&snmp_votes);
        if !lfp_votes.is_empty() {
            consistency.classified_sets += 1;
            if lfp_vendor.is_none() {
                consistency.conflicting_sets += 1;
                consistency.conflicting_ips += lfp_votes.len();
            }
        }
        match (snmp_vendor, lfp_vendor) {
            (Some(vendor), Some(_)) => split.entry(vendor).or_default().both += 1,
            (Some(vendor), None) if lfp_votes.is_empty() => {
                split.entry(vendor).or_default().snmp_only += 1
            }
            (Some(vendor), None) => split.entry(vendor).or_default().snmp_only += 1,
            (None, Some(vendor)) => split.entry(vendor).or_default().lfp_only += 1,
            (None, None) => {}
        }
    }
    (split, consistency)
}

fn agreed(votes: &[Vendor]) -> Option<Vendor> {
    let first = *votes.first()?;
    votes.iter().all(|&v| v == first).then_some(first)
}

/// §7.2's alias-set agreement statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AliasConsistency {
    /// Alias sets with at least one classified member.
    pub classified_sets: usize,
    /// Sets whose classified members disagree.
    pub conflicting_sets: usize,
    /// Member IPs inside conflicting sets.
    pub conflicting_ips: usize,
}

impl AliasConsistency {
    /// Fraction of classified sets that agree (paper: ≈99%).
    pub fn agreement_rate(&self) -> f64 {
        if self.classified_sets == 0 {
            1.0
        } else {
            1.0 - self.conflicting_sets as f64 / self.classified_sets as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(last: u8) -> Ipv4Addr {
        Ipv4Addr::new(2, 0, 0, last)
    }

    #[test]
    fn ip_split_partitions_methods() {
        let targets: Vec<Ipv4Addr> = (1..=4).map(ip).collect();
        let mut snmp = HashMap::new();
        snmp.insert(ip(1), Vendor::Cisco); // snmp only
        snmp.insert(ip(2), Vendor::Cisco); // both
        let mut lfp = HashMap::new();
        lfp.insert(ip(2), Vendor::Cisco);
        lfp.insert(ip(3), Vendor::Juniper); // lfp only
        let split = ip_method_split(&targets, &snmp, &lfp);
        assert_eq!(split[&Vendor::Cisco].snmp_only, 1);
        assert_eq!(split[&Vendor::Cisco].both, 1);
        assert_eq!(split[&Vendor::Juniper].lfp_only, 1);
        assert_eq!(split[&Vendor::Cisco].total(), 2);
        assert_eq!(split[&Vendor::Cisco].lfp_total(), 1);
    }

    #[test]
    fn router_split_detects_conflicts() {
        let sets = vec![
            vec![ip(1), ip(2)], // agree: Cisco
            vec![ip(3), ip(4)], // conflict
            vec![ip(5), ip(6)], // unclassified
        ];
        let mut lfp = HashMap::new();
        lfp.insert(ip(1), Vendor::Cisco);
        lfp.insert(ip(2), Vendor::Cisco);
        lfp.insert(ip(3), Vendor::Cisco);
        lfp.insert(ip(4), Vendor::Juniper);
        let snmp = HashMap::new();
        let (split, consistency) = router_method_split(&sets, &snmp, &lfp);
        assert_eq!(split[&Vendor::Cisco].lfp_only, 1);
        assert_eq!(consistency.classified_sets, 2);
        assert_eq!(consistency.conflicting_sets, 1);
        assert_eq!(consistency.conflicting_ips, 2);
        assert!((consistency.agreement_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_world_is_fully_consistent() {
        let consistency = AliasConsistency::default();
        assert_eq!(consistency.agreement_rate(), 1.0);
    }
}
