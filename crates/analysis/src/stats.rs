//! Small statistics toolkit: ECDFs, histograms, quantiles.
//!
//! Every figure in the paper is either an ECDF or a bar/histogram; these
//! types produce the plotted series as plain `(x, y)` points so the
//! experiment harness can print them and EXPERIMENTS.md can quote them.

/// An empirical CDF over f64 samples.
#[derive(Debug, Clone)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Build from samples (NaNs are dropped).
    pub fn new(mut samples: Vec<f64>) -> Self {
        samples.retain(|v| !v.is_nan());
        samples.sort_by(|a, b| a.total_cmp(b));
        Ecdf { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// P(X ≤ x).
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// The q-quantile (0 ≤ q ≤ 1), by nearest rank.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0)) * (self.sorted.len() - 1) as f64).round() as usize;
        Some(self.sorted[rank])
    }

    /// Mean of the samples.
    pub fn mean(&self) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        Some(self.sorted.iter().sum::<f64>() / self.sorted.len() as f64)
    }

    /// Sample the curve at `n` evenly spaced x positions between min and
    /// max (plus the exact min/max), for plotting. When every sample is
    /// equal the curve degenerates to the single point `(x, 1.0)`.
    pub fn series(&self, n: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() {
            return Vec::new();
        }
        let lo = self.sorted[0];
        let hi = self.sorted[self.sorted.len() - 1];
        if lo == hi {
            return vec![(lo, 1.0)];
        }
        let mut points = Vec::with_capacity(n + 1);
        for step in 0..=n.max(1) {
            let x = lo + (hi - lo) * step as f64 / n.max(1) as f64;
            points.push((x, self.fraction_at_or_below(x)));
        }
        points
    }
}

/// A fixed-width histogram reported as percentage per bin.
#[derive(Debug, Clone)]
pub struct Histogram {
    /// Bin left edges.
    pub edges: Vec<f64>,
    /// Percentage of samples per bin.
    pub percent: Vec<f64>,
    /// Total sample count.
    pub total: usize,
    /// Width of every bin.
    pub width: f64,
}

impl Histogram {
    /// Histogram over [lo, hi) with `bins` equal bins; out-of-range
    /// samples clamp to the edge bins.
    pub fn build(samples: &[f64], lo: f64, hi: f64, bins: usize) -> Histogram {
        let bins = bins.max(1);
        let width = (hi - lo) / bins as f64;
        let mut counts = vec![0usize; bins];
        for &sample in samples {
            let index = if width > 0.0 {
                (((sample - lo) / width).floor() as i64).clamp(0, bins as i64 - 1) as usize
            } else {
                0
            };
            counts[index] += 1;
        }
        let total = samples.len();
        Histogram {
            edges: (0..bins).map(|i| lo + i as f64 * width).collect(),
            percent: counts
                .iter()
                .map(|&c| {
                    if total == 0 {
                        0.0
                    } else {
                        c as f64 * 100.0 / total as f64
                    }
                })
                .collect(),
            total,
            width,
        }
    }

    /// Percentage of samples within `[lo, hi]`, defined by bin overlap:
    /// each bin `[edge, edge + width)` contributes its percentage scaled
    /// by the fraction of the bin covered by the range. Bins fully inside
    /// count whole, straddling bins count proportionally, and the bin
    /// starting exactly at `hi` contributes nothing (zero overlap width).
    pub fn percent_between(&self, lo: f64, hi: f64) -> f64 {
        if hi < lo {
            return 0.0;
        }
        self.edges
            .iter()
            .zip(&self.percent)
            .map(|(&edge, &p)| {
                if self.width > 0.0 {
                    let overlap = (hi.min(edge + self.width) - lo.max(edge)).max(0.0);
                    p * (overlap / self.width).min(1.0)
                } else if edge >= lo && edge <= hi {
                    p
                } else {
                    0.0
                }
            })
            .sum()
    }
}

/// Share helper: `part / whole` as a percentage, 0 when `whole` is zero.
pub fn percent(part: usize, whole: usize) -> f64 {
    if whole == 0 {
        0.0
    } else {
        part as f64 * 100.0 / whole as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecdf_basics() {
        let ecdf = Ecdf::new(vec![3.0, 1.0, 2.0, 4.0]);
        assert_eq!(ecdf.len(), 4);
        assert_eq!(ecdf.fraction_at_or_below(0.5), 0.0);
        assert_eq!(ecdf.fraction_at_or_below(2.0), 0.5);
        assert_eq!(ecdf.fraction_at_or_below(10.0), 1.0);
        assert_eq!(ecdf.quantile(0.0), Some(1.0));
        assert_eq!(ecdf.quantile(1.0), Some(4.0));
        assert_eq!(ecdf.mean(), Some(2.5));
    }

    #[test]
    fn ecdf_series_is_monotone() {
        let ecdf = Ecdf::new((0..100).map(|i| (i * i) as f64).collect());
        let series = ecdf.series(20);
        for pair in series.windows(2) {
            assert!(pair[0].1 <= pair[1].1);
            assert!(pair[0].0 <= pair[1].0);
        }
        assert_eq!(series.last().unwrap().1, 1.0);
    }

    #[test]
    fn ecdf_series_collapses_degenerate_range() {
        let ecdf = Ecdf::new(vec![2.0; 5]);
        assert_eq!(ecdf.series(10), vec![(2.0, 1.0)]);
        let single = Ecdf::new(vec![7.5]);
        assert_eq!(single.series(3), vec![(7.5, 1.0)]);
    }

    #[test]
    fn ecdf_handles_empty_and_nan() {
        let ecdf = Ecdf::new(vec![f64::NAN]);
        assert!(ecdf.is_empty());
        assert_eq!(ecdf.quantile(0.5), None);
        assert_eq!(ecdf.mean(), None);
        assert!(Ecdf::new(vec![]).series(5).is_empty());
    }

    #[test]
    fn histogram_percentages_sum_to_100() {
        let samples: Vec<f64> = (0..1000).map(|i| (i % 97) as f64).collect();
        let histogram = Histogram::build(&samples, 0.0, 100.0, 10);
        let sum: f64 = histogram.percent.iter().sum();
        assert!((sum - 100.0).abs() < 1e-9);
        assert_eq!(histogram.total, 1000);
    }

    #[test]
    fn histogram_clamps_outliers() {
        let histogram = Histogram::build(&[-5.0, 105.0, 50.0], 0.0, 100.0, 10);
        let sum: f64 = histogram.percent.iter().sum();
        assert!((sum - 100.0).abs() < 1e-9);
        assert!(histogram.percent[0] > 0.0);
        assert!(histogram.percent[9] > 0.0);
    }

    #[test]
    fn percent_between_counts_boundary_aligned_bins() {
        // 10 bins of width 10 over [0, 100), one sample per bin.
        let samples: Vec<f64> = (0..10).map(|i| i as f64 * 10.0 + 5.0).collect();
        let histogram = Histogram::build(&samples, 0.0, 100.0, 10);
        // [0, 50] covers bins 0–4 in full; bin 5 starts at 50 and has
        // zero overlap width, so it contributes nothing.
        assert!((histogram.percent_between(0.0, 50.0) - 50.0).abs() < 1e-9);
        // The whole range is everything.
        assert!((histogram.percent_between(0.0, 100.0) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn percent_between_prorates_straddling_bins() {
        let samples: Vec<f64> = (0..10).map(|i| i as f64 * 10.0 + 5.0).collect();
        let histogram = Histogram::build(&samples, 0.0, 100.0, 10);
        // [5, 15] covers half of bin 0 and half of bin 1.
        assert!((histogram.percent_between(5.0, 15.0) - 10.0).abs() < 1e-9);
        // [0, 25] = bins 0, 1 whole plus half of bin 2.
        assert!((histogram.percent_between(0.0, 25.0) - 25.0).abs() < 1e-9);
        // A range inside one bin takes a proportional sliver.
        assert!((histogram.percent_between(2.0, 4.0) - 2.0).abs() < 1e-9);
        // Inverted and out-of-range queries are empty.
        assert_eq!(histogram.percent_between(50.0, 40.0), 0.0);
        assert_eq!(histogram.percent_between(200.0, 300.0), 0.0);
    }

    #[test]
    fn percent_helper() {
        assert_eq!(percent(1, 4), 25.0);
        assert_eq!(percent(3, 0), 0.0);
    }
}
