//! Path-level vendor analyses (paper §6, Figures 8–14) — the flat
//! reference implementation.
//!
//! A traceroute's router hops are classified with LFP; the analyses ask
//! how much of each path is identifiable, how many distinct vendors a
//! path crosses, and which vendor combinations dominate.
//!
//! These functions re-walk the trace list per call, which is fine for a
//! single figure but wasteful for a registry run. The production path is
//! [`crate::path_corpus::PathCorpus`] — a build-once columnar store whose
//! Figure 8–14 queries are regression-tested byte-for-byte against the
//! functions here (`tests/figures_regression.rs`), and which additionally
//! supports the ordered-sequence analyses this flat pass cannot afford.

use crate::stats::Ecdf;
use lfp_stack::vendor::Vendor;
use lfp_topo::datasets::TraceRecord;
use std::collections::{BTreeSet, HashMap};
use std::net::Ipv4Addr;

/// Path-level metrics for one trace.
#[derive(Debug, Clone, PartialEq)]
pub struct PathMetrics {
    /// Responsive router hops (destination excluded).
    pub router_hops: usize,
    /// Hops with a unique vendor verdict.
    pub identified: usize,
    /// Distinct vendors identified along the path.
    pub vendors: BTreeSet<Vendor>,
}

impl PathMetrics {
    /// Identified fraction in percent (None when no router hops).
    pub fn identified_percent(&self) -> Option<f64> {
        if self.router_hops == 0 {
            None
        } else {
            Some(self.identified as f64 * 100.0 / self.router_hops as f64)
        }
    }
}

/// Classify an ordered hop sequence against an ip → vendor map: one
/// verdict per hop, `None` where the map has no unique vendor. Shared by
/// the flat metrics below and the [`crate::path_corpus`] build fold.
pub fn hop_vendors(
    hops: &[Ipv4Addr],
    vendor_map: &HashMap<Ipv4Addr, Vendor>,
) -> Vec<Option<Vendor>> {
    hops.iter()
        .map(|hop| vendor_map.get(hop).copied())
        .collect()
}

/// Compute metrics for every trace against an ip → vendor map.
pub fn path_metrics(
    traces: &[TraceRecord],
    vendor_map: &HashMap<Ipv4Addr, Vendor>,
) -> Vec<PathMetrics> {
    traces
        .iter()
        .map(|trace| {
            let hops = trace.router_hops();
            let verdicts = hop_vendors(&hops, vendor_map);
            let mut vendors = BTreeSet::new();
            let mut identified = 0usize;
            for vendor in verdicts.into_iter().flatten() {
                identified += 1;
                vendors.insert(vendor);
            }
            PathMetrics {
                router_hops: hops.len(),
                identified,
                vendors,
            }
        })
        .collect()
}

/// Figure 8: ECDF of observed path lengths per trace. For unreached
/// destinations the effective length ends at the last responsive hop
/// (trailing timeouts carry no path information).
pub fn path_length_ecdf(traces: &[TraceRecord]) -> Ecdf {
    Ecdf::new(traces.iter().map(|t| t.effective_length() as f64).collect())
}

/// Figure 9/10 series: ECDF of the identified-hop percentage over traces
/// with at least `min_hops` router hops (and optionally at least
/// `min_identified` fingerprints).
pub fn identified_fraction_ecdf(
    metrics: &[PathMetrics],
    min_hops: usize,
    min_identified: usize,
) -> Ecdf {
    Ecdf::new(
        metrics
            .iter()
            .filter(|m| m.router_hops >= min_hops && m.identified >= min_identified)
            .filter_map(|m| m.identified_percent())
            .collect(),
    )
}

/// Figure 11: ECDF of the number of distinct vendors per path (paths with
/// at least one identified hop).
pub fn vendors_per_path_ecdf(metrics: &[PathMetrics]) -> Ecdf {
    Ecdf::new(
        metrics
            .iter()
            .filter(|m| m.identified > 0)
            .map(|m| m.vendors.len() as f64)
            .collect(),
    )
}

/// Figures 12–14: ranked vendor combinations (unordered sets) with their
/// share of paths having at least one identified hop.
pub fn top_vendor_combinations(metrics: &[PathMetrics], top: usize) -> Vec<(String, f64, usize)> {
    let mut counts: HashMap<String, usize> = HashMap::new();
    let mut total = 0usize;
    for metric in metrics {
        if metric.vendors.is_empty() {
            continue;
        }
        total += 1;
        let label = metric
            .vendors
            .iter()
            .map(|v| v.name().to_string())
            .collect::<Vec<_>>()
            .join(", ");
        *counts.entry(label).or_default() += 1;
    }
    let mut ranked: Vec<(String, usize)> = counts.into_iter().collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    ranked
        .into_iter()
        .take(top)
        .map(|(label, count)| (label, count as f64 * 100.0 / total.max(1) as f64, count))
        .collect()
}

/// Count of distinct vendor sets observed (the paper's "around 650 unique
/// sets of vendors").
pub fn distinct_vendor_sets(metrics: &[PathMetrics]) -> usize {
    metrics
        .iter()
        .filter(|m| !m.vendors.is_empty())
        .map(|m| m.vendors.iter().copied().collect::<Vec<_>>())
        .collect::<BTreeSet<_>>()
        .len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(hops: Vec<Option<Ipv4Addr>>, dst: Ipv4Addr) -> TraceRecord {
        TraceRecord {
            src_as: 0,
            dst_as: 1,
            src: Ipv4Addr::new(192, 0, 2, 1),
            dst,
            hops,
            reached: true,
        }
    }

    fn ip(last: u8) -> Ipv4Addr {
        Ipv4Addr::new(1, 0, 0, last)
    }

    fn sample() -> (Vec<TraceRecord>, HashMap<Ipv4Addr, Vendor>) {
        let dst = ip(99);
        let traces = vec![
            trace(vec![Some(ip(1)), Some(ip(2)), Some(ip(3)), Some(dst)], dst),
            trace(vec![Some(ip(1)), None, Some(ip(4)), Some(dst)], dst),
            trace(vec![Some(ip(5)), Some(ip(6))], dst),
        ];
        let mut map = HashMap::new();
        map.insert(ip(1), Vendor::Cisco);
        map.insert(ip(2), Vendor::Cisco);
        map.insert(ip(3), Vendor::Juniper);
        map.insert(ip(4), Vendor::Huawei);
        (traces, map)
    }

    #[test]
    fn metrics_count_hops_and_vendors() {
        let (traces, map) = sample();
        let metrics = path_metrics(&traces, &map);
        assert_eq!(metrics[0].router_hops, 3); // destination excluded
        assert_eq!(metrics[0].identified, 3);
        assert_eq!(metrics[0].vendors.len(), 2);
        assert_eq!(metrics[0].identified_percent(), Some(100.0));
        assert_eq!(metrics[1].identified, 2);
        assert_eq!(metrics[2].identified, 0);
        assert!(metrics[2].vendors.is_empty());
    }

    #[test]
    fn ecdfs_filter_correctly() {
        let (traces, map) = sample();
        let metrics = path_metrics(&traces, &map);
        let all = identified_fraction_ecdf(&metrics, 0, 0);
        assert_eq!(all.len(), 3);
        let min3 = identified_fraction_ecdf(&metrics, 3, 0);
        assert_eq!(min3.len(), 1);
        let vendors = vendors_per_path_ecdf(&metrics);
        assert_eq!(vendors.len(), 2);
    }

    #[test]
    fn combinations_rank_by_share() {
        let (traces, map) = sample();
        let metrics = path_metrics(&traces, &map);
        let combos = top_vendor_combinations(&metrics, 5);
        assert_eq!(combos.len(), 2);
        assert_eq!(combos[0].1 + combos[1].1, 100.0);
        assert_eq!(distinct_vendor_sets(&metrics), 2);
    }
}
