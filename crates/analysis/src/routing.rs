//! Informed routing case study (paper §6.3): given vendor-homogeneous
//! transit networks, which destinations could a policy-conscious sender
//! still reach while avoiding them?

use lfp_topo::graph::Tier;
use lfp_topo::Internet;
use std::collections::BTreeSet;

/// Result of the avoidance analysis for one transit AS.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AvoidanceStudy {
    /// The transit AS under scrutiny.
    pub transit_as: u32,
    /// Destination ASes (from the sample) whose best paths transit it.
    pub affected_destinations: usize,
    /// Of those, destinations with a valley-free alternative avoiding it.
    pub avoidable: usize,
    /// Destinations with no visible alternative.
    pub unavoidable: usize,
}

/// For a vendor-homogeneous transit AS, walk a destination sample and ask
/// per destination: does the best path from any sample source transit the
/// AS, and if so, does an alternative valley-free path avoid it?
///
/// Mirrors the paper's method (CAIDA AS-relationship paths, visibility
/// caveats included: only valley-free paths are considered "visible").
pub fn avoidance_study(
    internet: &Internet,
    transit_as: u32,
    sources: &[u32],
    destinations: &[u32],
) -> AvoidanceStudy {
    let core = internet.core();
    let mut affected: BTreeSet<u32> = BTreeSet::new();
    let mut avoidable: BTreeSet<u32> = BTreeSet::new();

    for &dst in destinations {
        if dst == transit_as {
            continue;
        }
        let table = core.bgp(dst, None);
        let mut transits = false;
        for &src in sources {
            if src == dst {
                continue;
            }
            if let Some(path) = table.path_from(src, &core.graph) {
                // Transit role: strictly interior on the path.
                if path.len() > 2 && path[1..path.len() - 1].contains(&transit_as) {
                    transits = true;
                    break;
                }
            }
        }
        if !transits {
            continue;
        }
        affected.insert(dst);
        // Is there an alternative with the AS excluded entirely?
        let excluded = core.bgp(dst, Some(transit_as));
        if sources
            .iter()
            .any(|&src| src != dst && excluded.reachable(src))
        {
            avoidable.insert(dst);
        }
    }

    AvoidanceStudy {
        transit_as,
        affected_destinations: affected.len(),
        avoidable: avoidable.len(),
        unavoidable: affected.len() - avoidable.len(),
    }
}

/// Candidate sources for the study: stub ASes (edge senders), capped.
pub fn sample_sources(internet: &Internet, cap: usize) -> Vec<u32> {
    internet
        .graph()
        .nodes
        .iter()
        .enumerate()
        .filter(|(_, node)| node.tier == Tier::Stub)
        .map(|(id, _)| id as u32)
        .step_by(3)
        .take(cap)
        .collect()
}

/// Candidate destinations: a spread over all ASes, capped.
pub fn sample_destinations(internet: &Internet, cap: usize) -> Vec<u32> {
    let total = internet.graph().len();
    (0..total as u32)
        .step_by((total / cap.max(1)).max(1))
        .take(cap)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfp_topo::Scale;

    #[test]
    fn study_counts_are_consistent() {
        let internet = Internet::generate(Scale::tiny());
        let sources = sample_sources(&internet, 8);
        let destinations = sample_destinations(&internet, 24);
        assert!(!sources.is_empty());
        assert!(!destinations.is_empty());
        // Scrutinise a tier-1 AS: it certainly transits something.
        let study = avoidance_study(&internet, 0, &sources, &destinations);
        assert_eq!(
            study.affected_destinations,
            study.avoidable + study.unavoidable
        );
    }

    #[test]
    fn avoidable_paths_really_avoid() {
        let internet = Internet::generate(Scale::tiny());
        let core = internet.core();
        let sources = sample_sources(&internet, 6);
        let destinations = sample_destinations(&internet, 16);
        let transit = 1u32;
        let study = avoidance_study(&internet, transit, &sources, &destinations);
        if study.avoidable > 0 {
            // Spot-check: recomputing with exclusion yields paths without
            // the transit AS.
            for &dst in &destinations {
                let excluded = core.bgp(dst, Some(transit));
                for &src in &sources {
                    if src == dst {
                        continue;
                    }
                    if let Some(path) = excluded.path_from(src, &core.graph) {
                        assert!(!path[1..path.len().saturating_sub(1)].contains(&transit));
                    }
                }
            }
        }
    }
}
