//! Tiny JSON emitter **and parser** for artefacts and the query wire
//! protocol.
//!
//! The build environment has no serde, so the handful of places that emit
//! JSON (per-experiment report files, `BENCH_campaign.json`, the
//! `vendor-queryd` line protocol) share this order-preserving object
//! builder, and the places that *consume* JSON (the query daemon, the
//! load generator merging `BENCH_campaign.json`) share the [`parse`]
//! function and its [`JsonValue`] tree. Output is always valid JSON:
//! strings are escaped per RFC 8259 and non-finite floats become `null`.
//! Because query strings are echoed back over the wire, [`escape`] also
//! escapes U+2028/U+2029 (valid raw in JSON, but line terminators to
//! JavaScript consumers) so emitted lines survive every line-delimited
//! transport.

/// Escape a string for inclusion inside JSON quotes.
pub fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            // JSON allows these raw, but they terminate lines in JS and in
            // some line-delimited framings; emit them escaped so one JSON
            // document is always exactly one line.
            '\u{2028}' => out.push_str("\\u2028"),
            '\u{2029}' => out.push_str("\\u2029"),
            c => out.push(c),
        }
    }
    out
}

/// Format a float as a JSON number (`null` for NaN/infinity).
pub fn number(value: f64) -> String {
    if value.is_finite() {
        format!("{value}")
    } else {
        "null".to_string()
    }
}

/// An insertion-ordered JSON object under construction.
#[derive(Debug, Default)]
pub struct JsonBuilder {
    fields: Vec<(String, String)>,
}

impl JsonBuilder {
    /// Start an empty object.
    pub fn object() -> Self {
        JsonBuilder::default()
    }

    /// Add a string field.
    pub fn string(&mut self, key: &str, value: &str) -> &mut Self {
        self.raw(key, format!("\"{}\"", escape(value)))
    }

    /// Add a numeric field.
    pub fn number(&mut self, key: &str, value: f64) -> &mut Self {
        self.raw(key, number(value))
    }

    /// Add an integer field.
    pub fn integer(&mut self, key: &str, value: u64) -> &mut Self {
        self.raw(key, value.to_string())
    }

    /// Add an already-serialised value.
    pub fn raw(&mut self, key: &str, value: String) -> &mut Self {
        self.fields.push((key.to_string(), value));
        self
    }

    /// Add an array of strings.
    pub fn string_array(&mut self, key: &str, values: &[String]) -> &mut Self {
        let rendered: Vec<String> = values
            .iter()
            .map(|v| format!("\"{}\"", escape(v)))
            .collect();
        self.raw(key, format!("[{}]", rendered.join(", ")))
    }

    /// Add an array of string arrays (table rows).
    pub fn nested_string_arrays(&mut self, key: &str, rows: &[Vec<String>]) -> &mut Self {
        let rendered: Vec<String> = rows
            .iter()
            .map(|row| {
                let cells: Vec<String> = row.iter().map(|c| format!("\"{}\"", escape(c))).collect();
                format!("[{}]", cells.join(", "))
            })
            .collect();
        self.raw(key, format!("[{}]", rendered.join(", ")))
    }

    /// Add an array of (x, y) pairs, each as a two-element array.
    pub fn point_array(&mut self, key: &str, points: &[(f64, f64)]) -> &mut Self {
        let rendered: Vec<String> = points
            .iter()
            .map(|&(x, y)| format!("[{}, {}]", number(x), number(y)))
            .collect();
        self.raw(key, format!("[{}]", rendered.join(", ")))
    }

    /// Add an array of already-serialised values.
    pub fn raw_array<I: IntoIterator<Item = String>>(&mut self, key: &str, values: I) -> &mut Self {
        let rendered: Vec<String> = values.into_iter().collect();
        self.raw(key, format!("[{}]", rendered.join(", ")))
    }

    /// Render compactly (`{"k": v, ...}`).
    pub fn finish(&self) -> String {
        let fields: Vec<String> = self
            .fields
            .iter()
            .map(|(key, value)| format!("\"{}\": {}", escape(key), value))
            .collect();
        format!("{{{}}}", fields.join(", "))
    }

    /// Render with one field per line.
    pub fn finish_pretty(&self) -> String {
        let fields: Vec<String> = self
            .fields
            .iter()
            .map(|(key, value)| format!("  \"{}\": {}", escape(key), value))
            .collect();
        format!("{{\n{}\n}}", fields.join(",\n"))
    }
}

/// A parsed JSON document.
///
/// Objects preserve insertion order (mirroring [`JsonBuilder`]), so a
/// parse → edit → [`JsonValue::render`] round trip keeps field order —
/// which is what lets the query load generator splice a `query_engine`
/// phase into an existing `BENCH_campaign.json` without reshuffling it.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`; integers beyond 2^53 lose
    /// precision, which none of our artefacts approach).
    Number(f64),
    /// A decoded string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in document order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object field lookup (first match; `None` for non-objects).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields
                .iter()
                .find(|(name, _)| name == key)
                .map(|(_, value)| value),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(text) => Some(text),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(value) => Some(*value),
            _ => None,
        }
    }

    /// The numeric payload as an unsigned integer (rejects negatives and
    /// non-integral values).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(value) if *value >= 0.0 && value.fract() == 0.0 => {
                Some(*value as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(value) => Some(*value),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The field list, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Mutable field lookup / insertion on an object: replaces the value
    /// of an existing key or appends a new field. `None` for non-objects.
    pub fn set(&mut self, key: &str, value: JsonValue) -> Option<()> {
        match self {
            JsonValue::Object(fields) => {
                match fields.iter_mut().find(|(name, _)| name == key) {
                    Some((_, slot)) => *slot = value,
                    None => fields.push((key.to_string(), value)),
                }
                Some(())
            }
            _ => None,
        }
    }

    /// Render compactly; guaranteed to re-parse to an equal tree.
    pub fn render(&self) -> String {
        match self {
            JsonValue::Null => "null".to_string(),
            JsonValue::Bool(value) => value.to_string(),
            JsonValue::Number(value) => number(*value),
            JsonValue::String(text) => format!("\"{}\"", escape(text)),
            JsonValue::Array(items) => {
                let rendered: Vec<String> = items.iter().map(JsonValue::render).collect();
                format!("[{}]", rendered.join(", "))
            }
            JsonValue::Object(fields) => {
                let rendered: Vec<String> = fields
                    .iter()
                    .map(|(key, value)| format!("\"{}\": {}", escape(key), value.render()))
                    .collect();
                format!("{{{}}}", rendered.join(", "))
            }
        }
    }
}

/// A parse failure, with the byte offset it was detected at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Nesting depth past which [`parse`] rejects the document rather than
/// risking the recursive descent's stack (a `[[[[…` bomb on the wire).
const MAX_DEPTH: usize = 128;

/// Parse one JSON document. Trailing non-whitespace input is an error, so
/// exactly one value per protocol line.
pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.value(0)?;
    parser.skip_whitespace();
    if parser.pos < parser.bytes.len() {
        return Err(parser.error("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("invalid literal (expected '{word}')")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.error("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.error("unexpected character")),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.value(depth + 1)?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(byte) = self.peek() else {
                return Err(self.error("unterminated string"));
            };
            match byte {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    out.push(self.escape_sequence()?);
                }
                0x00..=0x1f => return Err(self.error("raw control character in string")),
                _ => {
                    // Copy the whole run of ordinary bytes up to the next
                    // quote, escape or control character in one step
                    // (validating only that chunk keeps parsing linear —
                    // this path now sees untrusted network input).
                    let start = self.pos;
                    while let Some(&byte) = self.bytes.get(self.pos) {
                        if matches!(byte, b'"' | b'\\' | 0x00..=0x1f) {
                            break;
                        }
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .expect("input was a str and chunk ends on an ASCII boundary");
                    out.push_str(chunk);
                }
            }
        }
    }

    fn escape_sequence(&mut self) -> Result<char, JsonError> {
        let Some(byte) = self.peek() else {
            return Err(self.error("unterminated escape"));
        };
        self.pos += 1;
        Ok(match byte {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'b' => '\u{8}',
            b'f' => '\u{c}',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'u' => return self.unicode_escape(),
            _ => return Err(self.error("invalid escape character")),
        })
    }

    fn hex4(&mut self) -> Result<u16, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .ok()
            .and_then(|digits| u16::from_str_radix(digits, 16).ok())
            .ok_or_else(|| self.error("invalid \\u escape digits"))?;
        self.pos = end;
        Ok(hex)
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let unit = self.hex4()?;
        // Surrogate pairs arrive as two consecutive \uXXXX escapes.
        if (0xd800..0xdc00).contains(&unit) {
            if self.peek() == Some(b'\\') && self.bytes.get(self.pos + 1) == Some(&b'u') {
                self.pos += 2;
                let low = self.hex4()?;
                if !(0xdc00..0xe000).contains(&low) {
                    return Err(self.error("invalid low surrogate"));
                }
                let code = 0x10000 + ((u32::from(unit) - 0xd800) << 10) + (u32::from(low) - 0xdc00);
                return char::from_u32(code).ok_or_else(|| self.error("invalid surrogate pair"));
            }
            return Err(self.error("lone high surrogate"));
        }
        if (0xdc00..0xe000).contains(&unit) {
            return Err(self.error("lone low surrogate"));
        }
        char::from_u32(u32::from(unit)).ok_or_else(|| self.error("invalid \\u escape"))
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>()
            .ok()
            .filter(|value| value.is_finite())
            .map(JsonValue::Number)
            .ok_or_else(|| self.error("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_special_characters() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("x\u{2028}y\u{2029}z"), "x\\u2028y\\u2029z");
    }

    #[test]
    fn numbers_render_as_json() {
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(2.0), "2");
        assert_eq!(number(f64::NAN), "null");
    }

    #[test]
    fn object_preserves_insertion_order() {
        let mut json = JsonBuilder::object();
        json.string("b", "x").integer("a", 3);
        assert_eq!(json.finish(), "{\"b\": \"x\", \"a\": 3}");
    }

    #[test]
    fn parses_every_value_kind() {
        let doc = r#"{"a": null, "b": [true, false, -2.5e1], "c": {"d": "x"}, "e": 3}"#;
        let value = parse(doc).unwrap();
        assert_eq!(value.get("a"), Some(&JsonValue::Null));
        let items = value.get("b").unwrap().as_array().unwrap();
        assert_eq!(items[0].as_bool(), Some(true));
        assert_eq!(items[2].as_f64(), Some(-25.0));
        assert_eq!(
            value.get("c").unwrap().get("d").unwrap().as_str(),
            Some("x")
        );
        assert_eq!(value.get("e").unwrap().as_u64(), Some(3));
        assert_eq!(value.get("missing"), None);
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "tru",
            "1 2",
            "\"unterminated",
            "\"bad \\q escape\"",
            "\"\u{1}\"",          // raw control char inside a string
            "\"\\ud800\"",        // lone high surrogate
            "\"\\udc00\"",        // lone low surrogate
            "\"\\ud800\\u0041\"", // high surrogate + non-surrogate
            "\"\\u12g4\"",
            "nan",
            "--1",
        ] {
            assert!(parse(bad).is_err(), "accepted malformed input {bad:?}");
        }
        // Depth bomb: rejected, not a stack overflow.
        let bomb = "[".repeat(4096) + &"]".repeat(4096);
        assert!(parse(&bomb).is_err());
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty: Vec<String> = (0u32..0x20)
            .map(|code| {
                let c = char::from_u32(code).unwrap();
                format!("a{c}b")
            })
            .chain(
                [
                    "plain ascii",
                    "quote \" backslash \\ slash /",
                    "newline \n return \r tab \t",
                    "unicode: émoji 🦀 中文 \u{2028} \u{2029}",
                    "\"}{][,:",
                    "{\"injected\": true}",
                    "\\u0041 literal escape text",
                    "",
                ]
                .map(str::to_string),
            )
            .collect();
        for original in &nasty {
            let wire = format!("\"{}\"", escape(original));
            // The escaped form never carries a raw line break — one
            // document is one protocol line.
            assert!(!wire.contains('\n') && !wire.contains('\r'), "{wire:?}");
            let parsed = parse(&wire).unwrap();
            assert_eq!(parsed.as_str(), Some(original.as_str()), "{wire:?}");
        }
    }

    #[test]
    fn render_round_trips() {
        let doc = r#"{"s": "a\u0001\n\"b\\", "n": [1, 2.5, -3], "o": {"k": null}, "t": true}"#;
        let value = parse(doc).unwrap();
        let rendered = value.render();
        assert_eq!(parse(&rendered).unwrap(), value);
        // Builder output parses back too.
        let mut json = JsonBuilder::object();
        json.string("key", "va\"l\nue\u{2028}").number("x", 1.5);
        assert_eq!(
            parse(&json.finish()).unwrap().get("key").unwrap().as_str(),
            Some("va\"l\nue\u{2028}")
        );
    }

    #[test]
    fn parse_decodes_surrogate_pairs() {
        assert_eq!(parse("\"\\ud83e\\udd80\"").unwrap().as_str(), Some("🦀"));
        assert_eq!(parse("\"\\u00e9\"").unwrap().as_str(), Some("é"));
    }

    #[test]
    fn set_replaces_or_appends_fields() {
        let mut value = parse(r#"{"a": 1, "b": 2}"#).unwrap();
        value.set("b", JsonValue::Number(9.0)).unwrap();
        value.set("c", JsonValue::String("new".into())).unwrap();
        assert_eq!(value.render(), r#"{"a": 1, "b": 9, "c": "new"}"#);
        assert!(JsonValue::Null.set("x", JsonValue::Null).is_none());
    }
}
