//! Tiny JSON emitter for report and benchmark artefacts.
//!
//! The build environment has no serde, so the handful of places that emit
//! JSON (per-experiment report files, `BENCH_campaign.json`) share this
//! order-preserving object builder. Output is always valid JSON: strings
//! are escaped per RFC 8259 and non-finite floats become `null`.

/// Escape a string for inclusion inside JSON quotes.
pub fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Format a float as a JSON number (`null` for NaN/infinity).
pub fn number(value: f64) -> String {
    if value.is_finite() {
        format!("{value}")
    } else {
        "null".to_string()
    }
}

/// An insertion-ordered JSON object under construction.
#[derive(Debug, Default)]
pub struct JsonBuilder {
    fields: Vec<(String, String)>,
}

impl JsonBuilder {
    /// Start an empty object.
    pub fn object() -> Self {
        JsonBuilder::default()
    }

    /// Add a string field.
    pub fn string(&mut self, key: &str, value: &str) -> &mut Self {
        self.raw(key, format!("\"{}\"", escape(value)))
    }

    /// Add a numeric field.
    pub fn number(&mut self, key: &str, value: f64) -> &mut Self {
        self.raw(key, number(value))
    }

    /// Add an integer field.
    pub fn integer(&mut self, key: &str, value: u64) -> &mut Self {
        self.raw(key, value.to_string())
    }

    /// Add an already-serialised value.
    pub fn raw(&mut self, key: &str, value: String) -> &mut Self {
        self.fields.push((key.to_string(), value));
        self
    }

    /// Add an array of strings.
    pub fn string_array(&mut self, key: &str, values: &[String]) -> &mut Self {
        let rendered: Vec<String> = values
            .iter()
            .map(|v| format!("\"{}\"", escape(v)))
            .collect();
        self.raw(key, format!("[{}]", rendered.join(", ")))
    }

    /// Add an array of string arrays (table rows).
    pub fn nested_string_arrays(&mut self, key: &str, rows: &[Vec<String>]) -> &mut Self {
        let rendered: Vec<String> = rows
            .iter()
            .map(|row| {
                let cells: Vec<String> = row.iter().map(|c| format!("\"{}\"", escape(c))).collect();
                format!("[{}]", cells.join(", "))
            })
            .collect();
        self.raw(key, format!("[{}]", rendered.join(", ")))
    }

    /// Add an array of (x, y) pairs, each as a two-element array.
    pub fn point_array(&mut self, key: &str, points: &[(f64, f64)]) -> &mut Self {
        let rendered: Vec<String> = points
            .iter()
            .map(|&(x, y)| format!("[{}, {}]", number(x), number(y)))
            .collect();
        self.raw(key, format!("[{}]", rendered.join(", ")))
    }

    /// Add an array of already-serialised values.
    pub fn raw_array<I: IntoIterator<Item = String>>(&mut self, key: &str, values: I) -> &mut Self {
        let rendered: Vec<String> = values.into_iter().collect();
        self.raw(key, format!("[{}]", rendered.join(", ")))
    }

    /// Render compactly (`{"k": v, ...}`).
    pub fn finish(&self) -> String {
        let fields: Vec<String> = self
            .fields
            .iter()
            .map(|(key, value)| format!("\"{}\": {}", escape(key), value))
            .collect();
        format!("{{{}}}", fields.join(", "))
    }

    /// Render with one field per line.
    pub fn finish_pretty(&self) -> String {
        let fields: Vec<String> = self
            .fields
            .iter()
            .map(|(key, value)| format!("  \"{}\": {}", escape(key), value))
            .collect();
        format!("{{\n{}\n}}", fields.join(",\n"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_special_characters() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn numbers_render_as_json() {
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(2.0), "2");
        assert_eq!(number(f64::NAN), "null");
    }

    #[test]
    fn object_preserves_insertion_order() {
        let mut json = JsonBuilder::object();
        json.string("b", "x").integer("a", 3);
        assert_eq!(json.finish(), "{\"b\": \"x\", \"a\": 3}");
    }
}
