//! The scenario builder: one `World` = one fully measured Internet.
//!
//! Building a [`World`] performs the entire study once at a given scale:
//! generate the Internet, collect the five RIPE-style snapshots and the
//! ITDK-style dataset, scan all six target populations with the LFP
//! schedule, label via SNMPv3, and finalise the union signature set.
//! Every experiment then reads from this shared state, exactly as the
//! paper's analyses all consume the same measurement campaign.
//!
//! ## Parallelism and determinism
//!
//! Collection and scanning dominate the campaign wall-clock, and both
//! decompose into per-dataset units. Each unit runs against its own
//! [`lfp_net::Network::fork`] — a private copy of every device's mutable
//! state — so no unit observes another's IPID-counter history. That makes
//! the units order-independent: [`World::build`] fans them out across
//! scoped threads, [`World::build_serial`] runs the same units one at a
//! time with single-shard scans, and both produce bit-identical worlds
//! (asserted by `tests/determinism.rs`).
//!
//! ## The campaign cache
//!
//! The ~30 experiment generators repeatedly need the same three derived
//! maps per dataset (full classification, unique-LFP vendors, SNMPv3
//! vendors). A [`World`] memoises them behind `OnceLock`s, so the first
//! experiment to ask pays the classification cost and the rest share the
//! result — which is what makes `run_all_parallel` scale.

use crate::path_corpus::PathCorpus;
use lfp_core::pipeline::{scan_dataset, DatasetScan};
use lfp_core::signature::{Classification, SignatureDb, SignatureSet};
use lfp_stack::vendor::Vendor;
use lfp_topo::datasets::{
    build_itdk_on, measure_ripe_snapshot, plan_ripe_snapshots, ItdkDataset, RipeSnapshot,
};
use lfp_topo::{Internet, Scale};
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Wall-clock seconds spent in each phase of one campaign build.
#[derive(Debug, Clone, Copy, Default)]
pub struct CampaignTimings {
    /// Internet generation (topology, vendors, devices).
    pub generate: f64,
    /// Dataset collection: RIPE-style traceroute snapshots + ITDK sweep.
    pub collect: f64,
    /// LFP scans of all six target populations.
    pub scan: f64,
    /// Union signature database merge + finalisation.
    pub finalize: f64,
    /// Warming the campaign cache: classification of every dataset.
    pub classify: f64,
    /// Building the path corpus (classify + intern + index every trace).
    pub path_corpus: f64,
}

impl CampaignTimings {
    /// Total build time across phases.
    pub fn total(&self) -> f64 {
        self.generate + self.collect + self.scan + self.finalize + self.classify + self.path_corpus
    }
}

/// Per-dataset memoised derived maps (see the module docs).
#[derive(Debug, Default)]
struct ScanCache {
    classification: OnceLock<Arc<HashMap<Ipv4Addr, Classification>>>,
    lfp_vendors: OnceLock<Arc<HashMap<Ipv4Addr, Vendor>>>,
    snmp_vendors: OnceLock<Arc<HashMap<Ipv4Addr, Vendor>>>,
}

/// A fully measured synthetic Internet.
pub struct World {
    /// Sizing used.
    pub scale: Scale,
    /// The Internet (ground truth + live network).
    pub internet: Internet,
    /// RIPE-style snapshots (RIPE-1 … RIPE-n).
    pub ripe: Vec<RipeSnapshot>,
    /// The ITDK-style dataset.
    pub itdk: ItdkDataset,
    /// LFP scans of each RIPE snapshot, index-aligned with `ripe`.
    pub ripe_scans: Vec<DatasetScan>,
    /// LFP scan of the ITDK target set.
    pub itdk_scan: DatasetScan,
    /// Union signature database over all labelled data.
    pub union_db: SignatureDb,
    /// Finalised signature set at the scale's occurrence threshold.
    pub set: SignatureSet,
    /// Memoised per-dataset classification maps, index-aligned with
    /// `ripe_scans` plus one trailing slot for `itdk_scan`.
    cache: Vec<ScanCache>,
    /// Memoised path corpus and its build wall-clock. Behind an `Arc` so
    /// serving layers can hold (and epoch-extend) the corpus without
    /// borrowing the world.
    path_corpus: OnceLock<(Arc<PathCorpus>, f64)>,
}

impl World {
    /// Run the full campaign at the given scale, fanning dataset
    /// collection and scanning out across all available cores. Derived
    /// classification maps stay lazy (first use computes, the cache
    /// shares); use [`World::build_instrumented`] to pre-warm them.
    pub fn build(scale: Scale) -> World {
        Self::build_with(scale, true, false).0
    }

    /// Run the full campaign strictly sequentially with single-shard
    /// scans — the reference path parallel builds are verified against,
    /// and the baseline the bench harness compares to.
    pub fn build_serial(scale: Scale) -> World {
        Self::build_with(scale, false, false).0
    }

    /// Build with per-phase wall-clock timings (the bench harness's
    /// entry point). `parallel` selects the fan-out or the serial path;
    /// `warm` additionally classifies every dataset up front (the
    /// `classify` phase) — worth it before a full registry run, wasted
    /// before a single experiment.
    pub fn build_instrumented(
        scale: Scale,
        parallel: bool,
        warm: bool,
    ) -> (World, CampaignTimings) {
        Self::build_with(scale, parallel, warm)
    }

    fn build_with(scale: Scale, parallel: bool, warm: bool) -> (World, CampaignTimings) {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        let mut timings = CampaignTimings::default();

        let phase_start = Instant::now();
        let internet = Internet::generate(scale);
        timings.generate = phase_start.elapsed().as_secs_f64();

        // Collection: each snapshot (and the ITDK sweep) measures its own
        // network fork, so the units commute and may run concurrently.
        let phase_start = Instant::now();
        let plans = plan_ripe_snapshots(&internet);
        let (ripe, itdk) = if parallel {
            std::thread::scope(|scope| {
                let snapshot_handles: Vec<_> = plans
                    .iter()
                    .map(|plan| {
                        let fork = internet.network().fork();
                        let internet = &internet;
                        scope.spawn(move || measure_ripe_snapshot(internet, &fork, plan))
                    })
                    .collect();
                let itdk_handle = {
                    let fork = internet.network().fork();
                    let internet = &internet;
                    scope.spawn(move || build_itdk_on(internet, &fork))
                };
                let ripe: Vec<RipeSnapshot> = snapshot_handles
                    .into_iter()
                    .map(|handle| handle.join().expect("snapshot collection panicked"))
                    .collect();
                (ripe, itdk_handle.join().expect("ITDK collection panicked"))
            })
        } else {
            let ripe: Vec<RipeSnapshot> = plans
                .iter()
                .map(|plan| measure_ripe_snapshot(&internet, &internet.network().fork(), plan))
                .collect();
            let itdk = build_itdk_on(&internet, &internet.network().fork());
            (ripe, itdk)
        };
        timings.collect = phase_start.elapsed().as_secs_f64();

        // Scanning: one forked network per dataset; each scan is further
        // sharded internally by the zmap-style scanner. In parallel mode
        // the shard budget is split across the concurrent scans (with 2×
        // headroom so the phase tail, when only the largest dataset is
        // left, still spreads over the cores) instead of spawning
        // datasets × cores threads.
        let dataset_count = ripe.len() + 1;
        let shards = if parallel {
            ((cores * 2).div_ceil(dataset_count)).max(1)
        } else {
            1
        };
        let phase_start = Instant::now();
        let scan_jobs: Vec<(&str, Vec<Ipv4Addr>)> = ripe
            .iter()
            .map(|snapshot| {
                (
                    snapshot.name.as_str(),
                    snapshot.router_ips.iter().copied().collect(),
                )
            })
            .chain([(
                itdk.name.as_str(),
                itdk.router_ips.iter().copied().collect(),
            )])
            .collect();
        let mut scans: Vec<DatasetScan> = if parallel {
            std::thread::scope(|scope| {
                let handles: Vec<_> = scan_jobs
                    .iter()
                    .map(|(name, targets)| {
                        let fork = internet.network().fork();
                        scope.spawn(move || scan_dataset(&fork, name, targets, shards))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|handle| handle.join().expect("dataset scan panicked"))
                    .collect()
            })
        } else {
            scan_jobs
                .iter()
                .map(|(name, targets)| {
                    scan_dataset(&internet.network().fork(), name, targets, shards)
                })
                .collect()
        };
        let itdk_scan = scans.pop().expect("ITDK scan present");
        let ripe_scans = scans;
        timings.scan = phase_start.elapsed().as_secs_f64();

        // Finalisation: union the labelled databases, build the classifier.
        let phase_start = Instant::now();
        let world = World::assemble(scale, internet, ripe, itdk, ripe_scans, itdk_scan);
        timings.finalize = phase_start.elapsed().as_secs_f64();

        // Classification: optionally warm the campaign cache for every
        // dataset so experiments start from shared, fully-classified
        // state, then build the path corpus on top of it. The serial
        // reference path builds single-shard, so the `path_corpus` phase
        // participates in the serial-vs-parallel speedup comparison.
        if warm {
            let phase_start = Instant::now();
            world.warm_cache(parallel);
            timings.classify = phase_start.elapsed().as_secs_f64();
            let shards = if parallel {
                lfp_net::ScanConfig::default().shards
            } else {
                std::num::NonZeroUsize::new(1).expect("1 is non-zero")
            };
            world.path_corpus_with_shards(shards);
            timings.path_corpus = world.path_corpus_seconds();
        }

        (world, timings)
    }

    /// Assemble a world from already-measured parts: union the labelled
    /// signature databases, finalise the classifier at the scale's
    /// threshold, and allocate fresh (empty) per-dataset cache slots.
    ///
    /// This is the tail of every build — and the constructor `lfp-store`
    /// uses when loading a persisted campaign: finalisation is a cheap,
    /// order-independent fold over the labelled rows, so a loaded world's
    /// classifier equals the originally-built one without re-classifying
    /// a single target.
    pub fn assemble(
        scale: Scale,
        internet: Internet,
        ripe: Vec<RipeSnapshot>,
        itdk: ItdkDataset,
        ripe_scans: Vec<DatasetScan>,
        itdk_scan: DatasetScan,
    ) -> World {
        let mut union_db = SignatureDb::new();
        for scan in &ripe_scans {
            union_db.merge(&scan.signature_db());
        }
        union_db.merge(&itdk_scan.signature_db());
        let set = union_db.finalize(scale.occurrence_threshold);
        let cache = (0..=ripe_scans.len())
            .map(|_| ScanCache::default())
            .collect();
        World {
            scale,
            internet,
            ripe,
            itdk,
            ripe_scans,
            itdk_scan,
            union_db,
            set,
            cache,
            path_corpus: OnceLock::new(),
        }
    }

    /// Seed the memoised unique-LFP vendor map of one dataset slot
    /// (`0..ripe_scans.len()` for the snapshots, `ripe_scans.len()` for
    /// ITDK) with an already-computed map — the store's way of restoring
    /// classification results without re-running the classifier. Returns
    /// `false` if the slot does not exist or was already populated.
    pub fn seed_lfp_vendor_map(&self, slot: usize, map: Arc<HashMap<Ipv4Addr, Vendor>>) -> bool {
        match self.cache.get(slot) {
            Some(entry) => entry.lfp_vendors.set(map).is_ok(),
            None => false,
        }
    }

    /// Seed the memoised path corpus with an already-built one (the
    /// store's way of restoring it without re-classifying any trace).
    /// Returns `false` if a corpus was already built or seeded.
    pub fn seed_path_corpus(&self, corpus: Arc<PathCorpus>, seconds: f64) -> bool {
        self.path_corpus.set((corpus, seconds)).is_ok()
    }

    /// Populate every per-dataset cache slot (idempotent).
    fn warm_cache(&self, parallel: bool) {
        let scans: Vec<&DatasetScan> = self.all_scans().collect();
        if parallel {
            std::thread::scope(|scope| {
                for scan in scans {
                    scope.spawn(move || {
                        let _ = self.classification_map(scan);
                        let _ = self.lfp_vendor_map(scan);
                        let _ = self.snmp_vendor_map(scan);
                    });
                }
            });
        } else {
            for scan in scans {
                let _ = self.classification_map(scan);
                let _ = self.lfp_vendor_map(scan);
                let _ = self.snmp_vendor_map(scan);
            }
        }
    }

    /// Every dataset scan, RIPE snapshots first, then ITDK.
    pub fn all_scans(&self) -> impl Iterator<Item = &DatasetScan> {
        self.ripe_scans.iter().chain([&self.itdk_scan])
    }

    /// The path corpus over every trace this world holds (all RIPE
    /// snapshots plus derived ITDK paths). Built once on first use with
    /// the default shard budget; everyone after shares the result — the
    /// path analogue of the classification cache.
    pub fn path_corpus(&self) -> &PathCorpus {
        self.path_corpus_with_shards(lfp_net::ScanConfig::default().shards)
    }

    /// The memoised path corpus, built with an explicit shard count if it
    /// does not exist yet (shard count never changes the result, only the
    /// build wall-clock — which `path_corpus_seconds` reports).
    pub fn path_corpus_with_shards(&self, shards: std::num::NonZeroUsize) -> &PathCorpus {
        let (corpus, _) = self.path_corpus.get_or_init(|| {
            let start = Instant::now();
            let corpus = PathCorpus::build_with_shards(self, shards);
            (Arc::new(corpus), start.elapsed().as_secs_f64())
        });
        corpus
    }

    /// A shared handle to the memoised corpus (built on first use) —
    /// what the serving layer holds so epoch swaps never borrow the
    /// world.
    pub fn path_corpus_arc(&self) -> Arc<PathCorpus> {
        let _ = self.path_corpus();
        let (corpus, _) = self.path_corpus.get().expect("corpus just built");
        Arc::clone(corpus)
    }

    /// The corpus if it has been built, without triggering a build (for
    /// reporting harnesses that must not distort timings).
    pub fn path_corpus_if_built(&self) -> Option<&PathCorpus> {
        self.path_corpus.get().map(|(corpus, _)| &**corpus)
    }

    /// Wall-clock seconds the corpus build took (0 when not yet built) —
    /// the `path_corpus` phase of `BENCH_campaign.json`.
    pub fn path_corpus_seconds(&self) -> f64 {
        self.path_corpus
            .get()
            .map(|(_, seconds)| *seconds)
            .unwrap_or(0.0)
    }

    /// The cache slot for one of this world's scans, if `scan` is one.
    ///
    /// RIPE slots are matched by identity *and* bounded to the slots
    /// allocated at build time: if a caller has appended to the public
    /// `ripe_scans` after the build, the extra scans classify uncached
    /// rather than aliasing the ITDK slot.
    fn cache_slot(&self, scan: &DatasetScan) -> Option<&ScanCache> {
        if std::ptr::eq(scan, &self.itdk_scan) {
            return self.cache.last();
        }
        self.ripe_scans
            .iter()
            .position(|candidate| std::ptr::eq(candidate, scan))
            .filter(|index| index + 1 < self.cache.len())
            .map(|index| &self.cache[index])
    }

    /// The most recent RIPE snapshot and its scan (the paper's RIPE-5,
    /// used for IP- and path-level analyses).
    pub fn latest_ripe(&self) -> (&RipeSnapshot, &DatasetScan) {
        (
            self.ripe.last().expect("at least one snapshot"),
            self.ripe_scans.last().expect("at least one scan"),
        )
    }

    /// Classify every target of a scan; returns ip → classification.
    ///
    /// Memoised per dataset: the first caller computes, everyone after
    /// shares the `Arc`. Scans not belonging to this world classify
    /// uncached.
    pub fn classification_map(&self, scan: &DatasetScan) -> Arc<HashMap<Ipv4Addr, Classification>> {
        let compute = || {
            Arc::new(
                scan.targets
                    .iter()
                    .zip(&scan.vectors)
                    .map(|(&ip, vector)| (ip, self.set.classify(vector)))
                    .collect::<HashMap<_, _>>(),
            )
        };
        match self.cache_slot(scan) {
            Some(slot) => Arc::clone(slot.classification.get_or_init(compute)),
            None => compute(),
        }
    }

    /// ip → vendor for unique (full or partial) LFP matches.
    ///
    /// Memoised per dataset; derived from the cached classification map,
    /// so the signature index is consulted once per dataset, not once per
    /// experiment.
    pub fn lfp_vendor_map(&self, scan: &DatasetScan) -> Arc<HashMap<Ipv4Addr, Vendor>> {
        let compute = || {
            let classifications = self.classification_map(scan);
            Arc::new(
                classifications
                    .iter()
                    .filter_map(|(&ip, classification)| {
                        classification.unique_vendor().map(|vendor| (ip, vendor))
                    })
                    .collect::<HashMap<_, _>>(),
            )
        };
        match self.cache_slot(scan) {
            Some(slot) => Arc::clone(slot.lfp_vendors.get_or_init(compute)),
            None => compute(),
        }
    }

    /// ip → vendor for SNMPv3 labels (the baseline technique). Memoised
    /// per dataset.
    pub fn snmp_vendor_map(&self, scan: &DatasetScan) -> Arc<HashMap<Ipv4Addr, Vendor>> {
        let compute = || {
            Arc::new(
                scan.targets
                    .iter()
                    .zip(&scan.labels)
                    .filter_map(|(&ip, label)| label.map(|vendor| (ip, vendor)))
                    .collect::<HashMap<_, _>>(),
            )
        };
        match self.cache_slot(scan) {
            Some(slot) => Arc::clone(slot.snmp_vendors.get_or_init(compute)),
            None => compute(),
        }
    }

    /// All labelled (vector, vendor) pairs across every dataset — the
    /// evaluation corpus for Table 8 and the ablations.
    pub fn labeled_corpus(&self) -> Vec<(lfp_core::FeatureVector, Vendor)> {
        let mut corpus = Vec::new();
        for scan in self.all_scans() {
            for (vector, label) in scan.vectors.iter().zip(&scan.labels) {
                if let Some(vendor) = label {
                    corpus.push((*vector, *vendor));
                }
            }
        }
        corpus
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_world_builds_and_is_coherent() {
        let world = World::build(Scale::tiny());
        assert_eq!(world.ripe.len(), world.ripe_scans.len());
        assert!(world.set.unique_count() > 0, "no unique signatures");
        let (_, scan) = world.latest_ripe();
        let lfp = world.lfp_vendor_map(scan);
        let snmp = world.snmp_vendor_map(scan);
        assert!(!lfp.is_empty());
        assert!(!snmp.is_empty());
        // LFP coverage exceeds SNMPv3-only coverage (the headline claim).
        assert!(
            lfp.len() > snmp.len() / 2,
            "LFP found {} vs SNMP {}",
            lfp.len(),
            snmp.len()
        );
        // Unique classifications are accurate against ground truth.
        let mut correct = 0usize;
        let mut wrong = 0usize;
        for (&ip, &vendor) in lfp.iter() {
            let truth = world.internet.truth_of(ip).unwrap().vendor;
            if truth == vendor {
                correct += 1;
            } else {
                wrong += 1;
            }
        }
        let accuracy = correct as f64 / (correct + wrong).max(1) as f64;
        assert!(accuracy > 0.9, "accuracy {accuracy}");
    }

    #[test]
    fn derived_maps_are_memoised_per_dataset() {
        let world = World::build(Scale::tiny());
        let (_, scan) = world.latest_ripe();
        let first = world.lfp_vendor_map(scan);
        let second = world.lfp_vendor_map(scan);
        assert!(Arc::ptr_eq(&first, &second), "same Arc on repeat calls");
        let classification_a = world.classification_map(scan);
        let classification_b = world.classification_map(scan);
        assert!(Arc::ptr_eq(&classification_a, &classification_b));
        let itdk_map = world.lfp_vendor_map(&world.itdk_scan);
        assert!(
            !Arc::ptr_eq(&first, &itdk_map),
            "distinct datasets get distinct cache slots"
        );
    }

    #[test]
    fn foreign_scans_classify_uncached() {
        let world = World::build(Scale::tiny());
        let internet = Internet::generate(Scale::tiny());
        let targets = internet.all_interfaces();
        let foreign = scan_dataset(internet.network(), "foreign", &targets, 2);
        let a = world.classification_map(&foreign);
        let b = world.classification_map(&foreign);
        assert_eq!(a.len(), b.len());
        assert!(!Arc::ptr_eq(&a, &b), "foreign scans must not be cached");
    }

    #[test]
    fn instrumented_build_reports_every_phase() {
        let (world, timings) = World::build_instrumented(Scale::tiny(), true, true);
        assert!(timings.generate > 0.0);
        assert!(timings.collect > 0.0);
        assert!(timings.scan > 0.0);
        assert!(timings.finalize >= 0.0);
        assert!(timings.classify >= 0.0);
        assert!(timings.path_corpus > 0.0, "warm builds report the corpus");
        assert!(timings.total() >= timings.scan);
        assert!(!world.ripe_scans.is_empty());
        assert!(world.path_corpus_seconds() > 0.0);
    }

    #[test]
    fn path_corpus_is_memoised() {
        let world = World::build(Scale::tiny());
        assert_eq!(world.path_corpus_seconds(), 0.0, "lazy until first use");
        let first = world.path_corpus() as *const _;
        let second = world.path_corpus() as *const _;
        assert_eq!(first, second, "same corpus on repeat calls");
        assert!(world.path_corpus_seconds() > 0.0);
    }
}
