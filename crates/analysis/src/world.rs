//! The scenario builder: one `World` = one fully measured Internet.
//!
//! Building a [`World`] performs the entire study once at a given scale:
//! generate the Internet, collect the five RIPE-style snapshots and the
//! ITDK-style dataset, scan all six target populations with the LFP
//! schedule, label via SNMPv3, and finalise the union signature set.
//! Every experiment then reads from this shared state, exactly as the
//! paper's analyses all consume the same measurement campaign.

use lfp_core::pipeline::{scan_dataset, DatasetScan};
use lfp_core::signature::{Classification, SignatureDb, SignatureSet};
use lfp_stack::vendor::Vendor;
use lfp_topo::datasets::{build_itdk, build_ripe_snapshots, ItdkDataset, RipeSnapshot};
use lfp_topo::{Internet, Scale};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// A fully measured synthetic Internet.
pub struct World {
    /// Sizing used.
    pub scale: Scale,
    /// The Internet (ground truth + live network).
    pub internet: Internet,
    /// RIPE-style snapshots (RIPE-1 … RIPE-n).
    pub ripe: Vec<RipeSnapshot>,
    /// The ITDK-style dataset.
    pub itdk: ItdkDataset,
    /// LFP scans of each RIPE snapshot, index-aligned with `ripe`.
    pub ripe_scans: Vec<DatasetScan>,
    /// LFP scan of the ITDK target set.
    pub itdk_scan: DatasetScan,
    /// Union signature database over all labelled data.
    pub union_db: SignatureDb,
    /// Finalised signature set at the scale's occurrence threshold.
    pub set: SignatureSet,
}

impl World {
    /// Run the full campaign at the given scale.
    pub fn build(scale: Scale) -> World {
        let shards = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        let internet = Internet::generate(scale);
        let ripe = build_ripe_snapshots(&internet);
        let itdk = build_itdk(&internet);

        let mut ripe_scans = Vec::with_capacity(ripe.len());
        for snapshot in &ripe {
            let targets: Vec<Ipv4Addr> = snapshot.router_ips.iter().copied().collect();
            ripe_scans.push(scan_dataset(
                internet.network(),
                &snapshot.name,
                &targets,
                shards,
            ));
        }
        let itdk_targets: Vec<Ipv4Addr> = itdk.router_ips.iter().copied().collect();
        let itdk_scan = scan_dataset(internet.network(), &itdk.name, &itdk_targets, shards);

        let mut union_db = SignatureDb::new();
        for scan in &ripe_scans {
            union_db.merge(&scan.signature_db());
        }
        union_db.merge(&itdk_scan.signature_db());
        let set = union_db.finalize(scale.occurrence_threshold);

        World {
            scale,
            internet,
            ripe,
            itdk,
            ripe_scans,
            itdk_scan,
            union_db,
            set,
        }
    }

    /// The most recent RIPE snapshot and its scan (the paper's RIPE-5,
    /// used for IP- and path-level analyses).
    pub fn latest_ripe(&self) -> (&RipeSnapshot, &DatasetScan) {
        (
            self.ripe.last().expect("at least one snapshot"),
            self.ripe_scans.last().expect("at least one scan"),
        )
    }

    /// Classify every target of a scan; returns ip → classification.
    pub fn classification_map(&self, scan: &DatasetScan) -> HashMap<Ipv4Addr, Classification> {
        scan.targets
            .iter()
            .zip(&scan.vectors)
            .map(|(&ip, vector)| (ip, self.set.classify(vector)))
            .collect()
    }

    /// ip → vendor for unique (full or partial) LFP matches.
    pub fn lfp_vendor_map(&self, scan: &DatasetScan) -> HashMap<Ipv4Addr, Vendor> {
        scan.targets
            .iter()
            .zip(&scan.vectors)
            .filter_map(|(&ip, vector)| {
                self.set.classify(vector).unique_vendor().map(|v| (ip, v))
            })
            .collect()
    }

    /// ip → vendor for SNMPv3 labels (the baseline technique).
    pub fn snmp_vendor_map(&self, scan: &DatasetScan) -> HashMap<Ipv4Addr, Vendor> {
        scan.targets
            .iter()
            .zip(&scan.labels)
            .filter_map(|(&ip, label)| label.map(|v| (ip, v)))
            .collect()
    }

    /// All labelled (vector, vendor) pairs across every dataset — the
    /// evaluation corpus for Table 8 and the ablations.
    pub fn labeled_corpus(&self) -> Vec<(lfp_core::FeatureVector, Vendor)> {
        let mut corpus = Vec::new();
        for scan in self.ripe_scans.iter().chain([&self.itdk_scan]) {
            for (vector, label) in scan.vectors.iter().zip(&scan.labels) {
                if let Some(vendor) = label {
                    corpus.push((*vector, *vendor));
                }
            }
        }
        corpus
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_world_builds_and_is_coherent() {
        let world = World::build(Scale::tiny());
        assert_eq!(world.ripe.len(), world.ripe_scans.len());
        assert!(world.set.unique_count() > 0, "no unique signatures");
        let (_, scan) = world.latest_ripe();
        let lfp = world.lfp_vendor_map(scan);
        let snmp = world.snmp_vendor_map(scan);
        assert!(!lfp.is_empty());
        assert!(!snmp.is_empty());
        // LFP coverage exceeds SNMPv3-only coverage (the headline claim).
        assert!(
            lfp.len() > snmp.len() / 2,
            "LFP found {} vs SNMP {}",
            lfp.len(),
            snmp.len()
        );
        // Unique classifications are accurate against ground truth.
        let mut correct = 0usize;
        let mut wrong = 0usize;
        for (&ip, &vendor) in &lfp {
            let truth = world.internet.truth_of(ip).unwrap().vendor;
            if truth == vendor {
                correct += 1;
            } else {
                wrong += 1;
            }
        }
        let accuracy = correct as f64 / (correct + wrong).max(1) as f64;
        assert!(accuracy > 0.9, "accuracy {accuracy}");
    }
}
