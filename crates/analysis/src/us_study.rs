//! US-centric path slicing (paper §6.2): intra-US (both endpoints
//! registered in the US) and inter-US (exactly one endpoint in the US)
//! traceroute subsets, geolocated through the address registry as in the
//! paper.

use lfp_topo::datasets::TraceRecord;
use lfp_topo::Internet;

/// The slice a trace belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UsSlice {
    /// Source and destination both in the US.
    IntraUs,
    /// Exactly one endpoint in the US.
    InterUs,
    /// Neither endpoint in the US.
    Other,
}

impl UsSlice {
    /// Every slice, in code order.
    pub const ALL: [UsSlice; 3] = [UsSlice::IntraUs, UsSlice::InterUs, UsSlice::Other];

    /// Stable one-byte code (the store format's on-disk value).
    pub fn code(self) -> u8 {
        match self {
            UsSlice::IntraUs => 0,
            UsSlice::InterUs => 1,
            UsSlice::Other => 2,
        }
    }

    /// Slice behind a code, if valid.
    pub fn from_code(code: u8) -> Option<UsSlice> {
        UsSlice::ALL.get(code as usize).copied()
    }
}

/// Classify one trace by its endpoints' registry countries.
pub fn slice_of(internet: &Internet, trace: &TraceRecord) -> UsSlice {
    let src_us = internet.is_us(trace.src_as);
    let dst_us = trace.dst_as != u32::MAX && internet.is_us(trace.dst_as);
    match (src_us, dst_us) {
        (true, true) => UsSlice::IntraUs,
        (true, false) | (false, true) => UsSlice::InterUs,
        (false, false) => UsSlice::Other,
    }
}

/// Partition traces into (intra-US, inter-US, other) index lists.
pub fn partition<'a>(
    internet: &Internet,
    traces: &'a [TraceRecord],
) -> (
    Vec<&'a TraceRecord>,
    Vec<&'a TraceRecord>,
    Vec<&'a TraceRecord>,
) {
    let mut intra = Vec::new();
    let mut inter = Vec::new();
    let mut other = Vec::new();
    for trace in traces {
        match slice_of(internet, trace) {
            UsSlice::IntraUs => intra.push(trace),
            UsSlice::InterUs => inter.push(trace),
            UsSlice::Other => other.push(trace),
        }
    }
    (intra, inter, other)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfp_topo::Scale;

    #[test]
    fn partition_is_total_and_exclusive() {
        let internet = Internet::generate(Scale::tiny());
        let snapshots = lfp_topo::build_ripe_snapshots(&internet);
        let traces = &snapshots[0].traces;
        let (intra, inter, other) = partition(&internet, traces);
        assert_eq!(intra.len() + inter.len() + other.len(), traces.len());
        for trace in &intra {
            assert!(internet.is_us(trace.src_as));
            assert!(internet.is_us(trace.dst_as));
        }
        for trace in &inter {
            let src = internet.is_us(trace.src_as);
            let dst = trace.dst_as != u32::MAX && internet.is_us(trace.dst_as);
            assert!(src ^ dst);
        }
    }
}
