//! # lfp-analysis — analyses and the experiment registry
//!
//! Everything downstream of classification:
//!
//! * [`world`] — the scenario builder (one `World` = one fully measured
//!   Internet: datasets, scans, union signature set),
//! * [`stats`] / [`report`] — ECDFs, histograms, and the uniform report
//!   shape every experiment emits,
//! * [`responsiveness`], [`paths`], [`us_study`], [`coverage`],
//!   [`homogeneity`], [`regional`], [`routing`] — the paper's §4–§7 and
//!   appendix analyses,
//! * [`path_corpus`] — the build-once columnar store over every trace
//!   (all snapshots + derived ITDK paths) behind the §6 path figures and
//!   the ordered-path experiments,
//! * [`experiments`] — the registry regenerating **every table and figure**
//!   (Tables 1–8, Figures 2–22, the §6.3 case study, and four ablations).
//!
//! ```no_run
//! use lfp_analysis::{experiments, World};
//! use lfp_topo::Scale;
//!
//! let world = World::build(Scale::small());
//! let report = experiments::run_by_id(&world, "table3").unwrap();
//! println!("{}", report.render_text());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coverage;
pub mod experiments;
pub mod homogeneity;
pub mod json;
pub mod path_corpus;
pub mod paths;
pub mod regional;
pub mod report;
pub mod responsiveness;
pub mod routing;
pub mod stats;
pub mod us_study;
pub mod world;

pub use path_corpus::PathCorpus;
pub use report::{Report, Series};
pub use stats::{Ecdf, Histogram};
pub use world::World;
