//! Experiment reports: a uniform shape for every regenerated table and
//! figure, renderable as aligned text and serialisable to JSON for
//! EXPERIMENTS.md tooling.

use crate::json::JsonBuilder;

/// A plottable series (one line of a figure).
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// (x, y) points.
    pub points: Vec<(f64, f64)>,
}

/// The result of regenerating one paper artefact.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Experiment id ("table3", "fig11", ...).
    pub id: String,
    /// Human title.
    pub title: String,
    /// Column headers for the tabular part.
    pub columns: Vec<String>,
    /// Table rows.
    pub rows: Vec<Vec<String>>,
    /// Figure series, if the artefact is a plot.
    pub series: Vec<Series>,
    /// What the paper reports (the comparison target).
    pub paper_claim: String,
    /// What we measured (the reproduced shape).
    pub measured_claim: String,
    /// Free-form remarks (deviations, caveats).
    pub notes: Vec<String>,
}

impl Report {
    /// Start a report.
    pub fn new(id: &str, title: &str) -> Report {
        Report {
            id: id.to_string(),
            title: title.to_string(),
            ..Report::default()
        }
    }

    /// Add a table row from displayable cells.
    pub fn row<I: IntoIterator<Item = String>>(&mut self, cells: I) {
        self.rows.push(cells.into_iter().collect());
    }

    /// Render as aligned monospaced text.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.title));
        if !self.columns.is_empty() {
            let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
            for row in &self.rows {
                for (index, cell) in row.iter().enumerate() {
                    if index < widths.len() {
                        widths[index] = widths[index].max(cell.len());
                    }
                }
            }
            let header: Vec<String> = self
                .columns
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
                .collect();
            out.push_str(&format!("  {}\n", header.join("  ")));
            out.push_str(&format!(
                "  {}\n",
                widths
                    .iter()
                    .map(|w| "-".repeat(*w))
                    .collect::<Vec<_>>()
                    .join("  ")
            ));
            for row in &self.rows {
                let cells: Vec<String> = row
                    .iter()
                    .enumerate()
                    .map(|(i, c)| {
                        format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(0))
                    })
                    .collect();
                out.push_str(&format!("  {}\n", cells.join("  ")));
            }
        }
        for series in &self.series {
            out.push_str(&format!(
                "  series '{}' ({} pts): ",
                series.name,
                series.points.len()
            ));
            let sampled: Vec<String> = series
                .points
                .iter()
                .step_by((series.points.len() / 8).max(1))
                .map(|(x, y)| format!("({x:.3},{y:.3})"))
                .collect();
            out.push_str(&sampled.join(" "));
            out.push('\n');
        }
        if !self.paper_claim.is_empty() {
            out.push_str(&format!("  paper:    {}\n", self.paper_claim));
        }
        if !self.measured_claim.is_empty() {
            out.push_str(&format!("  measured: {}\n", self.measured_claim));
        }
        for note in &self.notes {
            out.push_str(&format!("  note: {note}\n"));
        }
        out
    }

    /// Serialise to pretty JSON.
    pub fn to_json(&self) -> String {
        let mut json = JsonBuilder::object();
        json.string("id", &self.id);
        json.string("title", &self.title);
        json.string_array("columns", &self.columns);
        json.nested_string_arrays("rows", &self.rows);
        json.raw_array(
            "series",
            self.series.iter().map(|series| {
                let mut entry = JsonBuilder::object();
                entry.string("name", &series.name);
                entry.point_array("points", &series.points);
                entry.finish()
            }),
        );
        json.string("paper_claim", &self.paper_claim);
        json.string("measured_claim", &self.measured_claim);
        json.string_array("notes", &self.notes);
        json.finish_pretty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_rendering_aligns_columns() {
        let mut report = Report::new("table9", "Demo");
        report.columns = vec!["Vendor".into(), "IPs".into()];
        report.row(["Cisco".to_string(), "82020".to_string()]);
        report.row(["Juniper".to_string(), "17665".to_string()]);
        report.paper_claim = "Cisco dominates".into();
        report.measured_claim = "Cisco dominates here too".into();
        let text = report.render_text();
        assert!(text.contains("== table9 — Demo =="));
        assert!(text.contains("Cisco   "));
        assert!(text.contains("paper:"));
    }

    #[test]
    fn json_rendering_contains_series_and_balances() {
        let mut report = Report::new("fig0", "Series \"demo\"");
        report.series.push(Series {
            name: "ecdf".into(),
            points: vec![(0.0, 0.0), (1.0, 1.0)],
        });
        report.notes.push("multi\nline".into());
        let json = report.to_json();
        assert!(json.contains("\"fig0\""));
        assert!(json.contains("\"ecdf\""));
        assert!(json.contains("Series \\\"demo\\\""));
        assert!(json.contains("multi\\nline"));
        assert!(json.contains("[1, 1]"), "points serialise as pairs: {json}");
        // Structure sanity: balanced delimiters outside of strings.
        let mut depth = 0i32;
        let mut in_string = false;
        let mut escaped = false;
        for c in json.chars() {
            match c {
                _ if escaped => escaped = false,
                '\\' if in_string => escaped = true,
                '"' => in_string = !in_string,
                '{' | '[' if !in_string => depth += 1,
                '}' | ']' if !in_string => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0);
        }
        assert_eq!(depth, 0);
        assert!(!in_string);
    }
}
