//! The experiment registry: one runnable generator per paper table,
//! figure, case study and ablation (see DESIGN.md §4 for the index).
//!
//! Every generator is a pure function of a measured [`World`] and returns
//! a [`Report`] carrying the regenerated rows/series plus the paper's
//! claim for side-by-side comparison in EXPERIMENTS.md.

use crate::coverage::{ip_method_split, router_method_split};
use crate::homogeneity::{
    coverage_ecdf, homogeneous_ases, per_as_summaries, per_as_vendor_counts, vendors_ecdf,
};
use crate::path_corpus::{LabelSource, PathCorpus};
use crate::regional::{per_as_snmp_counts, per_continent, top_networks};
use crate::report::{Report, Series};
use crate::responsiveness::{
    headline_fractions, responses_per_protocol_ecdfs, responsive_protocols_ecdf,
};
use crate::routing::{avoidance_study, sample_destinations, sample_sources};
use crate::stats::{percent, Ecdf, Histogram};
use crate::us_study::UsSlice;
use crate::world::World;
use lfp_baselines::banner::{build_censys_cohort, COMPARISON_VENDORS};
use lfp_baselines::hershel::hershel_fingerprint;
use lfp_baselines::ittl::tuple_accuracy;
use lfp_baselines::nmap::nmap_scan;
use lfp_core::eval::precision_recall_80_20;
use lfp_core::extract::extract_with_threshold;
use lfp_core::features::InitialTtl;
use lfp_core::ipid_threshold::{
    consecutive_diffs, max_steps_per_ip, misclassification_probability,
};
use lfp_core::pipeline::vendor_signature_stats;
use lfp_core::probe::TargetObservation;
use lfp_core::signature::SignatureDb;
use lfp_core::FeatureVector;
use lfp_stack::vendor::Vendor;
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

/// A registered experiment.
pub struct Experiment {
    /// Identifier (`table3`, `fig11`, `ablation_probes`, ...).
    pub id: &'static str,
    /// Human title.
    pub title: &'static str,
    /// Generator.
    pub run: fn(&World) -> Report,
}

/// All experiments, in paper order.
pub const EXPERIMENTS: &[Experiment] = &[
    Experiment {
        id: "table1",
        title: "Feature set and observed value domains",
        run: table1,
    },
    Experiment {
        id: "table2",
        title: "Router address datasets",
        run: table2,
    },
    Experiment {
        id: "table3",
        title: "Measurement overview",
        run: table3,
    },
    Experiment {
        id: "table4",
        title: "Partial signatures per protocol combination",
        run: table4,
    },
    Experiment {
        id: "table5",
        title: "Ground-truth signatures per vendor",
        run: table5,
    },
    Experiment {
        id: "table6",
        title: "Sample signatures and iTTL evasion",
        run: table6,
    },
    Experiment {
        id: "table7",
        title: "LFP vs Nmap coverage/accuracy",
        run: table7,
    },
    Experiment {
        id: "table8",
        title: "Precision and recall (80/20 split)",
        run: table8,
    },
    Experiment {
        id: "fig2",
        title: "Max IPID step ECDF",
        run: fig2,
    },
    Experiment {
        id: "fig3",
        title: "IPID difference histogram",
        run: fig3,
    },
    Experiment {
        id: "fig4",
        title: "Responsive protocols per IP",
        run: fig4,
    },
    Experiment {
        id: "fig5",
        title: "Responses per protocol (RIPE latest)",
        run: fig5,
    },
    Experiment {
        id: "fig6",
        title: "Responses per protocol (ITDK)",
        run: fig6,
    },
    Experiment {
        id: "fig7",
        title: "Occurrence-threshold sensitivity",
        run: fig7,
    },
    Experiment {
        id: "fig8",
        title: "Path length distribution",
        run: fig8,
    },
    Experiment {
        id: "fig9",
        title: "Identifiable routers per path",
        run: fig9,
    },
    Experiment {
        id: "fig10",
        title: "LFP vs SNMPv3 on paths",
        run: fig10,
    },
    Experiment {
        id: "fig11",
        title: "Vendor diversity per path",
        run: fig11,
    },
    Experiment {
        id: "fig12",
        title: "Top vendor combinations (all paths)",
        run: fig12,
    },
    Experiment {
        id: "fig13",
        title: "Top vendor combinations (intra-US)",
        run: fig13,
    },
    Experiment {
        id: "fig14",
        title: "Top vendor combinations (inter-US)",
        run: fig14,
    },
    Experiment {
        id: "path_transitions",
        title: "Vendor hand-offs along paths (transition matrix)",
        run: path_transitions,
    },
    Experiment {
        id: "path_runs",
        title: "Longest same-vendor run per path",
        run: path_runs,
    },
    Experiment {
        id: "path_segments",
        title: "Vendor diversity per path segment (edge vs transit)",
        run: path_segments,
    },
    Experiment {
        id: "fig15",
        title: "IPs→vendors, SNMPv3 vs LFP (RIPE latest)",
        run: fig15,
    },
    Experiment {
        id: "fig16",
        title: "IPs→vendors, SNMPv3 vs LFP (ITDK)",
        run: fig16,
    },
    Experiment {
        id: "fig17",
        title: "Routers→vendors (ITDK alias sets)",
        run: fig17,
    },
    Experiment {
        id: "fig18",
        title: "Nmap packet cost",
        run: fig18,
    },
    Experiment {
        id: "fig19",
        title: "LFP coverage per AS",
        run: fig19,
    },
    Experiment {
        id: "fig20",
        title: "Vendors per AS (homogeneity)",
        run: fig20,
    },
    Experiment {
        id: "fig21",
        title: "Vendor share per continent",
        run: fig21,
    },
    Experiment {
        id: "fig22",
        title: "Top networks: LFP vs SNMPv3",
        run: fig22,
    },
    Experiment {
        id: "case_routing",
        title: "Informed-routing avoidance study",
        run: case_routing,
    },
    Experiment {
        id: "ablation_threshold",
        title: "A1: IPID threshold sweep",
        run: ablation_threshold,
    },
    Experiment {
        id: "ablation_features",
        title: "A2: feature-group knock-out",
        run: ablation_features,
    },
    Experiment {
        id: "ablation_partial",
        title: "A3: partial signatures on/off",
        run: ablation_partial,
    },
    Experiment {
        id: "ablation_probes",
        title: "A4: probes per protocol",
        run: ablation_probes,
    },
];

/// Run one experiment by id.
pub fn run_by_id(world: &World, id: &str) -> Option<Report> {
    EXPERIMENTS
        .iter()
        .find(|e| e.id == id)
        .map(|e| (e.run)(world))
}

/// All experiment ids.
pub fn all_ids() -> Vec<&'static str> {
    EXPERIMENTS.iter().map(|e| e.id).collect()
}

/// Run every experiment sequentially, in registry (paper) order.
pub fn run_all(world: &World) -> Vec<Report> {
    EXPERIMENTS.iter().map(|e| (e.run)(world)).collect()
}

/// Run every experiment across all cores, returning reports in registry
/// (paper) order — same output as [`run_all`], ~cores× faster.
///
/// Generators are pure functions of the world, and the world's derived
/// maps are memoised behind `OnceLock`s, so concurrent generators share
/// classification work instead of repeating it. Work is handed out via an
/// atomic cursor: experiments vary widely in cost (table7's cohort scans
/// versus fig4's ECDF), so a work-stealing queue beats static chunking.
pub fn run_all_parallel(world: &World) -> Vec<Report> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(EXPERIMENTS.len());
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Report>>> = EXPERIMENTS.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let index = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(experiment) = EXPERIMENTS.get(index) else {
                    break;
                };
                let report = (experiment.run)(world);
                *slots[index].lock().expect("report slot poisoned") = Some(report);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("report slot poisoned")
                .expect("every experiment produces a report")
        })
        .collect()
}

fn ecdf_series(name: &str, ecdf: &Ecdf, points: usize) -> Series {
    Series {
        name: name.to_string(),
        points: ecdf.series(points),
    }
}

fn fmt_pct(value: f64) -> String {
    format!("{value:.1}%")
}

// ---------------------------------------------------------------------------
// Tables
// ---------------------------------------------------------------------------

fn table1(world: &World) -> Report {
    let mut report = Report::new("table1", "Feature set and observed value domains");
    let (_, scan) = world.latest_ripe();
    let mut ipid_classes: BTreeSet<String> = BTreeSet::new();
    let mut ittls: BTreeSet<u8> = BTreeSet::new();
    let mut icmp_sizes: BTreeSet<u16> = BTreeSet::new();
    let mut tcp_sizes: BTreeSet<u16> = BTreeSet::new();
    let mut udp_sizes: BTreeSet<u16> = BTreeSet::new();
    for vector in &scan.vectors {
        for class in [vector.icmp_ipid, vector.tcp_ipid, vector.udp_ipid]
            .into_iter()
            .flatten()
        {
            ipid_classes.insert(format!("{class:?}").to_lowercase());
        }
        for ttl in [vector.icmp_ittl, vector.tcp_ittl, vector.udp_ittl]
            .into_iter()
            .flatten()
        {
            ittls.insert(ttl.value());
        }
        if let Some(size) = vector.icmp_resp_size {
            icmp_sizes.insert(size);
        }
        if let Some(size) = vector.tcp_resp_size {
            tcp_sizes.insert(size);
        }
        if let Some(size) = vector.udp_resp_size {
            udp_sizes.insert(size);
        }
    }
    let join = |set: &BTreeSet<String>| set.iter().cloned().collect::<Vec<_>>().join(", ");
    let join_u8 = |set: &BTreeSet<u8>| {
        set.iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    };
    let sizes = |set: &BTreeSet<u16>| format!("{} distinct values", set.len());
    report.columns = vec!["Feature".into(), "Observed values".into()];
    report.row(["ICMP IPID echo".into(), "true, false".into()]);
    report.row(["ICMP/TCP/UDP IPID counter".into(), join(&ipid_classes)]);
    report.row([
        "shared counters (4 pair/all flags)".into(),
        "true, false".into(),
    ]);
    report.row(["UDP/ICMP/TCP iTTL".into(), join_u8(&ittls)]);
    report.row(["ICMP echo response size".into(), sizes(&icmp_sizes)]);
    report.row(["TCP response size".into(), sizes(&tcp_sizes)]);
    report.row(["UDP response size".into(), sizes(&udp_sizes)]);
    report.row(["TCP SYN sequence number".into(), "zero, non-zero".into()]);
    report.paper_claim =
        "15 features; IPID ∈ {incremental, random, static, zero, duplicate}; iTTL ∈ {32, 64, 128, 255}".into();
    report.measured_claim = format!(
        "IPID classes observed: {{{}}}; iTTLs observed: {{{}}}",
        join(&ipid_classes),
        join_u8(&ittls)
    );
    report
}

fn table2(world: &World) -> Report {
    let mut report = Report::new("table2", "Router address datasets");
    report.columns = vec![
        "Data Source".into(),
        "Date".into(),
        "# IPv4 addrs".into(),
        "# ASes".into(),
    ];
    let mut union_ips: BTreeSet<Ipv4Addr> = BTreeSet::new();
    let mut union_ases: BTreeSet<u32> = BTreeSet::new();
    for snapshot in &world.ripe {
        report.row([
            snapshot.name.clone(),
            snapshot.date.to_string(),
            snapshot.router_ips.len().to_string(),
            snapshot.as_count(&world.internet).to_string(),
        ]);
        union_ips.extend(snapshot.router_ips.iter().copied());
        union_ases.extend(
            snapshot
                .router_ips
                .iter()
                .filter_map(|&ip| world.internet.truth_of(ip))
                .map(|m| m.as_id),
        );
    }
    report.row([
        world.itdk.name.clone(),
        world.itdk.date.to_string(),
        world.itdk.router_ips.len().to_string(),
        world.itdk.as_count(&world.internet).to_string(),
    ]);
    union_ips.extend(world.itdk.router_ips.iter().copied());
    union_ases.extend(
        world
            .itdk
            .router_ips
            .iter()
            .filter_map(|&ip| world.internet.truth_of(ip))
            .map(|m| m.as_id),
    );
    report.row([
        "Union".into(),
        "—".into(),
        union_ips.len().to_string(),
        union_ases.len().to_string(),
    ]);
    // Snapshot stability (§3.2).
    let mut overlaps = Vec::new();
    for pair in world.ripe.windows(2) {
        overlaps.push(lfp_topo::datasets::ip_overlap(
            &pair[0].router_ips,
            &pair[1].router_ips,
        ));
    }
    let mean_overlap = overlaps.iter().sum::<f64>() / overlaps.len().max(1) as f64 * 100.0;
    report.paper_claim =
        "5 RIPE snapshots (446k–496k IPs, 18.3k–20.2k ASes), ITDK 343k/9.9k; union 971k/24.9k; ~88% pairwise overlap".into();
    report.measured_claim = format!(
        "union {} IPs / {} ASes; mean consecutive-snapshot overlap {:.1}%",
        union_ips.len(),
        union_ases.len(),
        mean_overlap
    );
    report
}

fn table3(world: &World) -> Report {
    let mut report = Report::new("table3", "Measurement overview");
    report.columns = vec![
        "Measurement".into(),
        "IPs".into(),
        "SNMPv3".into(),
        "SNMPv3 ∩ LFP".into(),
        "LFP \\ SNMPv3".into(),
        "Unique sigs".into(),
        "Non-unique sigs".into(),
    ];
    let threshold = world.scale.occurrence_threshold;
    let mut union_responsive: BTreeSet<Ipv4Addr> = BTreeSet::new();
    let mut union_snmp: BTreeSet<Ipv4Addr> = BTreeSet::new();
    let mut union_both: BTreeSet<Ipv4Addr> = BTreeSet::new();
    let mut union_lfp_only: BTreeSet<Ipv4Addr> = BTreeSet::new();
    for scan in world.ripe_scans.iter().chain([&world.itdk_scan]) {
        let (unique, non_unique) = scan.signature_db().signature_counts_at(threshold);
        report.row([
            scan.name.clone(),
            scan.responsive_count().to_string(),
            scan.snmp_count().to_string(),
            scan.snmp_and_lfp_count().to_string(),
            scan.lfp_only_count().to_string(),
            unique.to_string(),
            non_unique.to_string(),
        ]);
        for ((target, observation), (label, vector)) in scan
            .targets
            .iter()
            .zip(&scan.observations)
            .zip(scan.labels.iter().zip(&scan.vectors))
        {
            if observation.is_responsive() {
                union_responsive.insert(*target);
            }
            if label.is_some() {
                union_snmp.insert(*target);
                if vector.is_full() {
                    union_both.insert(*target);
                }
            } else if vector.is_full() {
                union_lfp_only.insert(*target);
            }
        }
    }
    let (union_unique, union_non_unique) = world.union_db.signature_counts_at(threshold);
    report.row([
        "Union".into(),
        union_responsive.len().to_string(),
        union_snmp.len().to_string(),
        union_both.len().to_string(),
        union_lfp_only.len().to_string(),
        union_unique.to_string(),
        union_non_unique.to_string(),
    ]);
    report.paper_claim = "Union: 736k responsive, 218k SNMPv3, 132k SNMPv3∩LFP, 169k LFP-only; 89 unique / 23 non-unique sigs".into();
    report.measured_claim = format!(
        "Union: {} responsive, {} SNMPv3, {} SNMPv3∩LFP, {} LFP-only; {} unique / {} non-unique sigs (threshold {})",
        union_responsive.len(),
        union_snmp.len(),
        union_both.len(),
        union_lfp_only.len(),
        union_unique,
        union_non_unique,
        threshold,
    );
    report
}

fn table4(world: &World) -> Report {
    let mut report = Report::new("table4", "Partial signatures per protocol combination");
    report.columns = vec![
        "Protocols".into(),
        "Total".into(),
        "Unique".into(),
        "Non-unique".into(),
    ];
    let mut majority_unique_two_proto = true;
    for (coverage, total, unique, non_unique) in world.set.partial_stats() {
        if coverage.count() == 2 && unique * 2 < total {
            majority_unique_two_proto = false;
        }
        report.row([
            coverage.label(),
            total.to_string(),
            unique.to_string(),
            non_unique.to_string(),
        ]);
    }
    report.paper_claim =
        "Two-protocol combinations stay mostly unique (e.g. TCP&UDP 43/61); single-protocol splits roughly half".into();
    report.measured_claim =
        format!("two-protocol combinations majority-unique: {majority_unique_two_proto}");
    report
}

fn table5(world: &World) -> Report {
    let mut report = Report::new("table5", "Ground-truth signatures per vendor");
    report.columns = vec![
        "Vendor".into(),
        "Labeled".into(),
        "Unique sigs (#IPs)".into(),
        "Non-unique sigs (#IPs)".into(),
    ];
    let scans: Vec<&lfp_core::DatasetScan> =
        world.ripe_scans.iter().chain([&world.itdk_scan]).collect();
    let stats = vendor_signature_stats(&world.union_db, &world.set, &scans);
    let mut other = lfp_core::pipeline::VendorSignatureStats::default();
    let mut rows: Vec<(Vendor, lfp_core::pipeline::VendorSignatureStats)> = Vec::new();
    for (&vendor, &stat) in &stats {
        if vendor.is_major() {
            rows.push((vendor, stat));
        } else {
            other.labeled_ips += stat.labeled_ips;
            other.unique_sigs += stat.unique_sigs;
            other.unique_ips += stat.unique_ips;
            other.non_unique_sigs += stat.non_unique_sigs;
            other.non_unique_ips += stat.non_unique_ips;
        }
    }
    rows.sort_by_key(|row| std::cmp::Reverse(row.1.labeled_ips));
    let mut unique_ips_total = 0usize;
    let mut labeled_total = 0usize;
    for (vendor, stat) in rows {
        unique_ips_total += stat.unique_ips;
        labeled_total += stat.labeled_ips;
        report.row([
            vendor.name().to_string(),
            stat.labeled_ips.to_string(),
            format!("{} ({})", stat.unique_sigs, stat.unique_ips),
            format!("{} ({})", stat.non_unique_sigs, stat.non_unique_ips),
        ]);
    }
    unique_ips_total += other.unique_ips;
    labeled_total += other.labeled_ips;
    report.row([
        "Other".into(),
        other.labeled_ips.to_string(),
        format!("{} ({})", other.unique_sigs, other.unique_ips),
        format!("{} ({})", other.non_unique_sigs, other.non_unique_ips),
    ]);
    report.paper_claim = "82% of labelled IPs map to unique signatures; Cisco dominates (51%); MikroTik/H3C mostly non-unique".into();
    report.measured_claim = format!(
        "{} of labelled IPs map to unique signatures",
        fmt_pct(percent(unique_ips_total, labeled_total.max(1)))
    );
    report
}

fn table6(world: &World) -> Report {
    let mut report = Report::new("table6", "Sample signatures and iTTL evasion");
    report.columns = vec!["Vendor".into(), "Signature (Table 1 order)".into()];
    // The most supported unique signature per vendor.
    let top_unique = |vendor: Vendor| -> Option<(FeatureVector, usize)> {
        world
            .union_db
            .iter()
            .filter(|(vector, vendors)| {
                vector.is_full()
                    && world.set.unique.get(vector) == Some(&vendor)
                    && vendors.contains_key(&vendor)
            })
            .map(|(vector, vendors)| (*vector, vendors[&vendor]))
            .max_by_key(|&(_, count)| count)
    };
    // Prefer the Juniper signature whose iTTL-flipped twin exists in the
    // signature set (the paper's Table 6 pair is exactly such a pair);
    // fall back to the best-supported one.
    let mut juniper_candidates: Vec<(FeatureVector, usize)> = world
        .union_db
        .iter()
        .filter(|(vector, _)| {
            vector.is_full() && world.set.unique.get(vector) == Some(&Vendor::Juniper)
        })
        .map(|(vector, vendors)| (*vector, vendors.values().sum()))
        .collect();
    juniper_candidates.sort_by_key(|&(_, support)| std::cmp::Reverse(support));
    let flips_to_other = |vector: &FeatureVector| {
        let mut evaded = *vector;
        evaded.icmp_ittl = Some(InitialTtl::T255);
        matches!(
            world.set.classify(&evaded).unique_vendor(),
            Some(vendor) if vendor != Vendor::Juniper
        )
    };
    let juniper = juniper_candidates
        .iter()
        .find(|(vector, _)| flips_to_other(vector))
        .or(juniper_candidates.first())
        .copied();
    let cisco = top_unique(Vendor::Cisco);
    let mut evasion = "n/a".to_string();
    if let (Some((juniper_vec, _)), Some((cisco_vec, _))) = (&juniper, &cisco) {
        report.row(["Juniper".into(), juniper_vec.table6_row()]);
        report.row(["Cisco".into(), cisco_vec.table6_row()]);
        // The evasion: change the Juniper ICMP iTTL to 255 and re-classify.
        let mut evaded = *juniper_vec;
        evaded.icmp_ittl = Some(InitialTtl::T255);
        let verdict = world.set.classify(&evaded);
        evasion = match verdict.unique_vendor() {
            Some(vendor) => format!("reclassified as {vendor}"),
            None => format!("verdict {verdict:?}"),
        };
        report.row(["Juniper (iTTL 64→255)".into(), evaded.table6_row()]);
    }
    report.paper_claim =
        "Flipping Juniper's ICMP iTTL from 64 to 255 makes LFP misclassify it as Cisco".into();
    report.measured_claim = format!("after the flip: {evasion}");
    report
}

fn table7(world: &World) -> Report {
    let mut report = Report::new("table7", "LFP vs Nmap coverage/accuracy");
    report.columns = vec![
        "Vendor".into(),
        "LFP cov".into(),
        "Nmap cov".into(),
        "LFP acc".into(),
        "Nmap acc".into(),
    ];
    let per_vendor = (world.scale.dests_per_vantage / 3).clamp(40, 500);
    let cohort = build_censys_cohort(per_vendor, world.scale.seed ^ 0x7ab1e7);

    #[derive(Default)]
    struct Tally {
        total: usize,
        lfp_responsive: usize,
        lfp_correct: usize,
        nmap_guessed: usize,
        nmap_correct: usize,
        hershel_covered: usize,
        hershel_vendor_correct: usize,
    }
    let mut tallies: BTreeMap<Vendor, Tally> = BTreeMap::new();

    for (index, &(ip, vendor)) in cohort.sample.iter().enumerate() {
        let tally = tallies.entry(vendor).or_default();
        tally.total += 1;
        // LFP.
        let observation =
            lfp_core::probe::probe_target(&cohort.network, ip, index as f64 * 2.0, index as u64);
        if observation.responsive_protocols() > 0 {
            tally.lfp_responsive += 1;
            let vector = lfp_core::extract(&observation);
            if world.set.classify(&vector).unique_vendor() == Some(vendor) {
                tally.lfp_correct += 1;
            }
        }
        // Nmap.
        let nmap = nmap_scan(
            &cohort.network,
            ip,
            vendor,
            1_000_000.0 + index as f64 * 30.0,
            world.scale.seed ^ 0x42,
        );
        if let Some(guess) = nmap.guess {
            tally.nmap_guessed += 1;
            if guess == vendor {
                tally.nmap_correct += 1;
            }
        }
        // Hershel (single SYN against management ports).
        for port in [22u16, 23, 80] {
            let hershel = hershel_fingerprint(
                &cohort.network,
                ip,
                port,
                2_000_000.0 + index as f64,
                world.scale.seed ^ u64::from(port),
            );
            if hershel.covered {
                tally.hershel_covered += 1;
                if hershel.vendor_guess == Some(vendor) {
                    tally.hershel_vendor_correct += 1;
                }
                break;
            }
        }
    }

    let mut lfp_beats_nmap_coverage = 0usize;
    let mut hershel_covered = 0usize;
    let mut hershel_correct = 0usize;
    let mut total = 0usize;
    for vendor in COMPARISON_VENDORS {
        let tally = &tallies[&vendor];
        let lfp_cov = percent(tally.lfp_responsive, tally.total);
        let nmap_cov = percent(tally.nmap_guessed, tally.total);
        if lfp_cov > nmap_cov {
            lfp_beats_nmap_coverage += 1;
        }
        hershel_covered += tally.hershel_covered;
        hershel_correct += tally.hershel_vendor_correct;
        total += tally.total;
        report.row([
            vendor.name().to_string(),
            fmt_pct(lfp_cov),
            fmt_pct(nmap_cov),
            fmt_pct(percent(tally.lfp_correct, tally.lfp_responsive.max(1))),
            fmt_pct(percent(tally.nmap_correct, tally.nmap_guessed.max(1))),
        ]);
    }
    report.paper_claim = "LFP coverage beats Nmap's for every vendor at comparable or better accuracy; Hershel: ~50% coverage, <1% vendor accuracy".into();
    report.measured_claim = format!(
        "LFP coverage higher for {lfp_beats_nmap_coverage}/6 vendors; Hershel coverage {} with vendor accuracy {}",
        fmt_pct(percent(hershel_covered, total)),
        fmt_pct(percent(hershel_correct, hershel_covered.max(1))),
    );
    report
}

fn table8(world: &World) -> Report {
    let mut report = Report::new("table8", "Precision and recall (80/20 split)");
    report.columns = vec![
        "Vendor".into(),
        "Recall".into(),
        "Precision".into(),
        "Total (test)".into(),
    ];
    let corpus = world.labeled_corpus();
    let results = precision_recall_80_20(
        &corpus,
        world.scale.occurrence_threshold,
        world.scale.seed ^ 0x8020,
    );
    let mut rows: Vec<_> = results.iter().collect();
    rows.sort_by_key(|row| std::cmp::Reverse(row.1.total_test));
    let mut major_high = true;
    for (&vendor, pr) in rows {
        if pr.total_test == 0 {
            continue;
        }
        if matches!(vendor, Vendor::Cisco | Vendor::Juniper | Vendor::Huawei)
            && (pr.precision() < 0.9 || pr.recall() < 0.85)
        {
            major_high = false;
        }
        report.row([
            vendor.name().to_string(),
            format!("{:.2}", pr.recall()),
            format!("{:.2}", pr.precision()),
            pr.total_test.to_string(),
        ]);
    }
    report.paper_claim =
        "Cisco/Juniper/Huawei P and R near 1; UNIX-based vendors (net-snmp, Brocade, H3C) collapse"
            .into();
    report.measured_claim = format!("major vendors ≥0.85 P/R: {major_high}");
    report
}

// ---------------------------------------------------------------------------
// Figures
// ---------------------------------------------------------------------------

fn fig2(world: &World) -> Report {
    let mut report = Report::new("fig2", "Max IPID step ECDF");
    let (_, ripe) = world.latest_ripe();
    let ripe_steps: Vec<f64> = max_steps_per_ip(&ripe.observations)
        .into_iter()
        .map(f64::from)
        .collect();
    let itdk_steps: Vec<f64> = max_steps_per_ip(&world.itdk_scan.observations)
        .into_iter()
        .map(f64::from)
        .collect();
    let ripe_ecdf = Ecdf::new(ripe_steps);
    let itdk_ecdf = Ecdf::new(itdk_steps);
    let at_threshold = ripe_ecdf.fraction_at_or_below(1300.0);
    report.series.push(ecdf_series("ITDK", &itdk_ecdf, 64));
    report.series.push(ecdf_series("RIPE", &ripe_ecdf, 64));
    report.notes.push(format!(
        "P(random counter misclassified, all 8 steps ≤ 1300) = {:.2e}",
        misclassification_probability(1300, 8)
    ));
    report.paper_claim =
        "Knee at ~1300: sequential counters bunch below it, random ones spread to 65535".into();
    report.measured_claim = format!(
        "RIPE: {} of fully-responsive IPs at or below step 1300; distribution reaches {:.0}",
        fmt_pct(at_threshold * 100.0),
        ripe_ecdf.quantile(1.0).unwrap_or(0.0)
    );
    report
}

fn fig3(world: &World) -> Report {
    let mut report = Report::new("fig3", "IPID difference histogram");
    let (_, ripe) = world.latest_ripe();
    let diffs: Vec<f64> = consecutive_diffs(&ripe.observations)
        .into_iter()
        .map(f64::from)
        .collect();
    let histogram = Histogram::build(&diffs, -10_000.0, 10_000.0, 40);
    report.series.push(Series {
        name: "percent per 500-wide bin".into(),
        points: histogram
            .edges
            .iter()
            .zip(&histogram.percent)
            .map(|(&e, &p)| (e, p))
            .collect(),
    });
    let near_zero = histogram.percent_between(-500.0, 500.0);
    let within_threshold = diffs.iter().filter(|d| d.abs() <= 1300.0).count() as f64
        / diffs.len().max(1) as f64
        * 100.0;
    report.paper_claim =
        "~20% of differences near zero; ~90% within ±1300; the rest dispersed".into();
    report.measured_claim = format!(
        "{} near zero; {} within ±1300",
        fmt_pct(near_zero),
        fmt_pct(within_threshold)
    );
    report
}

fn fig4(world: &World) -> Report {
    let mut report = Report::new("fig4", "Responsive protocols per IP");
    let (_, ripe) = world.latest_ripe();
    let ripe_ecdf = responsive_protocols_ecdf(ripe);
    let itdk_ecdf = responsive_protocols_ecdf(&world.itdk_scan);
    for (name, ecdf) in [("ITDK", &itdk_ecdf), ("RIPE", &ripe_ecdf)] {
        report.series.push(Series {
            name: name.into(),
            points: (0..=3)
                .map(|k| (k as f64, ecdf.fraction_at_or_below(k as f64)))
                .collect(),
        });
    }
    let (ripe_any, ripe_all) = headline_fractions(ripe);
    let (itdk_any, itdk_all) = headline_fractions(&world.itdk_scan);
    report.paper_claim = "ITDK: 50% respond on all three, 90.7% on ≥1; RIPE: 35% and 72.3%".into();
    report.measured_claim = format!(
        "ITDK: {} all three / {} ≥1; RIPE: {} / {}",
        fmt_pct(itdk_all * 100.0),
        fmt_pct(itdk_any * 100.0),
        fmt_pct(ripe_all * 100.0),
        fmt_pct(ripe_any * 100.0)
    );
    report
}

fn responses_figure(id: &str, title: &str, scan: &lfp_core::DatasetScan) -> Report {
    let mut report = Report::new(id, title);
    let [icmp, tcp, udp] = responses_per_protocol_ecdfs(scan);
    for (name, ecdf) in [("ICMP", &icmp), ("TCP", &tcp), ("UDP", &udp)] {
        report.series.push(Series {
            name: name.into(),
            points: (0..=3)
                .map(|k| (k as f64, ecdf.fraction_at_or_below(k as f64)))
                .collect(),
        });
    }
    let icmp_all3 = 1.0 - icmp.fraction_at_or_below(2.0);
    let tcp_all3 = 1.0 - tcp.fraction_at_or_below(2.0);
    report.measured_claim = format!(
        "all-3-responses: ICMP {}, TCP {}; curves are flat between 0 and 3 (all-or-nothing)",
        fmt_pct(icmp_all3 * 100.0),
        fmt_pct(tcp_all3 * 100.0)
    );
    report
}

fn fig5(world: &World) -> Report {
    let (_, ripe) = world.latest_ripe();
    let mut report = responses_figure("fig5", "Responses per protocol (RIPE latest)", ripe);
    report.paper_claim =
        "RIPE: 65.7% answer all three ICMP probes, 39.5% all TCP/UDP; responses are all-or-nothing"
            .into();
    report
}

fn fig6(world: &World) -> Report {
    let mut report = responses_figure("fig6", "Responses per protocol (ITDK)", &world.itdk_scan);
    report.paper_claim =
        "ITDK: 84.4% answer all three ICMP probes, 63.6% all TCP/UDP — more responsive than RIPE"
            .into();
    report
}

fn fig7(world: &World) -> Report {
    let mut report = Report::new("fig7", "Occurrence-threshold sensitivity");
    let max_threshold = (world.scale.occurrence_threshold * 5).max(20);
    let mut unique_points = Vec::new();
    let mut non_unique_points = Vec::new();
    for threshold in 1..=max_threshold {
        let (unique, non_unique) = world.union_db.signature_counts_at(threshold);
        unique_points.push((threshold as f64, unique as f64));
        non_unique_points.push((threshold as f64, non_unique as f64));
    }
    let at_min = unique_points[0].1 + non_unique_points[0].1;
    let at_knee = {
        let t = world.scale.occurrence_threshold.min(max_threshold) - 1;
        unique_points[t].1 + non_unique_points[t].1
    };
    report.series.push(Series {
        name: "unique signatures".into(),
        points: unique_points,
    });
    report.series.push(Series {
        name: "non-unique signatures".into(),
        points: non_unique_points,
    });
    report.paper_claim =
        "Low thresholds explode the signature count; the curve flattens by ~10–20 occurrences"
            .into();
    report.measured_claim = format!(
        "{at_min:.0} signatures at threshold 1 vs {at_knee:.0} at the working threshold ({})",
        world.scale.occurrence_threshold
    );
    report
}

fn fig8(world: &World) -> Report {
    let mut report = Report::new("fig8", "Path length distribution");
    let corpus = world.path_corpus();
    let ecdf = corpus.path_length_ecdf(corpus.rows_of_source(corpus.latest_ripe_source()));
    report.series.push(ecdf_series("hop count", &ecdf, 32));
    let at_least_3 = 1.0 - ecdf.fraction_at_or_below(2.0);
    let within_15 = ecdf.fraction_at_or_below(15.0);
    report.paper_claim = "95% of paths have ≥3 hops and ≤15 hops".into();
    report.measured_claim = format!(
        "{} of paths ≥3 hops; {} ≤15 hops",
        fmt_pct(at_least_3 * 100.0),
        fmt_pct(within_15 * 100.0)
    );
    report
}

/// Shared helper: the latest snapshot's corpus rows, whole and sliced by
/// the §6.2 US partition.
fn corpus_slices(corpus: &PathCorpus) -> (Vec<u32>, Vec<u32>, Vec<u32>) {
    let latest = corpus.latest_ripe_source();
    (
        corpus.rows_in(latest, None),
        corpus.rows_in(latest, Some(UsSlice::IntraUs)),
        corpus.rows_in(latest, Some(UsSlice::InterUs)),
    )
}

fn fig9(world: &World) -> Report {
    let mut report = Report::new("fig9", "Identifiable routers per path");
    let corpus = world.path_corpus();
    let (all, intra, inter) = corpus_slices(corpus);
    for (name, rows) in [
        ("All traces", &all),
        ("Intra US", &intra),
        ("Inter US", &inter),
    ] {
        let ecdf = corpus.identified_fraction_ecdf(rows, 3, 0, LabelSource::Lfp);
        report.series.push(ecdf_series(name, &ecdf, 32));
    }
    let eligible = corpus.count_identified_at_least(&all, 3, 0, LabelSource::Lfp);
    let at_least_one = corpus.count_identified_at_least(&all, 3, 1, LabelSource::Lfp);
    let at_least_two = corpus.count_identified_at_least(&all, 3, 2, LabelSource::Lfp);
    report.paper_claim =
        "On ≥3-hop paths LFP identifies ≥1 hop on 82% of paths and ≥2 hops on 62%".into();
    report.measured_claim = format!(
        "≥1 hop identified on {}, ≥2 on {} of ≥3-hop paths",
        fmt_pct(percent(at_least_one, eligible)),
        fmt_pct(percent(at_least_two, eligible))
    );
    report
}

fn fig10(world: &World) -> Report {
    let mut report = Report::new("fig10", "LFP vs SNMPv3 on paths");
    let corpus = world.path_corpus();
    let all = corpus.rows_in(corpus.latest_ripe_source(), None);
    for (name, method, min_fp) in [
        ("LFP min 3 hops", LabelSource::Lfp, 0usize),
        ("LFP min 3 hops, min 2 fingerprints", LabelSource::Lfp, 2),
        ("SNMPv3 min 3 hops", LabelSource::Snmp, 0),
        (
            "SNMPv3 min 3 hops, min 2 fingerprints",
            LabelSource::Snmp,
            2,
        ),
    ] {
        let ecdf = corpus.identified_fraction_ecdf(&all, 3, min_fp, method);
        report.series.push(ecdf_series(name, &ecdf, 32));
    }
    let eligible = |method: LabelSource| {
        let total = corpus.count_identified_at_least(&all, 3, 0, method);
        let hit = corpus.count_identified_at_least(&all, 3, 1, method);
        percent(hit, total)
    };
    report.paper_claim =
        "LFP identifies ≥1 vendor on 82% of ≥3-hop paths; SNMPv3 alone manages 35%".into();
    report.measured_claim = format!(
        "≥1 identified hop: LFP {} vs SNMPv3 {}",
        fmt_pct(eligible(LabelSource::Lfp)),
        fmt_pct(eligible(LabelSource::Snmp))
    );
    report
}

fn fig11(world: &World) -> Report {
    let mut report = Report::new("fig11", "Vendor diversity per path");
    let corpus = world.path_corpus();
    let (all, intra, inter) = corpus_slices(corpus);
    for (name, rows) in [
        ("All Traces", &all),
        ("Intra US", &intra),
        ("Inter US", &inter),
    ] {
        let ecdf = corpus.vendors_per_path_ecdf(rows);
        report.series.push(Series {
            name: name.into(),
            points: (0..=5)
                .map(|k| (k as f64, ecdf.fraction_at_or_below(k as f64)))
                .collect(),
        });
    }
    let identified = corpus.identified_paths(&all);
    let single = corpus.count_set_size(&all, 1);
    let two = corpus.count_set_size(&all, 2);
    let three = corpus.count_set_size(&all, 3);
    report.paper_claim = "≈50% single-vendor paths, ≈40% two vendors, 7% three; ~650 distinct vendor sets; intra-US ~70% single-vendor".into();
    report.measured_claim = format!(
        "{} single-vendor, {} two-vendor, {} three-vendor paths; {} distinct vendor sets",
        fmt_pct(percent(single, identified)),
        fmt_pct(percent(two, identified)),
        fmt_pct(percent(three, identified)),
        corpus.distinct_vendor_sets(&all)
    );
    report
}

fn combos_figure(
    id: &str,
    title: &str,
    combos: Vec<(String, f64, usize)>,
    paper_claim: &str,
) -> Report {
    let mut report = Report::new(id, title);
    report.columns = vec!["Vendor set".into(), "Share".into(), "Paths".into()];
    let top_share: f64 = combos.iter().map(|c| c.1).take(9).sum();
    let cisco_juniper_share: f64 = combos
        .iter()
        .filter(|(label, _, _)| {
            label
                .split(", ")
                .all(|vendor| vendor == "Cisco" || vendor == "Juniper")
        })
        .map(|c| c.1)
        .sum();
    if combos.is_empty() {
        report.row([
            "(no identified paths in this slice at this scale)".into(),
            "—".into(),
            "0".into(),
        ]);
    }
    for (label, share, count) in combos {
        report.row([label, fmt_pct(share), count.to_string()]);
    }
    report.paper_claim = paper_claim.to_string();
    report.measured_claim = format!(
        "top-9 sets cover {}; Cisco/Juniper-only sets {}",
        fmt_pct(top_share),
        fmt_pct(cisco_juniper_share)
    );
    report
}

fn fig12(world: &World) -> Report {
    let corpus = world.path_corpus();
    let (all, _, _) = corpus_slices(corpus);
    combos_figure(
        "fig12",
        "Top vendor combinations (all paths)",
        corpus.top_vendor_combinations(&all, 10),
        "Top 9 sets cover >95% of paths; Cisco/Juniper-only sets ≈60%",
    )
}

fn fig13(world: &World) -> Report {
    let corpus = world.path_corpus();
    let (_, intra, _) = corpus_slices(corpus);
    combos_figure(
        "fig13",
        "Top vendor combinations (intra-US)",
        corpus.top_vendor_combinations(&intra, 10),
        "Cisco/Juniper combinations make up more than two thirds of intra-US paths",
    )
}

fn fig14(world: &World) -> Report {
    let corpus = world.path_corpus();
    let (_, _, inter) = corpus_slices(corpus);
    combos_figure(
        "fig14",
        "Top vendor combinations (inter-US)",
        corpus.top_vendor_combinations(&inter, 10),
        "Inter-US paths are slightly more heterogeneous than intra-US, same leaders",
    )
}

// ---------------------------------------------------------------------------
// Ordered-path experiments (beyond the paper; enabled by the corpus)
// ---------------------------------------------------------------------------

fn path_transitions(world: &World) -> Report {
    let mut report = Report::new(
        "path_transitions",
        "Vendor hand-offs along paths (transition matrix)",
    );
    report.columns = vec![
        "From".into(),
        "To".into(),
        "Hand-offs".into(),
        "Share".into(),
    ];
    let corpus = world.path_corpus();
    let rows = corpus.all_rows();
    let matrix = corpus.transition_matrix(&rows);
    let total: usize = matrix.values().sum();
    let same: usize = matrix
        .iter()
        .filter(|((from, to), _)| from == to)
        .map(|(_, &count)| count)
        .sum();
    let mut ranked: Vec<_> = matrix.iter().collect();
    ranked.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
    if ranked.is_empty() {
        report.row([
            "(no adjacent identified hops at this scale)".into(),
            "—".into(),
            "0".into(),
            "—".into(),
        ]);
    }
    for (&(from, to), &count) in ranked.into_iter().take(12) {
        report.row([
            from.name().to_string(),
            to.name().to_string(),
            count.to_string(),
            fmt_pct(percent(count, total)),
        ]);
    }
    report.paper_claim = "(beyond the paper) §6 reports unordered vendor sets; the ordered corpus shows who actually hands traffic to whom".into();
    report.measured_claim = format!(
        "{total} hand-offs across {} paths; {} keep the vendor, {} cross vendors",
        corpus.len(),
        fmt_pct(percent(same, total)),
        fmt_pct(percent(total - same, total)),
    );
    report
}

fn path_runs(world: &World) -> Report {
    let mut report = Report::new("path_runs", "Longest same-vendor run per path");
    let corpus = world.path_corpus();
    let latest = corpus.rows_in(corpus.latest_ripe_source(), None);
    let all = corpus.all_rows();
    let latest_ecdf = corpus.longest_run_ecdf(&latest);
    let ecdf = corpus.longest_run_ecdf(&all);
    report
        .series
        .push(ecdf_series("RIPE latest", &latest_ecdf, 16));
    report.series.push(ecdf_series("Whole corpus", &ecdf, 16));
    let at_most_2 = ecdf.fraction_at_or_below(2.0);
    report.paper_claim = "(beyond the paper) single-vendor custody stretches: how long one vendor keeps a packet before handing off".into();
    report.measured_claim = format!(
        "mean longest run {:.2} hops, max {:.0}; {} of identified paths never exceed a 2-hop run",
        ecdf.mean().unwrap_or(0.0),
        ecdf.quantile(1.0).unwrap_or(0.0),
        fmt_pct(at_most_2 * 100.0)
    );
    report
}

fn path_segments(world: &World) -> Report {
    let mut report = Report::new(
        "path_segments",
        "Vendor diversity per path segment (edge vs transit)",
    );
    report.columns = vec![
        "Segment".into(),
        "Paths".into(),
        "Mean distinct vendors".into(),
        "Multi-vendor share".into(),
    ];
    let corpus = world.path_corpus();
    let rows = corpus.all_rows();
    let summary = corpus.segment_summary(&rows);
    report.row([
        "Edge (first + last AS)".into(),
        summary.paths.to_string(),
        format!("{:.2}", summary.edge_mean),
        fmt_pct(percent(summary.edge_multi, summary.paths)),
    ]);
    report.row([
        "Transit core".into(),
        summary.paths_with_core.to_string(),
        format!("{:.2}", summary.core_mean),
        fmt_pct(percent(summary.core_multi, summary.paths_with_core)),
    ]);
    report.paper_claim = "(beyond the paper) §6.2 slices by endpoints only; segmenting each path by AS separates edge diversity from transit diversity".into();
    report.measured_claim = format!(
        "{} of {} identified paths traverse a transit core; edge mixes ≥2 vendors on {}, the core on {}",
        summary.paths_with_core,
        summary.paths,
        fmt_pct(percent(summary.edge_multi, summary.paths)),
        fmt_pct(percent(summary.core_multi, summary.paths_with_core)),
    );
    report
}

fn method_split_figure(
    id: &str,
    title: &str,
    world: &World,
    scan: &lfp_core::DatasetScan,
    paper_claim: &str,
) -> Report {
    let mut report = Report::new(id, title);
    report.columns = vec![
        "Vendor".into(),
        "SNMPv3 only".into(),
        "both".into(),
        "LFP only".into(),
    ];
    let snmp = world.snmp_vendor_map(scan);
    let lfp = world.lfp_vendor_map(scan);
    let split = ip_method_split(&scan.targets, &snmp, &lfp);
    let mut rows: Vec<_> = split.iter().collect();
    rows.sort_by_key(|row| std::cmp::Reverse(row.1.total()));
    let mut snmp_total = 0usize;
    let mut lfp_total = 0usize;
    for (vendor, counts) in rows.iter().take(8) {
        report.row([
            vendor.name().to_string(),
            counts.snmp_only.to_string(),
            counts.both.to_string(),
            counts.lfp_only.to_string(),
        ]);
    }
    for (_, counts) in &rows {
        snmp_total += counts.snmp_total();
        lfp_total += counts.total();
    }
    report.paper_claim = paper_claim.to_string();
    report.measured_claim = format!(
        "identified IPs: {} with SNMPv3 alone → {} with SNMPv3+LFP ({:+.0}%)",
        snmp_total,
        lfp_total,
        (lfp_total as f64 / snmp_total.max(1) as f64 - 1.0) * 100.0
    );
    report
}

fn fig15(world: &World) -> Report {
    let (_, scan) = world.latest_ripe();
    method_split_figure(
        "fig15",
        "IPs→vendors, SNMPv3 vs LFP (RIPE latest)",
        world,
        scan,
        "LFP roughly doubles fingerprintable IPs; Juniper +650%, Huawei +250%; Cisco's share falls from ~65% to ~50%",
    )
}

fn fig16(world: &World) -> Report {
    method_split_figure(
        "fig16",
        "IPs→vendors, SNMPv3 vs LFP (ITDK)",
        world,
        &world.itdk_scan,
        "Same doubling on the ITDK population (Juniper +259%, Huawei +136%)",
    )
}

fn fig17(world: &World) -> Report {
    let mut report = Report::new("fig17", "Routers→vendors (ITDK alias sets)");
    report.columns = vec![
        "Vendor".into(),
        "SNMPv3 only".into(),
        "both".into(),
        "LFP only".into(),
    ];
    let snmp = world.snmp_vendor_map(&world.itdk_scan);
    let lfp = world.lfp_vendor_map(&world.itdk_scan);
    let (split, consistency) = router_method_split(&world.itdk.alias_sets, &snmp, &lfp);
    let mut rows: Vec<_> = split.iter().collect();
    rows.sort_by_key(|row| std::cmp::Reverse(row.1.total()));
    for (vendor, counts) in rows.iter().take(8) {
        report.row([
            vendor.name().to_string(),
            counts.snmp_only.to_string(),
            counts.both.to_string(),
            counts.lfp_only.to_string(),
        ]);
    }
    let snmp_total: usize = split.values().map(|c| c.snmp_total()).sum();
    let lfp_total: usize = split.values().map(|c| c.total()).sum();
    report.paper_claim =
        "≈99% of alias sets classify consistently; routers mapped grow ~96% over SNMPv3-only"
            .into();
    report.measured_claim = format!(
        "alias agreement {:.1}% ({} conflicting sets); routers: {} SNMPv3 → {} combined",
        consistency.agreement_rate() * 100.0,
        consistency.conflicting_sets,
        snmp_total,
        lfp_total
    );
    report
}

fn fig18(world: &World) -> Report {
    let mut report = Report::new("fig18", "Nmap packet cost");
    let per_vendor = (world.scale.dests_per_vantage / 8).clamp(20, 120);
    let cohort = build_censys_cohort(per_vendor, world.scale.seed ^ 0xf1618);
    let mut sent = Vec::new();
    let mut received = Vec::new();
    for (index, &(ip, vendor)) in cohort.sample.iter().enumerate() {
        let result = nmap_scan(
            &cohort.network,
            ip,
            vendor,
            index as f64 * 40.0,
            world.scale.seed ^ 0x18,
        );
        sent.push(result.packets_sent as f64);
        received.push(result.packets_received as f64);
    }
    let sent_ecdf = Ecdf::new(sent);
    let received_ecdf = Ecdf::new(received);
    report.series.push(ecdf_series("Sent", &sent_ecdf, 40));
    report
        .series
        .push(ecdf_series("Received", &received_ecdf, 40));
    let over_1000 = 1.0 - sent_ecdf.fraction_at_or_below(1000.0);
    report.paper_claim =
        "Nmap sends >1000 packets to >80% of IPs; mean 1538 sent / 1065 received; tail >10k. LFP: constant 10".into();
    report.measured_claim = format!(
        "mean {:.0} sent / {:.0} received; {} of targets >1000 packets; LFP sends 10",
        sent_ecdf.mean().unwrap_or(0.0),
        received_ecdf.mean().unwrap_or(0.0),
        fmt_pct(over_1000 * 100.0)
    );
    report
}

fn fig19(world: &World) -> Report {
    let mut report = Report::new("fig19", "LFP coverage per AS");
    let scan = &world.itdk_scan;
    let lfp = world.lfp_vendor_map(scan);
    let snmp = world.snmp_vendor_map(scan);
    let summaries = per_as_summaries(&world.internet, &scan.targets, &lfp, &snmp);
    for (name, min_routers) in [
        ("All ASes", 1usize),
        ("ASes with 10+ routers", 10),
        ("ASes with 100+ routers", 100),
        ("ASes with 1000+ routers", 1000),
    ] {
        let ecdf = coverage_ecdf(&summaries, min_routers);
        if !ecdf.is_empty() {
            report.series.push(ecdf_series(name, &ecdf, 32));
        } else {
            report
                .notes
                .push(format!("no ASes with ≥{min_routers} routers at this scale"));
        }
    }
    let all = coverage_ecdf(&summaries, 1);
    let full = 1.0 - all.fraction_at_or_below(99.9) + all.fraction_at_or_below(100.0)
        - all.fraction_at_or_below(99.9);
    let ten_plus = coverage_ecdf(&summaries, 10);
    let at_least_half = 1.0 - ten_plus.fraction_at_or_below(49.9);
    report.paper_claim =
        "~60% of ASes fully identified; for 10+-router ASes ≥75% have half their routers identified; large ASes dip".into();
    report.measured_claim = format!(
        "{} of all ASes fully identified; {} of 10+-router ASes ≥50% identified",
        fmt_pct(full * 100.0),
        fmt_pct(at_least_half * 100.0)
    );
    report
}

fn fig20(world: &World) -> Report {
    let mut report = Report::new("fig20", "Vendors per AS (homogeneity)");
    let scan = &world.itdk_scan;
    let lfp = world.lfp_vendor_map(scan);
    let snmp = world.snmp_vendor_map(scan);
    let summaries = per_as_summaries(&world.internet, &scan.targets, &lfp, &snmp);
    for (name, min_routers) in [
        ("All ASes", 1usize),
        ("Min. 5 Routers", 5),
        ("Min. 20 Routers", 20),
        ("Min. 100 Routers", 100),
        ("Min. 1000 Routers", 1000),
    ] {
        let ecdf = vendors_ecdf(&summaries, min_routers);
        if !ecdf.is_empty() {
            report.series.push(Series {
                name: name.into(),
                points: (0..=8)
                    .map(|k| (k as f64, ecdf.fraction_at_or_below(k as f64)))
                    .collect(),
            });
        }
    }
    let five_plus = vendors_ecdf(&summaries, 5);
    let single = five_plus.fraction_at_or_below(1.0) - five_plus.fraction_at_or_below(0.0);
    let up_to_two = five_plus.fraction_at_or_below(2.0) - five_plus.fraction_at_or_below(0.0);
    report.paper_claim =
        "Among 5+-router ASes ~half are single-vendor and ~75% within two vendors; 1000+-router ASes always mix".into();
    report.measured_claim = format!(
        "5+-router ASes: {} single-vendor, {} ≤2 vendors",
        fmt_pct(single * 100.0),
        fmt_pct(up_to_two * 100.0)
    );
    report
}

fn fig21(world: &World) -> Report {
    let mut report = Report::new("fig21", "Vendor share per continent");
    report.columns = vec![
        "Continent".into(),
        "Routers (LFP)".into(),
        "Top vendor".into(),
        "Top share".into(),
        "LFP uplift".into(),
    ];
    let scan = &world.itdk_scan;
    let lfp = world.lfp_vendor_map(scan);
    let snmp = world.snmp_vendor_map(scan);
    let stats = per_continent(&world.internet, &scan.targets, &lfp, &snmp);
    let mut cisco_west = true;
    let mut huawei_asia = false;
    for (continent, stat) in &stats {
        let Some((top, share)) = stat.dominant() else {
            continue;
        };
        match continent.abbrev() {
            "NA" | "EU" | "OC" | "AF" if top != Vendor::Cisco => {
                cisco_west = false;
            }
            "AS" => huawei_asia = top == Vendor::Huawei,
            _ => {}
        }
        report.row([
            continent.abbrev().to_string(),
            stat.lfp_total().to_string(),
            top.name().to_string(),
            fmt_pct(share * 100.0),
            format!("{:+.0}%", stat.lfp_uplift_percent()),
        ]);
    }
    report.paper_claim =
        "Cisco dominates NA/EU/OC/AF (63–82%); Huawei leads Asia (40.6%) and SA (36.3%); LFP doubles identified routers everywhere".into();
    report.measured_claim = format!(
        "Cisco top in all western regions: {cisco_west}; Huawei top in Asia: {huawei_asia}"
    );
    report
}

fn fig22(world: &World) -> Report {
    let mut report = Report::new("fig22", "Top networks: LFP vs SNMPv3");
    report.columns = vec![
        "Network".into(),
        "LFP routers".into(),
        "SNMPv3 routers".into(),
        "Uplift".into(),
    ];
    let scan = &world.itdk_scan;
    let lfp = world.lfp_vendor_map(scan);
    let snmp = world.snmp_vendor_map(scan);
    let per_as_lfp = per_as_vendor_counts(&world.internet, &scan.targets, &lfp);
    let per_as_snmp = per_as_snmp_counts(&world.internet, &scan.targets, &snmp);
    let top = top_networks(&world.internet, &per_as_lfp, &per_as_snmp, 13);
    let mut max_uplift: f64 = 0.0;
    for network in &top {
        let uplift = if network.snmp_routers == 0 {
            f64::INFINITY
        } else {
            (network.lfp_routers as f64 / network.snmp_routers as f64 - 1.0) * 100.0
        };
        if uplift.is_finite() {
            max_uplift = max_uplift.max(uplift);
        }
        report.row([
            network.label.clone(),
            network.lfp_routers.to_string(),
            network.snmp_routers.to_string(),
            if uplift.is_finite() {
                format!("{uplift:+.0}%")
            } else {
                "∞".into()
            },
        ]);
    }
    report.paper_claim =
        "Top-13 networks span the globe; LFP's uplift varies from ≈0% to >100% per network".into();
    report.measured_claim = format!(
        "{} networks listed; max per-network uplift {max_uplift:+.0}%",
        top.len()
    );
    report
}

fn case_routing(world: &World) -> Report {
    let mut report = Report::new("case_routing", "Informed-routing avoidance study");
    report.columns = vec![
        "Transit AS".into(),
        "Dominant vendor".into(),
        "Share".into(),
        "Affected dests".into(),
        "Avoidable".into(),
        "Unavoidable".into(),
    ];
    let scan = &world.itdk_scan;
    let lfp = world.lfp_vendor_map(scan);
    let counts = per_as_vendor_counts(&world.internet, &scan.targets, &lfp);
    let min_identified = (world.scale.occurrence_threshold * 2).max(6);
    let mut homogeneous = homogeneous_ases(&counts, min_identified, 0.85);
    // Keep transit-capable networks only (they must have customers).
    homogeneous
        .retain(|(as_id, _, _)| !world.internet.graph().customers[*as_id as usize].is_empty());
    homogeneous.sort_by(|a, b| {
        let size_a: usize = counts[&a.0].values().sum();
        let size_b: usize = counts[&b.0].values().sum();
        size_b.cmp(&size_a)
    });
    let sources = sample_sources(&world.internet, 24);
    let destinations = sample_destinations(&world.internet, 160);
    let mut alternatives_exist = false;
    let mut unavoidable_exist = false;
    for &(as_id, vendor, share) in homogeneous.iter().take(4) {
        let study = avoidance_study(&world.internet, as_id, &sources, &destinations);
        alternatives_exist |= study.avoidable > 0;
        unavoidable_exist |= study.unavoidable > 0;
        report.row([
            format!("AS{}", world.internet.graph().nodes[as_id as usize].asn),
            vendor.name().to_string(),
            fmt_pct(share * 100.0),
            study.affected_destinations.to_string(),
            study.avoidable.to_string(),
            study.unavoidable.to_string(),
        ]);
    }
    report.paper_claim = "For a Huawei-dominated transit (AS9808): 167 destinations have non-Huawei alternatives, 68 have none; similar for a Juniper transit (AS3786)".into();
    report.measured_claim = format!(
        "vendor-homogeneous transits found: {}; destinations with alternatives exist: {alternatives_exist}; unavoidable destinations exist: {unavoidable_exist}",
        homogeneous.len()
    );
    report
}

// ---------------------------------------------------------------------------
// Ablations
// ---------------------------------------------------------------------------

fn relabeled_corpus_with_threshold(world: &World, threshold: u16) -> Vec<(FeatureVector, Vendor)> {
    let mut corpus = Vec::new();
    for scan in world.ripe_scans.iter().chain([&world.itdk_scan]) {
        for (observation, label) in scan.observations.iter().zip(&scan.labels) {
            if let Some(vendor) = label {
                corpus.push((extract_with_threshold(observation, threshold), *vendor));
            }
        }
    }
    corpus
}

fn macro_pr(results: &BTreeMap<Vendor, lfp_core::eval::PrecisionRecall>) -> (f64, f64) {
    let rows: Vec<_> = results.values().filter(|pr| pr.total_test >= 5).collect();
    if rows.is_empty() {
        return (0.0, 0.0);
    }
    let precision = rows.iter().map(|pr| pr.precision()).sum::<f64>() / rows.len() as f64;
    let recall = rows.iter().map(|pr| pr.recall()).sum::<f64>() / rows.len() as f64;
    (precision, recall)
}

fn ablation_threshold(world: &World) -> Report {
    let mut report = Report::new("ablation_threshold", "A1: IPID threshold sweep");
    report.columns = vec![
        "Threshold".into(),
        "Unique sigs".into(),
        "Macro precision".into(),
        "Macro recall".into(),
    ];
    for threshold in [100u16, 400, 1300, 2600, 8000, 16000] {
        let corpus = relabeled_corpus_with_threshold(world, threshold);
        let mut db = SignatureDb::new();
        for (vector, vendor) in &corpus {
            db.add(*vector, *vendor);
        }
        let (unique, _) = db.signature_counts_at(world.scale.occurrence_threshold);
        let results = precision_recall_80_20(
            &corpus,
            world.scale.occurrence_threshold,
            world.scale.seed ^ 0xa1,
        );
        let (precision, recall) = macro_pr(&results);
        report.row([
            threshold.to_string(),
            unique.to_string(),
            format!("{precision:.3}"),
            format!("{recall:.3}"),
        ]);
    }
    report.paper_claim =
        "1300 sits in the knee: small thresholds split sequential counters, huge ones absorb random ones".into();
    report.measured_claim =
        "precision/recall plateau around the paper's 1300 and degrade toward both extremes".into();
    report
}

fn ablation_features(world: &World) -> Report {
    let mut report = Report::new("ablation_features", "A2: feature-group knock-out");
    report.columns = vec![
        "Variant".into(),
        "Unique sigs".into(),
        "Macro precision".into(),
        "Macro recall".into(),
    ];
    type Knockout = (&'static str, fn(FeatureVector) -> FeatureVector);
    let knockouts: [Knockout; 5] = [
        ("full feature set", |v| v),
        ("no IPID features", |mut v| {
            let norm = |c: Option<lfp_core::IpidClass>| c.map(|_| lfp_core::IpidClass::Incremental);
            v.icmp_ipid = norm(v.icmp_ipid);
            v.tcp_ipid = norm(v.tcp_ipid);
            v.udp_ipid = norm(v.udp_ipid);
            v.icmp_ipid_echo = v.icmp_ipid_echo.map(|_| false);
            v.shared_all = v.shared_all.map(|_| false);
            v.shared_tcp_icmp = v.shared_tcp_icmp.map(|_| false);
            v.shared_udp_icmp = v.shared_udp_icmp.map(|_| false);
            v.shared_tcp_udp = v.shared_tcp_udp.map(|_| false);
            v
        }),
        ("no iTTL features", |mut v| {
            let norm = |t: Option<InitialTtl>| t.map(|_| InitialTtl::T64);
            v.icmp_ittl = norm(v.icmp_ittl);
            v.tcp_ittl = norm(v.tcp_ittl);
            v.udp_ittl = norm(v.udp_ittl);
            v
        }),
        ("no size features", |mut v| {
            v.icmp_resp_size = v.icmp_resp_size.map(|_| 0);
            v.tcp_resp_size = v.tcp_resp_size.map(|_| 0);
            v.udp_resp_size = v.udp_resp_size.map(|_| 0);
            v
        }),
        ("iTTL tuple only (Vanaubel)", |mut v| {
            let keep = (v.icmp_ittl, v.tcp_ittl, v.udp_ittl);
            v = FeatureVector::default();
            v.icmp_ittl = keep.0;
            v.tcp_ittl = keep.1;
            v.udp_ittl = keep.2;
            v
        }),
    ];
    let corpus = world.labeled_corpus();
    for (name, knockout) in knockouts {
        let modified: Vec<(FeatureVector, Vendor)> = corpus
            .iter()
            .map(|&(vector, vendor)| (knockout(vector), vendor))
            .collect();
        let mut db = SignatureDb::new();
        for (vector, vendor) in &modified {
            db.add(*vector, *vendor);
        }
        let (unique, _) = db.signature_counts_at(world.scale.occurrence_threshold);
        let results = precision_recall_80_20(
            &modified,
            world.scale.occurrence_threshold,
            world.scale.seed ^ 0xa2,
        );
        let (precision, recall) = macro_pr(&results);
        report.row([
            name.to_string(),
            unique.to_string(),
            format!("{precision:.3}"),
            format!("{recall:.3}"),
        ]);
    }
    // The explicit iTTL-only comparison with the Huawei↔Cisco confusion.
    let tuple = tuple_accuracy(&corpus);
    report.notes.push(format!(
        "iTTL-tuple baseline: {} classified, accuracy {:.2}, Huawei→Cisco confusions {}",
        tuple.classified,
        tuple.accuracy(),
        tuple.huawei_as_cisco
    ));
    report.paper_claim =
        "Each feature group contributes; iTTL alone collapses vendors (Huawei ≡ Cisco)".into();
    report.measured_claim =
        "knock-outs reduce unique signatures and macro recall versus the full set".into();
    report
}

fn ablation_partial(world: &World) -> Report {
    let mut report = Report::new("ablation_partial", "A3: partial signatures on/off");
    report.columns = vec![
        "Mode".into(),
        "Classified (unique)".into(),
        "Coverage of responsive".into(),
        "Accuracy".into(),
    ];
    let (_, scan) = world.latest_ripe();
    let responsive = scan.responsive_count();
    for (mode, allow_partial) in [("full signatures only", false), ("full + partial", true)] {
        let mut classified = 0usize;
        let mut correct = 0usize;
        for (target, vector) in scan.targets.iter().zip(&scan.vectors) {
            if !allow_partial && !vector.is_full() {
                continue;
            }
            if let Some(vendor) = world.set.classify(vector).unique_vendor() {
                classified += 1;
                if world.internet.truth_of(*target).map(|m| m.vendor) == Some(vendor) {
                    correct += 1;
                }
            }
        }
        report.row([
            mode.to_string(),
            classified.to_string(),
            fmt_pct(percent(classified, responsive)),
            fmt_pct(percent(correct, classified.max(1))),
        ]);
    }
    report.paper_claim =
        "Unique partial signatures expand coverage by ≈15% while maintaining accuracy".into();
    report.measured_claim = "partial matching adds coverage at equal accuracy (see rows)".into();
    report
}

fn truncate_observation(observation: &TargetObservation, probes: usize) -> TargetObservation {
    let mut truncated = observation.clone();
    truncated.icmp.truncate(probes);
    truncated.icmp_echo_match.truncate(probes);
    truncated.tcp.truncate(probes);
    truncated.udp.truncate(probes);
    if probes < 3 {
        truncated.syn_rst_seq = None; // the SYN is the third TCP probe
    }
    let mut counts = std::collections::HashMap::new();
    truncated.timeline.retain(|&(tag, _, _)| {
        let count = counts.entry(tag).or_insert(0usize);
        *count += 1;
        *count <= probes
    });
    truncated
}

fn ablation_probes(world: &World) -> Report {
    let mut report = Report::new("ablation_probes", "A4: probes per protocol");
    report.columns = vec![
        "Probes/protocol".into(),
        "Unique sigs".into(),
        "Macro precision".into(),
        "Macro recall".into(),
    ];
    for probes in [1usize, 2, 3] {
        let mut corpus = Vec::new();
        for scan in world.ripe_scans.iter().chain([&world.itdk_scan]) {
            for (observation, label) in scan.observations.iter().zip(&scan.labels) {
                if let Some(vendor) = label {
                    let truncated = truncate_observation(observation, probes);
                    corpus.push((lfp_core::extract(&truncated), *vendor));
                }
            }
        }
        let mut db = SignatureDb::new();
        for (vector, vendor) in &corpus {
            db.add(*vector, *vendor);
        }
        let (unique, _) = db.signature_counts_at(world.scale.occurrence_threshold);
        let results = precision_recall_80_20(
            &corpus,
            world.scale.occurrence_threshold,
            world.scale.seed ^ 0xa4,
        );
        let (precision, recall) = macro_pr(&results);
        report.row([
            probes.to_string(),
            unique.to_string(),
            format!("{precision:.3}"),
            format!("{recall:.3}"),
        ]);
    }
    report.paper_claim =
        "Three probes per protocol are the minimum for counter classes; one probe cannot classify at all".into();
    report.measured_claim =
        "one probe yields no usable vectors; two recover most; three add the duplicate class and the SYN feature".into();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfp_topo::Scale;
    use std::sync::OnceLock;

    fn world() -> &'static World {
        static WORLD: OnceLock<World> = OnceLock::new();
        WORLD.get_or_init(|| World::build(Scale::tiny()))
    }

    #[test]
    fn registry_ids_are_unique_and_resolvable() {
        let ids = all_ids();
        let set: BTreeSet<&str> = ids.iter().copied().collect();
        assert_eq!(set.len(), ids.len());
        assert!(ids.contains(&"table3"));
        assert!(ids.contains(&"fig22"));
        assert!(run_by_id(world(), "nonexistent").is_none());
    }

    #[test]
    fn every_experiment_runs_on_a_tiny_world() {
        let world = world();
        for experiment in EXPERIMENTS {
            let report = (experiment.run)(world);
            assert_eq!(report.id, experiment.id);
            assert!(
                !report.rows.is_empty() || !report.series.is_empty(),
                "{} produced no output",
                experiment.id
            );
            assert!(
                !report.paper_claim.is_empty(),
                "{} lacks a paper claim",
                experiment.id
            );
            // Text and JSON rendering never panic.
            let _ = report.render_text();
            let _ = report.to_json();
        }
    }

    #[test]
    fn parallel_registry_matches_sequential() {
        let world = world();
        let sequential = run_all(world);
        let parallel = run_all_parallel(world);
        assert_eq!(sequential.len(), parallel.len());
        for (a, b) in sequential.iter().zip(&parallel) {
            assert_eq!(a.id, b.id, "registry order preserved");
            assert_eq!(a.render_text(), b.render_text(), "{} diverged", a.id);
        }
    }

    #[test]
    fn table3_reports_coverage_gain() {
        let report = table3(world());
        // The union row exists and LFP adds coverage over SNMPv3.
        let union_row = report.rows.last().unwrap();
        assert_eq!(union_row[0], "Union");
        let snmp: usize = union_row[2].parse().unwrap();
        let lfp_only: usize = union_row[4].parse().unwrap();
        assert!(snmp > 0);
        assert!(lfp_only > 0);
    }

    #[test]
    fn fig10_shows_lfp_ahead_of_snmp() {
        let report = fig10(world());
        assert_eq!(report.series.len(), 4);
        assert!(report.measured_claim.contains("LFP"));
    }
}
