//! UDP datagrams.
//!
//! LFP's UDP probes target a closed high port (33533) with a 12-byte
//! all-zero payload; the interesting response is the ICMP port-unreachable
//! a router generates, so this module is deliberately small: header
//! accessors, checksum (with IPv4 pseudo-header), and a representation.

use crate::checksum::{self, pseudo_header};
use crate::{Error, Result};
use std::net::Ipv4Addr;

/// UDP header length.
pub const HEADER_LEN: usize = 8;

mod field {
    use core::ops::Range;
    pub const SRC_PORT: Range<usize> = 0..2;
    pub const DST_PORT: Range<usize> = 2..4;
    pub const LENGTH: Range<usize> = 4..6;
    pub const CHECKSUM: Range<usize> = 6..8;
}

/// Typed view over a UDP datagram buffer.
#[derive(Debug, Clone)]
pub struct UdpPacket<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> UdpPacket<T> {
    /// Wrap without validation.
    pub fn new_unchecked(buffer: T) -> Self {
        UdpPacket { buffer }
    }

    /// Wrap, checking the length fields (checksum verification requires the
    /// pseudo-header; use [`UdpPacket::verify_checksum`]).
    pub fn new_checked(buffer: T) -> Result<Self> {
        let packet = UdpPacket { buffer };
        let data = packet.buffer.as_ref();
        if data.len() < HEADER_LEN {
            return Err(Error::Truncated);
        }
        let length = packet.length() as usize;
        if length < HEADER_LEN || data.len() < length {
            return Err(Error::Truncated);
        }
        Ok(packet)
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        u16::from_be_bytes(self.buffer.as_ref()[field::SRC_PORT].try_into().unwrap())
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        u16::from_be_bytes(self.buffer.as_ref()[field::DST_PORT].try_into().unwrap())
    }

    /// Length field (header + payload).
    pub fn length(&self) -> u16 {
        u16::from_be_bytes(self.buffer.as_ref()[field::LENGTH].try_into().unwrap())
    }

    /// Checksum field.
    pub fn checksum_field(&self) -> u16 {
        u16::from_be_bytes(self.buffer.as_ref()[field::CHECKSUM].try_into().unwrap())
    }

    /// Datagram payload.
    pub fn payload(&self) -> &[u8] {
        let length = (self.length() as usize).min(self.buffer.as_ref().len());
        &self.buffer.as_ref()[HEADER_LEN..length]
    }

    /// Verify the checksum against the pseudo-header. A zero checksum means
    /// "not computed" and is accepted, per RFC 768.
    pub fn verify_checksum(&self, src: Ipv4Addr, dst: Ipv4Addr) -> bool {
        if self.checksum_field() == 0 {
            return true;
        }
        let data = &self.buffer.as_ref()[..self.length() as usize];
        let sum = pseudo_header(src, dst, 17, self.length()).add_bytes(data);
        sum.finish() == 0
    }
}

/// Owned representation of a UDP datagram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UdpRepr {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

impl UdpRepr {
    /// Parse from a checked view.
    pub fn parse<T: AsRef<[u8]>>(packet: &UdpPacket<T>) -> Result<Self> {
        Ok(UdpRepr {
            src_port: packet.src_port(),
            dst_port: packet.dst_port(),
            payload: packet.payload().to_vec(),
        })
    }

    /// On-wire length.
    pub fn buffer_len(&self) -> usize {
        HEADER_LEN + self.payload.len()
    }

    /// Serialise with a correct pseudo-header checksum.
    pub fn to_bytes(&self, src: Ipv4Addr, dst: Ipv4Addr) -> Vec<u8> {
        let mut buf = vec![0u8; self.buffer_len()];
        buf[field::SRC_PORT].copy_from_slice(&self.src_port.to_be_bytes());
        buf[field::DST_PORT].copy_from_slice(&self.dst_port.to_be_bytes());
        buf[field::LENGTH].copy_from_slice(&(self.buffer_len() as u16).to_be_bytes());
        buf[HEADER_LEN..].copy_from_slice(&self.payload);
        let mut ck = pseudo_header(src, dst, 17, self.buffer_len() as u16)
            .add_bytes(&buf)
            .finish();
        if ck == 0 {
            // RFC 768: a computed zero is transmitted as all-ones.
            ck = 0xffff;
        }
        buf[field::CHECKSUM].copy_from_slice(&ck.to_be_bytes());
        buf
    }
}

/// Sanity helper used in tests and the simulator: checksum over raw parts.
pub fn datagram_checksum(src: Ipv4Addr, dst: Ipv4Addr, datagram: &[u8]) -> u16 {
    checksum::pseudo_header(src, dst, 17, datagram.len() as u16)
        .add_bytes(datagram)
        .finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const SRC: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 1);
    const DST: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 254);

    #[test]
    fn lfp_probe_shape() {
        // The paper's UDP probe: 12 bytes of zeros to port 33533.
        let repr = UdpRepr {
            src_port: 54321,
            dst_port: 33533,
            payload: vec![0u8; 12],
        };
        let bytes = repr.to_bytes(SRC, DST);
        assert_eq!(bytes.len(), 20);
        let packet = UdpPacket::new_checked(&bytes[..]).unwrap();
        assert!(packet.verify_checksum(SRC, DST));
        assert_eq!(UdpRepr::parse(&packet).unwrap(), repr);
    }

    #[test]
    fn zero_checksum_is_accepted() {
        let repr = UdpRepr {
            src_port: 1,
            dst_port: 2,
            payload: vec![9, 9],
        };
        let mut bytes = repr.to_bytes(SRC, DST);
        bytes[6] = 0;
        bytes[7] = 0;
        let packet = UdpPacket::new_checked(&bytes[..]).unwrap();
        assert!(packet.verify_checksum(SRC, DST));
    }

    #[test]
    fn corrupted_payload_fails_checksum() {
        let repr = UdpRepr {
            src_port: 7,
            dst_port: 33533,
            payload: vec![0u8; 12],
        };
        let mut bytes = repr.to_bytes(SRC, DST);
        bytes[12] ^= 0x01;
        let packet = UdpPacket::new_checked(&bytes[..]).unwrap();
        assert!(!packet.verify_checksum(SRC, DST));
    }

    #[test]
    fn short_datagram_is_truncated() {
        assert!(matches!(
            UdpPacket::new_checked(&[0u8; 4][..]),
            Err(Error::Truncated)
        ));
    }

    proptest! {
        #[test]
        fn roundtrip_arbitrary(
            src_port in any::<u16>(),
            dst_port in any::<u16>(),
            payload in proptest::collection::vec(any::<u8>(), 0..64),
        ) {
            let repr = UdpRepr { src_port, dst_port, payload };
            let bytes = repr.to_bytes(SRC, DST);
            let packet = UdpPacket::new_checked(&bytes[..]).unwrap();
            prop_assert!(packet.verify_checksum(SRC, DST));
            prop_assert_eq!(UdpRepr::parse(&packet).unwrap(), repr);
        }
    }
}
