//! IPv4 header view and representation.
//!
//! The IPv4 header carries three of the four LFP feature groups: the
//! 16-bit identification field (IPID), the time-to-live, and the total
//! length that determines response sizes. We implement the full 20-byte
//! option-less header; IP options are rejected as [`Error::Unsupported`]
//! because no router in the study emits them in probe responses and
//! accepting them silently would skew the response-size feature.

use crate::checksum;
use crate::{Error, Result};
use core::fmt;
use std::net::Ipv4Addr;

/// Length of the option-less IPv4 header.
pub const HEADER_LEN: usize = 20;

/// IP protocol numbers relevant to the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Protocol {
    /// ICMP (1).
    Icmp,
    /// TCP (6).
    Tcp,
    /// UDP (17).
    Udp,
    /// Anything else, kept verbatim.
    Other(u8),
}

impl From<u8> for Protocol {
    fn from(value: u8) -> Self {
        match value {
            1 => Protocol::Icmp,
            6 => Protocol::Tcp,
            17 => Protocol::Udp,
            other => Protocol::Other(other),
        }
    }
}

impl From<Protocol> for u8 {
    fn from(value: Protocol) -> Self {
        match value {
            Protocol::Icmp => 1,
            Protocol::Tcp => 6,
            Protocol::Udp => 17,
            Protocol::Other(other) => other,
        }
    }
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Protocol::Icmp => write!(f, "ICMP"),
            Protocol::Tcp => write!(f, "TCP"),
            Protocol::Udp => write!(f, "UDP"),
            Protocol::Other(n) => write!(f, "proto-{n}"),
        }
    }
}

mod field {
    use core::ops::Range;
    pub const VER_IHL: usize = 0;
    pub const DSCP_ECN: usize = 1;
    pub const LENGTH: Range<usize> = 2..4;
    pub const IDENT: Range<usize> = 4..6;
    pub const FLAGS_FRAG: Range<usize> = 6..8;
    pub const TTL: usize = 8;
    pub const PROTOCOL: usize = 9;
    pub const CHECKSUM: Range<usize> = 10..12;
    pub const SRC: Range<usize> = 12..16;
    pub const DST: Range<usize> = 16..20;
}

/// A typed view over a buffer containing an IPv4 packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ipv4Packet<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Ipv4Packet<T> {
    /// Wrap a buffer without validation. Accessors may panic on short
    /// buffers; use [`Ipv4Packet::new_checked`] for untrusted input.
    pub fn new_unchecked(buffer: T) -> Self {
        Ipv4Packet { buffer }
    }

    /// Wrap and validate: length, version, IHL, and header checksum.
    pub fn new_checked(buffer: T) -> Result<Self> {
        let packet = Ipv4Packet { buffer };
        packet.check()?;
        Ok(packet)
    }

    fn check(&self) -> Result<()> {
        let data = self.buffer.as_ref();
        if data.len() < HEADER_LEN {
            return Err(Error::Truncated);
        }
        if data[field::VER_IHL] >> 4 != 4 {
            return Err(Error::Malformed);
        }
        let ihl = usize::from(data[field::VER_IHL] & 0x0f) * 4;
        if ihl != HEADER_LEN {
            // Options present (or IHL < 20, which is invalid).
            return if ihl < HEADER_LEN {
                Err(Error::Malformed)
            } else {
                Err(Error::Unsupported)
            };
        }
        let total = self.total_len() as usize;
        if total < HEADER_LEN || data.len() < total {
            return Err(Error::Truncated);
        }
        if !checksum::verify(&data[..HEADER_LEN]) {
            return Err(Error::Checksum);
        }
        Ok(())
    }

    /// Release the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// Total length field (header + payload).
    pub fn total_len(&self) -> u16 {
        u16::from_be_bytes(self.buffer.as_ref()[field::LENGTH].try_into().unwrap())
    }

    /// Identification field — the IPID that LFP's counter features observe.
    pub fn ident(&self) -> u16 {
        u16::from_be_bytes(self.buffer.as_ref()[field::IDENT].try_into().unwrap())
    }

    /// Don't-fragment flag.
    pub fn dont_frag(&self) -> bool {
        self.buffer.as_ref()[field::FLAGS_FRAG.start] & 0x40 != 0
    }

    /// More-fragments flag.
    pub fn more_frags(&self) -> bool {
        self.buffer.as_ref()[field::FLAGS_FRAG.start] & 0x20 != 0
    }

    /// Time to live as received.
    pub fn ttl(&self) -> u8 {
        self.buffer.as_ref()[field::TTL]
    }

    /// Payload protocol.
    pub fn protocol(&self) -> Protocol {
        Protocol::from(self.buffer.as_ref()[field::PROTOCOL])
    }

    /// Header checksum field.
    pub fn header_checksum(&self) -> u16 {
        u16::from_be_bytes(self.buffer.as_ref()[field::CHECKSUM].try_into().unwrap())
    }

    /// Source address.
    pub fn src_addr(&self) -> Ipv4Addr {
        let b = &self.buffer.as_ref()[field::SRC];
        Ipv4Addr::new(b[0], b[1], b[2], b[3])
    }

    /// Destination address.
    pub fn dst_addr(&self) -> Ipv4Addr {
        let b = &self.buffer.as_ref()[field::DST];
        Ipv4Addr::new(b[0], b[1], b[2], b[3])
    }

    /// The transport payload, bounded by `total_len`.
    pub fn payload(&self) -> &[u8] {
        let total = (self.total_len() as usize).min(self.buffer.as_ref().len());
        &self.buffer.as_ref()[HEADER_LEN..total]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Ipv4Packet<T> {
    /// Set the total length field.
    pub fn set_total_len(&mut self, value: u16) {
        self.buffer.as_mut()[field::LENGTH].copy_from_slice(&value.to_be_bytes());
    }

    /// Set the identification (IPID) field.
    pub fn set_ident(&mut self, value: u16) {
        self.buffer.as_mut()[field::IDENT].copy_from_slice(&value.to_be_bytes());
    }

    /// Set or clear the don't-fragment flag.
    pub fn set_dont_frag(&mut self, value: bool) {
        let b = &mut self.buffer.as_mut()[field::FLAGS_FRAG.start];
        if value {
            *b |= 0x40;
        } else {
            *b &= !0x40;
        }
    }

    /// Set the TTL.
    pub fn set_ttl(&mut self, value: u8) {
        self.buffer.as_mut()[field::TTL] = value;
    }

    /// Set the protocol field.
    pub fn set_protocol(&mut self, value: Protocol) {
        self.buffer.as_mut()[field::PROTOCOL] = value.into();
    }

    /// Set the source address.
    pub fn set_src_addr(&mut self, value: Ipv4Addr) {
        self.buffer.as_mut()[field::SRC].copy_from_slice(&value.octets());
    }

    /// Set the destination address.
    pub fn set_dst_addr(&mut self, value: Ipv4Addr) {
        self.buffer.as_mut()[field::DST].copy_from_slice(&value.octets());
    }

    /// Recompute and store the header checksum.
    pub fn fill_checksum(&mut self) {
        self.buffer.as_mut()[field::CHECKSUM].copy_from_slice(&[0, 0]);
        let ck = checksum::checksum(&self.buffer.as_ref()[..HEADER_LEN]);
        self.buffer.as_mut()[field::CHECKSUM].copy_from_slice(&ck.to_be_bytes());
    }

    /// Mutable access to the transport payload.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        &mut self.buffer.as_mut()[HEADER_LEN..]
    }
}

/// Owned, validated summary of an IPv4 header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv4Repr {
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Payload protocol.
    pub protocol: Protocol,
    /// Time to live.
    pub ttl: u8,
    /// Identification (IPID).
    pub ident: u16,
    /// Don't-fragment flag.
    pub dont_frag: bool,
    /// Transport payload length in bytes.
    pub payload_len: usize,
}

impl Ipv4Repr {
    /// Parse from a checked packet view.
    pub fn parse<T: AsRef<[u8]>>(packet: &Ipv4Packet<T>) -> Result<Self> {
        if packet.more_frags() {
            return Err(Error::Unsupported);
        }
        Ok(Ipv4Repr {
            src: packet.src_addr(),
            dst: packet.dst_addr(),
            protocol: packet.protocol(),
            ttl: packet.ttl(),
            ident: packet.ident(),
            dont_frag: packet.dont_frag(),
            payload_len: packet.payload().len(),
        })
    }

    /// Header bytes required to emit this representation.
    pub fn buffer_len(&self) -> usize {
        HEADER_LEN
    }

    /// Total on-wire length (header plus payload).
    pub fn total_len(&self) -> usize {
        HEADER_LEN + self.payload_len
    }

    /// Emit into a packet view whose buffer holds at least
    /// `self.total_len()` bytes. Fills the checksum.
    pub fn emit<T: AsRef<[u8]> + AsMut<[u8]>>(&self, packet: &mut Ipv4Packet<T>) {
        let data = packet.buffer.as_mut();
        data[field::VER_IHL] = 0x45;
        data[field::DSCP_ECN] = 0;
        data[field::FLAGS_FRAG].copy_from_slice(&[0, 0]);
        packet.set_total_len((HEADER_LEN + self.payload_len) as u16);
        packet.set_ident(self.ident);
        packet.set_dont_frag(self.dont_frag);
        packet.set_ttl(self.ttl);
        packet.set_protocol(self.protocol);
        packet.set_src_addr(self.src);
        packet.set_dst_addr(self.dst);
        packet.fill_checksum();
    }
}

/// Convenience: build a complete IPv4 datagram around a transport payload.
pub fn build_datagram(repr: &Ipv4Repr, payload: &[u8]) -> Vec<u8> {
    debug_assert_eq!(repr.payload_len, payload.len());
    let mut buf = vec![0u8; HEADER_LEN + payload.len()];
    buf[HEADER_LEN..].copy_from_slice(payload);
    let mut packet = Ipv4Packet::new_unchecked(&mut buf[..]);
    repr.emit(&mut packet);
    buf
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_repr() -> Ipv4Repr {
        Ipv4Repr {
            src: Ipv4Addr::new(203, 0, 113, 9),
            dst: Ipv4Addr::new(192, 0, 2, 33),
            protocol: Protocol::Udp,
            ttl: 64,
            ident: 0xbeef,
            dont_frag: false,
            payload_len: 12,
        }
    }

    #[test]
    fn emit_parse_roundtrip() {
        let repr = sample_repr();
        let bytes = build_datagram(&repr, &[0u8; 12]);
        let packet = Ipv4Packet::new_checked(&bytes[..]).unwrap();
        assert_eq!(Ipv4Repr::parse(&packet).unwrap(), repr);
        assert_eq!(packet.total_len(), 32);
    }

    #[test]
    fn checksum_is_validated() {
        let repr = sample_repr();
        let mut bytes = build_datagram(&repr, &[0u8; 12]);
        bytes[8] = bytes[8].wrapping_add(1); // corrupt TTL without re-checksumming
        assert_eq!(Ipv4Packet::new_checked(&bytes[..]), Err(Error::Checksum));
    }

    #[test]
    fn version_and_ihl_are_validated() {
        let repr = sample_repr();
        let good = build_datagram(&repr, &[0u8; 12]);

        let mut bad_version = good.clone();
        bad_version[0] = 0x65;
        assert_eq!(
            Ipv4Packet::new_checked(&bad_version[..]),
            Err(Error::Malformed)
        );

        let mut with_options = good.clone();
        with_options[0] = 0x46; // IHL = 24: options present
        assert_eq!(
            Ipv4Packet::new_checked(&with_options[..]),
            Err(Error::Unsupported)
        );
    }

    #[test]
    fn short_buffer_is_truncated() {
        assert_eq!(
            Ipv4Packet::new_checked(&[0x45u8; 10][..]),
            Err(Error::Truncated)
        );
    }

    #[test]
    fn total_len_longer_than_buffer_is_truncated() {
        let repr = Ipv4Repr {
            payload_len: 100,
            ..sample_repr()
        };
        let mut buf = [0u8; HEADER_LEN]; // no room for payload
        let mut packet = Ipv4Packet::new_unchecked(&mut buf[..]);
        repr.emit(&mut packet);
        assert_eq!(Ipv4Packet::new_checked(&buf[..]), Err(Error::Truncated));
    }

    #[test]
    fn protocol_conversions_are_inverse() {
        for value in 0u8..=255 {
            assert_eq!(u8::from(Protocol::from(value)), value);
        }
    }

    #[test]
    fn payload_respects_total_len_not_buffer_len() {
        let repr = sample_repr();
        let mut bytes = build_datagram(&repr, &[0xaa; 12]);
        bytes.extend_from_slice(&[0xbb; 8]); // trailing garbage beyond total_len
        let packet = Ipv4Packet::new_checked(&bytes[..]).unwrap();
        assert_eq!(packet.payload(), &[0xaa; 12]);
    }

    proptest! {
        #[test]
        fn roundtrip_arbitrary_headers(
            src in any::<u32>(),
            dst in any::<u32>(),
            proto in any::<u8>(),
            ttl in any::<u8>(),
            ident in any::<u16>(),
            df in any::<bool>(),
            payload_len in 0usize..64,
        ) {
            let repr = Ipv4Repr {
                src: Ipv4Addr::from(src),
                dst: Ipv4Addr::from(dst),
                protocol: Protocol::from(proto),
                ttl,
                ident,
                dont_frag: df,
                payload_len,
            };
            let bytes = build_datagram(&repr, &vec![0u8; payload_len]);
            let packet = Ipv4Packet::new_checked(&bytes[..]).unwrap();
            prop_assert_eq!(Ipv4Repr::parse(&packet).unwrap(), repr);
        }
    }
}
