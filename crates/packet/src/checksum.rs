//! RFC 1071 Internet checksum.
//!
//! Used by IPv4 headers, ICMP messages, and — combined with a pseudo-header
//! — TCP and UDP. The implementation folds 16-bit words with end-around
//! carry and is verified against hand-computed vectors and a property test
//! asserting the defining identity: inserting the computed checksum makes
//! the overall sum fold to zero.

use std::net::Ipv4Addr;

/// Running ones-complement sum; fold with [`fold`] when done.
#[derive(Debug, Clone, Copy, Default)]
pub struct Sum(u32);

impl Sum {
    /// Start an empty sum.
    pub fn new() -> Self {
        Sum(0)
    }

    /// Add a big-endian byte slice. Odd trailing bytes are padded with zero,
    /// as the RFC requires.
    pub fn add_bytes(mut self, data: &[u8]) -> Self {
        let mut chunks = data.chunks_exact(2);
        for chunk in &mut chunks {
            self.0 += u32::from(u16::from_be_bytes([chunk[0], chunk[1]]));
        }
        if let [last] = chunks.remainder() {
            self.0 += u32::from(u16::from_be_bytes([*last, 0]));
        }
        self
    }

    /// Add a single 16-bit word.
    pub fn add_u16(mut self, word: u16) -> Self {
        self.0 += u32::from(word);
        self
    }

    /// Add a 32-bit value as two 16-bit words (e.g. an IPv4 address).
    pub fn add_u32(self, value: u32) -> Self {
        self.add_u16((value >> 16) as u16).add_u16(value as u16)
    }

    /// Finish: fold carries and complement.
    pub fn finish(self) -> u16 {
        !fold(self.0)
    }
}

fn fold(mut sum: u32) -> u16 {
    while sum > 0xffff {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    sum as u16
}

/// Compute the Internet checksum of `data` with the checksum field assumed
/// zeroed.
pub fn checksum(data: &[u8]) -> u16 {
    Sum::new().add_bytes(data).finish()
}

/// Verify a buffer whose checksum field is *included*: valid iff the folded
/// sum is `0xffff` (i.e. complements to zero).
pub fn verify(data: &[u8]) -> bool {
    fold(Sum::new().add_bytes(data).0) == 0xffff
}

/// The TCP/UDP pseudo-header contribution (RFC 793 §3.1 / RFC 768).
pub fn pseudo_header(src: Ipv4Addr, dst: Ipv4Addr, protocol: u8, length: u16) -> Sum {
    Sum::new()
        .add_u32(u32::from(src))
        .add_u32(u32::from(dst))
        .add_u16(u16::from(protocol))
        .add_u16(length)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rfc1071_worked_example() {
        // The classic worked example from RFC 1071 §3.
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        let partial = Sum::new().add_bytes(&data).0;
        assert_eq!(fold(partial), 0xddf2);
        assert_eq!(checksum(&data), !0xddf2);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        assert_eq!(checksum(&[0xab]), checksum(&[0xab, 0x00]));
    }

    #[test]
    fn empty_buffer_checksums_to_all_ones() {
        assert_eq!(checksum(&[]), 0xffff);
    }

    #[test]
    fn verify_detects_single_bit_flip() {
        let mut data = vec![
            0x45, 0x00, 0x00, 0x1c, 0xde, 0xad, 0x00, 0x00, 0x40, 0x01, 0, 0,
        ];
        let ck = checksum(&data);
        data[10..12].copy_from_slice(&ck.to_be_bytes());
        assert!(verify(&data));
        data[0] ^= 0x01;
        assert!(!verify(&data));
    }

    #[test]
    fn pseudo_header_matches_manual_sum() {
        let sum = pseudo_header(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            6,
            20,
        );
        let manual = Sum::new()
            .add_bytes(&[10, 0, 0, 1, 10, 0, 0, 2, 0, 6, 0, 20])
            .0;
        assert_eq!(fold(sum.0), fold(manual));
    }

    proptest! {
        /// Defining property: a buffer with its checksum inserted verifies.
        #[test]
        fn inserted_checksum_verifies(mut data in proptest::collection::vec(any::<u8>(), 12..256)) {
            data[10] = 0;
            data[11] = 0;
            let ck = checksum(&data);
            data[10..12].copy_from_slice(&ck.to_be_bytes());
            prop_assert!(verify(&data));
        }

        /// Summation is invariant under word-order permutation (commutative).
        #[test]
        fn order_independent(words in proptest::collection::vec(any::<u16>(), 1..64)) {
            let mut rev = words.clone();
            rev.reverse();
            let a = words.iter().fold(Sum::new(), |s, w| s.add_u16(*w)).finish();
            let b = rev.iter().fold(Sum::new(), |s, w| s.add_u16(*w)).finish();
            prop_assert_eq!(a, b);
        }
    }
}
