//! SNMPv3 messages and the engine-ID vendor codec.
//!
//! The labelling half of the LFP methodology sends a single unauthenticated
//! SNMPv3 *engine discovery* request (RFC 3414 §4): a `get-request` with an
//! empty authoritative engine ID. A conforming agent answers with a
//! `report` PDU carrying `usmStatsUnknownEngineIDs` — and, crucially, its
//! `msgAuthoritativeEngineID`, whose first four bytes encode the vendor's
//! IANA Private Enterprise Number (RFC 3411 §5). That PEN is the
//! ground-truth vendor label.
//!
//! This module implements the full message grammar on the wire (BER), both
//! directions, so the simulator's agents and the prober speak real SNMPv3.

use crate::ber::{self, Reader};
use crate::{Error, Result};

/// Context-specific constructed tag for get-request PDUs.
pub const TAG_GET_REQUEST: u8 = 0xa0;
/// Context-specific constructed tag for get-response PDUs.
pub const TAG_RESPONSE: u8 = 0xa2;
/// Context-specific constructed tag for report PDUs.
pub const TAG_REPORT: u8 = 0xa8;
/// Application tag for Counter32 values.
pub const TAG_COUNTER32: u8 = 0x41;
/// Application tag for TimeTicks values.
pub const TAG_TIMETICKS: u8 = 0x43;

/// `usmStatsUnknownEngineIDs.0` — the OID reported during discovery.
pub const USM_STATS_UNKNOWN_ENGINE_IDS: [u32; 11] = [1, 3, 6, 1, 6, 3, 15, 1, 1, 4, 0];
/// `sysUpTime.0`, present in some agents' responses.
pub const SYS_UPTIME: [u32; 9] = [1, 3, 6, 1, 2, 1, 1, 3, 0];

/// An SNMPv3 authoritative engine identifier (RFC 3411 SnmpEngineID).
///
/// Layout: 4 bytes of enterprise number with the MSB set, a format octet,
/// then format-specific data (we generate format 4, "administratively
/// assigned text", and parse any format).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct EngineId {
    /// IANA Private Enterprise Number of the implementer.
    pub pen: u32,
    /// Format octet (1 = IPv4, 3 = MAC, 4 = text, 5 = octets, ≥128 = vendor).
    pub format: u8,
    /// Format-specific payload.
    pub data: Vec<u8>,
}

impl EngineId {
    /// Build a text-format engine ID, the most common shape in the wild.
    pub fn text(pen: u32, text: &str) -> Self {
        EngineId {
            pen,
            format: 4,
            data: text.as_bytes().to_vec(),
        }
    }

    /// Serialise to the on-wire octet form.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(5 + self.data.len());
        out.extend_from_slice(&(self.pen | 0x8000_0000).to_be_bytes());
        out.push(self.format);
        out.extend_from_slice(&self.data);
        out
    }

    /// Parse the on-wire octet form. Engine IDs shorter than five octets or
    /// without the RFC 3411 MSB are rejected — the paper's technique relies
    /// on this structure to recover the vendor.
    pub fn parse(bytes: &[u8]) -> Result<Self> {
        if bytes.len() < 5 {
            return Err(Error::Truncated);
        }
        let word = u32::from_be_bytes(bytes[0..4].try_into().unwrap());
        if word & 0x8000_0000 == 0 {
            return Err(Error::Unsupported); // pre-RFC3411 format
        }
        Ok(EngineId {
            pen: word & 0x7fff_ffff,
            format: bytes[4],
            data: bytes[5..].to_vec(),
        })
    }
}

/// USM security parameters (RFC 3414 §2.4), carried inside an OCTET STRING.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct UsmSecurityParams {
    /// Authoritative engine ID octets (empty during discovery).
    pub engine_id: Vec<u8>,
    /// snmpEngineBoots.
    pub engine_boots: u32,
    /// snmpEngineTime (seconds since last boot).
    pub engine_time: u32,
    /// Security user name (empty during discovery).
    pub user_name: Vec<u8>,
    /// Authentication parameters (empty: noAuthNoPriv).
    pub auth_params: Vec<u8>,
    /// Privacy parameters (empty: noAuthNoPriv).
    pub priv_params: Vec<u8>,
}

impl UsmSecurityParams {
    fn to_ber(&self) -> Vec<u8> {
        let content = [
            ber::octet_string(&self.engine_id),
            ber::integer(i64::from(self.engine_boots)),
            ber::integer(i64::from(self.engine_time)),
            ber::octet_string(&self.user_name),
            ber::octet_string(&self.auth_params),
            ber::octet_string(&self.priv_params),
        ]
        .concat();
        ber::sequence(&content)
    }

    fn parse(data: &[u8]) -> Result<Self> {
        let mut outer = Reader::new(data);
        let mut seq = outer.read_sequence()?;
        let params = UsmSecurityParams {
            engine_id: seq.read_octet_string()?.to_vec(),
            engine_boots: u32::try_from(seq.read_integer()?).map_err(|_| Error::Malformed)?,
            engine_time: u32::try_from(seq.read_integer()?).map_err(|_| Error::Malformed)?,
            user_name: seq.read_octet_string()?.to_vec(),
            auth_params: seq.read_octet_string()?.to_vec(),
            priv_params: seq.read_octet_string()?.to_vec(),
        };
        Ok(params)
    }
}

/// A variable-binding value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// ASN.1 NULL (used in requests).
    Null,
    /// INTEGER.
    Integer(i64),
    /// OCTET STRING.
    OctetString(Vec<u8>),
    /// Counter32 (application tag 1).
    Counter32(u32),
    /// TimeTicks (application tag 3).
    TimeTicks(u32),
}

impl Value {
    fn to_ber(&self) -> Vec<u8> {
        match self {
            Value::Null => ber::null(),
            Value::Integer(v) => ber::integer(*v),
            Value::OctetString(bytes) => ber::octet_string(bytes),
            Value::Counter32(v) => retag(ber::integer(i64::from(*v)), TAG_COUNTER32),
            Value::TimeTicks(v) => retag(ber::integer(i64::from(*v)), TAG_TIMETICKS),
        }
    }
}

fn retag(mut tlv: Vec<u8>, tag: u8) -> Vec<u8> {
    tlv[0] = tag;
    tlv
}

/// PDU kinds the discovery exchange uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PduKind {
    /// get-request (0xa0).
    GetRequest,
    /// get-response (0xa2).
    Response,
    /// report (0xa8).
    Report,
}

impl PduKind {
    fn tag(self) -> u8 {
        match self {
            PduKind::GetRequest => TAG_GET_REQUEST,
            PduKind::Response => TAG_RESPONSE,
            PduKind::Report => TAG_REPORT,
        }
    }

    fn from_tag(tag: u8) -> Result<Self> {
        match tag {
            TAG_GET_REQUEST => Ok(PduKind::GetRequest),
            TAG_RESPONSE => Ok(PduKind::Response),
            TAG_REPORT => Ok(PduKind::Report),
            _ => Err(Error::Unsupported),
        }
    }
}

/// An SNMP PDU (request-id, error fields, variable bindings).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pdu {
    /// PDU kind.
    pub kind: PduKind,
    /// request-id, echoed by the agent.
    pub request_id: i32,
    /// error-status.
    pub error_status: i32,
    /// error-index.
    pub error_index: i32,
    /// Variable bindings: (OID, value) pairs.
    pub bindings: Vec<(Vec<u32>, Value)>,
}

impl Pdu {
    fn to_ber(&self) -> Result<Vec<u8>> {
        let mut bindings = Vec::new();
        for (oid, value) in &self.bindings {
            let pair = [ber::oid(oid)?, value.to_ber()].concat();
            bindings.extend_from_slice(&ber::sequence(&pair));
        }
        let content = [
            ber::integer(i64::from(self.request_id)),
            ber::integer(i64::from(self.error_status)),
            ber::integer(i64::from(self.error_index)),
            ber::sequence(&bindings),
        ]
        .concat();
        Ok(ber::tlv(self.kind.tag(), &content))
    }

    fn parse(tag: u8, content: &[u8]) -> Result<Self> {
        let kind = PduKind::from_tag(tag)?;
        let mut reader = Reader::new(content);
        let request_id = i32::try_from(reader.read_integer()?).map_err(|_| Error::Malformed)?;
        let error_status = i32::try_from(reader.read_integer()?).map_err(|_| Error::Malformed)?;
        let error_index = i32::try_from(reader.read_integer()?).map_err(|_| Error::Malformed)?;
        let mut bindings_reader = reader.read_sequence()?;
        let mut bindings = Vec::new();
        while !bindings_reader.is_empty() {
            let mut pair = bindings_reader.read_sequence()?;
            let oid = pair.read_oid()?;
            let (vtag, vcontent) = pair.read_tlv()?;
            let value = match vtag {
                ber::TAG_NULL => Value::Null,
                ber::TAG_INTEGER => Value::Integer(ber::decode_integer(vcontent)?),
                ber::TAG_OCTET_STRING => Value::OctetString(vcontent.to_vec()),
                TAG_COUNTER32 => Value::Counter32(
                    u32::try_from(ber::decode_integer(vcontent)?).map_err(|_| Error::Malformed)?,
                ),
                TAG_TIMETICKS => Value::TimeTicks(
                    u32::try_from(ber::decode_integer(vcontent)?).map_err(|_| Error::Malformed)?,
                ),
                _ => return Err(Error::Unsupported),
            };
            bindings.push((oid, value));
        }
        Ok(Pdu {
            kind,
            request_id,
            error_status,
            error_index,
            bindings,
        })
    }
}

/// A complete SNMPv3 message (RFC 3412 §6).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnmpV3Message {
    /// msgID, used to correlate requests and responses.
    pub msg_id: i32,
    /// msgMaxSize we advertise.
    pub max_size: i32,
    /// msgFlags octet (0x04 = reportable, no auth, no priv).
    pub flags: u8,
    /// USM security parameters.
    pub usm: UsmSecurityParams,
    /// contextEngineID of the scoped PDU.
    pub context_engine_id: Vec<u8>,
    /// contextName of the scoped PDU.
    pub context_name: Vec<u8>,
    /// The PDU itself.
    pub pdu: Pdu,
}

/// msgFlags: reportable, noAuthNoPriv.
pub const FLAG_REPORTABLE: u8 = 0x04;
/// msgSecurityModel: User-based Security Model.
pub const SECURITY_MODEL_USM: i64 = 3;

impl SnmpV3Message {
    /// Serialise the whole message to BER.
    pub fn to_bytes(&self) -> Result<Vec<u8>> {
        let global_data = ber::sequence(
            &[
                ber::integer(i64::from(self.msg_id)),
                ber::integer(i64::from(self.max_size)),
                ber::octet_string(&[self.flags]),
                ber::integer(SECURITY_MODEL_USM),
            ]
            .concat(),
        );
        let scoped_pdu = ber::sequence(
            &[
                ber::octet_string(&self.context_engine_id),
                ber::octet_string(&self.context_name),
                self.pdu.to_ber()?,
            ]
            .concat(),
        );
        let content = [
            ber::integer(3), // msgVersion = SNMPv3
            global_data,
            ber::octet_string(&self.usm.to_ber()),
            scoped_pdu,
        ]
        .concat();
        Ok(ber::sequence(&content))
    }

    /// Parse a BER-encoded SNMPv3 message.
    pub fn parse(bytes: &[u8]) -> Result<Self> {
        let mut outer = Reader::new(bytes);
        let mut msg = outer.read_sequence()?;
        if msg.read_integer()? != 3 {
            return Err(Error::Unsupported);
        }
        let mut global = msg.read_sequence()?;
        let msg_id = i32::try_from(global.read_integer()?).map_err(|_| Error::Malformed)?;
        let max_size = i32::try_from(global.read_integer()?).map_err(|_| Error::Malformed)?;
        let flags_str = global.read_octet_string()?;
        let flags = *flags_str.first().ok_or(Error::Malformed)?;
        if global.read_integer()? != SECURITY_MODEL_USM {
            return Err(Error::Unsupported);
        }
        let usm = UsmSecurityParams::parse(msg.read_octet_string()?)?;
        let mut scoped = msg.read_sequence()?;
        let context_engine_id = scoped.read_octet_string()?.to_vec();
        let context_name = scoped.read_octet_string()?.to_vec();
        let (pdu_tag, pdu_content) = scoped.read_tlv()?;
        let pdu = Pdu::parse(pdu_tag, pdu_content)?;
        Ok(SnmpV3Message {
            msg_id,
            max_size,
            flags,
            usm,
            context_engine_id,
            context_name,
            pdu,
        })
    }

    /// Build the unauthenticated engine-discovery request the LFP
    /// methodology sends: empty engine ID, empty user, reportable flag.
    pub fn discovery_request(msg_id: i32) -> Self {
        SnmpV3Message {
            msg_id,
            max_size: 65507,
            flags: FLAG_REPORTABLE,
            usm: UsmSecurityParams::default(),
            context_engine_id: Vec::new(),
            context_name: Vec::new(),
            pdu: Pdu {
                kind: PduKind::GetRequest,
                request_id: msg_id,
                error_status: 0,
                error_index: 0,
                bindings: Vec::new(),
            },
        }
    }

    /// Build the agent's discovery report: engine ID, boots, time, and the
    /// `usmStatsUnknownEngineIDs` counter.
    pub fn discovery_report(
        msg_id: i32,
        engine_id: &EngineId,
        engine_boots: u32,
        engine_time: u32,
        unknown_engine_ids: u32,
    ) -> Self {
        let engine_bytes = engine_id.to_bytes();
        SnmpV3Message {
            msg_id,
            max_size: 65507,
            flags: 0,
            usm: UsmSecurityParams {
                engine_id: engine_bytes.clone(),
                engine_boots,
                engine_time,
                ..UsmSecurityParams::default()
            },
            context_engine_id: engine_bytes,
            context_name: Vec::new(),
            pdu: Pdu {
                kind: PduKind::Report,
                request_id: msg_id,
                error_status: 0,
                error_index: 0,
                bindings: vec![(
                    USM_STATS_UNKNOWN_ENGINE_IDS.to_vec(),
                    Value::Counter32(unknown_engine_ids),
                )],
            },
        }
    }

    /// Extract the authoritative engine ID from a report, if structurally
    /// valid. This is what the labelling pipeline consumes.
    pub fn authoritative_engine_id(&self) -> Result<EngineId> {
        EngineId::parse(&self.usm.engine_id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn discovery_request_roundtrip() {
        let msg = SnmpV3Message::discovery_request(0x1357);
        let bytes = msg.to_bytes().unwrap();
        let parsed = SnmpV3Message::parse(&bytes).unwrap();
        assert_eq!(parsed, msg);
        assert!(parsed.usm.engine_id.is_empty());
        assert_eq!(parsed.flags & FLAG_REPORTABLE, FLAG_REPORTABLE);
        assert_eq!(parsed.pdu.kind, PduKind::GetRequest);
    }

    #[test]
    fn discovery_exchange_recovers_pen() {
        let engine = EngineId::text(9, "cisco-core-7");
        let report = SnmpV3Message::discovery_report(42, &engine, 13, 86400, 1);
        let bytes = report.to_bytes().unwrap();
        let parsed = SnmpV3Message::parse(&bytes).unwrap();
        assert_eq!(parsed.pdu.kind, PduKind::Report);
        let recovered = parsed.authoritative_engine_id().unwrap();
        assert_eq!(recovered.pen, 9);
        assert_eq!(recovered.format, 4);
        assert_eq!(recovered.data, b"cisco-core-7");
        assert_eq!(parsed.usm.engine_boots, 13);
        assert_eq!(parsed.usm.engine_time, 86400);
        assert_eq!(
            parsed.pdu.bindings,
            vec![(USM_STATS_UNKNOWN_ENGINE_IDS.to_vec(), Value::Counter32(1))]
        );
    }

    #[test]
    fn engine_id_without_msb_is_rejected() {
        // Pre-RFC3411 engine IDs (12 octets, MSB clear) exist in the wild;
        // the parser must flag them rather than misattribute a PEN.
        let legacy = vec![0x00, 0x00, 0x00, 0x09, 1, 2, 3, 4, 5, 6, 7, 8];
        assert_eq!(EngineId::parse(&legacy), Err(Error::Unsupported));
    }

    #[test]
    fn short_engine_id_is_truncated() {
        assert_eq!(EngineId::parse(&[0x80, 0, 0]), Err(Error::Truncated));
    }

    #[test]
    fn known_vendor_pens_roundtrip() {
        for pen in [9u32, 2636, 2011, 14988, 25506, 6527, 193, 1991, 4881, 8072] {
            let engine = EngineId {
                pen,
                format: 0x80,
                data: vec![0xde, 0xad],
            };
            let parsed = EngineId::parse(&engine.to_bytes()).unwrap();
            assert_eq!(parsed, engine);
        }
    }

    #[test]
    fn non_v3_version_is_unsupported() {
        // An SNMPv2c-ish message: version 1.
        let bytes = ber::sequence(&ber::integer(1));
        assert_eq!(SnmpV3Message::parse(&bytes), Err(Error::Unsupported));
    }

    #[test]
    fn response_pdu_with_uptime_roundtrips() {
        let msg = SnmpV3Message {
            msg_id: 7,
            max_size: 65507,
            flags: 0,
            usm: UsmSecurityParams::default(),
            context_engine_id: vec![],
            context_name: vec![],
            pdu: Pdu {
                kind: PduKind::Response,
                request_id: 7,
                error_status: 0,
                error_index: 0,
                bindings: vec![(SYS_UPTIME.to_vec(), Value::TimeTicks(123456))],
            },
        };
        let parsed = SnmpV3Message::parse(&msg.to_bytes().unwrap()).unwrap();
        assert_eq!(parsed, msg);
    }

    proptest! {
        #[test]
        fn engine_id_roundtrip(
            pen in 0u32..0x8000_0000,
            format in any::<u8>(),
            data in proptest::collection::vec(any::<u8>(), 0..27),
        ) {
            let engine = EngineId { pen, format, data };
            prop_assert_eq!(EngineId::parse(&engine.to_bytes()).unwrap(), engine);
        }

        #[test]
        fn report_roundtrip(
            msg_id in any::<i32>(),
            pen in 1u32..100_000,
            boots in any::<u32>(),
            time in 0u32..0x7fff_ffff,
            counter in any::<u32>(),
        ) {
            let engine = EngineId::text(pen, "x");
            let msg = SnmpV3Message::discovery_report(msg_id, &engine, boots, time, counter);
            let parsed = SnmpV3Message::parse(&msg.to_bytes().unwrap()).unwrap();
            prop_assert_eq!(parsed, msg);
        }

        #[test]
        fn parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
            let _ = SnmpV3Message::parse(&bytes);
        }
    }
}
