//! # lfp-packet — wire formats for router fingerprinting
//!
//! Zero-copy packet views and owned representations for the protocols the
//! LFP measurement methodology touches on the wire:
//!
//! * [`ipv4`] — IPv4 header (the layer carrying the IPID and TTL features),
//! * [`icmp`] — ICMP echo, destination-unreachable and time-exceeded,
//! * [`tcp`] — TCP segments including the option kinds fingerprinters read,
//! * [`udp`] — UDP datagrams,
//! * [`ber`] — a minimal BER (ASN.1 basic encoding rules) reader/writer,
//! * [`snmp`] — SNMPv3/USM messages and the engine-ID vendor codec.
//!
//! The design follows the two-level idiom of event-driven network stacks
//! such as smoltcp: a *packet view* (`XxxPacket<T>`) wraps a byte buffer and
//! exposes typed accessors over it without copying, while a *representation*
//! (`XxxRepr`) is an owned, validated summary that can be parsed from a view
//! or emitted into one. All emission routines compute correct checksums and
//! all parsers validate lengths and checksums, returning [`Error`] instead
//! of panicking on untrusted input.
//!
//! ```
//! use lfp_packet::ipv4::{Ipv4Packet, Ipv4Repr, Protocol};
//! use std::net::Ipv4Addr;
//!
//! let repr = Ipv4Repr {
//!     src: Ipv4Addr::new(192, 0, 2, 1),
//!     dst: Ipv4Addr::new(198, 51, 100, 7),
//!     protocol: Protocol::Icmp,
//!     ttl: 255,
//!     ident: 0x1234,
//!     dont_frag: true,
//!     payload_len: 8,
//! };
//! let mut buf = vec![0u8; repr.buffer_len() + 8];
//! let mut packet = Ipv4Packet::new_unchecked(&mut buf[..]);
//! repr.emit(&mut packet);
//! let parsed = Ipv4Repr::parse(&Ipv4Packet::new_checked(&buf[..]).unwrap()).unwrap();
//! assert_eq!(parsed.ident, 0x1234);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ber;
pub mod checksum;
pub mod icmp;
pub mod ipv4;
pub mod snmp;
pub mod tcp;
pub mod udp;

use core::fmt;

/// Errors produced while parsing or emitting packets.
///
/// Parsers are total: any byte sequence either parses or yields one of these
/// variants; they never panic. This matters for the simulator, where probe
/// responses are parsed exactly as an Internet-facing tool would parse them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Error {
    /// The buffer is too short to contain the claimed structure.
    Truncated,
    /// A field value violates the protocol (bad version, reserved bits, ...).
    Malformed,
    /// A checksum failed verification.
    Checksum,
    /// The structure is valid but uses a feature we do not implement.
    Unsupported,
    /// An emit target buffer is too small for the representation.
    Exhausted,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Truncated => write!(f, "truncated packet"),
            Error::Malformed => write!(f, "malformed packet"),
            Error::Checksum => write!(f, "checksum failure"),
            Error::Unsupported => write!(f, "unsupported feature"),
            Error::Exhausted => write!(f, "buffer exhausted"),
        }
    }
}

impl std::error::Error for Error {}

/// Crate-wide result alias.
pub type Result<T> = core::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_stable() {
        assert_eq!(Error::Truncated.to_string(), "truncated packet");
        assert_eq!(Error::Checksum.to_string(), "checksum failure");
        assert_eq!(Error::Exhausted.to_string(), "buffer exhausted");
    }
}
