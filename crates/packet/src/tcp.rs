//! TCP segments.
//!
//! LFP sends two ACK segments and one SYN with a non-zero acknowledgment
//! number at a closed port and observes the RST responses; whether the RST
//! sequence number copies the probe's ACK (RFC 793 §3.4) or is zero is one
//! of the fifteen features. The baselines (Hershel, Nmap) additionally read
//! SYN-ACK option layouts, so the option kinds they care about — MSS,
//! window scale, SACK-permitted and timestamps — are parsed and emitted.

use crate::checksum::pseudo_header;
use crate::{Error, Result};
use core::fmt;
use std::net::Ipv4Addr;

/// Minimum TCP header length (no options).
pub const HEADER_LEN: usize = 20;

/// TCP flag bits (subset of the control-bits field).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TcpFlags(u8);

impl TcpFlags {
    /// No flags set.
    pub const NONE: TcpFlags = TcpFlags(0);
    /// FIN.
    pub const FIN: TcpFlags = TcpFlags(0x01);
    /// SYN.
    pub const SYN: TcpFlags = TcpFlags(0x02);
    /// RST.
    pub const RST: TcpFlags = TcpFlags(0x04);
    /// PSH.
    pub const PSH: TcpFlags = TcpFlags(0x08);
    /// ACK.
    pub const ACK: TcpFlags = TcpFlags(0x10);
    /// URG.
    pub const URG: TcpFlags = TcpFlags(0x20);

    /// Raw bits.
    pub fn bits(self) -> u8 {
        self.0
    }

    /// Build from raw bits (reserved bits are kept).
    pub fn from_bits(bits: u8) -> Self {
        TcpFlags(bits)
    }

    /// True if every flag in `other` is set in `self`.
    pub fn contains(self, other: TcpFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// True if any flag in `other` is set in `self`.
    pub fn intersects(self, other: TcpFlags) -> bool {
        self.0 & other.0 != 0
    }
}

impl core::ops::BitOr for TcpFlags {
    type Output = TcpFlags;
    fn bitor(self, rhs: TcpFlags) -> TcpFlags {
        TcpFlags(self.0 | rhs.0)
    }
}

impl fmt::Display for TcpFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names = [
            (TcpFlags::SYN, "SYN"),
            (TcpFlags::ACK, "ACK"),
            (TcpFlags::RST, "RST"),
            (TcpFlags::FIN, "FIN"),
            (TcpFlags::PSH, "PSH"),
            (TcpFlags::URG, "URG"),
        ];
        let mut first = true;
        for (flag, name) in names {
            if self.contains(flag) {
                if !first {
                    write!(f, "|")?;
                }
                write!(f, "{name}")?;
                first = false;
            }
        }
        if first {
            write!(f, "-")?;
        }
        Ok(())
    }
}

mod field {
    use core::ops::Range;
    pub const SRC_PORT: Range<usize> = 0..2;
    pub const DST_PORT: Range<usize> = 2..4;
    pub const SEQ: Range<usize> = 4..8;
    pub const ACK: Range<usize> = 8..12;
    pub const DATA_OFF: usize = 12;
    pub const FLAGS: usize = 13;
    pub const WINDOW: Range<usize> = 14..16;
    pub const CHECKSUM: Range<usize> = 16..18;
    pub const URGENT: Range<usize> = 18..20;
}

/// Typed view over a TCP segment buffer.
#[derive(Debug, Clone)]
pub struct TcpPacket<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> TcpPacket<T> {
    /// Wrap without validation.
    pub fn new_unchecked(buffer: T) -> Self {
        TcpPacket { buffer }
    }

    /// Wrap, checking the header and data-offset bounds.
    pub fn new_checked(buffer: T) -> Result<Self> {
        let packet = TcpPacket { buffer };
        let data = packet.buffer.as_ref();
        if data.len() < HEADER_LEN {
            return Err(Error::Truncated);
        }
        let header_len = packet.header_len();
        if header_len < HEADER_LEN {
            return Err(Error::Malformed);
        }
        if data.len() < header_len {
            return Err(Error::Truncated);
        }
        Ok(packet)
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        u16::from_be_bytes(self.buffer.as_ref()[field::SRC_PORT].try_into().unwrap())
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        u16::from_be_bytes(self.buffer.as_ref()[field::DST_PORT].try_into().unwrap())
    }

    /// Sequence number.
    pub fn seq(&self) -> u32 {
        u32::from_be_bytes(self.buffer.as_ref()[field::SEQ].try_into().unwrap())
    }

    /// Acknowledgment number.
    pub fn ack(&self) -> u32 {
        u32::from_be_bytes(self.buffer.as_ref()[field::ACK].try_into().unwrap())
    }

    /// Header length in bytes derived from the data offset.
    pub fn header_len(&self) -> usize {
        usize::from(self.buffer.as_ref()[field::DATA_OFF] >> 4) * 4
    }

    /// Control flags.
    pub fn flags(&self) -> TcpFlags {
        TcpFlags::from_bits(self.buffer.as_ref()[field::FLAGS] & 0x3f)
    }

    /// Window size (unscaled).
    pub fn window(&self) -> u16 {
        u16::from_be_bytes(self.buffer.as_ref()[field::WINDOW].try_into().unwrap())
    }

    /// Urgent pointer.
    pub fn urgent(&self) -> u16 {
        u16::from_be_bytes(self.buffer.as_ref()[field::URGENT].try_into().unwrap())
    }

    /// Raw option bytes.
    pub fn options(&self) -> &[u8] {
        &self.buffer.as_ref()[HEADER_LEN..self.header_len()]
    }

    /// Segment payload.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[self.header_len()..]
    }

    /// Verify checksum against the IPv4 pseudo-header.
    pub fn verify_checksum(&self, src: Ipv4Addr, dst: Ipv4Addr) -> bool {
        let data = self.buffer.as_ref();
        pseudo_header(src, dst, 6, data.len() as u16)
            .add_bytes(data)
            .finish()
            == 0
    }
}

/// TCP options that fingerprinting tools read from SYN-ACKs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TcpOptions {
    /// Maximum segment size (kind 2).
    pub mss: Option<u16>,
    /// Window scale shift (kind 3).
    pub window_scale: Option<u8>,
    /// SACK permitted (kind 4).
    pub sack_permitted: bool,
    /// Timestamps value/echo (kind 8).
    pub timestamps: Option<(u32, u32)>,
}

impl TcpOptions {
    /// Parse an options byte region (kind/len TLVs, NOP and EOL).
    pub fn parse(mut data: &[u8]) -> Result<Self> {
        let mut options = TcpOptions::default();
        while let Some((&kind, rest)) = data.split_first() {
            match kind {
                0 => break,       // EOL
                1 => data = rest, // NOP
                _ => {
                    let Some((&len, _)) = rest.split_first() else {
                        return Err(Error::Truncated);
                    };
                    let len = usize::from(len);
                    if len < 2 || data.len() < len {
                        return Err(Error::Malformed);
                    }
                    let body = &data[2..len];
                    match kind {
                        2 if body.len() == 2 => {
                            options.mss = Some(u16::from_be_bytes([body[0], body[1]]));
                        }
                        3 if body.len() == 1 => options.window_scale = Some(body[0]),
                        4 if body.is_empty() => options.sack_permitted = true,
                        8 if body.len() == 8 => {
                            options.timestamps = Some((
                                u32::from_be_bytes(body[0..4].try_into().unwrap()),
                                u32::from_be_bytes(body[4..8].try_into().unwrap()),
                            ));
                        }
                        _ => {} // unknown option: skip
                    }
                    data = &data[len..];
                }
            }
        }
        Ok(options)
    }

    /// Serialise in the canonical order (MSS, SACK, TS, NOP, WS), padded to
    /// a multiple of four bytes with EOL.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        if let Some(mss) = self.mss {
            buf.extend_from_slice(&[2, 4]);
            buf.extend_from_slice(&mss.to_be_bytes());
        }
        if self.sack_permitted {
            buf.extend_from_slice(&[4, 2]);
        }
        if let Some((value, echo)) = self.timestamps {
            buf.extend_from_slice(&[8, 10]);
            buf.extend_from_slice(&value.to_be_bytes());
            buf.extend_from_slice(&echo.to_be_bytes());
        }
        if let Some(shift) = self.window_scale {
            buf.extend_from_slice(&[1, 3, 3, shift]);
        }
        while buf.len() % 4 != 0 {
            buf.push(0);
        }
        buf
    }
}

/// Owned representation of a TCP segment (without payload, which LFP never
/// uses: probes and RSTs are payload-free).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpRepr {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgment number.
    pub ack: u32,
    /// Control flags.
    pub flags: TcpFlags,
    /// Window size.
    pub window: u16,
    /// Options present in the header.
    pub options: TcpOptions,
}

impl TcpRepr {
    /// Parse from a checked view.
    pub fn parse<T: AsRef<[u8]>>(packet: &TcpPacket<T>) -> Result<Self> {
        Ok(TcpRepr {
            src_port: packet.src_port(),
            dst_port: packet.dst_port(),
            seq: packet.seq(),
            ack: packet.ack(),
            flags: packet.flags(),
            window: packet.window(),
            options: TcpOptions::parse(packet.options())?,
        })
    }

    /// On-wire length (header + options).
    pub fn buffer_len(&self) -> usize {
        HEADER_LEN + self.options.to_bytes().len()
    }

    /// Serialise with a correct pseudo-header checksum.
    pub fn to_bytes(&self, src: Ipv4Addr, dst: Ipv4Addr) -> Vec<u8> {
        let options = self.options.to_bytes();
        let header_len = HEADER_LEN + options.len();
        let mut buf = vec![0u8; header_len];
        buf[field::SRC_PORT].copy_from_slice(&self.src_port.to_be_bytes());
        buf[field::DST_PORT].copy_from_slice(&self.dst_port.to_be_bytes());
        buf[field::SEQ].copy_from_slice(&self.seq.to_be_bytes());
        buf[field::ACK].copy_from_slice(&self.ack.to_be_bytes());
        buf[field::DATA_OFF] = ((header_len / 4) as u8) << 4;
        buf[field::FLAGS] = self.flags.bits();
        buf[field::WINDOW].copy_from_slice(&self.window.to_be_bytes());
        buf[HEADER_LEN..].copy_from_slice(&options);
        let ck = pseudo_header(src, dst, 6, buf.len() as u16)
            .add_bytes(&buf)
            .finish();
        buf[field::CHECKSUM].copy_from_slice(&ck.to_be_bytes());
        buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const SRC: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 100);
    const DST: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 200);

    fn lfp_syn_probe() -> TcpRepr {
        TcpRepr {
            src_port: 40000,
            dst_port: 33533,
            seq: 0x01020304,
            ack: 0x0a0b0c0d, // non-zero ACK on a SYN, per the methodology
            flags: TcpFlags::SYN,
            window: 1024,
            options: TcpOptions::default(),
        }
    }

    #[test]
    fn bare_header_roundtrip() {
        let repr = lfp_syn_probe();
        let bytes = repr.to_bytes(SRC, DST);
        assert_eq!(bytes.len(), 20); // the paper's 40-byte TCP response minus IP header
        let packet = TcpPacket::new_checked(&bytes[..]).unwrap();
        assert!(packet.verify_checksum(SRC, DST));
        assert_eq!(TcpRepr::parse(&packet).unwrap(), repr);
    }

    #[test]
    fn options_roundtrip() {
        let repr = TcpRepr {
            options: TcpOptions {
                mss: Some(1460),
                window_scale: Some(7),
                sack_permitted: true,
                timestamps: Some((123456, 0)),
            },
            flags: TcpFlags::SYN | TcpFlags::ACK,
            ..lfp_syn_probe()
        };
        let bytes = repr.to_bytes(SRC, DST);
        let packet = TcpPacket::new_checked(&bytes[..]).unwrap();
        assert!(packet.verify_checksum(SRC, DST));
        let parsed = TcpRepr::parse(&packet).unwrap();
        assert_eq!(parsed.options, repr.options);
        assert_eq!(parsed.flags, repr.flags);
    }

    #[test]
    fn flags_display_and_ops() {
        let flags = TcpFlags::SYN | TcpFlags::ACK;
        assert!(flags.contains(TcpFlags::SYN));
        assert!(flags.intersects(TcpFlags::ACK));
        assert!(!flags.contains(TcpFlags::RST));
        assert_eq!(flags.to_string(), "SYN|ACK");
        assert_eq!(TcpFlags::NONE.to_string(), "-");
    }

    #[test]
    fn bad_data_offset_is_rejected() {
        let repr = lfp_syn_probe();
        let mut bytes = repr.to_bytes(SRC, DST);
        bytes[12] = 0x30; // data offset 12 bytes < minimum 20
        assert!(matches!(
            TcpPacket::new_checked(&bytes[..]),
            Err(Error::Malformed)
        ));
        bytes[12] = 0xf0; // data offset 60 bytes > buffer
        assert!(matches!(
            TcpPacket::new_checked(&bytes[..]),
            Err(Error::Truncated)
        ));
    }

    #[test]
    fn truncated_option_is_rejected() {
        assert!(TcpOptions::parse(&[2]).is_err()); // kind without length
        assert!(TcpOptions::parse(&[2, 10, 0]).is_err()); // length overruns
        assert!(TcpOptions::parse(&[2, 1]).is_err()); // length < 2
    }

    #[test]
    fn unknown_options_are_skipped() {
        // kind 30 (unknown), then MSS.
        let parsed = TcpOptions::parse(&[30, 3, 0xaa, 2, 4, 0x05, 0xb4, 0]).unwrap();
        assert_eq!(parsed.mss, Some(1460));
    }

    proptest! {
        #[test]
        fn roundtrip_arbitrary(
            src_port in any::<u16>(),
            dst_port in any::<u16>(),
            seq in any::<u32>(),
            ack in any::<u32>(),
            raw_flags in 0u8..64,
            window in any::<u16>(),
            mss in proptest::option::of(any::<u16>()),
            ws in proptest::option::of(0u8..15),
            sack in any::<bool>(),
            ts in proptest::option::of((any::<u32>(), any::<u32>())),
        ) {
            let repr = TcpRepr {
                src_port, dst_port, seq, ack,
                flags: TcpFlags::from_bits(raw_flags),
                window,
                options: TcpOptions { mss, window_scale: ws, sack_permitted: sack, timestamps: ts },
            };
            let bytes = repr.to_bytes(SRC, DST);
            let packet = TcpPacket::new_checked(&bytes[..]).unwrap();
            prop_assert!(packet.verify_checksum(SRC, DST));
            prop_assert_eq!(TcpRepr::parse(&packet).unwrap(), repr);
        }

        #[test]
        fn option_parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..48)) {
            let _ = TcpOptions::parse(&bytes);
        }
    }
}
