//! ICMPv4 messages.
//!
//! LFP sends echo requests and receives echo replies, port-unreachable
//! errors (in response to UDP probes), and — during traceroute — TTL
//! time-exceeded errors. The destination-unreachable encoding carries a
//! *quotation* of the offending datagram; how much of it a router quotes is
//! one of the fifteen LFP features (the "UDP response size", §3.4.3).

use crate::checksum;
use crate::{Error, Result};

/// ICMP header length for the message kinds we handle (type, code,
/// checksum, 4 bytes of rest-of-header).
pub const HEADER_LEN: usize = 8;

/// ICMP message type/code pairs used by the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IcmpKind {
    /// Echo reply (type 0).
    EchoReply,
    /// Destination unreachable (type 3) with code.
    DstUnreachable(UnreachableCode),
    /// Echo request (type 8).
    EchoRequest,
    /// Time exceeded in transit (type 11, code 0).
    TimeExceeded,
}

/// Destination-unreachable codes we distinguish.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnreachableCode {
    /// Network unreachable (0).
    Net,
    /// Host unreachable (1).
    Host,
    /// Port unreachable (3) — the expected answer to LFP's UDP probes.
    Port,
    /// Communication administratively prohibited (13).
    AdminProhibited,
    /// Any other code, kept verbatim.
    Other(u8),
}

impl UnreachableCode {
    fn to_u8(self) -> u8 {
        match self {
            UnreachableCode::Net => 0,
            UnreachableCode::Host => 1,
            UnreachableCode::Port => 3,
            UnreachableCode::AdminProhibited => 13,
            UnreachableCode::Other(code) => code,
        }
    }

    fn from_u8(code: u8) -> Self {
        match code {
            0 => UnreachableCode::Net,
            1 => UnreachableCode::Host,
            3 => UnreachableCode::Port,
            13 => UnreachableCode::AdminProhibited,
            other => UnreachableCode::Other(other),
        }
    }
}

mod field {
    use core::ops::Range;
    pub const TYPE: usize = 0;
    pub const CODE: usize = 1;
    pub const CHECKSUM: Range<usize> = 2..4;
    pub const ECHO_IDENT: Range<usize> = 4..6;
    pub const ECHO_SEQ: Range<usize> = 6..8;
}

/// Typed view over an ICMP message buffer.
#[derive(Debug, Clone)]
pub struct IcmpPacket<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> IcmpPacket<T> {
    /// Wrap without validation.
    pub fn new_unchecked(buffer: T) -> Self {
        IcmpPacket { buffer }
    }

    /// Wrap, checking length and checksum.
    pub fn new_checked(buffer: T) -> Result<Self> {
        let packet = IcmpPacket { buffer };
        let data = packet.buffer.as_ref();
        if data.len() < HEADER_LEN {
            return Err(Error::Truncated);
        }
        if !checksum::verify(data) {
            return Err(Error::Checksum);
        }
        Ok(packet)
    }

    /// Message type byte.
    pub fn msg_type(&self) -> u8 {
        self.buffer.as_ref()[field::TYPE]
    }

    /// Message code byte.
    pub fn msg_code(&self) -> u8 {
        self.buffer.as_ref()[field::CODE]
    }

    /// Typed kind, if recognised.
    pub fn kind(&self) -> Result<IcmpKind> {
        match (self.msg_type(), self.msg_code()) {
            (0, 0) => Ok(IcmpKind::EchoReply),
            (3, code) => Ok(IcmpKind::DstUnreachable(UnreachableCode::from_u8(code))),
            (8, 0) => Ok(IcmpKind::EchoRequest),
            (11, 0) => Ok(IcmpKind::TimeExceeded),
            _ => Err(Error::Unsupported),
        }
    }

    /// Echo identifier (valid for echo request/reply).
    pub fn echo_ident(&self) -> u16 {
        u16::from_be_bytes(self.buffer.as_ref()[field::ECHO_IDENT].try_into().unwrap())
    }

    /// Echo sequence number (valid for echo request/reply).
    pub fn echo_seq(&self) -> u16 {
        u16::from_be_bytes(self.buffer.as_ref()[field::ECHO_SEQ].try_into().unwrap())
    }

    /// Bytes after the 8-byte header: echo payload, or the quoted datagram
    /// for error messages.
    pub fn body(&self) -> &[u8] {
        &self.buffer.as_ref()[HEADER_LEN..]
    }

    /// Whole message length in bytes.
    pub fn len(&self) -> usize {
        self.buffer.as_ref().len()
    }

    /// True if the buffer is empty (never for a checked packet).
    pub fn is_empty(&self) -> bool {
        self.buffer.as_ref().is_empty()
    }
}

/// Owned representation of the ICMP messages LFP sends and receives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IcmpRepr {
    /// Echo request with identifier, sequence number and payload.
    EchoRequest {
        /// Echo identifier (we use it to demultiplex probe responses).
        ident: u16,
        /// Sequence number within the probe trio.
        seq: u16,
        /// Ping payload bytes.
        payload: Vec<u8>,
    },
    /// Echo reply mirroring the request.
    EchoReply {
        /// Echo identifier copied from the request.
        ident: u16,
        /// Sequence number copied from the request.
        seq: u16,
        /// Payload copied from the request.
        payload: Vec<u8>,
    },
    /// Destination unreachable carrying a quotation of the original
    /// datagram (IP header + leading payload bytes).
    DstUnreachable {
        /// Unreachable code.
        code: UnreachableCode,
        /// Quoted bytes of the offending datagram.
        quote: Vec<u8>,
    },
    /// TTL exceeded in transit, quoting the offending datagram.
    TimeExceeded {
        /// Quoted bytes of the offending datagram.
        quote: Vec<u8>,
    },
}

impl IcmpRepr {
    /// Parse a checked packet into a representation.
    pub fn parse<T: AsRef<[u8]>>(packet: &IcmpPacket<T>) -> Result<Self> {
        match packet.kind()? {
            IcmpKind::EchoRequest => Ok(IcmpRepr::EchoRequest {
                ident: packet.echo_ident(),
                seq: packet.echo_seq(),
                payload: packet.body().to_vec(),
            }),
            IcmpKind::EchoReply => Ok(IcmpRepr::EchoReply {
                ident: packet.echo_ident(),
                seq: packet.echo_seq(),
                payload: packet.body().to_vec(),
            }),
            IcmpKind::DstUnreachable(code) => Ok(IcmpRepr::DstUnreachable {
                code,
                quote: packet.body().to_vec(),
            }),
            IcmpKind::TimeExceeded => Ok(IcmpRepr::TimeExceeded {
                quote: packet.body().to_vec(),
            }),
        }
    }

    /// On-wire length of this message.
    pub fn buffer_len(&self) -> usize {
        HEADER_LEN
            + match self {
                IcmpRepr::EchoRequest { payload, .. } | IcmpRepr::EchoReply { payload, .. } => {
                    payload.len()
                }
                IcmpRepr::DstUnreachable { quote, .. } | IcmpRepr::TimeExceeded { quote } => {
                    quote.len()
                }
            }
    }

    /// Serialise to owned bytes, computing the checksum.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = vec![0u8; self.buffer_len()];
        {
            let data = &mut buf[..];
            match self {
                IcmpRepr::EchoRequest {
                    ident,
                    seq,
                    payload,
                } => {
                    data[field::TYPE] = 8;
                    data[field::CODE] = 0;
                    data[field::ECHO_IDENT].copy_from_slice(&ident.to_be_bytes());
                    data[field::ECHO_SEQ].copy_from_slice(&seq.to_be_bytes());
                    data[HEADER_LEN..].copy_from_slice(payload);
                }
                IcmpRepr::EchoReply {
                    ident,
                    seq,
                    payload,
                } => {
                    data[field::TYPE] = 0;
                    data[field::CODE] = 0;
                    data[field::ECHO_IDENT].copy_from_slice(&ident.to_be_bytes());
                    data[field::ECHO_SEQ].copy_from_slice(&seq.to_be_bytes());
                    data[HEADER_LEN..].copy_from_slice(payload);
                }
                IcmpRepr::DstUnreachable { code, quote } => {
                    data[field::TYPE] = 3;
                    data[field::CODE] = code.to_u8();
                    data[HEADER_LEN..].copy_from_slice(quote);
                }
                IcmpRepr::TimeExceeded { quote } => {
                    data[field::TYPE] = 11;
                    data[field::CODE] = 0;
                    data[HEADER_LEN..].copy_from_slice(quote);
                }
            }
        }
        let ck = checksum::checksum(&buf);
        buf[field::CHECKSUM].copy_from_slice(&ck.to_be_bytes());
        buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn echo_roundtrip() {
        let repr = IcmpRepr::EchoRequest {
            ident: 0x4c46, // "LF"
            seq: 2,
            payload: vec![0x50; 56],
        };
        let bytes = repr.to_bytes();
        assert_eq!(bytes.len(), 64);
        let parsed = IcmpRepr::parse(&IcmpPacket::new_checked(&bytes[..]).unwrap()).unwrap();
        assert_eq!(parsed, repr);
    }

    #[test]
    fn port_unreachable_roundtrip_preserves_quote() {
        let quote = vec![0x45u8; 28];
        let repr = IcmpRepr::DstUnreachable {
            code: UnreachableCode::Port,
            quote: quote.clone(),
        };
        let bytes = repr.to_bytes();
        // 8-byte ICMP header + 28-byte quote = 36 bytes at the ICMP layer;
        // with a 20-byte IP header this is the paper's 56-byte UDP response.
        assert_eq!(bytes.len(), 36);
        match IcmpRepr::parse(&IcmpPacket::new_checked(&bytes[..]).unwrap()).unwrap() {
            IcmpRepr::DstUnreachable { code, quote: q } => {
                assert_eq!(code, UnreachableCode::Port);
                assert_eq!(q, quote);
            }
            other => panic!("wrong repr: {other:?}"),
        }
    }

    #[test]
    fn time_exceeded_roundtrip() {
        let repr = IcmpRepr::TimeExceeded {
            quote: vec![1, 2, 3, 4],
        };
        let bytes = repr.to_bytes();
        let parsed = IcmpRepr::parse(&IcmpPacket::new_checked(&bytes[..]).unwrap()).unwrap();
        assert_eq!(parsed, repr);
    }

    #[test]
    fn corrupted_checksum_is_rejected() {
        let mut bytes = IcmpRepr::EchoReply {
            ident: 1,
            seq: 1,
            payload: vec![],
        }
        .to_bytes();
        bytes[5] ^= 0xff;
        assert!(matches!(
            IcmpPacket::new_checked(&bytes[..]),
            Err(Error::Checksum)
        ));
    }

    #[test]
    fn unknown_type_is_unsupported() {
        let mut bytes = vec![42u8, 0, 0, 0, 0, 0, 0, 0];
        let ck = checksum::checksum(&bytes);
        bytes[2..4].copy_from_slice(&ck.to_be_bytes());
        let packet = IcmpPacket::new_checked(&bytes[..]).unwrap();
        assert_eq!(packet.kind(), Err(Error::Unsupported));
    }

    #[test]
    fn unreachable_code_conversion_is_inverse() {
        for code in 0u8..=255 {
            assert_eq!(UnreachableCode::from_u8(code).to_u8(), code);
        }
    }

    proptest! {
        #[test]
        fn echo_roundtrip_arbitrary(
            ident in any::<u16>(),
            seq in any::<u16>(),
            payload in proptest::collection::vec(any::<u8>(), 0..128),
        ) {
            let repr = IcmpRepr::EchoReply { ident, seq, payload };
            let bytes = repr.to_bytes();
            let parsed =
                IcmpRepr::parse(&IcmpPacket::new_checked(&bytes[..]).unwrap()).unwrap();
            prop_assert_eq!(parsed, repr);
        }

        #[test]
        fn parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..96)) {
            if let Ok(packet) = IcmpPacket::new_checked(&bytes[..]) {
                let _ = IcmpRepr::parse(&packet);
            }
        }
    }
}
