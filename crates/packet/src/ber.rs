//! Minimal BER (ASN.1 Basic Encoding Rules) reader and writer.
//!
//! SNMP messages are BER-encoded. We implement exactly the subset SNMPv3
//! needs — definite lengths (short and long form), INTEGER, OCTET STRING,
//! NULL, OBJECT IDENTIFIER, SEQUENCE, and context-specific tags for PDUs —
//! and nothing more. The writer builds values inside-out (content first,
//! then wrap), which keeps nesting allocation-simple and obviously correct.

use crate::{Error, Result};

/// Universal tag: INTEGER.
pub const TAG_INTEGER: u8 = 0x02;
/// Universal tag: OCTET STRING.
pub const TAG_OCTET_STRING: u8 = 0x04;
/// Universal tag: NULL.
pub const TAG_NULL: u8 = 0x05;
/// Universal tag: OBJECT IDENTIFIER.
pub const TAG_OID: u8 = 0x06;
/// Universal constructed tag: SEQUENCE.
pub const TAG_SEQUENCE: u8 = 0x30;

/// Wrap `content` in a tag-length-value triple.
pub fn tlv(tag: u8, content: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(content.len() + 4);
    out.push(tag);
    write_length(&mut out, content.len());
    out.extend_from_slice(content);
    out
}

fn write_length(out: &mut Vec<u8>, len: usize) {
    if len < 0x80 {
        out.push(len as u8);
    } else {
        let bytes = len.to_be_bytes();
        let skip = bytes.iter().take_while(|&&b| b == 0).count();
        let significant = &bytes[skip..];
        out.push(0x80 | significant.len() as u8);
        out.extend_from_slice(significant);
    }
}

/// Encode an INTEGER TLV (two's complement, minimal length).
pub fn integer(value: i64) -> Vec<u8> {
    let bytes = value.to_be_bytes();
    // Trim redundant leading bytes while preserving the sign bit.
    let mut start = 0;
    while start < 7 {
        let cur = bytes[start];
        let next = bytes[start + 1];
        if (cur == 0x00 && next & 0x80 == 0) || (cur == 0xff && next & 0x80 != 0) {
            start += 1;
        } else {
            break;
        }
    }
    tlv(TAG_INTEGER, &bytes[start..])
}

/// Encode an OCTET STRING TLV.
pub fn octet_string(bytes: &[u8]) -> Vec<u8> {
    tlv(TAG_OCTET_STRING, bytes)
}

/// Encode a NULL TLV.
pub fn null() -> Vec<u8> {
    tlv(TAG_NULL, &[])
}

/// Encode a SEQUENCE TLV around already-encoded children.
pub fn sequence(content: &[u8]) -> Vec<u8> {
    tlv(TAG_SEQUENCE, content)
}

/// Encode an OBJECT IDENTIFIER TLV from dotted components.
pub fn oid(components: &[u32]) -> Result<Vec<u8>> {
    if components.len() < 2 || components[0] > 2 || (components[0] < 2 && components[1] > 39) {
        return Err(Error::Malformed);
    }
    let mut content = Vec::new();
    content.push((components[0] * 40 + components[1]) as u8);
    for &comp in &components[2..] {
        push_base128(&mut content, comp);
    }
    Ok(tlv(TAG_OID, &content))
}

fn push_base128(out: &mut Vec<u8>, mut value: u32) {
    let mut stack = [0u8; 5];
    let mut i = 0;
    loop {
        stack[i] = (value & 0x7f) as u8;
        value >>= 7;
        i += 1;
        if value == 0 {
            break;
        }
    }
    while i > 1 {
        i -= 1;
        out.push(stack[i] | 0x80);
    }
    out.push(stack[0]);
}

/// Streaming reader over a BER-encoded byte slice.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    data: &'a [u8],
}

impl<'a> Reader<'a> {
    /// Start reading at the beginning of `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Reader { data }
    }

    /// True when all bytes are consumed.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Remaining unread bytes.
    pub fn remaining(&self) -> usize {
        self.data.len()
    }

    /// Peek the next tag byte without consuming.
    pub fn peek_tag(&self) -> Result<u8> {
        self.data.first().copied().ok_or(Error::Truncated)
    }

    /// Read one TLV, returning (tag, content) and advancing past it.
    pub fn read_tlv(&mut self) -> Result<(u8, &'a [u8])> {
        let (&tag, rest) = self.data.split_first().ok_or(Error::Truncated)?;
        let (&len0, rest) = rest.split_first().ok_or(Error::Truncated)?;
        let (len, rest) = if len0 & 0x80 == 0 {
            (usize::from(len0), rest)
        } else {
            let n = usize::from(len0 & 0x7f);
            if n == 0 || n > 8 || rest.len() < n {
                // Indefinite lengths are not used by SNMP.
                return Err(Error::Malformed);
            }
            let mut len = 0usize;
            for &b in &rest[..n] {
                len = len.checked_mul(256).ok_or(Error::Malformed)? + usize::from(b);
            }
            (len, &rest[n..])
        };
        if rest.len() < len {
            return Err(Error::Truncated);
        }
        let (content, tail) = rest.split_at(len);
        self.data = tail;
        Ok((tag, content))
    }

    /// Read a TLV and require a specific tag.
    pub fn expect(&mut self, tag: u8) -> Result<&'a [u8]> {
        let (actual, content) = self.read_tlv()?;
        if actual != tag {
            return Err(Error::Malformed);
        }
        Ok(content)
    }

    /// Read an INTEGER as i64.
    pub fn read_integer(&mut self) -> Result<i64> {
        let content = self.expect(TAG_INTEGER)?;
        decode_integer(content)
    }

    /// Read an OCTET STRING.
    pub fn read_octet_string(&mut self) -> Result<&'a [u8]> {
        self.expect(TAG_OCTET_STRING)
    }

    /// Read a SEQUENCE and return a reader over its content.
    pub fn read_sequence(&mut self) -> Result<Reader<'a>> {
        Ok(Reader::new(self.expect(TAG_SEQUENCE)?))
    }

    /// Read an OBJECT IDENTIFIER into components.
    pub fn read_oid(&mut self) -> Result<Vec<u32>> {
        let content = self.expect(TAG_OID)?;
        decode_oid(content)
    }
}

/// Decode INTEGER content bytes (two's complement big endian).
pub fn decode_integer(content: &[u8]) -> Result<i64> {
    if content.is_empty() || content.len() > 8 {
        return Err(Error::Malformed);
    }
    let mut value: i64 = if content[0] & 0x80 != 0 { -1 } else { 0 };
    for &b in content {
        value = (value << 8) | i64::from(b);
    }
    Ok(value)
}

/// Decode OID content bytes into dotted components.
pub fn decode_oid(content: &[u8]) -> Result<Vec<u32>> {
    let (&first, mut rest) = content.split_first().ok_or(Error::Malformed)?;
    let mut components = vec![u32::from(first) / 40, u32::from(first) % 40];
    while !rest.is_empty() {
        let mut value: u32 = 0;
        loop {
            let (&b, tail) = rest.split_first().ok_or(Error::Truncated)?;
            rest = tail;
            value = value.checked_mul(128).ok_or(Error::Malformed)? + u32::from(b & 0x7f);
            if b & 0x80 == 0 {
                break;
            }
        }
        components.push(value);
    }
    Ok(components)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn integer_known_vectors() {
        assert_eq!(integer(0), vec![0x02, 0x01, 0x00]);
        assert_eq!(integer(127), vec![0x02, 0x01, 0x7f]);
        assert_eq!(integer(128), vec![0x02, 0x02, 0x00, 0x80]);
        assert_eq!(integer(-1), vec![0x02, 0x01, 0xff]);
        assert_eq!(integer(-129), vec![0x02, 0x02, 0xff, 0x7f]);
        assert_eq!(integer(3), vec![0x02, 0x01, 0x03]); // msgVersion for SNMPv3
    }

    #[test]
    fn long_form_length() {
        let content = vec![0xaa; 200];
        let encoded = octet_string(&content);
        assert_eq!(&encoded[..3], &[0x04, 0x81, 200]);
        let mut reader = Reader::new(&encoded);
        assert_eq!(reader.read_octet_string().unwrap(), &content[..]);
    }

    #[test]
    fn oid_known_vector() {
        // usmStatsUnknownEngineIDs: 1.3.6.1.6.3.15.1.1.4.0
        let encoded = oid(&[1, 3, 6, 1, 6, 3, 15, 1, 1, 4, 0]).unwrap();
        assert_eq!(
            encoded,
            vec![0x06, 0x0a, 0x2b, 0x06, 0x01, 0x06, 0x03, 0x0f, 0x01, 0x01, 0x04, 0x00]
        );
        let mut reader = Reader::new(&encoded);
        assert_eq!(
            reader.read_oid().unwrap(),
            vec![1, 3, 6, 1, 6, 3, 15, 1, 1, 4, 0]
        );
    }

    #[test]
    fn oid_multibyte_arc() {
        // 1.3.6.1.4.1.2636 (Juniper's enterprise arc) — 2636 needs two bytes.
        let encoded = oid(&[1, 3, 6, 1, 4, 1, 2636]).unwrap();
        let mut reader = Reader::new(&encoded);
        assert_eq!(reader.read_oid().unwrap(), vec![1, 3, 6, 1, 4, 1, 2636]);
    }

    #[test]
    fn invalid_oid_prefixes_are_rejected() {
        assert!(oid(&[1]).is_err());
        assert!(oid(&[3, 1]).is_err());
        assert!(oid(&[1, 40]).is_err());
    }

    #[test]
    fn nested_sequences() {
        let inner = [integer(1), octet_string(b"x")].concat();
        let outer = sequence(&sequence(&inner));
        let mut reader = Reader::new(&outer);
        let mut outer_reader = reader.read_sequence().unwrap();
        let mut inner_reader = outer_reader.read_sequence().unwrap();
        assert_eq!(inner_reader.read_integer().unwrap(), 1);
        assert_eq!(inner_reader.read_octet_string().unwrap(), b"x");
        assert!(inner_reader.is_empty());
        assert!(outer_reader.is_empty());
        assert!(reader.is_empty());
    }

    #[test]
    fn wrong_tag_is_malformed() {
        let encoded = null();
        let mut reader = Reader::new(&encoded);
        assert_eq!(reader.read_integer(), Err(Error::Malformed));
    }

    #[test]
    fn truncated_tlv_is_detected() {
        let mut good = octet_string(&[1, 2, 3, 4]);
        good.truncate(4);
        let mut reader = Reader::new(&good);
        assert_eq!(reader.read_tlv(), Err(Error::Truncated));
    }

    proptest! {
        #[test]
        fn integer_roundtrip(value in any::<i64>()) {
            let encoded = integer(value);
            let mut reader = Reader::new(&encoded);
            prop_assert_eq!(reader.read_integer().unwrap(), value);
            prop_assert!(reader.is_empty());
        }

        #[test]
        fn octet_string_roundtrip(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
            let encoded = octet_string(&bytes);
            let mut reader = Reader::new(&encoded);
            prop_assert_eq!(reader.read_octet_string().unwrap(), &bytes[..]);
        }

        #[test]
        fn oid_roundtrip(
            first in 0u32..3,
            second in 0u32..40,
            rest in proptest::collection::vec(any::<u32>(), 0..12),
        ) {
            let mut components = vec![first, second];
            components.extend(rest);
            let encoded = oid(&components).unwrap();
            let mut reader = Reader::new(&encoded);
            prop_assert_eq!(reader.read_oid().unwrap(), components);
        }

        #[test]
        fn reader_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
            let mut reader = Reader::new(&bytes);
            while let Ok((_tag, _content)) = reader.read_tlv() {
                if reader.is_empty() { break; }
            }
        }
    }
}
