//! The incremental frame decoder's contract, adversarially.
//!
//! * **Chunking invariance:** every byte-boundary split and every
//!   pipelined concatenation of a valid request stream decodes
//!   byte-identically to whole-line parsing.
//! * **Hostile inputs:** unterminated lines, huge frames, invalid
//!   UTF-8 and NUL bytes yield typed errors under a hard memory bound —
//!   never a panic, never unbounded buffering.

use lfp_query::{FrameDecoder, FrameError};
use proptest::collection;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

/// Reference semantics: the whole stream split on `\n`, terminators
/// stripped — exactly what `BufRead::lines` handed the old daemon.
fn whole_line_parse(stream: &[u8]) -> Vec<String> {
    let text = std::str::from_utf8(stream).expect("valid streams are UTF-8");
    let mut lines: Vec<&str> = text.split('\n').collect();
    let trailing = lines.pop();
    assert_eq!(trailing, Some(""), "valid streams end with a newline");
    lines.iter().map(|line| line.to_string()).collect()
}

/// Decode a stream fed as the given chunks, asserting every frame is
/// `Ok` and the decoder never buffers more than its limit.
fn decode_chunked(chunks: &[&[u8]], limit: usize) -> Vec<String> {
    let mut decoder = FrameDecoder::with_limit(limit);
    let mut frames = Vec::new();
    for chunk in chunks {
        decoder.feed(chunk);
        assert!(
            decoder.buffered() <= limit,
            "decoder buffered {} > limit {limit}",
            decoder.buffered()
        );
        while let Some(frame) = decoder.next_frame() {
            frames.push(frame.expect("valid stream decodes cleanly"));
        }
    }
    assert_eq!(decoder.finish(), None, "valid stream ends cleanly");
    frames
}

/// A strategy for one valid request line (no newline, no NUL, UTF-8,
/// short enough for any limit the tests use). Mixes real queries with
/// arbitrary text: framing is agnostic to line content.
fn line_strategy() -> impl Strategy<Value = String> {
    prop_oneof![
        Just(r#"{"query": "catalog"}"#.to_string()),
        Just(r#"{"query": "vendor_mix", "as": 7}"#.to_string()),
        Just(r#"{"query":"path_diversity","src_as":1,"dst_as":2}"#.to_string()),
        Just(String::new()),
        Just("quit".to_string()),
        (0u32..4000).prop_map(|n| format!("{{\"query\": \"vendor_mix\", \"as\": {n}}}")),
        collection::vec(1u8..=127, 0..40)
            .prop_map(|bytes| { String::from_utf8(bytes).unwrap().replace(['\n', '\0'], " ") }),
        Just("ünïcödé — §5 路径".to_string()),
    ]
}

proptest! {
    /// Random line sets under random chunkings decode identically to
    /// whole-line parsing of the concatenated stream.
    #[test]
    fn random_chunking_matches_whole_line_parsing(
        lines in collection::vec(line_strategy(), 0..24),
        seed in any::<u64>(),
    ) {
        let mut stream = Vec::new();
        for line in &lines {
            stream.extend_from_slice(line.as_bytes());
            stream.push(b'\n');
        }
        let expected = whole_line_parse(&stream);
        prop_assert_eq!(&expected, &lines);

        // Cut the stream at pseudo-random boundaries derived from seed.
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let mut chunks: Vec<&[u8]> = Vec::new();
        let mut start = 0usize;
        while start < stream.len() {
            let len = 1 + rng.gen_range(0..7) as usize;
            let end = (start + len).min(stream.len());
            chunks.push(&stream[start..end]);
            start = end;
        }
        prop_assert_eq!(decode_chunked(&chunks, 64 * 1024), expected);
    }
}

#[test]
fn every_byte_boundary_split_is_identical() {
    let stream: &[u8] =
        b"{\"query\": \"catalog\"}\n\nquit\n{\"query\": \"vendor_mix\", \"as\": 9}\n";
    let expected = whole_line_parse(stream);
    for split in 0..=stream.len() {
        let chunks = [&stream[..split], &stream[split..]];
        assert_eq!(
            decode_chunked(&chunks, 1024),
            expected,
            "split at byte {split} diverged"
        );
    }
    // And byte-at-a-time — the most extreme chunking a client can send.
    let bytes: Vec<&[u8]> = stream.chunks(1).collect();
    assert_eq!(decode_chunked(&bytes, 1024), expected);
}

#[test]
fn pipelined_concatenation_equals_frame_by_frame() {
    let requests = [
        r#"{"query": "catalog"}"#,
        r#"{"query": "transitions"}"#,
        r#"{"query": "longest_runs", "slice": "other"}"#,
    ];
    // Feeding each framed request separately…
    let mut one_by_one = Vec::new();
    for request in &requests {
        let framed = format!("{request}\n");
        one_by_one.extend(decode_chunked(&[framed.as_bytes()], 1024));
    }
    // …equals feeding the whole pipeline in one burst.
    let pipeline: String = requests.iter().map(|r| format!("{r}\n")).collect();
    assert_eq!(decode_chunked(&[pipeline.as_bytes()], 1024), one_by_one);
    assert_eq!(one_by_one.len(), requests.len());
}

#[test]
fn huge_frames_are_discarded_under_the_memory_bound() {
    let limit = 4 * 1024;
    let mut decoder = FrameDecoder::with_limit(limit);
    // Stream 16 MiB of a single endless line in socket-sized chunks: the
    // decoder must hold at most `limit` bytes the whole way through.
    let chunk = [b'a'; 8192];
    for _ in 0..2048 {
        decoder.feed(&chunk);
        assert!(decoder.buffered() <= limit, "unbounded buffering");
        assert_eq!(decoder.pending(), 0);
    }
    // The newline finally lands: exactly one typed error…
    decoder.feed(b"\n{\"query\": \"catalog\"}\n");
    assert_eq!(
        decoder.next_frame(),
        Some(Err(FrameError::TooLong { limit }))
    );
    // …and the decoder has resynchronised on the next frame.
    assert_eq!(
        decoder.next_frame(),
        Some(Ok(r#"{"query": "catalog"}"#.to_string()))
    );
    assert_eq!(decoder.next_frame(), None);
    assert_eq!(decoder.finish(), None);
}

#[test]
fn a_frame_of_exactly_limit_bytes_survives() {
    let limit = 64;
    let line = "x".repeat(limit);
    let mut decoder = FrameDecoder::with_limit(limit);
    decoder.feed(line.as_bytes());
    assert_eq!(decoder.buffered(), limit);
    decoder.feed(b"\n");
    assert_eq!(decoder.next_frame(), Some(Ok(line)));
    // One byte more is rejected, split across feeds or not.
    let over = "x".repeat(limit + 1);
    decoder.feed(over.as_bytes());
    decoder.feed(b"\n");
    assert_eq!(
        decoder.next_frame(),
        Some(Err(FrameError::TooLong { limit }))
    );
}

#[test]
fn invalid_utf8_and_nul_bytes_yield_typed_errors_and_resync() {
    let mut decoder = FrameDecoder::with_limit(1024);
    decoder.feed(b"\xff\xfe broken\n\0smuggled\n{\"query\": \"catalog\"}\n");
    assert_eq!(decoder.next_frame(), Some(Err(FrameError::InvalidUtf8)));
    assert_eq!(decoder.next_frame(), Some(Err(FrameError::NulByte)));
    assert_eq!(
        decoder.next_frame(),
        Some(Ok(r#"{"query": "catalog"}"#.to_string()))
    );
    assert_eq!(decoder.finish(), None);
}

#[test]
fn unterminated_streams_error_at_finish() {
    let mut decoder = FrameDecoder::with_limit(1024);
    decoder.feed(b"{\"query\": \"catalog\"}\n{\"query\": \"half");
    assert_eq!(
        decoder.next_frame(),
        Some(Ok(r#"{"query": "catalog"}"#.to_string()))
    );
    assert_eq!(decoder.next_frame(), None);
    assert_eq!(decoder.finish(), Some(FrameError::Unterminated));
    // Idempotent: the partial was dropped with the first report.
    assert_eq!(decoder.finish(), None);

    // EOF while discarding an overlong frame reports TooLong instead.
    let mut decoder = FrameDecoder::with_limit(8);
    decoder.feed(b"way past the limit with no newline");
    assert_eq!(decoder.finish(), Some(FrameError::TooLong { limit: 8 }));
    assert_eq!(decoder.finish(), None);
}

proptest! {
    /// Arbitrary hostile byte soup, arbitrarily chunked: the decoder
    /// never panics, never buffers past its limit, and every produced
    /// frame is either a NUL-free UTF-8 line or a typed error.
    #[test]
    fn fuzz_never_panics_and_stays_bounded(
        chunks in collection::vec(collection::vec(any::<u8>(), 0..64), 0..32),
    ) {
        let limit = 48;
        let mut decoder = FrameDecoder::with_limit(limit);
        for chunk in &chunks {
            decoder.feed(chunk);
            prop_assert!(decoder.buffered() <= limit);
            while let Some(frame) = decoder.next_frame() {
                match frame {
                    Ok(line) => {
                        prop_assert!(line.len() <= limit);
                        prop_assert!(!line.contains('\0'));
                        prop_assert!(!line.contains('\n'));
                    }
                    Err(
                        FrameError::TooLong { .. }
                        | FrameError::InvalidUtf8
                        | FrameError::NulByte,
                    ) => {}
                    Err(FrameError::Unterminated) => {
                        prop_assert!(false, "Unterminated only comes from finish()");
                    }
                }
            }
        }
        decoder.finish();
        prop_assert_eq!(decoder.buffered(), 0);
    }
}
