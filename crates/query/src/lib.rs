//! # lfp-query — the vendor-intelligence query engine
//!
//! The paper's end product is *queryable* intelligence — "which vendors
//! does provider X run?", "how vendor-diverse are paths between AS A and
//! AS B?" (§5–§6) — but the batch pipeline answers those questions by
//! rebuilding a [`World`](lfp_analysis::World) and regenerating figures.
//! This crate turns the measured state into a serving layer:
//!
//! * [`query`] — the typed [`Query`] AST (vendor mix by AS or region,
//!   path diversity between AS pairs, transition-matrix and longest-run
//!   slices) with filters by source dataset, path length and US slice,
//!   plus a canonical wire form that doubles as the cache key,
//! * [`plan`] — the planner: lowers a [`Selection`] onto the path
//!   corpus's columnar indexes (`rows_between` / `rows_of_source` /
//!   `rows_with_length`), intersecting sorted row-id slices and applying
//!   residual predicates, with an `explain` trace per query,
//! * [`cache`] — a sharded LRU keyed by the canonical query, storing the
//!   rendered result bytes so a hit is a hash, a lock and an `Arc` clone,
//! * [`engine`] — [`QueryEngine`]: plan → execute → render → cache,
//! * [`batch`] — fans independent queries across the zmap-style sharded
//!   scanner with deterministic result ordering (batch ≡ serial, byte
//!   for byte),
//! * [`wire`] — the line protocol: one JSON query per line in, one JSON
//!   result per line out, plus the incremental [`FrameDecoder`] the
//!   event-driven server feeds raw socket chunks (the `vendor-queryd`
//!   binary in `lfp-bench` serves it over TCP via `lfp-serve`).
//!
//! ```no_run
//! use lfp_analysis::World;
//! use lfp_query::{wire, QueryEngine};
//! use lfp_topo::Scale;
//! use std::sync::Arc;
//!
//! let world = Arc::new(World::build(Scale::tiny()));
//! let engine = QueryEngine::new(world);
//! let query = wire::decode(r#"{"query": "path_diversity", "src_as": 3, "dst_as": 9}"#)?;
//! let response = engine.execute(&query)?;
//! println!("{}", response.payload);
//! # Ok::<(), String>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod cache;
pub mod engine;
pub mod plan;
pub mod query;
pub mod wire;

pub use batch::{run_batch, run_batch_with_shards};
pub use cache::{CacheStats, LaneStats, ShardedLru, LANE_SLOTS};
pub use engine::{ExecObs, QueryEngine, Response};
pub use plan::{select_rows, RowPlan};
pub use query::{Query, Selection};
pub use wire::{FrameDecoder, FrameError};

#[cfg(test)]
pub(crate) mod testutil {
    use lfp_analysis::World;
    use lfp_topo::Scale;
    use std::sync::{Arc, OnceLock};

    /// One tiny world shared by every test in this crate (building a
    /// world dominates test wall-clock; the engine under test does not).
    pub fn shared_world() -> Arc<World> {
        static WORLD: OnceLock<Arc<World>> = OnceLock::new();
        Arc::clone(WORLD.get_or_init(|| Arc::new(World::build(Scale::tiny()))))
    }
}
