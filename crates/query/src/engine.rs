//! The query engine: plan → execute → render → cache.
//!
//! A [`QueryEngine`] holds shared ownership of a measured [`World`] and
//! a [`PathCorpus`] (normally the world's memoised one, but an epoch
//! store may hand it an *extended* corpus), pre-aggregates the per-AS
//! vendor counts the vendor-mix queries read, and serves every query as
//! rendered JSON bytes. Execution is deterministic — a pure function of
//! the engine's state and the query — so the cache may return stored
//! bytes without changing any observable result (property-tested in
//! `tests/determinism.rs`).
//!
//! ## Epochs
//!
//! Every engine carries an **epoch id**: 0 for an engine built straight
//! from a world, `n` after `n` snapshots have been ingested by an epoch
//! store. The epoch participates in the canonical form the engine caches
//! and echoes ([`QueryEngine::canonical`]), which is what makes a shared
//! result cache safe across an epoch swap: the new engine's keys never
//! collide with the old engine's, so a stale answer is structurally
//! unservable and old entries simply age out of the LRU.

use crate::cache::{CacheStats, ShardedLru};
use crate::plan::select_rows;
use crate::query::{method_name, slice_name, Query};
use lfp_analysis::homogeneity::per_as_vendor_counts;
use lfp_analysis::json::{escape, number, JsonBuilder};
use lfp_analysis::path_corpus::{LabelSource, PathCorpus};
use lfp_analysis::World;
use lfp_obs::Clock;
use lfp_stack::vendor::Vendor;
use lfp_topo::Continent;
use std::collections::{BTreeMap, HashMap};
use std::net::Ipv4Addr;
use std::sync::Arc;

/// How many vendor combinations a path-diversity answer ranks.
const TOP_SETS: usize = 5;

/// How many sample AS ids a catalog answer lists per endpoint.
const CATALOG_SAMPLE: usize = 24;

/// One answered query.
#[derive(Debug, Clone)]
pub struct Response {
    /// The rendered result object (compact JSON, one line).
    pub payload: Arc<str>,
    /// Whether the payload came from the result cache.
    pub cached: bool,
}

/// Observed execution breakdown for one query, in nanoseconds (see
/// [`QueryEngine::execute_lane_obs`]). The sub-stages partition the
/// engine's share of a request: cache probe (+ insert), selection
/// planning, and everything else (fold + render).
#[derive(Debug, Clone, Default)]
pub struct ExecObs {
    /// Canonicalisation plus result-cache probe (and insert on a miss).
    pub cache_ns: u64,
    /// Selection planning (`select_rows`); 0 for planless queries and
    /// cache hits.
    pub plan_ns: u64,
    /// Computing and rendering the payload; 0 for cache hits.
    pub render_ns: u64,
    /// Whether the response came from the result cache.
    pub cached: bool,
    /// The planner's explain trace (empty on hits and planless queries).
    pub explain: String,
}

/// The serving engine. Shareable by reference (or `Arc`) across worker
/// threads and connection handlers (all interior mutability lives in the
/// cache).
pub struct QueryEngine {
    world: Arc<World>,
    corpus: Arc<PathCorpus>,
    /// AS → vendor → identified-router count, per identification method,
    /// over the engine's latest snapshot (the paper's §5 dataset; the
    /// newest ingested snapshot after an epoch swap).
    per_as_lfp: BTreeMap<u32, BTreeMap<Vendor, usize>>,
    per_as_snmp: BTreeMap<u32, BTreeMap<Vendor, usize>>,
    cache: Arc<ShardedLru>,
    epoch: u64,
}

impl QueryEngine {
    /// Default cache geometry: 16 shards, 4096 resident results.
    pub fn new(world: Arc<World>) -> QueryEngine {
        Self::with_cache(world, 16, 4096)
    }

    /// Build with explicit cache geometry at epoch 0. Triggers the
    /// world's corpus build (memoised) and one classification pass for
    /// the vendor-mix aggregates; both are shared with every other
    /// consumer of the world.
    pub fn with_cache(world: Arc<World>, shards: usize, capacity: usize) -> QueryEngine {
        let corpus = world.path_corpus_arc();
        let (targets, lfp, snmp) = {
            let (snapshot, scan) = world.latest_ripe();
            let targets: Vec<Ipv4Addr> = snapshot.router_ips.iter().copied().collect();
            (
                targets,
                world.lfp_vendor_map(scan),
                world.snmp_vendor_map(scan),
            )
        };
        Self::for_epoch(
            world,
            corpus,
            &targets,
            &lfp,
            &snmp,
            Arc::new(ShardedLru::new(shards, capacity)),
            0,
        )
    }

    /// Build an engine for one epoch of a serving store: an explicit
    /// corpus (possibly extended past the world's memoised one), the
    /// newest snapshot's router population and vendor maps for the
    /// vendor-mix aggregates, a **shared** result cache, and the epoch id
    /// that tags every cache key this engine writes or reads.
    pub fn for_epoch(
        world: Arc<World>,
        corpus: Arc<PathCorpus>,
        latest_targets: &[Ipv4Addr],
        lfp: &HashMap<Ipv4Addr, Vendor>,
        snmp: &HashMap<Ipv4Addr, Vendor>,
        cache: Arc<ShardedLru>,
        epoch: u64,
    ) -> QueryEngine {
        let per_as_lfp = per_as_vendor_counts(&world.internet, latest_targets, lfp);
        let per_as_snmp = per_as_vendor_counts(&world.internet, latest_targets, snmp);
        QueryEngine {
            world,
            corpus,
            per_as_lfp,
            per_as_snmp,
            cache,
            epoch,
        }
    }

    /// The corpus this engine serves (for catalogs and tests).
    pub fn corpus(&self) -> &PathCorpus {
        &self.corpus
    }

    /// A shared handle to the served corpus (the epoch store extends it
    /// into the next epoch's corpus).
    pub fn corpus_arc(&self) -> Arc<PathCorpus> {
        Arc::clone(&self.corpus)
    }

    /// The world this engine serves.
    pub fn world(&self) -> &Arc<World> {
        &self.world
    }

    /// This engine's epoch id (0 for a freshly built world; incremented
    /// by each ingested snapshot).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// A shared handle to the result cache (epoch swaps pass it to the
    /// next engine; epoch-tagged keys keep the generations disjoint).
    pub fn cache_handle(&self) -> Arc<ShardedLru> {
        Arc::clone(&self.cache)
    }

    /// The canonical form this engine caches under and echoes: the
    /// query's canonical JSON with the engine's epoch appended (see
    /// [`Query::canonical_at`]).
    pub fn canonical(&self, query: &Query) -> String {
        query.canonical_at(self.epoch)
    }

    /// Cache counters since construction.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Answer one query: cache lookup by the epoch-tagged canonical key,
    /// else compute, render and store. Errors (unknown source dataset)
    /// are not cached.
    pub fn execute(&self, query: &Query) -> Result<Response, String> {
        self.execute_lane(query, 0)
    }

    /// [`execute`](QueryEngine::execute) with an explicit cache lane.
    /// A multi-loop server passes its event-loop shard id so each loop
    /// keeps its hot working set on its own cache shards (see
    /// [`ShardedLru::get_lane`]); results are identical bytes either way.
    pub fn execute_lane(&self, query: &Query, lane: u64) -> Result<Response, String> {
        let key = self.canonical(query);
        if let Some(payload) = self.cache.get_lane(&key, lane) {
            return Ok(Response {
                payload,
                cached: true,
            });
        }
        let payload: Arc<str> = Arc::from(self.compute(query)?);
        self.cache.insert_lane(&key, Arc::clone(&payload), lane);
        Ok(Response {
            payload,
            cached: false,
        })
    }

    /// Cold execution, bypassing the cache entirely (reference path for
    /// the determinism tests and benches).
    pub fn execute_uncached(&self, query: &Query) -> Result<String, String> {
        self.compute(query)
    }

    /// [`execute_lane`](QueryEngine::execute_lane) with per-sub-stage
    /// timing: identical bytes and cache behaviour, plus an [`ExecObs`]
    /// splitting the engine's time into cache probe / plan / render and
    /// carrying the planner's explain trace for the slow-query log.
    pub fn execute_lane_obs(
        &self,
        query: &Query,
        lane: u64,
        clock: &dyn Clock,
    ) -> Result<(Response, ExecObs), String> {
        let probe_start = clock.now_ns();
        let key = self.canonical(query);
        if let Some(payload) = self.cache.get_lane(&key, lane) {
            let obs = ExecObs {
                cache_ns: clock.now_ns().saturating_sub(probe_start),
                cached: true,
                ..ExecObs::default()
            };
            return Ok((
                Response {
                    payload,
                    cached: true,
                },
                obs,
            ));
        }
        let compute_start = clock.now_ns();
        let (body, plan_ns, explain) = self.compute_obs(query, clock)?;
        let compute_end = clock.now_ns();
        let payload: Arc<str> = Arc::from(body);
        self.cache.insert_lane(&key, Arc::clone(&payload), lane);
        let insert_end = clock.now_ns();
        let compute_ns = compute_end.saturating_sub(compute_start);
        let obs = ExecObs {
            cache_ns: compute_start.saturating_sub(probe_start)
                + insert_end.saturating_sub(compute_end),
            plan_ns,
            render_ns: compute_ns.saturating_sub(plan_ns),
            cached: false,
            explain,
        };
        Ok((
            Response {
                payload,
                cached: false,
            },
            obs,
        ))
    }

    /// [`compute`](QueryEngine::compute) with the planner timed
    /// separately: returns the rendered payload, the nanoseconds spent in
    /// `select_rows`, and the plan's explain trace.
    fn compute_obs(
        &self,
        query: &Query,
        clock: &dyn Clock,
    ) -> Result<(String, u64, String), String> {
        let selection = match query {
            Query::PathDiversity { selection }
            | Query::Transitions { selection }
            | Query::LongestRuns { selection } => selection,
            planless => return Ok((self.compute(planless)?, 0, String::new())),
        };
        let plan_start = clock.now_ns();
        let plan = select_rows(&self.corpus, selection)?;
        let plan_ns = clock.now_ns().saturating_sub(plan_start);
        let payload = match query {
            Query::PathDiversity { .. } => self.path_diversity(&plan.rows, &plan.explain),
            Query::Transitions { .. } => self.transitions(&plan.rows, &plan.explain),
            Query::LongestRuns { .. } => self.longest_runs(&plan.rows, &plan.explain),
            _ => unreachable!("selection queries are matched above"),
        };
        Ok((payload, plan_ns, plan.explain))
    }

    fn compute(&self, query: &Query) -> Result<String, String> {
        match query {
            Query::VendorMixAs { as_id, method } => Ok(self.vendor_mix(
                &format!("as:{as_id}"),
                *method,
                |candidate| candidate == *as_id,
            )),
            Query::VendorMixRegion { region, method } => Ok(self.vendor_mix(
                &format!("region:{}", region.abbrev()),
                *method,
                |candidate| self.world.internet.continent_of(candidate) == *region,
            )),
            Query::PathDiversity { selection } => {
                let plan = select_rows(&self.corpus, selection)?;
                Ok(self.path_diversity(&plan.rows, &plan.explain))
            }
            Query::Transitions { selection } => {
                let plan = select_rows(&self.corpus, selection)?;
                Ok(self.transitions(&plan.rows, &plan.explain))
            }
            Query::LongestRuns { selection } => {
                let plan = select_rows(&self.corpus, selection)?;
                Ok(self.longest_runs(&plan.rows, &plan.explain))
            }
            Query::Catalog => Ok(self.catalog()),
        }
    }

    fn counts_for(&self, method: LabelSource) -> &BTreeMap<u32, BTreeMap<Vendor, usize>> {
        match method {
            LabelSource::Lfp => &self.per_as_lfp,
            LabelSource::Snmp => &self.per_as_snmp,
        }
    }

    fn vendor_mix<F: Fn(u32) -> bool>(
        &self,
        group: &str,
        method: LabelSource,
        include_as: F,
    ) -> String {
        // Aggregate matching ASes (one AS for as:N, a continent's worth
        // for region:XX). BTreeMaps keep iteration deterministic.
        let mut totals: BTreeMap<Vendor, usize> = BTreeMap::new();
        let mut ases = 0usize;
        for (&as_id, vendors) in self.counts_for(method) {
            if !include_as(as_id) {
                continue;
            }
            ases += 1;
            for (&vendor, &count) in vendors {
                *totals.entry(vendor).or_default() += count;
            }
        }
        let routers: usize = totals.values().sum();
        let mut ranked: Vec<(Vendor, usize)> = totals.into_iter().collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.name().cmp(b.0.name())));
        let mut json = JsonBuilder::object();
        json.string("group", group);
        json.string("method", method_name(method));
        json.integer("ases", ases as u64);
        json.integer("routers", routers as u64);
        json.raw_array(
            "vendors",
            ranked.into_iter().map(|(vendor, count)| {
                format!(
                    "[\"{}\", {count}, {}]",
                    escape(vendor.name()),
                    number(count as f64 * 100.0 / routers.max(1) as f64)
                )
            }),
        );
        json.finish()
    }

    fn path_diversity(&self, rows: &[u32], explain: &str) -> String {
        let corpus = &self.corpus;
        let identified = corpus.identified_paths(rows);
        let single = corpus.count_set_size(rows, 1);
        let multi = identified.saturating_sub(single);
        let mean = corpus
            .vendors_per_path_ecdf(rows)
            .mean()
            .unwrap_or(f64::NAN);
        let mut json = JsonBuilder::object();
        json.integer("paths", rows.len() as u64);
        json.integer("identified_paths", identified as u64);
        json.number("mean_vendors", mean);
        json.integer("multi_vendor_paths", multi as u64);
        json.number(
            "multi_vendor_percent",
            multi as f64 * 100.0 / identified.max(1) as f64,
        );
        json.integer(
            "distinct_vendor_sets",
            corpus.distinct_vendor_sets(rows) as u64,
        );
        json.raw_array(
            "top_sets",
            corpus
                .top_vendor_combinations(rows, TOP_SETS)
                .into_iter()
                .map(|(label, share, count)| {
                    format!("[\"{}\", {count}, {}]", escape(&label), number(share))
                }),
        );
        json.string("plan", explain);
        json.finish()
    }

    fn transitions(&self, rows: &[u32], explain: &str) -> String {
        let matrix = self.corpus.transition_matrix(rows);
        let handoffs: usize = matrix.values().sum();
        let kept: usize = matrix
            .iter()
            .filter(|((from, to), _)| from == to)
            .map(|(_, &count)| count)
            .sum();
        let mut json = JsonBuilder::object();
        json.integer("paths", rows.len() as u64);
        json.integer("handoffs", handoffs as u64);
        json.number(
            "custody_kept_percent",
            kept as f64 * 100.0 / handoffs.max(1) as f64,
        );
        json.raw_array(
            "transitions",
            matrix.into_iter().map(|((from, to), count)| {
                format!(
                    "[\"{}\", \"{}\", {count}]",
                    escape(from.name()),
                    escape(to.name())
                )
            }),
        );
        json.string("plan", explain);
        json.finish()
    }

    fn longest_runs(&self, rows: &[u32], explain: &str) -> String {
        let ecdf = self.corpus.longest_run_ecdf(rows);
        let quantile = |q: f64| ecdf.quantile(q).unwrap_or(f64::NAN);
        let mut json = JsonBuilder::object();
        json.integer("paths", ecdf.len() as u64);
        json.number("mean", ecdf.mean().unwrap_or(f64::NAN));
        json.number("p50", quantile(0.5));
        json.number("p90", quantile(0.9));
        json.number("max", quantile(1.0));
        json.string("plan", explain);
        json.finish()
    }

    fn catalog(&self) -> String {
        let corpus = &self.corpus;
        let sample = |ids: Vec<u32>| {
            ids.into_iter()
                .take(CATALOG_SAMPLE)
                .map(|id| id.to_string())
        };
        let mut json = JsonBuilder::object();
        json.integer("epoch", self.epoch);
        json.string_array("sources", corpus.sources());
        json.string(
            "latest_source",
            &corpus.sources()[corpus.latest_ripe_source()],
        );
        json.integer("paths", corpus.len() as u64);
        json.integer("sequences", corpus.distinct_sequences() as u64);
        json.raw_array("src_ases", sample(corpus.src_as_ids()));
        json.raw_array("dst_ases", sample(corpus.dst_as_ids()));
        json.raw_array(
            "regions",
            Continent::ALL
                .iter()
                .map(|region| format!("\"{}\"", region.abbrev())),
        );
        json.raw_array(
            "slices",
            [
                lfp_analysis::us_study::UsSlice::IntraUs,
                lfp_analysis::us_study::UsSlice::InterUs,
                lfp_analysis::us_study::UsSlice::Other,
            ]
            .into_iter()
            .map(|slice| format!("\"{}\"", slice_name(slice))),
        );
        json.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Selection;
    use crate::testutil::shared_world;
    use lfp_analysis::json::parse;

    fn engine() -> QueryEngine {
        QueryEngine::new(shared_world())
    }

    #[test]
    fn vendor_mix_by_as_sums_to_router_total() {
        let engine = engine();
        let as_id = *engine.per_as_lfp.keys().next().expect("some AS identified");
        let response = engine
            .execute(&Query::VendorMixAs {
                as_id,
                method: LabelSource::Lfp,
            })
            .unwrap();
        let value = parse(&response.payload).unwrap();
        let routers = value.get("routers").unwrap().as_u64().unwrap();
        let from_rows: u64 = value
            .get("vendors")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|row| row.as_array().unwrap()[1].as_u64().unwrap())
            .sum();
        assert_eq!(routers, from_rows);
        assert_eq!(value.get("ases").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn vendor_mix_by_region_covers_member_ases() {
        let engine = engine();
        // Regions partition the ASes, so summing router counts over all
        // six regions equals the total over all ASes.
        let total: u64 = Continent::ALL
            .iter()
            .map(|&region| {
                let response = engine
                    .execute(&Query::VendorMixRegion {
                        region,
                        method: LabelSource::Lfp,
                    })
                    .unwrap();
                parse(&response.payload)
                    .unwrap()
                    .get("routers")
                    .unwrap()
                    .as_u64()
                    .unwrap()
            })
            .sum();
        let identified: u64 = engine
            .per_as_lfp
            .values()
            .flat_map(|vendors| vendors.values())
            .map(|&count| count as u64)
            .sum();
        assert_eq!(total, identified);
    }

    #[test]
    fn path_diversity_and_runs_report_consistent_shapes() {
        let engine = engine();
        let response = engine
            .execute(&Query::PathDiversity {
                selection: Selection::default(),
            })
            .unwrap();
        let value = parse(&response.payload).unwrap();
        assert_eq!(
            value.get("paths").unwrap().as_u64().unwrap(),
            engine.corpus().len() as u64
        );
        assert!(value
            .get("plan")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("base=all"));
        let runs = engine
            .execute(&Query::LongestRuns {
                selection: Selection::default(),
            })
            .unwrap();
        let runs = parse(&runs.payload).unwrap();
        assert!(
            runs.get("p50").unwrap().as_f64().unwrap()
                <= runs.get("max").unwrap().as_f64().unwrap()
        );
    }

    #[test]
    fn transitions_match_the_corpus_matrix() {
        let engine = engine();
        let response = engine
            .execute(&Query::Transitions {
                selection: Selection::default(),
            })
            .unwrap();
        let value = parse(&response.payload).unwrap();
        let rows = engine.corpus().all_rows();
        let matrix = engine.corpus().transition_matrix(&rows);
        let expected: u64 = matrix.values().map(|&count| count as u64).sum();
        assert_eq!(value.get("handoffs").unwrap().as_u64(), Some(expected));
        assert_eq!(
            value.get("transitions").unwrap().as_array().unwrap().len(),
            matrix.len()
        );
    }

    #[test]
    fn second_execution_is_a_cache_hit_with_identical_bytes() {
        let engine = engine();
        let query = Query::PathDiversity {
            selection: Selection {
                min_hops: Some(2),
                ..Selection::default()
            },
        };
        let cold = engine.execute(&query).unwrap();
        assert!(!cold.cached);
        let warm = engine.execute(&query).unwrap();
        assert!(warm.cached);
        assert_eq!(cold.payload, warm.payload);
        assert_eq!(&*cold.payload, engine.execute_uncached(&query).unwrap());
        let stats = engine.cache_stats();
        assert_eq!(stats.hits, 1);
    }

    #[test]
    fn observed_execution_is_byte_identical_and_reports_stages() {
        let engine = engine();
        let clock = lfp_obs::MonotonicClock::new();
        let query = Query::PathDiversity {
            selection: Selection::default(),
        };
        let (cold, cold_obs) = engine.execute_lane_obs(&query, 0, &clock).unwrap();
        assert!(!cold.cached && !cold_obs.cached);
        assert!(
            cold_obs.explain.contains("base=all"),
            "explain trace captured on a miss"
        );
        assert_eq!(&*cold.payload, engine.execute_uncached(&query).unwrap());
        let (warm, warm_obs) = engine.execute_lane_obs(&query, 0, &clock).unwrap();
        assert!(warm.cached && warm_obs.cached);
        assert!(warm_obs.explain.is_empty());
        assert_eq!((warm_obs.plan_ns, warm_obs.render_ns), (0, 0));
        assert_eq!(cold.payload, warm.payload);
        // And the untraced lane path sees the same cache entry.
        let plain = engine.execute_lane(&query, 0).unwrap();
        assert!(plain.cached);
        assert_eq!(plain.payload, cold.payload);
    }

    #[test]
    fn unknown_source_errors_and_is_not_cached() {
        let engine = engine();
        let query = Query::Transitions {
            selection: Selection {
                source: Some("nope".to_string()),
                ..Selection::default()
            },
        };
        assert!(engine.execute(&query).is_err());
        assert!(engine.execute(&query).is_err());
        assert_eq!(engine.cache_stats().entries, 0);
    }

    #[test]
    fn catalog_lists_sources_and_samples() {
        let engine = engine();
        let response = engine.execute(&Query::Catalog).unwrap();
        let value = parse(&response.payload).unwrap();
        assert_eq!(
            value.get("sources").unwrap().as_array().unwrap().len(),
            engine.corpus().sources().len()
        );
        assert!(!value
            .get("src_ases")
            .unwrap()
            .as_array()
            .unwrap()
            .is_empty());
        assert_eq!(value.get("regions").unwrap().as_array().unwrap().len(), 6);
    }
}
