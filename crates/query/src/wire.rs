//! The line protocol: one JSON query per line in, one JSON result per
//! line out.
//!
//! ## Request grammar
//!
//! Every request is a single-line JSON object with a `"query"` field
//! naming the question; remaining fields parameterise it. Unknown fields
//! are **rejected** (a typo'd filter silently selecting everything is
//! worse than an error).
//!
//! | `"query"` | fields |
//! |---|---|
//! | `vendor_mix` | `as` *or* `region` (`AF AS EU NA OC SA`); optional `method` (`lfp`\|`snmp`, default `lfp`) |
//! | `path_diversity` | required `src_as`, `dst_as`; optional filters |
//! | `transitions` | optional filters |
//! | `longest_runs` | optional filters |
//! | `catalog` | — |
//!
//! Optional filters on the path queries: `src_as`, `dst_as` (AS
//! numbers), `source` (dataset name from the catalog), `min_hops`,
//! `max_hops` (router-hop bounds), `slice`
//! (`intra-us`\|`inter-us`\|`other`).
//!
//! Every kind additionally accepts an optional `epoch` field (u64): the
//! serving-epoch tag `Query::canonical_at` appends to echoed queries.
//! Requests are always answered at the daemon's current epoch, so the
//! value is validated and otherwise ignored — it exists so an echoed
//! canonical form replays verbatim.
//!
//! `min_epoch` (u64, optional on every kind) is the *fencing* field and
//! is **not** advisory: a daemon whose applied epoch is below
//! `min_epoch` answers `{"ok": false, "error": "stale_epoch",
//! "have": H, "want": W}` instead of silently serving older data. A
//! client that read epoch `E` from one replica can demand
//! `"min_epoch": E` from any other and either gets an answer at least
//! that fresh or a typed refusal it can retry after the replica
//! catches up (see [`stale_epoch_envelope`] / [`stale_epoch_of`]).
//!
//! ## Responses
//!
//! `{"ok": true, "cached": …, "query": <canonical echo>, "result": …}`
//! on success, `{"ok": false, "error": "…"}` otherwise. The echoed
//! canonical form is itself a valid request (and the result-cache key).

use crate::engine::Response;
use crate::query::{method_by_name, region_by_abbrev, slice_by_name, Query, Selection};
use lfp_analysis::json::{escape, parse, JsonValue};
use lfp_analysis::path_corpus::LabelSource;
use std::collections::VecDeque;

/// Default upper bound on one request frame. Far above any legal query,
/// far below anything that could pressure memory.
pub const MAX_FRAME_BYTES: usize = 64 * 1024;

/// A typed framing failure. Framing errors are *per frame*: the decoder
/// resynchronises at the next newline, so one hostile line never
/// poisons the frames behind it (callers may still choose to hang up).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The line (excluding its terminator) exceeded the decoder limit.
    /// The oversized bytes were discarded, never buffered.
    TooLong {
        /// The decoder's frame limit in bytes.
        limit: usize,
    },
    /// The line is not valid UTF-8.
    InvalidUtf8,
    /// The line contains a NUL byte (valid UTF-8, but no JSON query
    /// ever carries one — a classic smuggling vector).
    NulByte,
    /// End of stream with a partial, unterminated frame buffered.
    Unterminated,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::TooLong { limit } => {
                write!(f, "request line exceeds {limit} bytes")
            }
            FrameError::InvalidUtf8 => write!(f, "request line is not valid UTF-8"),
            FrameError::NulByte => write!(f, "request line contains a NUL byte"),
            FrameError::Unterminated => write!(f, "connection ended mid-request"),
        }
    }
}

/// An incremental decoder for the newline-delimited request framing.
///
/// The blocking daemon consumed whole `BufRead` lines; an event-driven
/// server sees arbitrary byte chunks instead — half a frame, three
/// frames and a tail, a frame split at every possible boundary. `feed`
/// accepts chunks exactly as they come off the socket and
/// [`next_frame`](FrameDecoder::next_frame) yields complete frames in
/// order, each either a line (terminator stripped) or a typed
/// [`FrameError`].
///
/// **Memory bound:** at most `limit` bytes of one partial frame are ever
/// buffered. An overlong frame flips the decoder into a discard state
/// that drops bytes until the next newline, then reports one
/// [`FrameError::TooLong`] — so a client streaming an endless line costs
/// `limit` bytes, not memory proportional to what it sends.
///
/// **Equivalence:** for a valid byte stream (every line terminated,
/// within the limit, UTF-8, NUL-free) the decoded frames are
/// byte-identical to splitting the whole stream on `\n` — regardless of
/// how the stream is chunked (property-tested in
/// `tests/frame_decoder.rs`).
#[derive(Debug)]
pub struct FrameDecoder {
    /// Bytes of the current, still-unterminated frame (≤ `limit`).
    partial: Vec<u8>,
    /// Complete frames decoded but not yet taken.
    frames: VecDeque<Result<String, FrameError>>,
    limit: usize,
    /// Inside an overlong frame: drop bytes until the next newline.
    discarding: bool,
}

impl Default for FrameDecoder {
    fn default() -> Self {
        Self::new()
    }
}

impl FrameDecoder {
    /// A decoder with the protocol default frame limit.
    pub fn new() -> FrameDecoder {
        Self::with_limit(MAX_FRAME_BYTES)
    }

    /// A decoder with an explicit frame limit (tests and torture rigs
    /// shrink it to provoke the overflow path cheaply).
    pub fn with_limit(limit: usize) -> FrameDecoder {
        FrameDecoder {
            partial: Vec::new(),
            frames: VecDeque::new(),
            limit,
            discarding: false,
        }
    }

    /// The decoder's frame limit in bytes.
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Bytes of partial frame currently buffered (always ≤ `limit`).
    pub fn buffered(&self) -> usize {
        self.partial.len()
    }

    /// Complete frames ready to take.
    pub fn pending(&self) -> usize {
        self.frames.len()
    }

    /// Absorb one chunk exactly as it came off the socket.
    pub fn feed(&mut self, chunk: &[u8]) {
        let mut rest = chunk;
        while let Some(newline) = rest.iter().position(|&byte| byte == b'\n') {
            let (segment, tail) = rest.split_at(newline);
            rest = &tail[1..];
            if self.discarding {
                // The newline ends the oversized frame; report it once
                // and resynchronise.
                self.discarding = false;
                self.frames
                    .push_back(Err(FrameError::TooLong { limit: self.limit }));
                continue;
            }
            if self.partial.len() + segment.len() > self.limit {
                self.partial.clear();
                self.frames
                    .push_back(Err(FrameError::TooLong { limit: self.limit }));
                continue;
            }
            self.partial.extend_from_slice(segment);
            let line = std::mem::take(&mut self.partial);
            self.frames.push_back(Self::validate(line));
        }
        if self.discarding {
            return; // Still inside the oversized frame: drop the tail.
        }
        if self.partial.len() + rest.len() > self.limit {
            // The frame already exceeds the limit with no newline in
            // sight: stop buffering it at all.
            self.partial.clear();
            self.discarding = true;
            return;
        }
        self.partial.extend_from_slice(rest);
    }

    /// Take the next complete frame, if one is ready.
    pub fn next_frame(&mut self) -> Option<Result<String, FrameError>> {
        self.frames.pop_front()
    }

    /// Signal end of stream. A cleanly terminated stream yields `None`;
    /// a buffered partial (or discarded overlong) frame yields its typed
    /// error. Idempotent.
    pub fn finish(&mut self) -> Option<FrameError> {
        if self.discarding {
            self.discarding = false;
            return Some(FrameError::TooLong { limit: self.limit });
        }
        if !self.partial.is_empty() {
            self.partial.clear();
            return Some(FrameError::Unterminated);
        }
        None
    }

    fn validate(line: Vec<u8>) -> Result<String, FrameError> {
        if line.contains(&0) {
            return Err(FrameError::NulByte);
        }
        String::from_utf8(line).map_err(|_| FrameError::InvalidUtf8)
    }
}

/// Decode one protocol line into a query.
pub fn decode(line: &str) -> Result<Query, String> {
    let value = parse(line.trim()).map_err(|error| format!("invalid JSON: {error}"))?;
    decode_value(&value)
}

/// Decode an already-parsed request object.
pub fn decode_value(value: &JsonValue) -> Result<Query, String> {
    let fields = value
        .as_object()
        .ok_or_else(|| "request must be a JSON object".to_string())?;
    // Strictness extends to duplicates: `JsonValue::get` would silently
    // answer from the first occurrence and drop the second.
    for (index, (name, _)) in fields.iter().enumerate() {
        if fields[..index].iter().any(|(prior, _)| prior == name) {
            return Err(format!("duplicate field '{name}'"));
        }
    }
    let kind = value
        .get("query")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| "missing string field \"query\"".to_string())?;
    let allowed: &[&str] = match kind {
        "vendor_mix" => &["query", "as", "region", "method", "epoch", "min_epoch"],
        "path_diversity" | "transitions" | "longest_runs" => &[
            "query",
            "src_as",
            "dst_as",
            "source",
            "min_hops",
            "max_hops",
            "slice",
            "epoch",
            "min_epoch",
        ],
        "catalog" => &["query", "epoch", "min_epoch"],
        other => {
            return Err(format!(
                "unknown query kind '{other}' (try vendor_mix, path_diversity, transitions, \
                 longest_runs, catalog)"
            ))
        }
    };
    for (name, _) in fields {
        if !allowed.contains(&name.as_str()) {
            return Err(format!("unknown field '{name}' for query '{kind}'"));
        }
    }
    // The `epoch` field marks which serving epoch an echoed canonical
    // form came from (see `Query::canonical_at`). Replays are answered
    // at the *current* epoch, so the value is validated but not kept.
    if let Some(field) = value.get("epoch") {
        field
            .as_u64()
            .ok_or_else(|| "field 'epoch' must be an epoch id (u64)".to_string())?;
    }
    // `min_epoch` is the fencing floor (see the module docs). Decoding
    // only validates it; enforcement happens in the serving layer,
    // which compares it against the engine actually answering.
    if let Some(field) = value.get("min_epoch") {
        field
            .as_u64()
            .ok_or_else(|| "field 'min_epoch' must be an epoch id (u64)".to_string())?;
    }
    match kind {
        "vendor_mix" => decode_vendor_mix(value),
        "path_diversity" => {
            let selection = decode_selection(value)?;
            if selection.src_as.is_none() || selection.dst_as.is_none() {
                return Err("path_diversity requires both src_as and dst_as".to_string());
            }
            Ok(Query::PathDiversity { selection })
        }
        "transitions" => Ok(Query::Transitions {
            selection: decode_selection(value)?,
        }),
        "longest_runs" => Ok(Query::LongestRuns {
            selection: decode_selection(value)?,
        }),
        "catalog" => Ok(Query::Catalog),
        _ => unreachable!("kind vetted above"),
    }
}

fn decode_vendor_mix(value: &JsonValue) -> Result<Query, String> {
    let method = match value.get("method") {
        None => LabelSource::Lfp,
        Some(field) => {
            let name = field
                .as_str()
                .ok_or_else(|| "field 'method' must be a string".to_string())?;
            method_by_name(name).ok_or_else(|| format!("unknown method '{name}' (lfp or snmp)"))?
        }
    };
    match (value.get("as"), value.get("region")) {
        (Some(as_field), None) => Ok(Query::VendorMixAs {
            as_id: decode_as_number(as_field, "as")?,
            method,
        }),
        (None, Some(region_field)) => {
            let abbrev = region_field
                .as_str()
                .ok_or_else(|| "field 'region' must be a string".to_string())?;
            let region = region_by_abbrev(abbrev)
                .ok_or_else(|| format!("unknown region '{abbrev}' (AF AS EU NA OC SA)"))?;
            Ok(Query::VendorMixRegion { region, method })
        }
        (Some(_), Some(_)) => Err("vendor_mix takes 'as' or 'region', not both".to_string()),
        (None, None) => Err("vendor_mix requires 'as' or 'region'".to_string()),
    }
}

fn decode_selection(value: &JsonValue) -> Result<Selection, String> {
    let mut selection = Selection::default();
    if let Some(field) = value.get("src_as") {
        selection.src_as = Some(decode_as_number(field, "src_as")?);
    }
    if let Some(field) = value.get("dst_as") {
        selection.dst_as = Some(decode_as_number(field, "dst_as")?);
    }
    if let Some(field) = value.get("source") {
        selection.source = Some(
            field
                .as_str()
                .ok_or_else(|| "field 'source' must be a string".to_string())?
                .to_string(),
        );
    }
    if let Some(field) = value.get("min_hops") {
        selection.min_hops = Some(decode_hops(field, "min_hops")?);
    }
    if let Some(field) = value.get("max_hops") {
        selection.max_hops = Some(decode_hops(field, "max_hops")?);
    }
    if let (Some(min), Some(max)) = (selection.min_hops, selection.max_hops) {
        if min > max {
            return Err(format!("min_hops {min} exceeds max_hops {max}"));
        }
    }
    if let Some(field) = value.get("slice") {
        let name = field
            .as_str()
            .ok_or_else(|| "field 'slice' must be a string".to_string())?;
        selection.slice = Some(
            slice_by_name(name)
                .ok_or_else(|| format!("unknown slice '{name}' (intra-us, inter-us, other)"))?,
        );
    }
    Ok(selection)
}

fn decode_as_number(field: &JsonValue, name: &str) -> Result<u32, String> {
    field
        .as_u64()
        .filter(|&value| value <= u64::from(u32::MAX))
        .map(|value| value as u32)
        .ok_or_else(|| format!("field '{name}' must be an AS number (u32)"))
}

fn decode_hops(field: &JsonValue, name: &str) -> Result<u16, String> {
    field
        .as_u64()
        .filter(|&value| value <= u64::from(u16::MAX))
        .map(|value| value as u16)
        .ok_or_else(|| format!("field '{name}' must be a hop count (u16)"))
}

/// Render the success envelope for an answered query. `canonical` and
/// the response payload are already-rendered JSON and embed raw.
pub fn ok_envelope(canonical: &str, response: &Response) -> String {
    let mut line = ok_envelope_head(canonical, response.cached);
    line.push_str(&response.payload);
    line.push_str(OK_ENVELOPE_TAIL);
    line
}

/// Everything of the success envelope *before* the result payload.
/// A server that already holds the rendered payload as shared bytes
/// (`Arc<str>` out of the result cache) can write
/// `head ++ payload ++ OK_ENVELOPE_TAIL` with one vectored write instead
/// of copying the payload into a fresh `String` — the concatenation is
/// byte-identical to [`ok_envelope`] by construction.
pub fn ok_envelope_head(canonical: &str, cached: bool) -> String {
    format!("{{\"ok\": true, \"cached\": {cached}, \"query\": {canonical}, \"result\": ")
}

/// Everything of the success envelope *after* the result payload.
pub const OK_ENVELOPE_TAIL: &str = "}";

/// Render the failure envelope.
pub fn error_envelope(message: &str) -> String {
    format!("{{\"ok\": false, \"error\": \"{}\"}}", escape(message))
}

/// The shared opening of every *typed* error envelope. Both string
/// slots — the error token and any free-text field spliced in after —
/// must go through [`escape`], so a hostile reason can never produce
/// an unparseable line that detection then misses.
fn typed_error_head(error: &str) -> String {
    format!("{{\"ok\": false, \"error\": \"{}\"", escape(error))
}

/// The typed error a server sheds load with. Distinct from
/// [`error_envelope`]: `error` is the fixed token `"overloaded"` (so
/// clients can dispatch on it without parsing prose), `reason` says
/// which guard fired (`"queue"`, `"deadline"`), and `retry_ms` is the
/// server's backoff hint — the client contract is to wait *at least*
/// that long, with jitter, before retrying.
pub fn overloaded_envelope(reason: &str, retry_ms: u64) -> String {
    format!(
        "{}, \"reason\": \"{}\", \"retry_ms\": {retry_ms}}}",
        typed_error_head("overloaded"),
        escape(reason)
    )
}

/// The typed fencing refusal: the daemon's applied epoch `have` is
/// below the request's `min_epoch` floor `want`, so answering would
/// silently serve stale data. Uses the same escaped envelope path as
/// [`overloaded_envelope`].
pub fn stale_epoch_envelope(have: u64, want: u64) -> String {
    format!(
        "{}, \"have\": {have}, \"want\": {want}}}",
        typed_error_head("stale_epoch")
    )
}

/// Extract the fencing floor from an already-decoded request object.
/// Call only after [`decode_value`] succeeded (which validates the
/// field's type), so a missing or malformed field reads as "no floor".
pub fn min_epoch_of(value: &JsonValue) -> Option<u64> {
    value.get("min_epoch").and_then(JsonValue::as_u64)
}

/// Detect the `overloaded` envelope and extract its retry hint.
/// Mirrors the serving loop's control detection: a cheap substring
/// test rejects every ordinary reply, and only candidates pay for a
/// parse that confirms the `error` field exactly. Returns `None` for
/// anything that is not a well-formed overload shed.
pub fn overload_retry_ms(reply: &str) -> Option<u64> {
    if !reply.contains("overloaded") {
        return None;
    }
    let value = parse(reply).ok()?;
    if value.get("error").and_then(JsonValue::as_str) != Some("overloaded") {
        return None;
    }
    Some(
        value
            .get("retry_ms")
            .and_then(JsonValue::as_u64)
            .unwrap_or(0),
    )
}

/// Detect the `stale_epoch` fencing refusal and extract `(have, want)`.
/// Same shape as [`overload_retry_ms`]: a cheap substring prefilter,
/// then a parse that confirms the `error` token exactly. Returns `None`
/// for anything that is not a well-formed fencing refusal.
pub fn stale_epoch_of(reply: &str) -> Option<(u64, u64)> {
    if !reply.contains("stale_epoch") {
        return None;
    }
    let value = parse(reply).ok()?;
    if value.get("error").and_then(JsonValue::as_str) != Some("stale_epoch") {
        return None;
    }
    let have = value.get("have").and_then(JsonValue::as_u64)?;
    let want = value.get("want").and_then(JsonValue::as_u64)?;
    Some((have, want))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfp_analysis::us_study::UsSlice;
    use lfp_topo::Continent;
    use std::sync::Arc;

    #[test]
    fn decodes_every_query_kind() {
        assert_eq!(
            decode(r#"{"query": "vendor_mix", "as": 7}"#).unwrap(),
            Query::VendorMixAs {
                as_id: 7,
                method: LabelSource::Lfp
            }
        );
        assert_eq!(
            decode(r#"{"query": "vendor_mix", "region": "AS", "method": "snmp"}"#).unwrap(),
            Query::VendorMixRegion {
                region: Continent::Asia,
                method: LabelSource::Snmp
            }
        );
        assert_eq!(
            decode(
                r#"{"query": "path_diversity", "src_as": 1, "dst_as": 2, "min_hops": 3,
                    "max_hops": 9, "source": "RIPE-1", "slice": "inter-us"}"#
            )
            .unwrap(),
            Query::PathDiversity {
                selection: Selection {
                    src_as: Some(1),
                    dst_as: Some(2),
                    source: Some("RIPE-1".to_string()),
                    min_hops: Some(3),
                    max_hops: Some(9),
                    slice: Some(UsSlice::InterUs),
                }
            }
        );
        assert_eq!(
            decode(r#"{"query": "transitions"}"#).unwrap(),
            Query::Transitions {
                selection: Selection::default()
            }
        );
        assert_eq!(
            decode(r#"{"query": "longest_runs", "slice": "other"}"#).unwrap(),
            Query::LongestRuns {
                selection: Selection {
                    slice: Some(UsSlice::Other),
                    ..Selection::default()
                }
            }
        );
        assert_eq!(decode(r#"{"query": "catalog"}"#).unwrap(), Query::Catalog);
    }

    #[test]
    fn canonical_form_is_a_valid_request() {
        let queries = [
            Query::VendorMixAs {
                as_id: 42,
                method: LabelSource::Snmp,
            },
            Query::VendorMixRegion {
                region: Continent::SouthAmerica,
                method: LabelSource::Lfp,
            },
            Query::PathDiversity {
                selection: Selection {
                    src_as: Some(3),
                    dst_as: Some(9),
                    min_hops: Some(2),
                    ..Selection::default()
                },
            },
            Query::Transitions {
                selection: Selection {
                    source: Some("ITDK-derived".to_string()),
                    ..Selection::default()
                },
            },
            Query::LongestRuns {
                selection: Selection {
                    slice: Some(UsSlice::IntraUs),
                    max_hops: Some(30),
                    ..Selection::default()
                },
            },
            Query::Catalog,
        ];
        for query in queries {
            assert_eq!(
                decode(&query.canonical()).unwrap(),
                query,
                "{}",
                query.canonical()
            );
        }
    }

    #[test]
    fn epoch_tagged_canonical_forms_replay_verbatim() {
        // The echo of an answered query carries the serving epoch; that
        // exact line must decode back to the original query at any later
        // epoch (the tag is advisory, never a selector).
        let queries = [
            Query::Catalog,
            Query::VendorMixAs {
                as_id: 9,
                method: LabelSource::Lfp,
            },
            Query::Transitions {
                selection: Selection {
                    min_hops: Some(2),
                    ..Selection::default()
                },
            },
        ];
        for query in queries {
            for epoch in [0u64, 1, 77] {
                assert_eq!(
                    decode(&query.canonical_at(epoch)).unwrap(),
                    query,
                    "{}",
                    query.canonical_at(epoch)
                );
            }
        }
        // A malformed epoch is rejected, not ignored.
        let error = decode(r#"{"query": "catalog", "epoch": "three"}"#).unwrap_err();
        assert!(error.contains("epoch"), "{error}");
        let error = decode(r#"{"query": "catalog", "epoch": -1}"#).unwrap_err();
        assert!(error.contains("epoch"), "{error}");
    }

    #[test]
    fn rejects_malformed_requests_with_useful_errors() {
        for (line, needle) in [
            ("not json", "invalid JSON"),
            ("[1,2]", "must be a JSON object"),
            (r#"{"q": "catalog"}"#, "missing string field"),
            (r#"{"query": "mystery"}"#, "unknown query kind"),
            (r#"{"query": "catalog", "as": 1}"#, "unknown field 'as'"),
            (r#"{"query": "vendor_mix"}"#, "'as' or 'region'"),
            (
                r#"{"query": "vendor_mix", "as": 1, "region": "EU"}"#,
                "not both",
            ),
            (r#"{"query": "vendor_mix", "as": -3}"#, "AS number"),
            (r#"{"query": "vendor_mix", "as": 1.5}"#, "AS number"),
            (
                r#"{"query": "vendor_mix", "region": "ZZ"}"#,
                "unknown region",
            ),
            (
                r#"{"query": "vendor_mix", "as": 1, "method": "banner"}"#,
                "unknown method",
            ),
            (
                r#"{"query": "path_diversity", "src_as": 1}"#,
                "requires both",
            ),
            (
                r#"{"query": "transitions", "min_hops": 9, "max_hops": 2}"#,
                "exceeds",
            ),
            (
                r#"{"query": "transitions", "slice": "lunar"}"#,
                "unknown slice",
            ),
            (
                r#"{"query": "longest_runs", "min_hops": 100000}"#,
                "hop count",
            ),
            (
                r#"{"query": "transitions", "typo_filter": 1}"#,
                "unknown field 'typo_filter'",
            ),
            (
                r#"{"query": "transitions", "min_hops": 2, "min_hops": 9}"#,
                "duplicate field 'min_hops'",
            ),
        ] {
            let error = decode(line).unwrap_err();
            assert!(
                error.contains(needle),
                "{line}: expected {needle:?} in {error:?}"
            );
        }
    }

    #[test]
    fn envelopes_are_single_line_valid_json() {
        let response = Response {
            payload: Arc::from(r#"{"paths": 3}"#),
            cached: true,
        };
        let ok = ok_envelope("{\"query\":\"catalog\"}", &response);
        let parsed = lfp_analysis::json::parse(&ok).unwrap();
        assert_eq!(parsed.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(parsed.get("cached").unwrap().as_bool(), Some(true));
        assert_eq!(
            parsed.get("result").unwrap().get("paths").unwrap().as_u64(),
            Some(3)
        );
        let error = error_envelope("bad \"thing\"\nhappened\u{2028}");
        assert!(!error.contains('\n'));
        let parsed = lfp_analysis::json::parse(&error).unwrap();
        assert_eq!(parsed.get("ok").unwrap().as_bool(), Some(false));
        assert_eq!(
            parsed.get("error").unwrap().as_str(),
            Some("bad \"thing\"\nhappened\u{2028}")
        );
    }

    #[test]
    fn envelope_head_and_tail_reassemble_byte_identically() {
        for cached in [false, true] {
            let response = Response {
                payload: Arc::from(r#"{"paths": 3, "nested": [1, 2]}"#),
                cached,
            };
            let canonical = "{\"query\":\"catalog\",\"epoch\":7}";
            let assembled = format!(
                "{}{}{}",
                ok_envelope_head(canonical, cached),
                response.payload,
                OK_ENVELOPE_TAIL
            );
            assert_eq!(assembled, ok_envelope(canonical, &response));
        }
    }

    #[test]
    fn overloaded_envelope_round_trips_through_detection() {
        let shed = overloaded_envelope("queue", 25);
        let parsed = lfp_analysis::json::parse(&shed).unwrap();
        assert_eq!(parsed.get("ok").unwrap().as_bool(), Some(false));
        assert_eq!(parsed.get("error").unwrap().as_str(), Some("overloaded"));
        assert_eq!(parsed.get("reason").unwrap().as_str(), Some("queue"));
        assert_eq!(overload_retry_ms(&shed), Some(25));

        // Ordinary errors — even ones *mentioning* overload in prose —
        // must not trip the typed detection.
        assert_eq!(overload_retry_ms(&error_envelope("no such query")), None);
        assert_eq!(
            overload_retry_ms(&error_envelope("system felt overloaded")),
            None
        );
        // A success payload containing the word is rejected by the
        // exact check on the `error` field.
        assert_eq!(
            overload_retry_ms("{\"ok\": true, \"result\": \"overloaded\"}"),
            None
        );
        // Missing hint degrades to 0, not to a parse failure.
        assert_eq!(
            overload_retry_ms("{\"ok\": false, \"error\": \"overloaded\"}"),
            Some(0)
        );
    }

    #[test]
    fn hostile_overload_reason_round_trips_escaped() {
        // A reason carrying quotes, backslashes, newlines and JS line
        // separators must still render one line of valid JSON that the
        // typed detection parses — the escaper is load-bearing here.
        let hostile = "queue \"full\"\\deep\nand\u{2028}wide";
        let shed = overloaded_envelope(hostile, 40);
        assert!(!shed.contains('\n'), "envelope must stay single-line");
        let parsed = lfp_analysis::json::parse(&shed).unwrap();
        assert_eq!(parsed.get("error").unwrap().as_str(), Some("overloaded"));
        assert_eq!(parsed.get("reason").unwrap().as_str(), Some(hostile));
        assert_eq!(overload_retry_ms(&shed), Some(40));
    }

    #[test]
    fn stale_epoch_envelope_round_trips_through_detection() {
        let fenced = stale_epoch_envelope(3, 7);
        assert_eq!(
            fenced,
            "{\"ok\": false, \"error\": \"stale_epoch\", \"have\": 3, \"want\": 7}"
        );
        let parsed = lfp_analysis::json::parse(&fenced).unwrap();
        assert_eq!(parsed.get("ok").unwrap().as_bool(), Some(false));
        assert_eq!(parsed.get("error").unwrap().as_str(), Some("stale_epoch"));
        assert_eq!(stale_epoch_of(&fenced), Some((3, 7)));

        // Prose mentioning the token, success payloads containing it,
        // and the other typed error all fail the exact check.
        assert_eq!(stale_epoch_of(&error_envelope("stale_epoch-ish")), None);
        assert_eq!(
            stale_epoch_of("{\"ok\": true, \"result\": \"stale_epoch\"}"),
            None
        );
        assert_eq!(stale_epoch_of(&overloaded_envelope("queue", 1)), None);
        // And the two detectors never cross-fire.
        assert_eq!(overload_retry_ms(&fenced), None);
    }

    #[test]
    fn min_epoch_is_accepted_validated_and_extractable() {
        // Every kind accepts the fencing field…
        for line in [
            r#"{"query": "catalog", "min_epoch": 4}"#,
            r#"{"query": "vendor_mix", "as": 7, "min_epoch": 0}"#,
            r#"{"query": "transitions", "min_epoch": 9, "epoch": 2}"#,
        ] {
            decode(line).unwrap_or_else(|error| panic!("{line}: {error}"));
            let value = lfp_analysis::json::parse(line).unwrap();
            decode_value(&value).unwrap();
            assert!(min_epoch_of(&value).is_some(), "{line}");
        }
        // …and rejects malformed floors instead of ignoring them.
        for line in [
            r#"{"query": "catalog", "min_epoch": -1}"#,
            r#"{"query": "catalog", "min_epoch": "four"}"#,
            r#"{"query": "catalog", "min_epoch": 1.5}"#,
        ] {
            let error = decode(line).unwrap_err();
            assert!(error.contains("min_epoch"), "{line}: {error}");
        }
        // Absent floor reads as "no fence".
        let bare = lfp_analysis::json::parse(r#"{"query": "catalog"}"#).unwrap();
        assert_eq!(min_epoch_of(&bare), None);
    }
}
