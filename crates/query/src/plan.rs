//! The planner: lower a [`Selection`] onto the path corpus's columnar
//! indexes.
//!
//! Every indexable predicate contributes a **sorted row-id slice** (the
//! corpus builds its indexes in row order): AS pair → `rows_between`
//! (itself a sorted intersection of the per-endpoint indexes), single
//! endpoint → `rows_from_as`/`rows_to_as`, dataset → `rows_of_source`,
//! exact hop count → `rows_with_length`. The planner picks the smallest
//! contribution as the scan base, intersects the rest pairwise (linear
//! two-pointer merges via
//! [`intersect_sorted`](lfp_analysis::path_corpus::intersect_sorted)),
//! then applies the residual predicates an index cannot answer (hop
//! *ranges*, US slice) as per-row filters. The result is the row set a
//! query's aggregation runs over, plus an `explain` trace recording the
//! chosen base and the selectivity of each step.

use crate::query::{slice_name, Selection};
use lfp_analysis::path_corpus::{intersect_sorted, PathCorpus};

/// A planned (and executed) row selection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowPlan {
    /// The selected rows, ascending.
    pub rows: Vec<u32>,
    /// Human-readable plan trace: base index, intersections, residual
    /// filters, and the row count after each step.
    pub explain: String,
}

/// One index-backed contribution to the selection.
struct IndexPart<'a> {
    label: String,
    rows: RowSet<'a>,
}

/// Borrowed index slices and computed intersections, unified.
enum RowSet<'a> {
    Borrowed(&'a [u32]),
    Owned(Vec<u32>),
}

impl RowSet<'_> {
    fn as_slice(&self) -> &[u32] {
        match self {
            RowSet::Borrowed(rows) => rows,
            RowSet::Owned(rows) => rows,
        }
    }
}

/// Plan and execute a selection against the corpus.
///
/// Errors only on an unknown `source` dataset name (the one filter whose
/// domain a client cannot know a priori; the error lists what exists).
pub fn select_rows(corpus: &PathCorpus, selection: &Selection) -> Result<RowPlan, String> {
    let mut parts: Vec<IndexPart> = Vec::new();

    // AS endpoints: the pair index when both are present (the satellite
    // `rows_between` helper), the single-endpoint index otherwise.
    let pair;
    match (selection.src_as, selection.dst_as) {
        (Some(src_as), Some(dst_as)) => {
            pair = corpus.rows_between(src_as, dst_as);
            parts.push(IndexPart {
                label: format!("between({src_as},{dst_as})"),
                rows: RowSet::Owned(pair),
            });
        }
        (Some(src_as), None) => parts.push(IndexPart {
            label: format!("src_as({src_as})"),
            rows: RowSet::Borrowed(corpus.rows_from_as(src_as)),
        }),
        (None, Some(dst_as)) => parts.push(IndexPart {
            label: format!("dst_as({dst_as})"),
            rows: RowSet::Borrowed(corpus.rows_to_as(dst_as)),
        }),
        (None, None) => {}
    }

    if let Some(name) = &selection.source {
        let source = corpus.source_id(name).ok_or_else(|| {
            format!(
                "unknown source dataset '{name}' (have: {})",
                corpus.sources().join(", ")
            )
        })?;
        parts.push(IndexPart {
            label: format!("source({name})"),
            rows: RowSet::Borrowed(corpus.rows_of_source(source)),
        });
    }

    // An exact hop count lowers onto the length index; a range stays a
    // residual filter.
    let exact_hops = match (selection.min_hops, selection.max_hops) {
        (Some(min), Some(max)) if min == max => Some(min),
        _ => None,
    };
    if let Some(hops) = exact_hops {
        parts.push(IndexPart {
            label: format!("length({hops})"),
            rows: RowSet::Borrowed(corpus.rows_with_length(hops)),
        });
    }

    // Smallest contribution first: every later intersection is bounded
    // by the base's cardinality.
    parts.sort_by_key(|part| part.rows.as_slice().len());

    let mut explain = String::new();
    let mut rows: Vec<u32> = match parts.split_first() {
        None => {
            explain.push_str(&format!("base=all({})", corpus.len()));
            corpus.all_rows()
        }
        Some((base, rest)) => {
            explain.push_str(&format!(
                "base={}[{}]",
                base.label,
                base.rows.as_slice().len()
            ));
            let mut rows = base.rows.as_slice().to_vec();
            for part in rest {
                rows = intersect_sorted(&rows, part.rows.as_slice());
                explain.push_str(&format!(
                    " ∩ {}[{}] → {}",
                    part.label,
                    part.rows.as_slice().len(),
                    rows.len()
                ));
            }
            rows
        }
    };

    // Residual predicates: hop range (when not consumed by the length
    // index) and US slice.
    if exact_hops.is_none() && (selection.min_hops.is_some() || selection.max_hops.is_some()) {
        let min = selection.min_hops.unwrap_or(0);
        let max = selection.max_hops.unwrap_or(u16::MAX);
        rows.retain(|&row| (min..=max).contains(&corpus.hops_of(row)));
        explain.push_str(&format!(" ▸ hops {min}..={max} → {}", rows.len()));
    }
    if let Some(slice) = selection.slice {
        rows.retain(|&row| corpus.us_slice_of(row) == slice);
        explain.push_str(&format!(" ▸ slice {} → {}", slice_name(slice), rows.len()));
    }

    Ok(RowPlan { rows, explain })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::shared_world;
    use lfp_analysis::us_study::UsSlice;

    /// Reference implementation: scan every row, apply every predicate.
    fn naive_rows(corpus: &PathCorpus, selection: &Selection) -> Vec<u32> {
        let source = selection
            .source
            .as_deref()
            .map(|name| corpus.source_id(name).expect("known source") as u16);
        corpus
            .all_rows()
            .into_iter()
            .filter(|&row| {
                let hops = corpus.hops_of(row);
                selection
                    .src_as
                    .is_none_or(|src| corpus.rows_from_as(src).contains(&row))
                    && selection
                        .dst_as
                        .is_none_or(|dst| corpus.rows_to_as(dst).contains(&row))
                    && source.is_none_or(|wanted| corpus.source_of(row) == wanted)
                    && selection.min_hops.is_none_or(|min| hops >= min)
                    && selection.max_hops.is_none_or(|max| hops <= max)
                    && selection
                        .slice
                        .is_none_or(|wanted| corpus.us_slice_of(row) == wanted)
            })
            .collect()
    }

    #[test]
    fn empty_selection_selects_every_row() {
        let world = shared_world();
        let corpus = world.path_corpus();
        let plan = select_rows(corpus, &Selection::default()).unwrap();
        assert_eq!(plan.rows, corpus.all_rows());
        assert!(plan.explain.contains("base=all"), "{}", plan.explain);
    }

    #[test]
    fn planner_matches_naive_scan_across_filter_shapes() {
        let world = shared_world();
        let corpus = world.path_corpus();
        let src = corpus.src_as_ids();
        let dst = corpus.dst_as_ids();
        let sources = corpus.sources();
        let selections = [
            Selection {
                src_as: Some(src[0]),
                ..Selection::default()
            },
            Selection {
                dst_as: Some(dst[dst.len() / 2]),
                ..Selection::default()
            },
            Selection {
                src_as: Some(src[0]),
                dst_as: Some(dst[0]),
                ..Selection::default()
            },
            Selection {
                source: Some(sources[0].clone()),
                min_hops: Some(2),
                max_hops: Some(6),
                ..Selection::default()
            },
            Selection {
                source: Some("ITDK-derived".to_string()),
                slice: Some(UsSlice::IntraUs),
                ..Selection::default()
            },
            Selection {
                min_hops: Some(4),
                max_hops: Some(4),
                ..Selection::default()
            },
            Selection {
                src_as: Some(src[src.len() - 1]),
                source: Some(sources[sources.len() - 1].clone()),
                min_hops: Some(1),
                slice: Some(UsSlice::Other),
                ..Selection::default()
            },
        ];
        for selection in &selections {
            let plan = select_rows(corpus, selection).unwrap();
            assert_eq!(
                plan.rows,
                naive_rows(corpus, selection),
                "selection {selection:?} (plan: {})",
                plan.explain
            );
            // Planned rows always come back sorted (index order).
            assert!(plan.rows.windows(2).all(|pair| pair[0] < pair[1]));
        }
    }

    #[test]
    fn exact_hop_count_uses_the_length_index() {
        let world = shared_world();
        let corpus = world.path_corpus();
        let selection = Selection {
            min_hops: Some(3),
            max_hops: Some(3),
            ..Selection::default()
        };
        let plan = select_rows(corpus, &selection).unwrap();
        assert!(plan.explain.contains("length(3)"), "{}", plan.explain);
        assert_eq!(plan.rows, corpus.rows_with_length(3));
    }

    #[test]
    fn pair_selection_uses_rows_between() {
        let world = shared_world();
        let corpus = world.path_corpus();
        let src = corpus.src_as_ids()[0];
        let dst = corpus.dst_as_ids()[0];
        let plan = select_rows(
            corpus,
            &Selection {
                src_as: Some(src),
                dst_as: Some(dst),
                ..Selection::default()
            },
        )
        .unwrap();
        assert!(plan.explain.contains("between("), "{}", plan.explain);
        assert_eq!(plan.rows, corpus.rows_between(src, dst));
    }

    #[test]
    fn unknown_source_is_a_descriptive_error() {
        let world = shared_world();
        let corpus = world.path_corpus();
        let error = select_rows(
            corpus,
            &Selection {
                source: Some("RIPE-99".to_string()),
                ..Selection::default()
            },
        )
        .unwrap_err();
        assert!(error.contains("RIPE-99"), "{error}");
        assert!(error.contains("ITDK-derived"), "{error}");
    }
}
