//! A sharded LRU result cache keyed by canonical query strings.
//!
//! The serving hot path is "same question, again": interactive clients
//! and dashboards re-ask a small working set of queries far more often
//! than the corpus changes (it never changes — a [`World`] is
//! immutable), so a hit must cost a hash, one shard lock and an `Arc`
//! clone. Keys are sharded by hash so concurrent connections contend on
//! `shards` independent mutexes instead of one; within a shard, an
//! intrusive doubly-linked list over a slab gives O(1) get / insert /
//! evict. Values are the **rendered result bytes** (`Arc<str>`), which
//! is what makes the cache-hit-equals-cold-execution property testable
//! byte for byte.
//!
//! [`World`]: lfp_analysis::World

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Slab sentinel: no node.
const NIL: usize = usize::MAX;

/// Hit/miss counters (monotonic since construction).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to execution.
    pub misses: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Entries displaced by LRU eviction since construction.
    pub evictions: u64,
}

/// Number of per-lane counter slots; lanes index modulo this, so lane
/// ids below `LANE_SLOTS` (every serving event-loop shard in practice)
/// get exact per-lane counters.
pub const LANE_SLOTS: usize = 64;

/// Per-lane counters (monotonic since construction).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LaneStats {
    /// Lookups answered from the cache under this lane.
    pub hits: u64,
    /// Lookups under this lane that fell through to execution.
    pub misses: u64,
    /// Evictions triggered by inserts under this lane.
    pub evictions: u64,
}

#[derive(Default)]
struct LaneCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl CacheStats {
    /// Hit fraction in [0, 1] (0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Node {
    key: Arc<str>,
    value: Arc<str>,
    prev: usize,
    next: usize,
}

/// One shard: a hash map into a slab of intrusively linked nodes,
/// most-recently-used at `head`. Keys are `Arc<str>` shared between the
/// map and the slab node, so a miss costs exactly one key allocation.
struct Shard {
    map: HashMap<Arc<str>, usize>,
    nodes: Vec<Node>,
    head: usize,
    tail: usize,
    capacity: usize,
}

impl Shard {
    fn new(capacity: usize) -> Shard {
        Shard {
            map: HashMap::with_capacity(capacity),
            nodes: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    fn unlink(&mut self, index: usize) {
        let (prev, next) = (self.nodes[index].prev, self.nodes[index].next);
        match prev {
            NIL => self.head = next,
            _ => self.nodes[prev].next = next,
        }
        match next {
            NIL => self.tail = prev,
            _ => self.nodes[next].prev = prev,
        }
    }

    fn push_front(&mut self, index: usize) {
        self.nodes[index].prev = NIL;
        self.nodes[index].next = self.head;
        match self.head {
            NIL => self.tail = index,
            old => self.nodes[old].prev = index,
        }
        self.head = index;
    }

    fn get(&mut self, key: &str) -> Option<Arc<str>> {
        let index = *self.map.get(key)?;
        self.unlink(index);
        self.push_front(index);
        Some(Arc::clone(&self.nodes[index].value))
    }

    /// Insert (or refresh) a key; returns true when an existing entry
    /// was evicted to make room.
    fn insert(&mut self, key: &str, value: Arc<str>) -> bool {
        if let Some(&index) = self.map.get(key) {
            self.nodes[index].value = value;
            self.unlink(index);
            self.push_front(index);
            return false;
        }
        // One shared allocation per miss: the node and the map hold the
        // same `Arc<str>` key (this path used to allocate the key twice).
        let key: Arc<str> = Arc::from(key);
        let (index, evicted) = if self.nodes.len() < self.capacity {
            self.nodes.push(Node {
                key: Arc::clone(&key),
                value,
                prev: NIL,
                next: NIL,
            });
            (self.nodes.len() - 1, false)
        } else {
            // Evict the least-recently-used node and reuse its slot.
            let victim = self.tail;
            self.unlink(victim);
            let old_key = std::mem::replace(&mut self.nodes[victim].key, Arc::clone(&key));
            self.map.remove(old_key.as_ref());
            self.nodes[victim].value = value;
            (victim, true)
        };
        self.map.insert(key, index);
        self.push_front(index);
        evicted
    }
}

/// The sharded LRU. Cheap to share by reference across worker threads;
/// all interior mutability is per-shard.
pub struct ShardedLru {
    shards: Vec<Mutex<Shard>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    lanes: Vec<LaneCounters>,
}

impl ShardedLru {
    /// A cache of `shards` independent LRU shards holding up to
    /// `capacity` entries **in total**: the remainder of an uneven
    /// split goes one-per-shard to the first `capacity % shards`
    /// shards, so shard capacities sum to exactly `capacity`. When
    /// `capacity < shards` the shard count is clamped down so every
    /// shard still holds at least one entry.
    pub fn new(shards: usize, capacity: usize) -> ShardedLru {
        let capacity = capacity.max(1);
        let shards = shards.clamp(1, capacity);
        let base = capacity / shards;
        let extra = capacity % shards;
        ShardedLru {
            shards: (0..shards)
                .map(|index| Mutex::new(Shard::new(base + usize::from(index < extra))))
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            lanes: (0..LANE_SLOTS).map(|_| LaneCounters::default()).collect(),
        }
    }

    fn lane_slot(&self, lane: u64) -> &LaneCounters {
        &self.lanes[(lane % LANE_SLOTS as u64) as usize]
    }

    fn shard_of(&self, key: &str, lane: u64) -> &Mutex<Shard> {
        // DefaultHasher with default keys is deterministic across runs,
        // so shard placement (and therefore eviction behaviour) is too.
        // The lane (a caller identity — e.g. a serving event loop's
        // shard id) is folded in through a splitmix-style multiply so
        // different lanes land the same key on *different* cache shards:
        // N serving loops all hammering one hot key then contend on N
        // independent mutexes instead of one. Lane 0 reproduces the
        // historical un-laned placement exactly.
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        let spread = lane.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.shards[((hasher.finish() ^ spread) % self.shards.len() as u64) as usize]
    }

    /// Look a key up, refreshing its recency. Counts a hit or a miss.
    pub fn get(&self, key: &str) -> Option<Arc<str>> {
        self.get_lane(key, 0)
    }

    /// [`get`](ShardedLru::get) with an explicit caller lane (see
    /// `shard_of` for what a lane buys). Lane 0 is identical to `get`.
    pub fn get_lane(&self, key: &str, lane: u64) -> Option<Arc<str>> {
        let result = self
            .shard_of(key, lane)
            .lock()
            .expect("cache shard poisoned")
            .get(key);
        let slot = self.lane_slot(lane);
        match result {
            Some(_) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                slot.hits.fetch_add(1, Ordering::Relaxed)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                slot.misses.fetch_add(1, Ordering::Relaxed)
            }
        };
        result
    }

    /// Insert (or refresh) a key.
    pub fn insert(&self, key: &str, value: Arc<str>) {
        self.insert_lane(key, value, 0)
    }

    /// [`insert`](ShardedLru::insert) with an explicit caller lane.
    /// A key inserted under one lane is only visible to lookups under
    /// the same lane — lanes trade a little duplication (the same hot
    /// entry may live once per lane) for zero cross-lane contention,
    /// the right trade for a cache.
    pub fn insert_lane(&self, key: &str, value: Arc<str>, lane: u64) {
        let evicted = self
            .shard_of(key, lane)
            .lock()
            .expect("cache shard poisoned")
            .insert(key, value);
        if evicted {
            self.evictions.fetch_add(1, Ordering::Relaxed);
            self.lane_slot(lane)
                .evictions
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self
                .shards
                .iter()
                .map(|shard| shard.lock().expect("cache shard poisoned").map.len())
                .sum(),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Counters for one caller lane (see [`ShardedLru::get_lane`]).
    /// Lanes index a fixed array of [`LANE_SLOTS`] counter slots, so ids
    /// `LANE_SLOTS` apart share a slot.
    pub fn lane_stats(&self, lane: u64) -> LaneStats {
        let slot = self.lane_slot(lane);
        LaneStats {
            hits: slot.hits.load(Ordering::Relaxed),
            misses: slot.misses.load(Ordering::Relaxed),
            evictions: slot.evictions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn value(text: &str) -> Arc<str> {
        Arc::from(text)
    }

    #[test]
    fn hit_returns_inserted_value_and_counts() {
        let cache = ShardedLru::new(4, 64);
        assert!(cache.get("a").is_none());
        cache.insert("a", value("1"));
        assert_eq!(cache.get("a").as_deref(), Some("1"));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn insert_replaces_existing_value() {
        let cache = ShardedLru::new(2, 8);
        cache.insert("k", value("old"));
        cache.insert("k", value("new"));
        assert_eq!(cache.get("k").as_deref(), Some("new"));
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn eviction_is_least_recently_used() {
        // Single shard so the eviction order is fully observable.
        let cache = ShardedLru::new(1, 3);
        cache.insert("a", value("A"));
        cache.insert("b", value("B"));
        cache.insert("c", value("C"));
        // Touch `a` so `b` becomes the LRU entry.
        assert!(cache.get("a").is_some());
        cache.insert("d", value("D"));
        assert!(cache.get("b").is_none(), "b should have been evicted");
        for key in ["a", "c", "d"] {
            assert!(cache.get(key).is_some(), "{key} should survive");
        }
        assert_eq!(cache.stats().entries, 3);
    }

    #[test]
    fn eviction_churn_keeps_capacity_and_consistency() {
        let cache = ShardedLru::new(1, 4);
        for round in 0..100u32 {
            let key = format!("k{}", round % 10);
            cache.insert(&key, value(&round.to_string()));
            // The most recent insert is always resident.
            assert!(cache.get(&key).is_some());
            assert!(cache.stats().entries <= 4);
        }
    }

    #[test]
    fn shards_share_total_capacity() {
        // A non-divisible capacity: the old ceil split gave every shard
        // 3 slots, admitting up to 24 entries against a contract of 17.
        let cache = ShardedLru::new(8, 17);
        for index in 0..200u32 {
            cache.insert(&format!("key-{index}"), value("x"));
        }
        assert!(
            cache.stats().entries <= 17,
            "cache holds {} entries, contract is 17 in total",
            cache.stats().entries
        );
    }

    #[test]
    fn capacity_below_shard_count_stays_bounded() {
        // Fewer slots than shards: the shard count clamps down instead
        // of handing out zero-capacity shards (whose eviction path
        // would have no tail to unlink).
        let cache = ShardedLru::new(8, 3);
        for index in 0..50u32 {
            let key = format!("k{index}");
            cache.insert(&key, value("x"));
            assert!(cache.get(&key).is_some());
            assert!(cache.stats().entries <= 3);
        }
    }

    #[test]
    fn lane_zero_is_the_default_placement() {
        let cache = ShardedLru::new(8, 64);
        cache.insert("hot-key", value("v"));
        assert_eq!(cache.get_lane("hot-key", 0).as_deref(), Some("v"));
        cache.insert_lane("laned", value("w"), 3);
        assert_eq!(cache.get_lane("laned", 3).as_deref(), Some("w"));
        // Lanes are deterministic: the same (key, lane) pair always
        // resolves to the same shard, so a re-lookup always hits.
        for _ in 0..10 {
            assert_eq!(cache.get_lane("laned", 3).as_deref(), Some("w"));
        }
    }

    #[test]
    fn per_lane_counters_track_hits_misses_and_evictions() {
        let cache = ShardedLru::new(1, 2);
        assert!(cache.get_lane("a", 3).is_none());
        cache.insert_lane("a", value("A"), 3);
        assert!(cache.get_lane("a", 3).is_some());
        // Fill past capacity under lane 3: evictions attribute to it.
        cache.insert_lane("b", value("B"), 3);
        cache.insert_lane("c", value("C"), 3);
        let lane = cache.lane_stats(3);
        assert_eq!((lane.hits, lane.misses, lane.evictions), (1, 1, 1));
        // Other lanes saw none of that traffic.
        let other = cache.lane_stats(4);
        assert_eq!((other.hits, other.misses, other.evictions), (0, 0, 0));
        // Global counters agree with the lane sums.
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.evictions), (1, 1, 1));
        // Re-inserting an existing key is a refresh, not an eviction.
        cache.insert_lane("c", value("C2"), 3);
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn concurrent_access_is_safe_and_converges() {
        let cache = ShardedLru::new(4, 128);
        std::thread::scope(|scope| {
            for worker in 0..8 {
                let cache = &cache;
                scope.spawn(move || {
                    for index in 0..500 {
                        let key = format!("k{}", (worker + index) % 64);
                        if cache.get(&key).is_none() {
                            cache.insert(&key, value(&key));
                        }
                    }
                });
            }
        });
        for index in 0..64 {
            let key = format!("k{index}");
            assert_eq!(cache.get(&key).as_deref(), Some(key.as_str()));
        }
    }
}
