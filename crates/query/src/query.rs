//! The typed query AST and its canonical wire form.
//!
//! Every query canonicalises to a compact JSON object with fields in a
//! fixed order and `None` filters omitted. The canonical form serves
//! three masters at once: it is the **cache key** (two spellings of the
//! same question share one cache entry), it is **echoed** back in every
//! response so clients see what was actually answered, and it is itself
//! a **valid wire query** — `wire::decode(query.canonical())` returns
//! the original query (property-tested).

use lfp_analysis::json::escape;
use lfp_analysis::path_corpus::LabelSource;
use lfp_analysis::us_study::UsSlice;
use lfp_topo::Continent;

/// Row filters shared by every path-level query. All fields optional;
/// an empty selection means "every path in the corpus".
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Selection {
    /// Only paths whose vantage sits in this AS.
    pub src_as: Option<u32>,
    /// Only paths whose destination sits in this AS.
    pub dst_as: Option<u32>,
    /// Only paths from this source dataset (by name, e.g. `"RIPE-2"` or
    /// `"ITDK-derived"`).
    pub source: Option<String>,
    /// Only paths with at least this many router hops.
    pub min_hops: Option<u16>,
    /// Only paths with at most this many router hops.
    pub max_hops: Option<u16>,
    /// Only paths in this US slice (§6.2).
    pub slice: Option<UsSlice>,
}

impl Selection {
    /// True when no filter is set (the whole corpus).
    pub fn is_empty(&self) -> bool {
        *self == Selection::default()
    }

    /// Append this selection's canonical fields (leading comma included
    /// before each present field).
    fn canonical_fields(&self, out: &mut String) {
        if let Some(src_as) = self.src_as {
            out.push_str(&format!(",\"src_as\":{src_as}"));
        }
        if let Some(dst_as) = self.dst_as {
            out.push_str(&format!(",\"dst_as\":{dst_as}"));
        }
        if let Some(source) = &self.source {
            out.push_str(&format!(",\"source\":\"{}\"", escape(source)));
        }
        if let Some(min_hops) = self.min_hops {
            out.push_str(&format!(",\"min_hops\":{min_hops}"));
        }
        if let Some(max_hops) = self.max_hops {
            out.push_str(&format!(",\"max_hops\":{max_hops}"));
        }
        if let Some(slice) = self.slice {
            out.push_str(&format!(",\"slice\":\"{}\"", slice_name(slice)));
        }
    }
}

/// One question against a measured world.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Query {
    /// Vendor mix of identified routers inside one AS (§5): which vendors
    /// does this provider run, under LFP or SNMPv3 identification?
    VendorMixAs {
        /// The provider's AS number.
        as_id: u32,
        /// Identification method the counts come from.
        method: LabelSource,
    },
    /// Vendor mix aggregated over every AS registered on a continent
    /// (Figure 21's regional market view).
    VendorMixRegion {
        /// The region, by paper abbreviation.
        region: Continent,
        /// Identification method the counts come from.
        method: LabelSource,
    },
    /// Path vendor diversity over a selection (§6, Figures 11–14):
    /// identified paths, mean distinct vendors, multi-vendor share, top
    /// vendor combinations. `src_as`/`dst_as` in the selection make this
    /// the paper's per-AS-pair question.
    PathDiversity {
        /// Row filters.
        selection: Selection,
    },
    /// The vendor hand-off (transition) matrix over a selection's
    /// identified-hop subsequences.
    Transitions {
        /// Row filters.
        selection: Selection,
    },
    /// ECDF summary of the longest same-vendor run per path.
    LongestRuns {
        /// Row filters.
        selection: Selection,
    },
    /// What is queryable: sources, corpus size, sample AS ids. Clients
    /// (and the load generator) bootstrap from this.
    Catalog,
}

impl Query {
    /// The canonical compact-JSON form (cache key, response echo, and a
    /// valid wire query).
    pub fn canonical(&self) -> String {
        self.render_canonical(None)
    }

    /// The canonical form tagged with a serving epoch: the same compact
    /// JSON with a trailing `"epoch"` field. This is what a
    /// [`QueryEngine`](crate::QueryEngine) caches under and echoes —
    /// tagging is what guarantees a result rendered at one epoch can
    /// never be served from the cache at another. Still a valid wire
    /// request: the decoder accepts (and ignores) the `epoch` field, so
    /// replaying an echoed query asks the same question again.
    pub fn canonical_at(&self, epoch: u64) -> String {
        self.render_canonical(Some(epoch))
    }

    fn render_canonical(&self, epoch: Option<u64>) -> String {
        let mut out = match self {
            Query::VendorMixAs { as_id, method } => format!(
                "{{\"query\":\"vendor_mix\",\"as\":{as_id},\"method\":\"{}\"}}",
                method_name(*method)
            ),
            Query::VendorMixRegion { region, method } => format!(
                "{{\"query\":\"vendor_mix\",\"region\":\"{}\",\"method\":\"{}\"}}",
                region.abbrev(),
                method_name(*method)
            ),
            Query::PathDiversity { selection } => canonical_path_query("path_diversity", selection),
            Query::Transitions { selection } => canonical_path_query("transitions", selection),
            Query::LongestRuns { selection } => canonical_path_query("longest_runs", selection),
            Query::Catalog => "{\"query\":\"catalog\"}".to_string(),
        };
        if let Some(epoch) = epoch {
            out.pop();
            out.push_str(&format!(",\"epoch\":{epoch}}}"));
        }
        out
    }
}

fn canonical_path_query(kind: &str, selection: &Selection) -> String {
    let mut out = format!("{{\"query\":\"{kind}\"");
    selection.canonical_fields(&mut out);
    out.push('}');
    out
}

/// Wire name of an identification method.
pub fn method_name(method: LabelSource) -> &'static str {
    match method {
        LabelSource::Lfp => "lfp",
        LabelSource::Snmp => "snmp",
    }
}

/// Parse an identification method's wire name.
pub fn method_by_name(name: &str) -> Option<LabelSource> {
    match name {
        "lfp" => Some(LabelSource::Lfp),
        "snmp" => Some(LabelSource::Snmp),
        _ => None,
    }
}

/// Wire name of a US slice.
pub fn slice_name(slice: UsSlice) -> &'static str {
    match slice {
        UsSlice::IntraUs => "intra-us",
        UsSlice::InterUs => "inter-us",
        UsSlice::Other => "other",
    }
}

/// Parse a US slice's wire name.
pub fn slice_by_name(name: &str) -> Option<UsSlice> {
    match name {
        "intra-us" => Some(UsSlice::IntraUs),
        "inter-us" => Some(UsSlice::InterUs),
        "other" => Some(UsSlice::Other),
        _ => None,
    }
}

/// Parse a continent's paper abbreviation.
pub fn region_by_abbrev(abbrev: &str) -> Option<Continent> {
    Continent::ALL
        .into_iter()
        .find(|region| region.abbrev() == abbrev)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_is_stable_and_omits_empty_filters() {
        let query = Query::PathDiversity {
            selection: Selection {
                src_as: Some(3),
                dst_as: Some(9),
                ..Selection::default()
            },
        };
        assert_eq!(
            query.canonical(),
            "{\"query\":\"path_diversity\",\"src_as\":3,\"dst_as\":9}"
        );
        let bare = Query::LongestRuns {
            selection: Selection::default(),
        };
        assert_eq!(bare.canonical(), "{\"query\":\"longest_runs\"}");
        let full = Query::Transitions {
            selection: Selection {
                src_as: Some(1),
                dst_as: Some(2),
                source: Some("RIPE-1".to_string()),
                min_hops: Some(3),
                max_hops: Some(12),
                slice: Some(UsSlice::IntraUs),
            },
        };
        assert_eq!(
            full.canonical(),
            "{\"query\":\"transitions\",\"src_as\":1,\"dst_as\":2,\"source\":\"RIPE-1\",\
             \"min_hops\":3,\"max_hops\":12,\"slice\":\"intra-us\"}"
        );
    }

    #[test]
    fn canonical_distinguishes_vendor_mix_groups_and_methods() {
        let by_as = Query::VendorMixAs {
            as_id: 12,
            method: LabelSource::Lfp,
        };
        let by_region = Query::VendorMixRegion {
            region: Continent::Europe,
            method: LabelSource::Snmp,
        };
        assert_eq!(
            by_as.canonical(),
            "{\"query\":\"vendor_mix\",\"as\":12,\"method\":\"lfp\"}"
        );
        assert_eq!(
            by_region.canonical(),
            "{\"query\":\"vendor_mix\",\"region\":\"EU\",\"method\":\"snmp\"}"
        );
        assert_ne!(by_as.canonical(), by_region.canonical());
    }

    #[test]
    fn canonical_at_appends_the_epoch_tag() {
        let query = Query::PathDiversity {
            selection: Selection {
                src_as: Some(3),
                dst_as: Some(9),
                ..Selection::default()
            },
        };
        assert_eq!(
            query.canonical_at(7),
            "{\"query\":\"path_diversity\",\"src_as\":3,\"dst_as\":9,\"epoch\":7}"
        );
        assert_eq!(
            Query::Catalog.canonical_at(0),
            "{\"query\":\"catalog\",\"epoch\":0}"
        );
        // Distinct epochs never share a cache key.
        assert_ne!(query.canonical_at(0), query.canonical_at(1));
        assert_ne!(query.canonical(), query.canonical_at(0));
    }

    #[test]
    fn names_round_trip() {
        for method in [LabelSource::Lfp, LabelSource::Snmp] {
            assert_eq!(method_by_name(method_name(method)), Some(method));
        }
        for slice in [UsSlice::IntraUs, UsSlice::InterUs, UsSlice::Other] {
            assert_eq!(slice_by_name(slice_name(slice)), Some(slice));
        }
        for region in Continent::ALL {
            assert_eq!(region_by_abbrev(region.abbrev()), Some(region));
        }
        assert_eq!(method_by_name("banner"), None);
        assert_eq!(slice_by_name("mars"), None);
        assert_eq!(region_by_abbrev("XX"), None);
    }
}
