//! Batch execution: fan independent queries across a worker pool with
//! deterministic result ordering.
//!
//! Reuses the zmap-style sharded scanner ([`lfp_net::scanner::scan`])
//! rather than growing a second thread pool: queries shard by the hash
//! of their canonical form, equal queries therefore serialise onto one
//! worker (the second one hits the cache instead of racing the first),
//! and the scanner's determinism contract returns results in submission
//! order — so a concurrent batch is **byte-identical** to executing the
//! same queries serially (asserted by `tests/determinism.rs`).

use crate::engine::{QueryEngine, Response};
use crate::query::Query;
use lfp_net::scanner::{scan, ScanConfig};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::num::NonZeroUsize;

/// Stable shard key: hash of the canonical query.
fn shard_key(query: &Query) -> u64 {
    let mut hasher = DefaultHasher::new();
    query.canonical().hash(&mut hasher);
    hasher.finish()
}

/// Execute a batch across `shards` workers. Results come back in
/// submission order; each entry is the same `Ok`/`Err` the query would
/// produce alone.
pub fn run_batch_with_shards(
    engine: &QueryEngine,
    queries: &[Query],
    shards: NonZeroUsize,
) -> Vec<Result<Response, String>> {
    let config = ScanConfig {
        shards,
        pacing: 0.0,
    };
    scan(queries, config, shard_key, |query, _ctx| {
        engine.execute(query)
    })
}

/// Execute a batch with the default shard budget (one worker per core).
pub fn run_batch(engine: &QueryEngine, queries: &[Query]) -> Vec<Result<Response, String>> {
    run_batch_with_shards(engine, queries, ScanConfig::default().shards)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Selection;
    use crate::testutil::shared_world;

    #[test]
    fn batch_results_keep_submission_order_and_match_serial() {
        let engine = QueryEngine::new(shared_world());
        let src = engine.corpus().src_as_ids();
        let queries: Vec<Query> = src
            .iter()
            .take(6)
            .map(|&as_id| Query::PathDiversity {
                selection: Selection {
                    src_as: Some(as_id),
                    ..Selection::default()
                },
            })
            .chain([
                Query::Catalog,
                Query::LongestRuns {
                    selection: Selection::default(),
                },
            ])
            .collect();
        let batch = run_batch_with_shards(&engine, &queries, NonZeroUsize::new(4).unwrap());
        assert_eq!(batch.len(), queries.len());
        // Fresh engine → no cache interference for the serial reference.
        let reference = QueryEngine::new(shared_world());
        for (query, result) in queries.iter().zip(&batch) {
            let serial = reference.execute_uncached(query).unwrap();
            assert_eq!(
                &*result.as_ref().unwrap().payload,
                serial,
                "{} diverged",
                query.canonical()
            );
        }
    }

    #[test]
    fn duplicate_queries_in_one_batch_share_work() {
        let engine = QueryEngine::new(shared_world());
        let query = Query::Transitions {
            selection: Selection::default(),
        };
        let queries = vec![query.clone(), query.clone(), query];
        let results = run_batch(&engine, &queries);
        // Duplicates shard together, so at most one cold execution.
        let cold = results
            .iter()
            .filter(|result| !result.as_ref().unwrap().cached)
            .count();
        assert_eq!(cold, 1);
        assert_eq!(engine.cache_stats().entries, 1);
    }

    #[test]
    fn batch_propagates_per_query_errors() {
        let engine = QueryEngine::new(shared_world());
        let queries = vec![
            Query::Catalog,
            Query::LongestRuns {
                selection: Selection {
                    source: Some("missing".to_string()),
                    ..Selection::default()
                },
            },
        ];
        let results = run_batch(&engine, &queries);
        assert!(results[0].is_ok());
        assert!(results[1].is_err());
    }
}
