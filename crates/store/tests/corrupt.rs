//! Corrupt-store battery: truncation at every section boundary, flipped
//! checksum bytes, bad magic/version, hostile counts, and a fuzz-style
//! sweep of random byte mutations. The decoder must return a typed
//! [`StoreError`] for every one — never panic, never allocate past the
//! input.

mod util;

use lfp_store::format::{FileReader, FileWriter, Writer, MAGIC};
use lfp_store::{Store, StoreError};
use std::sync::{Arc, OnceLock};

fn store_bytes() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| Store::from_world(Arc::clone(&util::shared_tiny_world())).to_bytes())
}

/// Byte offsets of every section boundary (start of each section frame
/// and the file end), recovered by walking the container framing.
fn section_boundaries(bytes: &[u8]) -> Vec<usize> {
    let mut boundaries = vec![8usize];
    let mut pos = 8usize;
    while pos + 12 <= bytes.len() {
        let len =
            u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().expect("8 bytes")) as usize;
        pos += 12 + len + 8;
        boundaries.push(pos.min(bytes.len()));
        if pos >= bytes.len() {
            break;
        }
    }
    boundaries
}

#[test]
fn the_clean_store_decodes() {
    assert!(Store::from_bytes(store_bytes()).is_ok());
    let file = FileReader::parse(store_bytes(), MAGIC).unwrap();
    let tags: Vec<String> = file
        .section_summaries()
        .into_iter()
        .map(|(tag, _)| tag)
        .collect();
    for expected in ["META", "RIPE", "ITDK", "SCAN", "VMAP", "CORP", "EPOC"] {
        assert!(tags.contains(&expected.to_string()), "missing {expected}");
    }
}

#[test]
fn truncation_at_every_section_boundary_is_a_typed_error() {
    let bytes = store_bytes();
    let boundaries = section_boundaries(bytes);
    assert!(boundaries.len() >= 8, "expected one boundary per section");
    for &boundary in &boundaries {
        for cut in [
            boundary.saturating_sub(1),
            boundary,
            (boundary + 1).min(bytes.len()),
        ] {
            if cut == bytes.len() {
                continue;
            }
            let error = Store::from_bytes(&bytes[..cut]).expect_err("truncated store decoded");
            assert!(
                matches!(
                    error,
                    StoreError::Truncated { .. } | StoreError::BadMagic | StoreError::Corrupt(_)
                ),
                "cut at {cut}: unexpected error {error}"
            );
        }
    }
}

#[test]
fn truncation_at_a_byte_stride_never_panics() {
    let bytes = store_bytes();
    let mut cut = 0usize;
    while cut < bytes.len() {
        assert!(
            Store::from_bytes(&bytes[..cut]).is_err(),
            "cut at {cut} decoded"
        );
        cut += 997; // prime stride: hits every section over the sweep
    }
}

#[test]
fn flipped_checksum_bytes_are_detected_per_section() {
    let bytes = store_bytes();
    let mut pos = 8usize;
    while pos + 12 <= bytes.len() {
        let tag = String::from_utf8_lossy(&bytes[pos..pos + 4]).into_owned();
        let len =
            u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().expect("8 bytes")) as usize;
        let checksum_at = pos + 12 + len;
        // Flip one checksum byte: parsing must blame exactly this section.
        let mut mutated = bytes.to_vec();
        mutated[checksum_at] ^= 0x01;
        match FileReader::parse(&mutated, MAGIC).expect_err("bad checksum accepted") {
            StoreError::ChecksumMismatch { section } => assert_eq!(section, tag),
            other => panic!("section {tag}: unexpected error {other}"),
        }
        // Flipping a payload byte (when there is one) fails the same way.
        if len > 0 {
            let mut mutated = bytes.to_vec();
            mutated[pos + 12] ^= 0x80;
            assert!(
                matches!(
                    FileReader::parse(&mutated, MAGIC).expect_err("bad payload accepted"),
                    StoreError::ChecksumMismatch { .. }
                ),
                "section {tag}: payload flip undetected"
            );
        }
        pos = checksum_at + 8;
    }
}

#[test]
fn bad_magic_and_version_are_typed() {
    let mut bytes = store_bytes().to_vec();
    bytes[0] = b'X';
    assert_eq!(Store::from_bytes(&bytes).unwrap_err(), StoreError::BadMagic);
    let mut bytes = store_bytes().to_vec();
    bytes[4] = 2;
    assert_eq!(
        Store::from_bytes(&bytes).unwrap_err(),
        StoreError::UnsupportedVersion(2)
    );
    assert_eq!(
        Store::from_bytes(&[]).unwrap_err(),
        StoreError::Truncated { context: "header" }
    );
}

#[test]
fn hostile_counts_fail_before_allocating() {
    // A syntactically valid container whose first section claims u32::MAX
    // snapshots: the decoder must reject it from the length budget alone.
    let mut file = FileWriter::new(MAGIC);
    let mut meta = Writer::new();
    for _ in 0..6 {
        meta.u64(1);
        meta.f64(0.5);
    }
    meta.u64(1); // seed
    meta.u64(0); // epoch
    meta.u32(u32::MAX); // ripe count
    meta.u32(0); // delta count
    file.section(*b"META", meta);
    let mut ripe = Writer::new();
    ripe.u32(u32::MAX);
    file.section(*b"RIPE", ripe);
    let bytes = file.finish();
    let error = Store::from_bytes(&bytes).expect_err("hostile counts decoded");
    assert!(
        matches!(error, StoreError::Truncated { .. } | StoreError::Corrupt(_)),
        "unexpected error {error}"
    );
}

#[test]
fn random_mutation_fuzz_never_panics_or_overallocates() {
    // Deterministic splitmix-style fuzz: flip 1–4 bytes per iteration
    // anywhere in the file (header, frames, payloads, checksums) and
    // require decode to come back with *some* Result. Iterations that
    // land exclusively in redundant bytes may still decode — that is
    // fine; the property under test is totality, not rejection.
    let bytes = store_bytes();
    let mut state = 0x9e37_79b9_97f4_a7c1u64;
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 11
    };
    let mut rejected = 0usize;
    const ITERATIONS: usize = 250;
    for _ in 0..ITERATIONS {
        let mut mutated = bytes.to_vec();
        let flips = 1 + (next() % 4) as usize;
        for _ in 0..flips {
            let offset = (next() % mutated.len() as u64) as usize;
            let mask = (next() % 255 + 1) as u8;
            mutated[offset] ^= mask;
        }
        if Store::from_bytes(&mutated).is_err() {
            rejected += 1;
        }
    }
    // Checksums make silent acceptance of a corrupted store vanishingly
    // rare; demand that the overwhelming majority is rejected.
    assert!(
        rejected >= ITERATIONS - 5,
        "only {rejected}/{ITERATIONS} mutations rejected"
    );
}

#[test]
fn semantic_corruption_inside_a_valid_container_is_caught() {
    // Rewrite the CORP section with nonsense ids but a *correct*
    // checksum: framing passes, semantic validation must still reject.
    let bytes = store_bytes();
    let file = FileReader::parse(bytes, MAGIC).unwrap();
    let summaries = file.section_summaries();
    assert!(summaries.iter().any(|(tag, _)| tag == "CORP"));
    // Walk frames and rebuild the file, replacing CORP's payload.
    let mut rebuilt = FileWriter::new(MAGIC);
    let mut pos = 8usize;
    while pos + 12 <= bytes.len() {
        let tag: [u8; 4] = bytes[pos..pos + 4].try_into().expect("4 bytes");
        let len =
            u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().expect("8 bytes")) as usize;
        let payload = &bytes[pos + 12..pos + 12 + len];
        pos += 12 + len + 8;
        if &tag == b"END!" {
            break;
        }
        let mut writer = Writer::new();
        if &tag == b"CORP" {
            // One source, zero rows, but a row-less corpus is invalid
            // (ripe_source_count must be < source count).
            writer.u32(1);
            writer.str("RIPE-1");
            writer.u32(1); // ripe_source_count
            writer.u32(0); // latest_ripe
            writer.u32(0); // rows
            writer.u32(0); // runs
            writer.u32(0); // seq spans
            writer.u32(0); // sets
        } else {
            let mut raw = Writer::new();
            raw.u32(0);
            let _ = raw; // keep payload byte-identical for other sections
            writer = Writer::new();
            for &byte in payload {
                writer.u8(byte);
            }
        }
        rebuilt.section(tag, writer);
    }
    let error = Store::from_bytes(&rebuilt.finish()).expect_err("semantic corruption decoded");
    assert!(matches!(error, StoreError::Corrupt(_)), "{error}");
}
