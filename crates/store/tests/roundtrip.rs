//! Round-trip property tests: any Scale-generated world → encode →
//! decode → byte-identical figure output and byte-identical query
//! responses for the full catalog mix — and the encoding itself is
//! canonical (`encode(decode(bytes)) == bytes`).

mod util;

use lfp_analysis::experiments::run_by_id;
use lfp_analysis::World;
use lfp_query::QueryEngine;
use lfp_store::Store;
use lfp_topo::Scale;
use proptest::prelude::*;
use std::sync::Arc;

/// The corpus-backed experiments whose rendered output must survive a
/// store round trip byte for byte (§6 figures + the ordered analyses).
const FIGURES: &[&str] = &[
    "fig8",
    "fig9",
    "fig11",
    "fig12",
    "path_transitions",
    "path_runs",
    "path_segments",
];

fn assert_roundtrip(scale: Scale) {
    let world = Arc::new(World::build(scale));
    let store = Store::from_world(Arc::clone(&world));
    let bytes = store.to_bytes();

    let reopened = Store::from_bytes(&bytes).expect("fresh store bytes decode");
    // The encoding is canonical: decode → encode reproduces the bytes.
    assert_eq!(reopened.to_bytes(), bytes, "re-encode diverged");
    assert_eq!(reopened.epoch(), 0);

    // The serving corpus is *equal*, not merely similar.
    assert_eq!(
        world.path_corpus(),
        reopened.world().path_corpus(),
        "corpus diverged across the round trip"
    );

    // Byte-identical figure output from the loaded world.
    for id in FIGURES {
        let original = run_by_id(&world, id).expect("registered experiment");
        let loaded = run_by_id(reopened.world(), id).expect("registered experiment");
        assert_eq!(
            original.render_text(),
            loaded.render_text(),
            "{id} text diverged"
        );
        assert_eq!(original.to_json(), loaded.to_json(), "{id} json diverged");
    }

    // Byte-identical responses for the full catalog mix.
    assert_eq!(
        util::mix_responses(&store),
        util::mix_responses(&reopened),
        "query responses diverged across the round trip"
    );
}

#[test]
fn tiny_world_round_trips_byte_identically() {
    assert_roundtrip(Scale::tiny());
}

/// Property flavour: sample a handful of scale variants (seed, vantage
/// count, destination depth, snapshot count all vary) and hold the
/// round-trip contract on each. The loop is hand-rolled at a small case
/// count because every case builds a full measured world.
#[test]
fn sampled_scales_round_trip_byte_identically() {
    let mut rng = proptest::new_test_rng("store_roundtrip_scales");
    let seed = any::<u64>();
    let vantages = 2usize..4;
    let dests = 10usize..24;
    let snapshots = 2usize..4;
    for _ in 0..3 {
        let scale = Scale {
            seed: seed.sample(&mut rng),
            vantages: vantages.sample(&mut rng),
            dests_per_vantage: dests.sample(&mut rng),
            snapshots: snapshots.sample(&mut rng),
            ..Scale::tiny()
        };
        assert_roundtrip(scale);
    }
}

proptest! {
    /// The engine built on a loaded world answers single queries with
    /// the same bytes as the engine on the originally built world, for
    /// arbitrary hop-range filters (the residual-predicate path).
    #[test]
    fn filtered_queries_survive_the_round_trip(
        min_hops in 0u16..6,
        extra in 0u16..6,
        slice_pick in 0u8..4,
    ) {
        use lfp_analysis::us_study::UsSlice;
        use lfp_query::{Query, Selection};

        static STATE: std::sync::OnceLock<(Arc<World>, Store)> = std::sync::OnceLock::new();
        let (world, reopened) = STATE.get_or_init(|| {
            let world = util::shared_tiny_world();
            let bytes = Store::from_world(Arc::clone(&world)).to_bytes();
            (world, Store::from_bytes(&bytes).expect("store decodes"))
        });
        let query = Query::LongestRuns {
            selection: Selection {
                min_hops: (min_hops > 0).then_some(min_hops),
                max_hops: (extra > 0).then_some(min_hops + extra),
                slice: UsSlice::ALL.get(slice_pick as usize).copied(),
                ..Selection::default()
            },
        };
        let original = QueryEngine::new(Arc::clone(world));
        let loaded = reopened.engine();
        prop_assert_eq!(
            original.execute_uncached(&query).unwrap(),
            loaded.execute_uncached(&query).unwrap()
        );
    }
}
