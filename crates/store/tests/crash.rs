//! Crash-injection battery for durable saves.
//!
//! The [`SaveFaults`] seam lets a test kill a save at precisely the
//! points a real crash can land: before any chunk write (leaving the
//! temp file truncated at a recorded boundary) or just before the
//! rename publish (temp complete, store path untouched). The property
//! under test is the store's durability contract: **after a crash at
//! any boundary, `Store::load` reopens the last successfully published
//! epoch, byte-identically** — never a torn file, never an error.

mod util;

use lfp_store::{LogFaults, SaveFaults, Store, StoreError, MANIFEST_FILE, SAVE_CHUNK};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// A scratch directory unique to this test run; cleaned up on drop.
struct Scratch {
    dir: PathBuf,
}

impl Scratch {
    fn new(tag: &str) -> Scratch {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("lfp-crash-{tag}-{}-{unique}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch { dir }
    }

    fn path(&self, name: &str) -> PathBuf {
        self.dir.join(name)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// Records every write boundary a save crosses without interfering —
/// the map of crash points the injection loop then enumerates.
#[derive(Default)]
struct Recorder {
    /// (offset, len) of every chunk write, in order.
    chunks: Vec<(usize, usize)>,
    publishes: usize,
}

impl SaveFaults for Recorder {
    fn on_chunk(&mut self, offset: usize, len: usize) -> Result<(), StoreError> {
        self.chunks.push((offset, len));
        Ok(())
    }

    fn on_publish(&mut self) -> Result<(), StoreError> {
        self.publishes += 1;
        Ok(())
    }
}

/// Kills the save just before chunk number `at` is written (or, with
/// `at_publish`, just before the rename).
struct CrashAt {
    at: usize,
    at_publish: bool,
    seen: usize,
}

impl CrashAt {
    fn chunk(at: usize) -> CrashAt {
        CrashAt {
            at,
            at_publish: false,
            seen: 0,
        }
    }

    fn publish() -> CrashAt {
        CrashAt {
            at: usize::MAX,
            at_publish: true,
            seen: 0,
        }
    }
}

impl SaveFaults for CrashAt {
    fn on_chunk(&mut self, _offset: usize, _len: usize) -> Result<(), StoreError> {
        if self.seen == self.at {
            return Err(StoreError::Io("injected crash before chunk".to_string()));
        }
        self.seen += 1;
        Ok(())
    }

    fn on_publish(&mut self) -> Result<(), StoreError> {
        if self.at_publish {
            return Err(StoreError::Io("injected crash before publish".to_string()));
        }
        Ok(())
    }
}

/// Load the store at `path` and return (epoch, full catalog responses).
fn loaded_state(path: &Path) -> (u64, Vec<(String, String)>) {
    let (store, _report) = Store::load(path).expect("store loads after crash");
    (store.epoch(), util::mix_responses(&store))
}

#[test]
fn save_records_stable_chunk_boundaries() {
    let store = Store::from_world(util::shared_tiny_world());
    let scratch = Scratch::new("boundaries");
    let path = scratch.path("world.lfps");

    let mut recorder = Recorder::default();
    let report = store.save_with(&path, &mut recorder).expect("clean save");

    // The boundaries tile the byte stream exactly: contiguous, starting
    // at 0, summing to the store size, every chunk ≤ SAVE_CHUNK.
    assert!(!recorder.chunks.is_empty());
    assert_eq!(recorder.publishes, 1);
    let mut expected_offset = 0usize;
    for &(offset, len) in &recorder.chunks {
        assert_eq!(offset, expected_offset, "chunk boundaries not contiguous");
        assert!(len > 0 && len <= SAVE_CHUNK);
        expected_offset += len;
    }
    assert_eq!(expected_offset as u64, report.bytes);
    assert!(
        recorder.chunks.len() >= 2,
        "store too small to cross a chunk boundary — the crash matrix \
         would only test the empty-file case"
    );

    // Recording perturbed nothing: the published file is the store.
    let (epoch, _) = loaded_state(&path);
    assert_eq!(epoch, 0);
}

#[test]
fn crash_at_every_write_boundary_recovers_last_good_epoch() {
    let world = util::shared_tiny_world();
    let store = Store::from_world(world.clone());
    let scratch = Scratch::new("matrix");
    let path = scratch.path("world.lfps");

    // Publish epoch 0 — the "last good" state every crash must preserve.
    store.save(&path).expect("baseline save");
    let baseline = loaded_state(&path);
    assert_eq!(baseline.0, 0);

    // Advance to epoch 1, so the crashing saves carry genuinely new
    // bytes the crash must *not* publish partially.
    let deltas = util::measure_deltas(&world, 1);
    store
        .ingest(deltas.into_iter().next().unwrap())
        .expect("ingest");
    assert_eq!(store.epoch(), 1);

    // Map the crash points of the epoch-1 image (against a scratch
    // path, so the real one still holds epoch 0).
    let mut recorder = Recorder::default();
    store
        .save_with(&scratch.path("probe.lfps"), &mut recorder)
        .expect("probe save");
    let boundaries = recorder.chunks.len();

    // Crash before every chunk write, including chunk 0 (empty temp).
    for at in 0..boundaries {
        let error = store
            .save_with(&path, &mut CrashAt::chunk(at))
            .expect_err("injected crash must surface");
        assert!(matches!(error, StoreError::Io(_)));

        // The temp file is truncated at exactly the recorded boundary…
        let tmp_len = std::fs::metadata(path.with_extension("tmp"))
            .expect("crashed save leaves its temp file")
            .len() as usize;
        assert_eq!(tmp_len, recorder.chunks[at].0, "crash point {at}");

        // …and the published path still loads as epoch 0, responding
        // byte-identically to the pre-crash baseline.
        assert_eq!(loaded_state(&path), baseline, "crash point {at}");
    }

    // Crash after the temp file is complete but before the rename: the
    // new epoch is on disk yet *unpublished* — load must still see 0.
    let error = store
        .save_with(&path, &mut CrashAt::publish())
        .expect_err("publish crash must surface");
    assert!(matches!(error, StoreError::Io(_)));
    assert_eq!(loaded_state(&path), baseline);

    // A clean save after any number of crashes publishes epoch 1.
    store.save(&path).expect("post-crash save");
    let (epoch, responses) = loaded_state(&path);
    assert_eq!(epoch, 1);
    assert_ne!(responses, baseline.1, "epoch 1 must answer differently");
    assert_eq!(responses, util::mix_responses(&store));
}

#[test]
fn follower_crash_at_every_boundary_recovers_and_resyncs() {
    let world = util::shared_tiny_world();
    let primary = Store::from_world(world.clone());
    let scratch = Scratch::new("follower");
    let follower_path = scratch.path("follower.lfps");

    // The follower starts as a synced replica of the primary's base
    // snapshot, published durably at epoch 0.
    let follower = Store::from_bytes(&primary.to_bytes()).expect("snapshot sync");
    follower.save(&follower_path).expect("baseline persist");
    let baseline = loaded_state(&follower_path);
    assert_eq!(baseline.0, 0);

    // The primary ingests one snapshot; the replication log's segment
    // for epoch 1 is exactly what `repl_delta` would ship.
    let delta = util::measure_deltas(&world, 1).into_iter().next().unwrap();
    primary.ingest(delta).expect("primary ingest");
    let shipped = primary.delta_segment(1).expect("epoch 1 is in the log");

    // Applying the shipped segment is the follower's ingest path.
    let apply = |store: &Store| {
        let delta =
            lfp_store::SnapshotDelta::from_bytes(&shipped).expect("shipped segment decodes");
        store.ingest(delta).expect("apply shipped delta");
    };
    apply(&follower);
    assert_eq!(follower.epoch(), 1);
    // Replication's core claim: at equal epochs the follower answers
    // byte-identically to the primary.
    let converged = util::mix_responses(&follower);
    assert_eq!(converged, util::mix_responses(&primary));

    // Map the write boundaries of the follower's epoch-1 image.
    let mut recorder = Recorder::default();
    follower
        .save_with(&scratch.path("probe.lfps"), &mut recorder)
        .expect("probe save");

    // Kill the follower's post-apply persist before every chunk write
    // and before the publish rename: the published file must still be
    // the *fully-applied* epoch 0 every time — a torn epoch may never
    // become loadable, let alone servable.
    for at in 0..recorder.chunks.len() {
        let error = follower
            .save_with(&follower_path, &mut CrashAt::chunk(at))
            .expect_err("injected crash must surface");
        assert!(matches!(error, StoreError::Io(_)));
        assert_eq!(loaded_state(&follower_path), baseline, "crash point {at}");
    }
    let error = follower
        .save_with(&follower_path, &mut CrashAt::publish())
        .expect_err("publish crash must surface");
    assert!(matches!(error, StoreError::Io(_)));
    assert_eq!(loaded_state(&follower_path), baseline);

    // Restart after the crashes: the reloaded follower is at the last
    // fully-applied epoch and resyncs by re-fetching the same shipped
    // segment — landing byte-identical to the never-crashed replica.
    let (restarted, _) = Store::load(&follower_path).expect("follower restart");
    assert_eq!(restarted.epoch(), 0, "recovered to the last applied epoch");
    apply(&restarted);
    assert_eq!(restarted.epoch(), 1);
    assert_eq!(util::mix_responses(&restarted), converged);
    restarted.save(&follower_path).expect("clean persist");
    let (epoch, responses) = loaded_state(&follower_path);
    assert_eq!(epoch, 1);
    assert_eq!(responses, converged);
}

// ---------------------------------------------------------------------
// The segmented epoch log: the same matrix, but with more places to die
// — inside a segment file, at a segment's seal, inside the manifest,
// and at the manifest swap itself (the single publish point).
// ---------------------------------------------------------------------

/// One write event a segmented operation crossed, in order.
#[derive(Debug, Clone, PartialEq)]
enum LogEvent {
    /// `(file, offset, len)` of a chunk write into `<file>.tmp`.
    Chunk(String, usize, usize),
    /// The fsync + rename boundary sealing `file`.
    Seal(String),
}

/// Records every event a segmented save/compaction crosses without
/// interfering — the map the injection loop then enumerates.
#[derive(Default)]
struct LogRecorder {
    events: Vec<LogEvent>,
}

impl LogFaults for LogRecorder {
    fn on_chunk(&mut self, file: &str, offset: usize, len: usize) -> Result<(), StoreError> {
        self.events
            .push(LogEvent::Chunk(file.to_string(), offset, len));
        Ok(())
    }

    fn on_seal(&mut self, file: &str) -> Result<(), StoreError> {
        self.events.push(LogEvent::Seal(file.to_string()));
        Ok(())
    }
}

/// Kills the operation just before event number `at` (in the order the
/// recorder observed them).
struct LogCrashAt {
    at: usize,
    seen: usize,
}

impl LogCrashAt {
    fn event(at: usize) -> LogCrashAt {
        LogCrashAt { at, seen: 0 }
    }

    fn tick(&mut self) -> Result<(), StoreError> {
        if self.seen == self.at {
            return Err(StoreError::Io("injected log crash".to_string()));
        }
        self.seen += 1;
        Ok(())
    }
}

impl LogFaults for LogCrashAt {
    fn on_chunk(&mut self, _file: &str, _offset: usize, _len: usize) -> Result<(), StoreError> {
        self.tick()
    }

    fn on_seal(&mut self, _file: &str) -> Result<(), StoreError> {
        self.tick()
    }
}

#[test]
fn segmented_crash_at_every_boundary_recovers_last_sealed_epoch() {
    let world = util::shared_tiny_world();
    let store = Store::from_world(world.clone());
    let scratch = Scratch::new("segmatrix");
    let dir = scratch.path("log");

    // Publish the epoch-0 base — the "last sealed" state every crashed
    // segment save must preserve.
    store.save_segmented(&dir).expect("baseline save");
    let baseline = loaded_state(&dir);
    assert_eq!(baseline.0, 0);

    // Advance to epoch 1 and map the incremental save's write events
    // against a disposable copy of the published log (same manifest,
    // same base ⇒ identical event sequence).
    let delta = util::measure_deltas(&world, 1).into_iter().next().unwrap();
    store.ingest(delta).expect("ingest");
    let probe = scratch.path("probe-log");
    std::fs::create_dir_all(&probe).expect("probe dir");
    for entry in std::fs::read_dir(&dir).expect("read log dir") {
        let entry = entry.expect("dir entry");
        std::fs::copy(entry.path(), probe.join(entry.file_name())).expect("copy log file");
    }
    let mut recorder = LogRecorder::default();
    store
        .save_segmented_with(&probe, &mut recorder)
        .expect("probe save");
    // The map must cover both files and both seals: segment chunks,
    // the segment's seal, manifest chunks, the manifest's seal (the
    // publish itself is the very last event).
    assert!(recorder.events.len() >= 4, "{:?}", recorder.events);
    assert!(matches!(recorder.events.last(), Some(LogEvent::Seal(file)) if file == MANIFEST_FILE));
    assert!(recorder
        .events
        .iter()
        .any(|event| matches!(event, LogEvent::Seal(file) if file != MANIFEST_FILE)));

    // Kill the save at every recorded boundary. Whatever died — a
    // half-written segment, a sealed-but-unpublished segment, a torn
    // manifest temp — the published log must still load as epoch 0,
    // byte-identically to the pre-crash baseline.
    for at in 0..recorder.events.len() {
        let error = store
            .save_segmented_with(&dir, &mut LogCrashAt::event(at))
            .expect_err("injected crash must surface");
        assert!(matches!(error, StoreError::Io(_)), "crash point {at}");
        assert_eq!(loaded_state(&dir), baseline, "crash point {at}");
    }

    // A clean save after the whole matrix publishes epoch 1 exactly.
    store.save_segmented(&dir).expect("post-crash save");
    let (epoch, responses) = loaded_state(&dir);
    assert_eq!(epoch, 1);
    assert_ne!(responses, baseline.1, "epoch 1 must answer differently");
    assert_eq!(responses, util::mix_responses(&store));
}

#[test]
fn compaction_crash_at_every_boundary_preserves_the_published_log() {
    let world = util::shared_tiny_world();
    let store = Store::from_world(world.clone());
    let scratch = Scratch::new("foldmatrix");
    let dir = scratch.path("log");

    // Three sealed segments on top of the epoch-0 base.
    store.save_segmented(&dir).expect("base save");
    for delta in util::measure_deltas(&world, 3) {
        store.ingest(delta).expect("ingest");
        store.save_segmented(&dir).expect("per-epoch save");
    }
    let before = loaded_state(&dir);
    assert_eq!(before.0, 3);

    // Map the fold's write events (new base chunks, its seal, manifest
    // chunks, manifest seal) against a disposable copy of the log.
    let probe = scratch.path("probe-log");
    std::fs::create_dir_all(&probe).expect("probe dir");
    for entry in std::fs::read_dir(&dir).expect("read log dir") {
        let entry = entry.expect("dir entry");
        std::fs::copy(entry.path(), probe.join(entry.file_name())).expect("copy log file");
    }
    let probe_store = Store::load(&probe)
        .map(|(store, _)| store)
        .expect("probe load");
    let mut recorder = LogRecorder::default();
    probe_store
        .compact_log_with(&mut recorder)
        .expect("probe fold")
        .expect("probe had segments to fold");
    assert!(matches!(recorder.events.last(), Some(LogEvent::Seal(file)) if file == MANIFEST_FILE));

    // Kill the fold at every boundary: the published manifest still
    // lists the old base + segments, all of which the crashed fold must
    // leave untouched — so every load sees epoch 3, byte-identically.
    for at in 0..recorder.events.len() {
        let error = store
            .compact_log_with(&mut LogCrashAt::event(at))
            .expect_err("injected crash must surface");
        assert!(matches!(error, StoreError::Io(_)), "crash point {at}");
        assert_eq!(loaded_state(&dir), before, "crash point {at}");
        // The log still accepts incremental saves after a failed fold.
        let report = store.save_segmented(&dir).expect("save after crashed fold");
        assert_eq!(report.segments_written, 0, "crash point {at}");
    }

    // A clean fold publishes the single-base manifest; the log answers
    // exactly as before and the swept segments are gone.
    let report = store
        .compact_log()
        .expect("clean fold")
        .expect("segments still pending");
    assert_eq!(report.epoch, 3);
    assert_eq!(report.folded, 3);
    assert_eq!(loaded_state(&dir), before);
    let status = store.log_status().expect("log attached");
    assert_eq!(status.segments, 0);
}

#[test]
fn follower_with_segmented_log_recovers_and_resyncs_after_crashes() {
    let world = util::shared_tiny_world();
    let primary = Store::from_world(world.clone());
    let scratch = Scratch::new("segfollower");
    let dir = scratch.path("follower-log");

    // The follower replicates the base snapshot and persists it as a
    // segmented log.
    let follower = Store::from_bytes(&primary.to_bytes()).expect("snapshot sync");
    follower.save_segmented(&dir).expect("baseline persist");
    let baseline = loaded_state(&dir);
    assert_eq!(baseline.0, 0);

    // The primary moves on; the shipped delta is the follower's apply.
    let delta = util::measure_deltas(&world, 1).into_iter().next().unwrap();
    primary.ingest(delta).expect("primary ingest");
    let shipped = primary.delta_segment(1).expect("epoch 1 in the log");
    let apply = |store: &Store| {
        let delta =
            lfp_store::SnapshotDelta::from_bytes(&shipped).expect("shipped segment decodes");
        store.ingest(delta).expect("apply shipped delta");
    };
    apply(&follower);
    let converged = util::mix_responses(&follower);
    assert_eq!(converged, util::mix_responses(&primary));

    // Map the post-apply persist, then kill it at every boundary: the
    // published log must stay at the last fully-applied epoch.
    let probe = scratch.path("probe-log");
    std::fs::create_dir_all(&probe).expect("probe dir");
    for entry in std::fs::read_dir(&dir).expect("read log dir") {
        let entry = entry.expect("dir entry");
        std::fs::copy(entry.path(), probe.join(entry.file_name())).expect("copy log file");
    }
    let mut recorder = LogRecorder::default();
    follower
        .save_segmented_with(&probe, &mut recorder)
        .expect("probe save");
    for at in 0..recorder.events.len() {
        let error = follower
            .save_segmented_with(&dir, &mut LogCrashAt::event(at))
            .expect_err("injected crash must surface");
        assert!(matches!(error, StoreError::Io(_)), "crash point {at}");
        assert_eq!(loaded_state(&dir), baseline, "crash point {at}");
    }

    // Restart from the crashed log: epoch 0, resync by re-applying the
    // same shipped segment, persist cleanly — byte-identical to the
    // never-crashed replica.
    let (restarted, _) = Store::load(&dir).expect("follower restart");
    assert_eq!(restarted.epoch(), 0, "recovered to the last applied epoch");
    apply(&restarted);
    assert_eq!(util::mix_responses(&restarted), converged);
    restarted.save_segmented(&dir).expect("clean persist");
    let (epoch, responses) = loaded_state(&dir);
    assert_eq!(epoch, 1);
    assert_eq!(responses, converged);
}

#[test]
fn save_survives_bare_filename_paths() {
    // `path.parent()` is empty for a bare filename; the directory
    // fsync must fall back to "." instead of failing the save.
    let store = Store::from_world(util::shared_tiny_world());
    let scratch = Scratch::new("bare");
    let previous = std::env::current_dir().expect("cwd");
    std::env::set_current_dir(&scratch.dir).expect("enter scratch");
    let result = store.save(Path::new("bare.lfps"));
    let loaded = Store::load(Path::new("bare.lfps")).map(|(store, _)| store.epoch());
    std::env::set_current_dir(previous).expect("restore cwd");
    result.expect("bare-filename save");
    assert_eq!(loaded.expect("bare-filename load"), 0);
}
