//! Crash-injection battery for durable saves.
//!
//! The [`SaveFaults`] seam lets a test kill a save at precisely the
//! points a real crash can land: before any chunk write (leaving the
//! temp file truncated at a recorded boundary) or just before the
//! rename publish (temp complete, store path untouched). The property
//! under test is the store's durability contract: **after a crash at
//! any boundary, `Store::load` reopens the last successfully published
//! epoch, byte-identically** — never a torn file, never an error.

mod util;

use lfp_store::{SaveFaults, Store, StoreError, SAVE_CHUNK};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// A scratch directory unique to this test run; cleaned up on drop.
struct Scratch {
    dir: PathBuf,
}

impl Scratch {
    fn new(tag: &str) -> Scratch {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("lfp-crash-{tag}-{}-{unique}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch { dir }
    }

    fn path(&self, name: &str) -> PathBuf {
        self.dir.join(name)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// Records every write boundary a save crosses without interfering —
/// the map of crash points the injection loop then enumerates.
#[derive(Default)]
struct Recorder {
    /// (offset, len) of every chunk write, in order.
    chunks: Vec<(usize, usize)>,
    publishes: usize,
}

impl SaveFaults for Recorder {
    fn on_chunk(&mut self, offset: usize, len: usize) -> Result<(), StoreError> {
        self.chunks.push((offset, len));
        Ok(())
    }

    fn on_publish(&mut self) -> Result<(), StoreError> {
        self.publishes += 1;
        Ok(())
    }
}

/// Kills the save just before chunk number `at` is written (or, with
/// `at_publish`, just before the rename).
struct CrashAt {
    at: usize,
    at_publish: bool,
    seen: usize,
}

impl CrashAt {
    fn chunk(at: usize) -> CrashAt {
        CrashAt {
            at,
            at_publish: false,
            seen: 0,
        }
    }

    fn publish() -> CrashAt {
        CrashAt {
            at: usize::MAX,
            at_publish: true,
            seen: 0,
        }
    }
}

impl SaveFaults for CrashAt {
    fn on_chunk(&mut self, _offset: usize, _len: usize) -> Result<(), StoreError> {
        if self.seen == self.at {
            return Err(StoreError::Io("injected crash before chunk".to_string()));
        }
        self.seen += 1;
        Ok(())
    }

    fn on_publish(&mut self) -> Result<(), StoreError> {
        if self.at_publish {
            return Err(StoreError::Io("injected crash before publish".to_string()));
        }
        Ok(())
    }
}

/// Load the store at `path` and return (epoch, full catalog responses).
fn loaded_state(path: &Path) -> (u64, Vec<(String, String)>) {
    let (store, _report) = Store::load(path).expect("store loads after crash");
    (store.epoch(), util::mix_responses(&store))
}

#[test]
fn save_records_stable_chunk_boundaries() {
    let store = Store::from_world(util::shared_tiny_world());
    let scratch = Scratch::new("boundaries");
    let path = scratch.path("world.lfps");

    let mut recorder = Recorder::default();
    let report = store.save_with(&path, &mut recorder).expect("clean save");

    // The boundaries tile the byte stream exactly: contiguous, starting
    // at 0, summing to the store size, every chunk ≤ SAVE_CHUNK.
    assert!(!recorder.chunks.is_empty());
    assert_eq!(recorder.publishes, 1);
    let mut expected_offset = 0usize;
    for &(offset, len) in &recorder.chunks {
        assert_eq!(offset, expected_offset, "chunk boundaries not contiguous");
        assert!(len > 0 && len <= SAVE_CHUNK);
        expected_offset += len;
    }
    assert_eq!(expected_offset as u64, report.bytes);
    assert!(
        recorder.chunks.len() >= 2,
        "store too small to cross a chunk boundary — the crash matrix \
         would only test the empty-file case"
    );

    // Recording perturbed nothing: the published file is the store.
    let (epoch, _) = loaded_state(&path);
    assert_eq!(epoch, 0);
}

#[test]
fn crash_at_every_write_boundary_recovers_last_good_epoch() {
    let world = util::shared_tiny_world();
    let store = Store::from_world(world.clone());
    let scratch = Scratch::new("matrix");
    let path = scratch.path("world.lfps");

    // Publish epoch 0 — the "last good" state every crash must preserve.
    store.save(&path).expect("baseline save");
    let baseline = loaded_state(&path);
    assert_eq!(baseline.0, 0);

    // Advance to epoch 1, so the crashing saves carry genuinely new
    // bytes the crash must *not* publish partially.
    let deltas = util::measure_deltas(&world, 1);
    store
        .ingest(deltas.into_iter().next().unwrap())
        .expect("ingest");
    assert_eq!(store.epoch(), 1);

    // Map the crash points of the epoch-1 image (against a scratch
    // path, so the real one still holds epoch 0).
    let mut recorder = Recorder::default();
    store
        .save_with(&scratch.path("probe.lfps"), &mut recorder)
        .expect("probe save");
    let boundaries = recorder.chunks.len();

    // Crash before every chunk write, including chunk 0 (empty temp).
    for at in 0..boundaries {
        let error = store
            .save_with(&path, &mut CrashAt::chunk(at))
            .expect_err("injected crash must surface");
        assert!(matches!(error, StoreError::Io(_)));

        // The temp file is truncated at exactly the recorded boundary…
        let tmp_len = std::fs::metadata(path.with_extension("tmp"))
            .expect("crashed save leaves its temp file")
            .len() as usize;
        assert_eq!(tmp_len, recorder.chunks[at].0, "crash point {at}");

        // …and the published path still loads as epoch 0, responding
        // byte-identically to the pre-crash baseline.
        assert_eq!(loaded_state(&path), baseline, "crash point {at}");
    }

    // Crash after the temp file is complete but before the rename: the
    // new epoch is on disk yet *unpublished* — load must still see 0.
    let error = store
        .save_with(&path, &mut CrashAt::publish())
        .expect_err("publish crash must surface");
    assert!(matches!(error, StoreError::Io(_)));
    assert_eq!(loaded_state(&path), baseline);

    // A clean save after any number of crashes publishes epoch 1.
    store.save(&path).expect("post-crash save");
    let (epoch, responses) = loaded_state(&path);
    assert_eq!(epoch, 1);
    assert_ne!(responses, baseline.1, "epoch 1 must answer differently");
    assert_eq!(responses, util::mix_responses(&store));
}

#[test]
fn follower_crash_at_every_boundary_recovers_and_resyncs() {
    let world = util::shared_tiny_world();
    let primary = Store::from_world(world.clone());
    let scratch = Scratch::new("follower");
    let follower_path = scratch.path("follower.lfps");

    // The follower starts as a synced replica of the primary's base
    // snapshot, published durably at epoch 0.
    let follower = Store::from_bytes(&primary.to_bytes()).expect("snapshot sync");
    follower.save(&follower_path).expect("baseline persist");
    let baseline = loaded_state(&follower_path);
    assert_eq!(baseline.0, 0);

    // The primary ingests one snapshot; the replication log's segment
    // for epoch 1 is exactly what `repl_delta` would ship.
    let delta = util::measure_deltas(&world, 1).into_iter().next().unwrap();
    primary.ingest(delta).expect("primary ingest");
    let shipped = primary.delta_segment(1).expect("epoch 1 is in the log");

    // Applying the shipped segment is the follower's ingest path.
    let apply = |store: &Store| {
        let delta =
            lfp_store::SnapshotDelta::from_bytes(&shipped).expect("shipped segment decodes");
        store.ingest(delta).expect("apply shipped delta");
    };
    apply(&follower);
    assert_eq!(follower.epoch(), 1);
    // Replication's core claim: at equal epochs the follower answers
    // byte-identically to the primary.
    let converged = util::mix_responses(&follower);
    assert_eq!(converged, util::mix_responses(&primary));

    // Map the write boundaries of the follower's epoch-1 image.
    let mut recorder = Recorder::default();
    follower
        .save_with(&scratch.path("probe.lfps"), &mut recorder)
        .expect("probe save");

    // Kill the follower's post-apply persist before every chunk write
    // and before the publish rename: the published file must still be
    // the *fully-applied* epoch 0 every time — a torn epoch may never
    // become loadable, let alone servable.
    for at in 0..recorder.chunks.len() {
        let error = follower
            .save_with(&follower_path, &mut CrashAt::chunk(at))
            .expect_err("injected crash must surface");
        assert!(matches!(error, StoreError::Io(_)));
        assert_eq!(loaded_state(&follower_path), baseline, "crash point {at}");
    }
    let error = follower
        .save_with(&follower_path, &mut CrashAt::publish())
        .expect_err("publish crash must surface");
    assert!(matches!(error, StoreError::Io(_)));
    assert_eq!(loaded_state(&follower_path), baseline);

    // Restart after the crashes: the reloaded follower is at the last
    // fully-applied epoch and resyncs by re-fetching the same shipped
    // segment — landing byte-identical to the never-crashed replica.
    let (restarted, _) = Store::load(&follower_path).expect("follower restart");
    assert_eq!(restarted.epoch(), 0, "recovered to the last applied epoch");
    apply(&restarted);
    assert_eq!(restarted.epoch(), 1);
    assert_eq!(util::mix_responses(&restarted), converged);
    restarted.save(&follower_path).expect("clean persist");
    let (epoch, responses) = loaded_state(&follower_path);
    assert_eq!(epoch, 1);
    assert_eq!(responses, converged);
}

#[test]
fn save_survives_bare_filename_paths() {
    // `path.parent()` is empty for a bare filename; the directory
    // fsync must fall back to "." instead of failing the save.
    let store = Store::from_world(util::shared_tiny_world());
    let scratch = Scratch::new("bare");
    let previous = std::env::current_dir().expect("cwd");
    std::env::set_current_dir(&scratch.dir).expect("enter scratch");
    let result = store.save(Path::new("bare.lfps"));
    let loaded = Store::load(Path::new("bare.lfps")).map(|(store, _)| store.epoch());
    std::env::set_current_dir(previous).expect("restore cwd");
    result.expect("bare-filename save");
    assert_eq!(loaded.expect("bare-filename load"), 0);
}
